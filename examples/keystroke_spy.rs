//! §7.1 related-work demo: recovering keystroke timings from execution
//! gaps — and why that older attack dies under `irqbalance` while the
//! paper's loop-counting attack does not.
//!
//! ```sh
//! cargo run --release --example keystroke_spy
//! ```

use bigger_fish::attack::{GapWatcher, KeystrokeDetector};
use bigger_fish::sim::{Machine, MachineConfig, RoutingPolicy};
use bigger_fish::timer::Nanos;
use bigger_fish::victim::KeystrokeSession;

fn main() {
    let session = KeystrokeSession::new(60.0);
    let duration = Nanos::from_secs(20);
    let (workload, truth) = session.generate(duration, 42);
    println!(
        "victim types at 60 wpm for 20s ({} keystrokes); attacker watches its own clock\n",
        truth.len()
    );

    let detector = KeystrokeDetector::default();
    let watcher = GapWatcher::default();

    for (label, confine) in [("keyboard IRQs on attacker core", false), ("irqbalance moves keyboard IRQs away", true)]
    {
        let mut cfg = MachineConfig::default();
        cfg.isolation.pin_cores = true;
        if confine {
            cfg.isolation.confine_movable_irqs = true;
        } else {
            cfg.routing = Some(RoutingPolicy::PinnedTo(cfg.attacker_core()));
        }
        let sim = Machine::new(cfg).run(&workload, 42);
        let gaps = watcher.watch(&sim);
        let detections = detector.detect(&gaps);
        let report = KeystrokeDetector::score(&detections, &truth, Nanos::from_millis(2));
        println!(
            "{label}:\n  detections {} | precision {:.0}% recall {:.0}% f1 {:.2}",
            detections.len(),
            report.precision() * 100.0,
            report.recall() * 100.0,
            report.f1()
        );
    }

    println!("\ntakeaway: movable-interrupt attacks die under irqbalance;");
    println!("the paper's loop-counting attack survives it (Table 3) because softirqs,");
    println!("rescheduling IPIs, and timer ticks cannot be moved at all.");
}
