//! §5.2 forensics: run the native gap-watching attacker next to the
//! eBPF-style kernel instrumentation and attribute every observed
//! execution gap to its kernel cause.
//!
//! ```sh
//! cargo run --release --example interrupt_forensics
//! ```

use bigger_fish::attack::GapWatcher;
use bigger_fish::ebpf::{cohabitation, interrupt_activity, ProbeSet, TraceSession};
use bigger_fish::sim::{InterruptKind, Machine, MachineConfig};
use bigger_fish::timer::Nanos;
use bigger_fish::victim::WebsiteProfile;

fn main() {
    let site = WebsiteProfile::for_hostname("weather.com");
    let duration = Nanos::from_secs(15);
    let mut cfg = MachineConfig::default();
    cfg.isolation.pin_cores = true; // §5.2 pins the attacker to one core
    let machine = Machine::new(cfg);

    println!("loading {} while a Rust gap-watcher polls CLOCK_MONOTONIC...\n", site.hostname());
    let workload = site.generate(duration, 7);
    let sim = machine.run(&workload, 7);

    // User-space view: jumps in the monotonic clock.
    let gaps = GapWatcher::default().watch(&sim);
    println!("user space observed {} gaps > 100ns", gaps.len());

    // Kernel view: every interrupt handler entry/exit, via probes.
    let session = TraceSession::new(ProbeSet::all());
    let report = session.attribute(&sim, &gaps);
    println!(
        "kernel probes attribute {} of them to interrupts: {:.2}%  (paper: >99%)\n",
        report.attributed_gaps(),
        report.attributed_fraction() * 100.0
    );

    println!("interrupt kinds found inside gaps:");
    for (kind, count) in report.kind_counts() {
        println!("  {kind:<18} {count:>7} gaps");
    }

    // What a kernel missing some probes would conclude (the paper's
    // "Linux restricts which kernel functions can be traced" caveat).
    let partial = TraceSession::new(
        ProbeSet::all().without(InterruptKind::RescheduleIpi).without(InterruptKind::TlbShootdown),
    );
    let partial_report = partial.attribute(&sim, &gaps);
    println!(
        "\nwith rescheduling/TLB probes unavailable (pre-5.11 kernel): only {:.2}% attributed",
        partial_report.attributed_fraction() * 100.0
    );

    // §5.3 piggybacking: deferred work rides timer-tick gaps.
    println!("\ngap cohabitation (which kinds share user-visible gaps):");
    for c in cohabitation(&sim, &gaps) {
        let partner = c
            .top_partner()
            .map(|(k, n)| format!(" (mostly with {k}, {n}x)"))
            .unwrap_or_default();
        println!(
            "  {:<18} {:>6} gaps, {:>5.1}% shared{partner}",
            c.kind.label(),
            c.gaps,
            c.shared_fraction() * 100.0
        );
    }

    // Fig. 5-style activity summary.
    let act = interrupt_activity(&sim, sim.attacker_core, Nanos::from_millis(100));
    let total = act.total();
    let peak = total.iter().copied().fold(0.0, f64::max);
    println!(
        "\ninterrupt-time share on the attacker core peaks at {:.1}% of a 100ms window",
        peak * 100.0
    );
    println!("(paper Fig. 5 shows peaks of ~5% while pages load)");
}
