//! §6 countermeasures: deploy the randomized timer and the
//! spurious-interrupt extension against the attack and measure both the
//! security gain and the performance cost.
//!
//! ```sh
//! BF_SCALE=smoke cargo run --release --example countermeasures
//! ```

use bigger_fish::core::{AttackKind, CollectionConfig, ExperimentScale};
use bigger_fish::defense::Countermeasure;
use bigger_fish::timer::BrowserKind;

fn main() {
    let scale = ExperimentScale::from_env();
    let chance = 100.0 / scale.n_sites() as f64;
    println!("evaluating countermeasures (scale: {scale}, chance = {chance:.1}%)\n");

    let defenses = [
        ("no defense", Countermeasure::None),
        ("cache-sweep noise [65]", Countermeasure::cache_sweep_default()),
        ("spurious interrupts (ours)", Countermeasure::spurious_interrupts_default()),
        ("randomized timer (ours)", Countermeasure::randomized_timer_default()),
    ];

    println!(
        "{:<28} {:>10} {:>10} {:>16}",
        "defense", "top-1", "top-5", "page-load cost"
    );
    for (name, defense) in defenses {
        let cfg = CollectionConfig::new(BrowserKind::Chrome, AttackKind::LoopCounting)
            .with_defense(defense)
            .with_scale(scale);
        let r = cfg.evaluate_closed_world(42);
        println!(
            "{:<28} {:>9.1}% {:>9.1}% {:>15.1}%",
            name,
            r.mean_accuracy() * 100.0,
            r.mean_top5() * 100.0,
            defense.load_time_overhead() * 100.0
        );
    }

    println!("\npaper (100 sites): 95.7% -> 92.6% (cache noise) / 62.0% (interrupt noise);");
    println!("randomized timer: 96.6% -> 1.0% at a page-load cost of ~0%;");
    println!("spurious interrupts cost +15.7% load time (3.12s -> 3.61s):");
    let d = Countermeasure::spurious_interrupts_default();
    println!(
        "  modeled: 3.12s -> {:.2}s with the extension enabled",
        d.page_load_time(3.12)
    );
}
