//! Quickstart: collect one loop-counting trace of a website load and
//! print it.
//!
//! ```sh
//! cargo run --release --example quickstart [hostname]
//! ```

use bigger_fish::attack::LoopCountingAttacker;
use bigger_fish::core::FigureSeries;
use bigger_fish::sim::{Machine, MachineConfig};
use bigger_fish::timer::{BrowserKind, Nanos};
use bigger_fish::victim::WebsiteProfile;

fn main() {
    let host = std::env::args().nth(1).unwrap_or_else(|| "nytimes.com".to_owned());
    let browser = BrowserKind::Chrome;
    let period = Nanos::from_millis(5);

    println!("victim loads {host} for 15s; attacker runs a loop-counting service worker\n");

    // 1. The victim's browser loads the site, generating interrupts.
    let site = WebsiteProfile::for_hostname(&host);
    let workload = site.generate(browser.trace_duration(), 0);
    println!(
        "workload: {} events (packets, wakes, TLB shootdowns, frames, ...)",
        workload.len()
    );

    // 2. The machine turns activity into per-core execution gaps.
    let machine = Machine::new(MachineConfig::default());
    let sim = machine.run(&workload, 0);
    println!(
        "simulation: {} kernel events, {} gaps on the attacker core",
        sim.kernel_log.len(),
        sim.attacker_timeline().gaps().len()
    );

    // 3. The attacker counts loop iterations per 5 ms period through
    //    Chrome's jittered 0.1 ms timer.
    let attacker = LoopCountingAttacker::for_browser(browser, period);
    let mut timer = browser.timer(0);
    let trace = attacker.collect(&sim, &mut timer);

    let series = FigureSeries::new(host.clone(), trace.values().to_vec());
    println!("\ntrace ({} periods of {period}):", trace.len());
    println!("{series}");
    println!(
        "\nmax count {:.0} per period (paper: ~27,000); dips mark page-load activity",
        trace.max()
    );
    println!("darker regions in the paper's Fig. 3 = the low stretches above");
}
