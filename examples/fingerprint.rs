//! End-to-end website fingerprinting: collect labeled traces for a set of
//! sites, train the classifier with k-fold cross-validation, and report
//! accuracy — the closed-world protocol of §4.1.
//!
//! ```sh
//! BF_SCALE=smoke cargo run --release --example fingerprint
//! BF_SCALE=default cargo run --release --example fingerprint   # slower
//! ```

use bigger_fish::core::{AttackKind, CollectionConfig, ExperimentScale};
use bigger_fish::timer::BrowserKind;
use bigger_fish::victim::Catalog;

fn main() {
    let scale = ExperimentScale::from_env();
    let n_sites = scale.n_sites();
    let per_site = scale.traces_per_site();
    println!(
        "closed-world fingerprinting: {n_sites} sites x {per_site} traces (scale: {scale})\n"
    );
    let catalog = Catalog::closed_world_subset(n_sites);
    for (i, site) in catalog.sites().iter().enumerate().take(10) {
        println!("  class {i:>3}: {}", site.hostname());
    }
    if n_sites > 10 {
        println!("  ... and {} more", n_sites - 10);
    }

    for attack in [AttackKind::LoopCounting, AttackKind::SweepCounting] {
        let cfg = CollectionConfig::new(BrowserKind::Chrome, attack).with_scale(scale);
        println!("\n[{attack}] collecting {} traces...", n_sites * per_site);
        let start = std::time::Instant::now();
        let result = cfg.evaluate_closed_world(42);
        println!(
            "[{attack}] top-1 accuracy {:.1}% ± {:.1} (top-5 {:.1}%) over {} folds in {:.1?}",
            result.mean_accuracy() * 100.0,
            result.std_accuracy() * 100.0,
            result.mean_top5() * 100.0,
            result.folds.len(),
            start.elapsed()
        );
    }
    println!(
        "\npaper (100 sites, Chrome/Linux): loop-counting 96.6%, cache-occupancy 91.4% —"
    );
    println!("the memory-free attack wins, because the channel is interrupts, not the cache.");
}
