//! Table 3 in miniature: how much does each isolation mechanism actually
//! help against the loop-counting attack?
//!
//! ```sh
//! BF_SCALE=smoke cargo run --release --example isolation_study
//! ```

use bigger_fish::core::experiments::table3;
use bigger_fish::core::{AttackKind, CollectionConfig, ExperimentScale};
use bigger_fish::sim::{IsolationConfig, MachineConfig};
use bigger_fish::timer::BrowserKind;

fn main() {
    let scale = ExperimentScale::from_env();
    println!("running the Table 3 isolation ladder (scale: {scale})...\n");
    let result = table3::run(scale, 42);
    println!("{result}");

    // Bonus ablation not in the ladder: what if only VM isolation is
    // applied, without the rest of the stack?
    let iso = IsolationConfig { vm: bigger_fish::sim::VmMode::SeparateVms, ..Default::default() };
    let cfg = CollectionConfig::new(BrowserKind::Native, AttackKind::LoopCounting)
        .with_machine(MachineConfig::default().with_isolation(iso))
        .with_scale(scale);
    let vm_only = cfg.evaluate_closed_world(42);
    println!(
        "ablation - VMs without any other isolation: {:.1}% top-1",
        vm_only.mean_accuracy() * 100.0
    );
    println!(
        "\ntakeaway (paper §5.1): no ladder rung reaches chance ({:.1}%);",
        100.0 / scale.n_sites() as f64
    );
    println!("non-movable interrupts cannot be isolated away, and VM exits amplify them.");
}
