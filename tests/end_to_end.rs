//! Cross-crate integration: the full attack pipeline through the public
//! facade API.

use bigger_fish::attack::{GapWatcher, LoopCountingAttacker, SweepCountingAttacker};
use bigger_fish::core::{AttackKind, CollectionConfig, ExperimentScale};
use bigger_fish::sim::{CacheConfig, Machine, MachineConfig};
use bigger_fish::timer::{BrowserKind, Nanos, PreciseTimer};
use bigger_fish::victim::{Catalog, WebsiteProfile};

#[test]
fn full_pipeline_is_deterministic() {
    let cfg = CollectionConfig::new(BrowserKind::Chrome, AttackKind::LoopCounting)
        .with_scale(ExperimentScale::Smoke);
    let site = WebsiteProfile::for_hostname("github.com");
    let a = cfg.collect_trace(&site, 99);
    let b = cfg.collect_trace(&site, 99);
    assert_eq!(a, b);
    let c = cfg.collect_trace(&site, 100);
    assert_ne!(a, c);
}

#[test]
fn loop_and_sweep_attackers_see_the_same_events() {
    // One simulation, two attackers: dips must co-occur.
    let site = WebsiteProfile::for_hostname("nytimes.com");
    let workload = site.generate(Nanos::from_secs(15), 5);
    let sim = Machine::new(MachineConfig::default()).run(&workload, 5);

    let la = LoopCountingAttacker::for_browser(BrowserKind::Chrome, Nanos::from_millis(5));
    let mut t1 = PreciseTimer::new();
    let lt = la.collect(&sim, &mut t1).downsampled(50);

    let sa = SweepCountingAttacker::new(Nanos::from_millis(5), CacheConfig::default());
    let mut t2 = PreciseTimer::new();
    let st = sa.collect(&sim, &mut t2, 5).downsampled(50);

    let r = bigger_fish::stats::pearson(&lt, &st).unwrap();
    assert!(r > 0.3, "same-run loop/sweep correlation r = {r}");
}

#[test]
fn closed_world_attack_beats_chance_through_public_api() {
    let cfg = CollectionConfig::new(BrowserKind::Chrome, AttackKind::LoopCounting)
        .with_scale(ExperimentScale::Smoke);
    let dataset = cfg.collect_closed_world(4, 4, 7);
    let result = cfg.cross_validate(&dataset, 7);
    // Chance = 25 %.
    assert!(result.mean_accuracy() > 0.5, "acc = {}", result.mean_accuracy());
}

#[test]
fn catalog_sites_produce_distinct_fingerprints() {
    let cfg = CollectionConfig::new(BrowserKind::Chrome, AttackKind::LoopCounting)
        .with_scale(ExperimentScale::Smoke);
    let catalog = Catalog::closed_world_subset(3);
    let features: Vec<Vec<f32>> = catalog
        .sites()
        .iter()
        .map(|s| cfg.featurize(&cfg.collect_trace(s, 1)))
        .collect();
    for i in 0..3 {
        for j in (i + 1)..3 {
            let d: f32 = features[i]
                .iter()
                .zip(&features[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            assert!(d > 1.0, "sites {i} and {j} too similar: {d}");
        }
    }
}

#[test]
fn gap_watcher_agrees_with_kernel_ground_truth() {
    let site = WebsiteProfile::for_hostname("weather.com");
    let workload = site.generate(Nanos::from_secs(5), 3);
    let mut mc = MachineConfig::default();
    mc.isolation.pin_cores = true;
    let sim = Machine::new(mc).run(&workload, 3);
    let observed = GapWatcher::default().watch(&sim);
    // All handler gaps are > 1.5 µs, so the watcher must see every one.
    assert_eq!(observed.len(), sim.attacker_timeline().gaps().len());
    // Total observed gap time within 1 % of ground truth (polling slack).
    let truth: u64 =
        sim.attacker_timeline().gaps().iter().map(|g| g.len().as_nanos()).sum();
    let seen: u64 = observed.iter().map(|g| g.len().as_nanos()).sum();
    assert!(seen >= truth);
    let slack = (seen - truth) as f64 / truth as f64;
    assert!(slack < 0.01, "slack too large: {slack}");
}
