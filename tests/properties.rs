//! Property-based cross-crate invariants (proptest).

use bigger_fish::attack::replay::replay_counting_loop;
use bigger_fish::sim::{CoreTimeline, Gap, GapCause, InterruptKind};
use bigger_fish::stats::StepSeries;
use bigger_fish::timer::{
    JitteredTimer, Nanos, PreciseTimer, QuantizedTimer, RandomizedTimer, Timer,
};
use proptest::prelude::*;

/// Random sorted, disjoint gap lists within a 100 ms window.
fn gaps_strategy() -> impl Strategy<Value = Vec<Gap>> {
    proptest::collection::vec((0u64..99_000_000, 1u64..200_000), 0..40).prop_map(|mut raw| {
        raw.sort_unstable();
        let mut gaps: Vec<Gap> = Vec::new();
        let mut cursor = 0u64;
        for (start, len) in raw {
            let s = start.max(cursor);
            let e = s + len;
            if e > 100_000_000 {
                break;
            }
            gaps.push(Gap {
                start: Nanos(s),
                end: Nanos(e),
                cause: GapCause::Interrupt(InterruptKind::TimerTick),
            });
            cursor = e + 1;
        }
        gaps
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Work accounting: busy time + gap time = wall time, for any gaps.
    #[test]
    fn timeline_time_accounting(gaps in gaps_strategy()) {
        let tl = CoreTimeline::new(Nanos(100_000_000), gaps, StepSeries::new(1.0));
        let total = Nanos(100_000_000);
        let busy = tl.busy_time_between(Nanos::ZERO, total);
        let gap = tl.gap_time_between(Nanos::ZERO, total);
        prop_assert_eq!(busy + gap, total);
        // At unit frequency, work == busy time.
        let work = tl.work_between(Nanos::ZERO, total);
        prop_assert!((work - busy.as_nanos() as f64).abs() < 1.0);
    }

    /// The replay engine conserves iterations: total counted iterations
    /// across a trace ~= available user work / iteration cost, for any
    /// gap placement.
    #[test]
    fn replay_conserves_iterations(gaps in gaps_strategy()) {
        let tl = CoreTimeline::new(Nanos(100_000_000), gaps, StepSeries::new(1.0));
        let mut timer = PreciseTimer::new();
        let (trace, records) =
            replay_counting_loop(&tl, &mut timer, Nanos::from_millis(5), Nanos(200));
        // Total work available up to the final completed period.
        if let Some(last) = records.last() {
            let work = tl.work_between(Nanos::ZERO, last.end_real);
            let expected = work / 200.0;
            let counted: f64 = records.iter().map(|r| r.count).sum();
            prop_assert!((counted - expected).abs() <= records.len() as f64 + 1.0,
                "counted {} expected {}", counted, expected);
            let _ = trace;
        }
    }

    /// Timer monotonicity holds for every model under arbitrary
    /// non-decreasing query sequences.
    #[test]
    fn all_timers_monotonic(
        mut steps in proptest::collection::vec(0u64..2_000_000, 1..200),
        seed in 0u64..1_000,
    ) {
        steps.sort_unstable();
        let mut timers: Vec<Box<dyn Timer>> = vec![
            Box::new(PreciseTimer::new()),
            Box::new(QuantizedTimer::new(Nanos::from_micros(100))),
            Box::new(JitteredTimer::new(Nanos::from_micros(100), seed)),
            Box::new(RandomizedTimer::with_defaults(seed)),
        ];
        for timer in &mut timers {
            let mut last = Nanos::ZERO;
            let mut acc = 0u64;
            for &s in &steps {
                acc += s;
                let obs = timer.observe(Nanos(acc));
                prop_assert!(obs >= last, "{} regressed", timer.name());
                last = obs;
            }
        }
    }

    /// The inverse query contract: observe(earliest_at_or_above(from, t))
    /// >= t for every model and every (from, t) pair.
    #[test]
    fn earliest_at_or_above_contract(
        from in 0u64..50_000_000,
        ahead in 0u64..20_000_000,
        seed in 0u64..1_000,
    ) {
        let target = Nanos(from + ahead);
        let from = Nanos(from);
        let mk: Vec<Box<dyn Timer>> = vec![
            Box::new(PreciseTimer::new()),
            Box::new(QuantizedTimer::new(Nanos::from_micros(100))),
            Box::new(JitteredTimer::new(Nanos::from_micros(100), seed)),
        ];
        for mut timer in mk {
            let result = timer.earliest_at_or_above(from, target);
            prop_assert!(result >= from);
            prop_assert!(timer.observe(result) >= target, "{}", timer.name());
        }
        // RandomizedTimer is stateful: use fresh clones per query.
        let base = RandomizedTimer::with_defaults(seed);
        let result = base.clone().earliest_at_or_above(from, target);
        prop_assert!(result >= from);
        prop_assert!(base.clone().observe(result) >= target);
    }

    /// Workload generation is deterministic and time-sorted for any site
    /// name and seed.
    #[test]
    fn workload_generation_sane(host in "[a-z]{1,12}\\.com", run in 0u64..50) {
        use bigger_fish::victim::WebsiteProfile;
        let p = WebsiteProfile::for_hostname(&host);
        let dur = Nanos::from_secs(2);
        let a = p.generate(dur, run);
        let b = p.generate(dur, run);
        prop_assert_eq!(a.events(), b.events());
        let mut last = Nanos::ZERO;
        for ev in a.events() {
            prop_assert!(ev.t >= last);
            last = ev.t;
        }
    }
}
