//! The paper's qualitative claims, each tested end-to-end at smoke scale.
//! (The quantitative versions are produced by `bf-bench`'s regeneration
//! binaries at default/paper scale and recorded in EXPERIMENTS.md.)

use bigger_fish::attack::GapWatcher;
use bigger_fish::core::{AttackKind, CollectionConfig, ExperimentScale};
use bigger_fish::defense::Countermeasure;
use bigger_fish::ebpf::{ProbeSet, TraceSession};
use bigger_fish::sim::{Machine, MachineConfig, VmMode};
use bigger_fish::timer::{BrowserKind, Nanos};
use bigger_fish::victim::WebsiteProfile;

/// Takeaway 1: a memory-free attacker extracts enough signal to
/// fingerprint websites.
#[test]
fn takeaway1_loop_attack_works_without_memory_accesses() {
    let cfg = CollectionConfig::new(BrowserKind::Chrome, AttackKind::LoopCounting)
        .with_scale(ExperimentScale::Smoke);
    let r = cfg.evaluate_closed_world(1);
    let chance = 1.0 / ExperimentScale::Smoke.n_sites() as f64;
    assert!(r.mean_accuracy() > chance * 3.0, "acc = {}", r.mean_accuracy());
}

/// Takeaway 4: over 99 % of execution gaps >100 ns are interrupts.
#[test]
fn takeaway4_gaps_are_interrupts() {
    let site = WebsiteProfile::for_hostname("amazon.com");
    let workload = site.generate(Nanos::from_secs(15), 2);
    let mut mc = MachineConfig::default();
    mc.isolation.pin_cores = true;
    let sim = Machine::new(mc).run(&workload, 2);
    let gaps = GapWatcher::default().watch(&sim);
    let report = TraceSession::new(ProbeSet::all()).attribute(&sim, &gaps);
    assert!(report.total_gaps() > 500);
    assert!(report.attributed_fraction() > 0.99, "{}", report.attributed_fraction());
}

/// Takeaway 5: with movable IRQs confined to core 0, the attacker core
/// still receives non-movable interrupt work carrying victim signal.
#[test]
fn takeaway5_nonmovable_interrupts_leak_after_irqbalance() {
    let site = WebsiteProfile::for_hostname("nytimes.com");
    let workload = site.generate(Nanos::from_secs(15), 3);
    let mut mc = MachineConfig::default();
    mc.isolation.confine_movable_irqs = true;
    mc.isolation.pin_cores = true;
    let sim = Machine::new(mc).run(&workload, 3);
    let tl = sim.attacker_timeline();
    // Signal: interrupt share during the load must exceed idle share.
    let busy = tl.interrupt_share(Nanos::from_millis(200), Nanos::from_secs(4));
    let idle = tl.interrupt_share(Nanos::from_secs(12), Nanos::from_secs(15));
    assert!(busy > idle, "busy {busy} <= idle {idle}");
}

/// §5.1: VM isolation amplifies rather than blocks the channel.
#[test]
fn vm_isolation_amplifies_the_signal() {
    let site = WebsiteProfile::for_hostname("weather.com");
    let workload = site.generate(Nanos::from_secs(10), 4);
    let base = Machine::new(MachineConfig::default()).run(&workload, 4);
    let mut vm_cfg = MachineConfig::default();
    vm_cfg.isolation.vm = VmMode::SeparateVms;
    let vm = Machine::new(vm_cfg).run(&workload, 4);
    let share = |sim: &bigger_fish::sim::SimOutput| {
        sim.attacker_timeline().interrupt_share(Nanos::ZERO, Nanos::from_secs(10))
    };
    assert!(share(&vm) > share(&base) * 1.3, "vm {} base {}", share(&vm), share(&base));
}

/// §6.1: the randomized timer collapses the attack toward chance.
#[test]
fn randomized_timer_defense_works() {
    let chance = 1.0 / ExperimentScale::Smoke.n_sites() as f64;
    let undefended = CollectionConfig::new(BrowserKind::Chrome, AttackKind::LoopCounting)
        .with_scale(ExperimentScale::Smoke)
        .evaluate_closed_world(5);
    let defended = CollectionConfig::new(BrowserKind::Chrome, AttackKind::LoopCounting)
        .with_defense(Countermeasure::randomized_timer_default())
        .with_scale(ExperimentScale::Smoke)
        .evaluate_closed_world(5);
    assert!(
        defended.mean_accuracy() < undefended.mean_accuracy() - 0.2,
        "defended {} undefended {}",
        defended.mean_accuracy(),
        undefended.mean_accuracy()
    );
    assert!(defended.mean_accuracy() < chance + 0.3);
}

/// §6.2: spurious interrupts degrade the attack far more than
/// cache-sweeping noise does — at a bounded page-load cost.
#[test]
fn interrupt_noise_beats_cache_noise_as_a_defense() {
    // Slightly larger than smoke (10 sites × 8 traces) so fold variance
    // does not mask the effect; centroid classifier for speed.
    let eval = |d: Countermeasure| {
        let cfg = CollectionConfig::new(BrowserKind::Chrome, AttackKind::LoopCounting)
            .with_defense(d)
            .with_scale(ExperimentScale::Smoke);
        let dataset = cfg.collect_closed_world(10, 8, 606);
        cfg.cross_validate(&dataset, 1).mean_accuracy()
    };
    let clean = eval(Countermeasure::None);
    let cache = eval(Countermeasure::cache_sweep_default());
    let spurious = eval(Countermeasure::spurious_interrupts_default());
    // Cache noise barely moves the loop attack; interrupt noise must cost
    // clearly more (paper: −3.1 vs −33.7 points).
    assert!(
        spurious + 0.05 < clean,
        "spurious {spurious} should be well below clean {clean}"
    );
    assert!(
        spurious + 0.03 < cache,
        "spurious {spurious} should be well below cache {cache}"
    );
    // Cost model: §6.2's +15.7 %.
    let cost = Countermeasure::spurious_interrupts_default().load_time_overhead();
    assert!((0.1..0.25).contains(&cost));
}
