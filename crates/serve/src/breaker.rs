//! Circuit breaker for the primary inference path.
//!
//! Classic three-state breaker, but clocked in *virtual work units*
//! rather than wall time so that state transitions are deterministic:
//!
//! * **Closed** — primary path allowed; `open_after` *consecutive*
//!   failures (timeouts or contained panics) trip it open.
//! * **Open** — primary path rejected outright; requests degrade to the
//!   fallback until `cooldown_units` virtual ticks have elapsed.
//! * **Half-open** — after the cooldown, probe requests are let through;
//!   `close_after` consecutive probe successes close the breaker, any
//!   probe failure re-opens it and restarts the cooldown.
//!
//! Every transition is recorded with its virtual tick, surfaced as
//! `serve.breaker.*` counters, and summarized for the run manifest.

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Primary path allowed; failures are being counted.
    Closed,
    /// Primary path rejected; waiting out the cooldown.
    Open,
    /// Probing the primary path after a cooldown.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase label for metrics and manifests.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Breaker thresholds, in consecutive events and virtual units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive primary failures that trip Closed → Open.
    pub open_after: u32,
    /// Virtual units to hold Open before probing.
    pub cooldown_units: u64,
    /// Consecutive half-open successes that close the breaker.
    pub close_after: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { open_after: 5, cooldown_units: 2_000, close_after: 3 }
    }
}

/// One recorded state change, stamped with the virtual tick at which it
/// happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Virtual tick of the change.
    pub at: u64,
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
}

/// Deterministic virtual-time circuit breaker. See the module docs for
/// the state machine.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    probe_successes: u32,
    open_until: u64,
    transitions: Vec<Transition>,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            probe_successes: 0,
            open_until: 0,
            transitions: Vec::new(),
        }
    }

    /// Current state (after any cooldown expiry observed so far).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Every state change so far, in virtual-tick order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Compact `from->to@tick` rendering of [`transitions`], for the run
    /// manifest ("(none)" when the breaker never moved).
    ///
    /// [`transitions`]: CircuitBreaker::transitions
    pub fn transitions_summary(&self) -> String {
        if self.transitions.is_empty() {
            return "(none)".to_owned();
        }
        self.transitions
            .iter()
            .map(|t| format!("{}->{}@{}", t.from.label(), t.to.label(), t.at))
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Route decision for a request reaching the predict stage at
    /// virtual tick `now`. Returns `true` when the primary path may be
    /// tried; moves Open → HalfOpen when the cooldown has elapsed.
    pub fn allow_primary(&mut self, now: u64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now >= self.open_until {
                    self.probe_successes = 0;
                    self.transition(now, BreakerState::HalfOpen);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a primary-path success at tick `now`.
    pub fn record_success(&mut self, now: u64) {
        match self.state {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.probe_successes += 1;
                if self.probe_successes >= self.cfg.close_after {
                    self.consecutive_failures = 0;
                    self.transition(now, BreakerState::Closed);
                }
            }
            // Successes cannot be reported while open: `allow_primary`
            // never routes to the primary in that state.
            BreakerState::Open => {}
        }
    }

    /// Record a primary-path failure (deadline exhaustion or contained
    /// panic) at tick `now`.
    pub fn record_failure(&mut self, now: u64) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.open_after {
                    self.open_until = now + self.cfg.cooldown_units;
                    self.transition(now, BreakerState::Open);
                }
            }
            BreakerState::HalfOpen => {
                self.open_until = now + self.cfg.cooldown_units;
                self.transition(now, BreakerState::Open);
            }
            BreakerState::Open => {}
        }
    }

    fn transition(&mut self, at: u64, to: BreakerState) {
        let from = self.state;
        self.state = to;
        self.transitions.push(Transition { at, from, to });
        bf_obs::counter(match to {
            BreakerState::Open => "serve.breaker.opened",
            BreakerState::HalfOpen => "serve.breaker.half_open",
            BreakerState::Closed => "serve.breaker.closed",
        })
        .inc();
        bf_obs::info!("breaker {} -> {} at tick {at}", from.label(), to.label());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig { open_after: 3, cooldown_units: 100, close_after: 2 }
    }

    #[test]
    fn opens_only_after_consecutive_failures() {
        let mut b = CircuitBreaker::new(cfg());
        b.record_failure(1);
        b.record_failure(2);
        b.record_success(3); // breaks the streak
        b.record_failure(4);
        b.record_failure(5);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(6);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(
            b.transitions(),
            &[Transition { at: 6, from: BreakerState::Closed, to: BreakerState::Open }]
        );
    }

    #[test]
    fn rejects_during_cooldown_and_probes_after() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..3 {
            b.record_failure(t);
        }
        assert!(!b.allow_primary(50), "still cooling down");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allow_primary(102), "cooldown elapsed at 2 + 100");
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn closes_after_enough_probe_successes() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..3 {
            b.record_failure(t);
        }
        assert!(b.allow_primary(200));
        b.record_success(200);
        assert_eq!(b.state(), BreakerState::HalfOpen, "one probe is not enough");
        b.record_success(210);
        assert_eq!(b.state(), BreakerState::Closed);
        let labels: Vec<&str> = b.transitions().iter().map(|t| t.to.label()).collect();
        assert_eq!(labels, ["open", "half_open", "closed"]);
    }

    #[test]
    fn half_open_failure_reopens_and_restarts_cooldown() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..3 {
            b.record_failure(t);
        }
        assert!(b.allow_primary(150));
        b.record_failure(150);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow_primary(200), "cooldown restarted at 150");
        assert!(b.allow_primary(250));
    }

    #[test]
    fn summary_renders_ticks_or_none() {
        let mut b = CircuitBreaker::new(cfg());
        assert_eq!(b.transitions_summary(), "(none)");
        for t in 0..3 {
            b.record_failure(t);
        }
        assert_eq!(b.transitions_summary(), "closed->open@2");
    }
}
