//! The supervised multi-shard serving fleet.
//!
//! A [`Fleet`] owns N independent [`Service`] shards, each with its own
//! admission queue, circuit breaker, tier controller, and fault domain,
//! fronted by a deterministic router:
//!
//! * **Routing** — [`route`] maps a request id to a shard by a stable
//!   hash; the assignment depends on nothing but `(id, shards)`.
//! * **Fault domains** — a shard crash (scheduled by a
//!   [`bf_fault::ShardKillPlan`]) is contained: the supervisor converts
//!   each kill into a bounded down window (crash tick → restart tick,
//!   with exponential backoff for repeated kills of the same shard),
//!   queued and arriving requests inside the window resolve
//!   [`Outcome::ShardDown`], and the restarted shard comes back with a
//!   fresh, closed breaker. Sibling shards never observe the crash:
//!   their outcomes are bit-identical with or without it.
//! * **Hedged retry** — with [`FleetConfig::hedge`] on, requests that
//!   resolved `ShardDown` replay on the next shard (by index) that was
//!   healthy at their arrival tick, in a second deterministic pass that
//!   runs only after every shard finished its primary pass — so hedging
//!   can never perturb a sibling's primary outcomes either.
//!
//! Shards execute sequentially, each using the full `bf_par` pool for
//! its parallel collect stage; every outcome is therefore a pure
//! function of `(stream, fleet config, BF_THREADS)` — and per shard, of
//! that shard's slice of the stream alone. Wall time is the only thing
//! parallelism changes.

use crate::service::{HealthSnapshot, Service};
use crate::{Outcome, Resolved, ServeConfig, ServeRequest};
use bf_fault::{BackoffPolicy, ShardKillPlan};
use bf_stats::rng::combine_seeds;

/// Routing salt: decouples shard assignment from every other use of the
/// request id as a seed.
const ROUTE_SALT: u64 = 0x5AAD_F1EE;

/// Seed of the restart-backoff jitter stream (per-shard streams fork
/// off it by shard index).
const RESTART_SEED: u64 = 0xF1EE_7B00;

/// Deterministic router: stable hash of the request id → shard index.
/// A pure function of `(id, shards)`; every caller — admission, hedge
/// pass, tests — computes the same assignment.
pub fn route(id: u64, shards: usize) -> usize {
    (combine_seeds(id, ROUTE_SALT) % shards.max(1) as u64) as usize
}

/// Fleet tuning. See [`FleetConfig::from_env`] for the environment
/// knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of independent service shards (≥ 1).
    pub shards: usize,
    /// Replay `ShardDown` requests on the next healthy shard in a
    /// second deterministic pass.
    pub hedge: bool,
    /// Restart backoff for killed shards: the k-th consecutive kill of
    /// a shard keeps it down for `delay_units(..., attempt = k)`.
    pub restart_backoff: BackoffPolicy,
    /// Per-shard service tuning (each shard gets a copy, plus its own
    /// down windows derived from the kill plan).
    pub serve: ServeConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 4,
            hedge: false,
            restart_backoff: BackoffPolicy { base_units: 2_000, max_units: 16_000, jitter: 0.0 },
            serve: ServeConfig::default(),
        }
    }
}

impl FleetConfig {
    /// Defaults overridden by the `BF_FLEET_*` environment knobs, all
    /// parsed through the hardened `bf_obs::env` layer (malformed
    /// values warn once and fall back):
    ///
    /// * `BF_FLEET_SHARDS` — shard count (default 4). `0` is rejected
    ///   as invalid, not clamped silently: a zero-shard fleet cannot
    ///   serve.
    /// * `BF_FLEET_HEDGE` — `1` enables the hedged-retry pass
    ///   (default 0).
    /// * `BF_FLEET_RESTART_BACKOFF` — base restart delay in work units
    ///   (default 2000, capped at 8× base; `0` is rejected — a
    ///   zero-length outage window would make kills unobservable).
    ///
    /// The per-shard service tuning comes from
    /// [`ServeConfig::from_env`] (the `BF_SERVE_*` knobs).
    pub fn from_env() -> Self {
        let d = FleetConfig::default();
        let shards = match bf_obs::env::parse::<usize>(
            "BF_FLEET_SHARDS",
            "a positive shard count",
        ) {
            Some(0) => {
                bf_obs::env::warn_invalid("BF_FLEET_SHARDS", "0", "a positive shard count");
                d.shards
            }
            Some(n) => n,
            None => d.shards,
        };
        let base = match bf_obs::env::parse::<u64>(
            "BF_FLEET_RESTART_BACKOFF",
            "a positive restart backoff in work units",
        ) {
            Some(0) => {
                bf_obs::env::warn_invalid(
                    "BF_FLEET_RESTART_BACKOFF",
                    "0",
                    "a positive restart backoff in work units",
                );
                d.restart_backoff.base_units
            }
            Some(n) => n,
            None => d.restart_backoff.base_units,
        };
        FleetConfig {
            shards,
            hedge: bf_obs::env::parse_or(
                "BF_FLEET_HEDGE",
                0u8,
                "1 to enable hedged retry, 0 to disable",
            ) != 0,
            restart_backoff: BackoffPolicy {
                base_units: base,
                max_units: base.saturating_mul(8),
                jitter: 0.0,
            },
            serve: ServeConfig::from_env(),
        }
    }
}

/// Per-shard and fleet-level health, aggregated by [`Fleet::health`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetHealth {
    /// One snapshot per shard, in shard order.
    pub shards: Vec<HealthSnapshot>,
    /// Lifetime breaker flap count per shard (transitions of live and
    /// restart-discarded breakers).
    pub flaps: Vec<u64>,
    /// Requests replayed by the hedge pass so far.
    pub hedged: u64,
}

impl FleetHealth {
    /// Sum a per-shard count over the fleet.
    pub fn total(&self, f: impl Fn(&HealthSnapshot) -> u64) -> u64 {
        self.shards.iter().map(f).sum()
    }

    /// True when every shard's breaker admits primary traffic.
    pub fn all_ready(&self) -> bool {
        self.shards.iter().all(|s| s.ready)
    }
}

/// The supervised shard fleet. See the module docs for semantics.
pub struct Fleet {
    shards: Vec<Service>,
    /// Down windows per shard, derived once from the kill plan: the
    /// router's health gate and the hedge pass both consult them.
    windows: Vec<Vec<(u64, u64)>>,
    hedge: bool,
    hedged: u64,
    kill_summary: String,
}

impl Fleet {
    /// Assemble a fleet of `cfg.shards` services. `make(k)` builds the
    /// shard's models (collection pipeline, primary, fallback, tiers);
    /// the fleet then applies the shard's serve config — `cfg.serve`
    /// plus the down windows its kills imply — and the shard span
    /// label. Each shard gets its own fault domain: nothing is shared
    /// between the returned services.
    pub fn new(cfg: &FleetConfig, kills: &ShardKillPlan, mut make: impl FnMut(usize) -> Service) -> Self {
        let n = cfg.shards.max(1);
        bf_obs::gauge("fleet.shards").set(n as f64);
        let windows: Vec<Vec<(u64, u64)>> = (0..n)
            .map(|k| down_windows(&kills.kills_for(k), &cfg.restart_backoff, k))
            .collect();
        let shards = (0..n)
            .map(|k| {
                let mut svc = make(k).with_shard_label(k);
                let mut scfg = cfg.serve.clone();
                scfg.down_windows = windows[k].clone();
                svc.reconfigure(scfg);
                svc
            })
            .collect();
        Fleet { shards, windows, hedge: cfg.hedge, hedged: 0, kill_summary: kills.summary() }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Borrow one shard (read-only), e.g. for its breaker history.
    pub fn shard(&self, k: usize) -> &Service {
        &self.shards[k]
    }

    /// The down windows the supervisor derived for shard `k`.
    pub fn down_windows_for(&self, k: usize) -> &[(u64, u64)] {
        &self.windows[k]
    }

    /// Reset every shard (breaker state, tallies, tier costs) and the
    /// hedge counter — a fresh fleet with the same fitted models, for
    /// double-pass determinism checks.
    pub fn reset(&mut self) {
        for shard in &mut self.shards {
            shard.reset();
        }
        self.hedged = 0;
    }

    /// Drain `requests` through the fleet: route each request to its
    /// shard, run the shards sequentially (each shard sees only its own
    /// slice, so its outcomes cannot depend on a sibling), then — with
    /// hedging on — replay `ShardDown` requests on the next shard that
    /// was healthy at their arrival tick. Returns exactly one record
    /// per request, in input order.
    pub fn run(&mut self, requests: &[ServeRequest]) -> Vec<Resolved> {
        let n_shards = self.shards.len();
        bf_obs::counter("fleet.requests").add(requests.len() as u64);
        let mut parts: Vec<Vec<ServeRequest>> = vec![Vec::new(); n_shards];
        let mut idxs: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
        for (i, req) in requests.iter().enumerate() {
            let k = route(req.id, n_shards);
            parts[k].push(*req);
            idxs[k].push(i);
        }
        let mut results: Vec<Option<Resolved>> = (0..requests.len()).map(|_| None).collect();
        for k in 0..n_shards {
            if parts[k].is_empty() {
                continue;
            }
            let out = self.shards[k].run(&parts[k]);
            debug_assert_eq!(out.len(), idxs[k].len());
            for (&i, r) in idxs[k].iter().zip(out) {
                results[i] = Some(r);
            }
        }

        if self.hedge {
            self.hedge_pass(requests, &mut results);
        }

        results
            .into_iter()
            .map(|r| r.expect("fleet resolved every request"))
            .collect()
    }

    /// The hedged-retry pass: requests the primary pass resolved
    /// `ShardDown` replay on the next healthy shard. Runs strictly
    /// after every shard's primary pass, so it can only *replace
    /// ShardDown records* — sibling outcomes are already sealed.
    fn hedge_pass(&mut self, requests: &[ServeRequest], results: &mut [Option<Resolved>]) {
        let n_shards = self.shards.len();
        let mut retry_parts: Vec<Vec<ServeRequest>> = vec![Vec::new(); n_shards];
        let mut retry_idxs: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
        for (i, req) in requests.iter().enumerate() {
            let down = matches!(
                results[i],
                Some(Resolved { outcome: Outcome::ShardDown, .. })
            );
            if !down {
                continue;
            }
            let home = route(req.id, n_shards);
            if let Some(target) = self.next_healthy(home, req.arrival) {
                retry_parts[target].push(*req);
                retry_idxs[target].push(i);
            }
        }
        for k in 0..n_shards {
            if retry_parts[k].is_empty() {
                continue;
            }
            self.hedged += retry_parts[k].len() as u64;
            bf_obs::counter("fleet.hedged").add(retry_parts[k].len() as u64);
            let out = self.shards[k].run(&retry_parts[k]);
            for (&i, r) in retry_idxs[k].iter().zip(out) {
                results[i] = Some(r);
            }
        }
    }

    /// The first shard after `home` (wrapping, excluding `home`) with
    /// no down window covering `tick`. `None` when every other shard is
    /// down at that tick (or the fleet has one shard).
    fn next_healthy(&self, home: usize, tick: u64) -> Option<usize> {
        let n = self.shards.len();
        (1..n)
            .map(|step| (home + step) % n)
            .find(|&k| !self.windows[k].iter().any(|&(start, end)| tick >= start && tick < end))
    }

    /// Aggregate per-shard health, publishing `fleet.*` gauges.
    pub fn health(&self) -> FleetHealth {
        let shards: Vec<HealthSnapshot> = self.shards.iter().map(Service::health).collect();
        let flaps: Vec<u64> = self.shards.iter().map(Service::breaker_flaps).collect();
        let health = FleetHealth { shards, flaps, hedged: self.hedged };
        bf_obs::gauge("fleet.shard_down").set(health.total(|s| s.shard_down) as f64);
        bf_obs::gauge("fleet.restarts").set(health.total(|s| s.restarts) as f64);
        bf_obs::gauge("fleet.flaps").set(health.flaps.iter().sum::<u64>() as f64);
        bf_obs::gauge("fleet.hedged").set(health.hedged as f64);
        health
    }

    /// Record fleet topology and per-shard breaker/outcome state into a
    /// run manifest.
    pub fn record_in_manifest(&self, mb: &mut bf_obs::ManifestBuilder) {
        mb.config("fleet.shards", self.shards.len().to_string());
        mb.config("fleet.kill_plan", self.kill_summary.clone());
        mb.config("fleet.hedged", self.hedged.to_string());
        for (k, shard) in self.shards.iter().enumerate() {
            let h = shard.health();
            mb.config(
                &format!("fleet.shard{k}.breaker_transitions"),
                shard.breaker().transitions_summary(),
            );
            mb.config(
                &format!("fleet.shard{k}.outcomes"),
                format!(
                    "submitted={} predictions={} degraded={} timeouts={} shed={} failed={} \
                     shard_down={} restarts={} flaps={}",
                    h.submitted,
                    h.predictions,
                    h.degraded,
                    h.timeouts,
                    h.shed,
                    h.failed,
                    h.shard_down,
                    h.restarts,
                    shard.breaker_flaps()
                ),
            );
        }
    }
}

/// Convert one shard's ascending kill ticks into sorted, non-overlapping
/// half-open down windows. Consecutive kills back off exponentially
/// (attempt index grows per *observed* kill); a kill landing inside an
/// earlier window is coalesced — the shard was already down.
fn down_windows(kills: &[u64], backoff: &BackoffPolicy, shard: usize) -> Vec<(u64, u64)> {
    let mut windows: Vec<(u64, u64)> = Vec::new();
    let mut attempt = 0u32;
    for &kill in kills {
        if let Some(&(_, end)) = windows.last() {
            if kill < end {
                continue;
            }
        }
        let delay = backoff.delay_units(RESTART_SEED, shard as u64, attempt).max(1);
        windows.push((kill, kill.saturating_add(delay)));
        attempt += 1;
    }
    windows
}

#[cfg(test)]
mod tests {
    use super::*;

    // Serializes tests that mutate process environment.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn route_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 7] {
            for id in 0..500u64 {
                let k = route(id, shards);
                assert!(k < shards);
                assert_eq!(k, route(id, shards), "routing must be pure");
            }
        }
        // The hash spreads load: with 4 shards and 1000 ids, every
        // shard sees a meaningful share.
        let mut counts = [0usize; 4];
        for id in 0..1000u64 {
            counts[route(id, 4)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 150), "skewed routing: {counts:?}");
    }

    #[test]
    fn down_windows_back_off_exponentially_and_coalesce() {
        let backoff = BackoffPolicy { base_units: 100, max_units: 800, jitter: 0.0 };
        // Second kill lands inside the first window: coalesced. Third
        // kill is a genuine second outage: doubled delay.
        let w = down_windows(&[1_000, 1_050, 5_000, 20_000], &backoff, 0);
        assert_eq!(w, vec![(1_000, 1_100), (5_000, 5_200), (20_000, 20_400)]);
        assert!(down_windows(&[], &backoff, 0).is_empty());
    }

    #[test]
    fn down_windows_respect_the_cap() {
        let backoff = BackoffPolicy { base_units: 100, max_units: 150, jitter: 0.0 };
        let w = down_windows(&[0, 1_000, 2_000], &backoff, 3);
        assert_eq!(w[0].1 - w[0].0, 100);
        assert_eq!(w[1].1 - w[1].0, 150, "exponential delay is capped");
        assert_eq!(w[2].1 - w[2].0, 150);
    }

    #[test]
    fn config_from_env_reads_knobs_and_rejects_zero_shards() {
        let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        bf_obs::env::reset_warnings();
        std::env::set_var("BF_FLEET_SHARDS", "6");
        std::env::set_var("BF_FLEET_HEDGE", "1");
        std::env::set_var("BF_FLEET_RESTART_BACKOFF", "500");
        let cfg = FleetConfig::from_env();
        assert_eq!(cfg.shards, 6);
        assert!(cfg.hedge);
        assert_eq!(cfg.restart_backoff.base_units, 500);
        assert_eq!(cfg.restart_backoff.max_units, 4_000, "cap is 8x base");

        // Semantically invalid values are rejected with a warning, not
        // silently clamped into a different topology.
        std::env::set_var("BF_FLEET_SHARDS", "0");
        std::env::set_var("BF_FLEET_RESTART_BACKOFF", "0");
        bf_obs::env::reset_warnings();
        let cfg = FleetConfig::from_env();
        assert_eq!(cfg.shards, FleetConfig::default().shards);
        assert_eq!(
            cfg.restart_backoff.base_units,
            FleetConfig::default().restart_backoff.base_units
        );

        // Unparsable values fall back too.
        std::env::set_var("BF_FLEET_SHARDS", "many");
        std::env::set_var("BF_FLEET_HEDGE", "yes-please");
        std::env::set_var("BF_FLEET_RESTART_BACKOFF", "-3");
        bf_obs::env::reset_warnings();
        let cfg = FleetConfig::from_env();
        assert_eq!(cfg.shards, FleetConfig::default().shards);
        assert!(!cfg.hedge);
        assert_eq!(
            cfg.restart_backoff.base_units,
            FleetConfig::default().restart_backoff.base_units
        );

        for k in ["BF_FLEET_SHARDS", "BF_FLEET_HEDGE", "BF_FLEET_RESTART_BACKOFF"] {
            std::env::remove_var(k);
        }
        bf_obs::env::reset_warnings();
        let cfg = FleetConfig::from_env();
        assert_eq!(cfg.shards, 4, "unset keys keep the defaults");
        assert!(!cfg.hedge);
    }
}
