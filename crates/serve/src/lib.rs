//! `bf-serve` — a deadline-aware online fingerprinting service.
//!
//! The paper's pipeline is batch-shaped: collect a corpus, train, then
//! cross-validate. This crate wraps the same building blocks —
//! [`bf_core::collect`] for trace acquisition and [`bf_ml`] classifiers
//! for prediction — in an *online* request/response loop with the
//! robustness machinery a long-running service needs:
//!
//! * a **bounded queue** with explicit load shedding when it overflows;
//! * **per-request deadlines** in deterministic virtual work units,
//!   enforced cooperatively via [`bf_fault::CancelToken`] checkpoints
//!   threaded through collection and inference;
//! * **seeded retry with exponential backoff + jitter**
//!   ([`bf_fault::BackoffPolicy`]) for transient collection faults,
//!   charged against the request's deadline budget;
//! * a **circuit breaker** ([`CircuitBreaker`]) around the expensive
//!   primary (CNN+LSTM) inference path, with **graceful degradation**
//!   to the cheap [`bf_ml::CentroidClassifier`] while the breaker is
//!   open;
//! * a [`HealthSnapshot`] readiness/terminal-outcome report, and
//!   `serve.*` metrics plus breaker-state manifest entries through
//!   `bf-obs`.
//!
//! # Virtual time
//!
//! Nothing in the service reads a wall clock. Queueing, deadlines,
//! backoff waits, and breaker cooldowns are all measured in abstract
//! *work units* charged against cancellation tokens, so every outcome is
//! a pure function of `(requests, config, BF_THREADS)` — a chaos storm
//! replays bit-identically, and wall time is observability-only. The
//! scheduler runs lock-step waves of at most [`bf_par::threads`] jobs:
//! collection runs in parallel within a wave, prediction is applied in
//! deterministic virtual-completion order so breaker transitions do not
//! depend on OS thread interleaving.
//!
//! # Terminal outcomes
//!
//! Every submitted request resolves to **exactly one** [`Outcome`]:
//! a primary `Prediction`, a `Degraded` (centroid) prediction, an
//! explicit `Timeout` naming the stage that exhausted the deadline, an
//! explicit `Shed` at admission, an explicit `Failed` (quarantined
//! collection or a contained worker panic), or — when a supervised
//! shard outage window swallows the request — an explicit `ShardDown`.
//! Requests never hang and panics never escape the service.
//!
//! # Fleet
//!
//! The [`fleet`] module scales one service into N supervised shards
//! behind a deterministic router: stable request-id hashing, per-shard
//! fault domains (queue, breaker, tier controller), health-gated
//! failover with optional hedged retry, and shard-kill chaos driven by
//! [`bf_fault::ShardKillPlan`]. See [`fleet::Fleet`].

pub mod breaker;
pub mod fleet;
pub mod service;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker, Transition};
pub use fleet::{route, Fleet, FleetConfig, FleetHealth};
pub use service::{HealthSnapshot, Service, TierModels};

use bf_fault::BackoffPolicy;
use bf_stats::rng::{combine_seeds, SeedRng};

/// A classification job: "collect a trace of `site` and say which site
/// it was". `seed` drives the (simulated) victim visit; `arrival` is the
/// virtual tick at which the request enters the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeRequest {
    /// Caller-chosen identifier, echoed in the [`Resolved`] record and
    /// used to derive per-request fault/jitter streams.
    pub id: u64,
    /// Index into the service's site catalog.
    pub site: usize,
    /// Seed for the simulated visit this request observes.
    pub seed: u64,
    /// Virtual arrival tick.
    pub arrival: u64,
}

/// The pipeline stage that exhausted a request's deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// The deadline elapsed while the request was still queued.
    Queue,
    /// Trace collection (including retry backoff waits) ran out of
    /// budget.
    Collect,
    /// Inference ran out of budget (typically a slow primary model).
    Predict,
}

impl Stage {
    /// Stable lowercase label for metrics and reports.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Collect => "collect",
            Stage::Predict => "predict",
        }
    }
}

/// Which rung of the anytime prediction ladder produced an answer.
///
/// Ordered roughly by cost and accuracy: the full primary model, an
/// early exit of the primary model at a trace prefix, the distilled
/// small student, and the centroid floor. Recorded in every answered
/// [`Outcome`] so accuracy-vs-deadline curves can attribute each answer
/// to the tier that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The primary classifier on the full trace.
    Full,
    /// The primary classifier exited at this prefix percentage.
    EarlyExit(u8),
    /// The distilled small student model.
    Distilled,
    /// The centroid fallback.
    Centroid,
}

impl Tier {
    /// Stable lowercase label for metrics and reports. Early exits at
    /// the standard rungs get their own labels so per-tier fractions
    /// survive metric flattening.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Full => "full",
            Tier::EarlyExit(25) => "early_exit_25",
            Tier::EarlyExit(50) => "early_exit_50",
            Tier::EarlyExit(75) => "early_exit_75",
            Tier::EarlyExit(_) => "early_exit",
            Tier::Distilled => "distilled",
            Tier::Centroid => "centroid",
        }
    }
}

/// The single terminal state of a request. See the crate docs for the
/// exhaustiveness guarantee.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The primary classifier answered within the deadline — on the
    /// full trace, or (with the ladder enabled) at a prefix rung whose
    /// calibrated confidence cleared the threshold.
    Prediction {
        /// Argmax class.
        class: usize,
        /// Per-class probabilities (calibrated when the ladder is on).
        probs: Vec<f32>,
        /// Which ladder rung answered.
        tier: Tier,
        /// Calibrated confidence of the answer (max probability).
        confidence: f32,
    },
    /// A degraded answer: the budget cut the ladder short of the
    /// confidence bar (best early-exit answer so far), the distilled
    /// student stood in for a failed/tripped primary, or the centroid
    /// floor answered. The centroid tier is bit-identical to running
    /// the standalone centroid on the same features.
    Degraded {
        /// Argmax class.
        class: usize,
        /// Per-class probabilities.
        probs: Vec<f32>,
        /// Which ladder rung answered.
        tier: Tier,
        /// Confidence of the answer (calibrated for ladder/distilled
        /// tiers, raw max probability for the centroid).
        confidence: f32,
    },
    /// The deadline budget ran out; `stage` says where.
    Timeout {
        /// Stage that exhausted the budget.
        stage: Stage,
    },
    /// Rejected at admission because the bounded queue was full.
    Shed,
    /// Explicit failure: quarantined collection (retry budget
    /// exhausted) or a contained worker panic. Never silent, never
    /// hung.
    Failed {
        /// Human-readable reason.
        reason: String,
    },
    /// The request's shard crashed while the request was queued (or the
    /// request arrived during the outage window): the supervisor
    /// resolves it explicitly rather than letting it hang until the
    /// restart. With fleet hedging on, the router replays such requests
    /// on the next healthy shard.
    ShardDown,
}

impl Outcome {
    /// Stable lowercase label for metrics and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Prediction { .. } => "prediction",
            Outcome::Degraded { .. } => "degraded",
            Outcome::Timeout { .. } => "timeout",
            Outcome::Shed => "shed",
            Outcome::Failed { .. } => "failed",
            Outcome::ShardDown => "shard_down",
        }
    }
}

/// A request paired with its terminal outcome and virtual-time
/// accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct Resolved {
    /// The request's `id`.
    pub id: u64,
    /// The request's site index.
    pub site: usize,
    /// Terminal outcome.
    pub outcome: Outcome,
    /// Arrival tick (copied from the request).
    pub arrival: u64,
    /// Tick at which the request left the queue (equals `arrival` for
    /// sheds).
    pub started: u64,
    /// Tick at which the terminal outcome was reached.
    pub completed: u64,
    /// Units spent waiting in the queue.
    pub queue_units: u64,
    /// Units of collection + inference work charged to the deadline.
    pub work_units: u64,
}

impl Resolved {
    /// End-to-end virtual latency (queue wait + work).
    pub fn latency_units(&self) -> u64 {
        self.completed.saturating_sub(self.arrival)
    }
}

/// Anytime-ladder tuning: whether prefix early-exit is enabled, how
/// confident a rung must be to answer, and what the distilled tier
/// charges. See [`Tier`] and the `service` module docs for the
/// tier-selection rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierConfig {
    /// Enable the anytime ladder. Off, the service runs the legacy
    /// full-trace-then-centroid path bit-identically to before the
    /// ladder existed.
    pub ladder: bool,
    /// Calibrated confidence a prefix rung must reach to answer early.
    pub confidence_threshold: f64,
    /// Cost charged per distilled-student inference.
    pub distilled_units: u64,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig { ladder: false, confidence_threshold: 0.85, distilled_units: 15 }
    }
}

/// Service tuning. All durations are virtual work units (see the crate
/// docs); wall time never enters the picture.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Bounded-queue capacity; arrivals beyond it are [`Outcome::Shed`].
    pub queue_cap: usize,
    /// Per-request deadline, measured from arrival.
    pub deadline_units: u64,
    /// Cost charged per collection attempt.
    pub collect_attempt_units: u64,
    /// Cost charged per primary (CNN+LSTM) inference.
    pub primary_units: u64,
    /// Cost charged per fallback (centroid) inference.
    pub fallback_units: u64,
    /// Extra cost charged when the fault plan injects a slow model.
    pub slow_penalty_units: u64,
    /// Retry backoff schedule for transient collection faults.
    pub backoff: BackoffPolicy,
    /// Circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Optional deterministic slow-model storm: requests with
    /// `start <= id < end` always hit the slow-model penalty, on top of
    /// the fault plan's random `slow_model` rate. Used by benches and
    /// chaos tests to drive the breaker through a full
    /// open → half-open → closed cycle.
    pub slow_storm: Option<(u64, u64)>,
    /// Logical wave capacity — how many queued jobs dispatch per wave
    /// of the virtual-time scheduler. `None` (the default) follows
    /// [`bf_par::threads`], coupling service capacity to the physical
    /// pool; pinning it makes every outcome, tick, and exported trace
    /// timeline a pure function of `seed` alone, byte-identical at any
    /// `BF_THREADS` (physical threads then only change wall time).
    pub wave_cap: Option<usize>,
    /// Anytime-ladder tuning (off by default; [`ServeConfig::from_env`]
    /// enables it).
    pub tiers: TierConfig,
    /// Micro-batch capacity for the predict stage: up to this many
    /// same-wave requests share one stacked forward pass, each charged
    /// its `ceil(inference / batch_size)` share of the model cost (the
    /// collection share of a rung climb is per-request and never
    /// divided). `1` (the default) reproduces the per-request predict
    /// path bit-identically; [`ServeConfig::from_env`] defaults to 8.
    /// Fault-flagged requests (injected slow model, slow storm, injected
    /// panic) are never batched — they take the individual path so a
    /// fault stays contained to its own request.
    pub batch: usize,
    /// Supervised shard outage schedule: sorted, non-overlapping
    /// half-open `[crash, restart)` windows in virtual ticks. When the
    /// clock reaches a window the shard crashes at its start tick —
    /// every queued request resolves [`Outcome::ShardDown`], arrivals
    /// inside the window bounce to `ShardDown` immediately, and at the
    /// window end the supervisor has restarted the shard with a fresh
    /// (closed) breaker. Waves dispatched before the crash complete
    /// normally: the wave is the crash atom. Normally derived by
    /// [`fleet::Fleet`] from a [`bf_fault::ShardKillPlan`] and the
    /// configured restart backoff; empty (the default) means the shard
    /// never crashes.
    pub down_windows: Vec<(u64, u64)>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_cap: 32,
            deadline_units: 1_000,
            collect_attempt_units: 100,
            primary_units: 50,
            fallback_units: 5,
            slow_penalty_units: 10_000,
            backoff: BackoffPolicy::default(),
            breaker: BreakerConfig::default(),
            slow_storm: None,
            wave_cap: None,
            tiers: TierConfig::default(),
            batch: 1,
            down_windows: Vec::new(),
        }
    }
}

impl ServeConfig {
    /// Defaults overridden by the `BF_SERVE_*` environment knobs:
    /// `BF_SERVE_QUEUE` (queue capacity), `BF_SERVE_DEADLINE`
    /// (per-request budget), `BF_SERVE_BREAKER_OPEN` (consecutive
    /// primary failures before opening), `BF_SERVE_BREAKER_COOLDOWN`
    /// (open-state units before probing), `BF_SERVE_BREAKER_PROBES`
    /// (half-open successes before closing), `BF_SERVE_WAVE_CAP`
    /// (logical jobs per scheduler wave; 0 or unset follows the
    /// physical `BF_THREADS` pool), and `BF_SERVE_BATCH` (predict-stage
    /// micro-batch capacity, **8** by default here versus 1 in the plain
    /// [`Default`]). The anytime ladder is **on** by
    /// default here and tuned by `BF_SERVE_TIER_LADDER` (0 disables),
    /// `BF_SERVE_TIER_CONF` (early-exit confidence threshold in
    /// percent), and `BF_SERVE_TIER_DISTILLED_UNITS` (distilled-tier
    /// inference cost). Malformed values warn once
    /// through `bf_obs` and fall back to the default; zeros are clamped
    /// to 1 where a zero would deadlock the service.
    pub fn from_env() -> Self {
        let d = ServeConfig::default();
        ServeConfig {
            tiers: TierConfig {
                ladder: bf_obs::env::parse_or(
                    "BF_SERVE_TIER_LADDER",
                    1u8,
                    "1 to enable the anytime ladder, 0 to disable",
                ) != 0,
                confidence_threshold: (bf_obs::env::parse_or(
                    "BF_SERVE_TIER_CONF",
                    (d.tiers.confidence_threshold * 100.0).round() as u64,
                    "an early-exit confidence threshold in percent (0-100)",
                )
                .min(100) as f64)
                    / 100.0,
                distilled_units: bf_obs::env::parse_or(
                    "BF_SERVE_TIER_DISTILLED_UNITS",
                    d.tiers.distilled_units,
                    "the distilled-tier inference cost in work units",
                )
                .max(1),
            },
            batch: bf_obs::env::parse_or(
                "BF_SERVE_BATCH",
                8usize,
                "a predict-stage micro-batch capacity",
            )
            .max(1),
            wave_cap: match bf_obs::env::parse_or(
                "BF_SERVE_WAVE_CAP",
                0usize,
                "a logical wave capacity (0 follows BF_THREADS)",
            ) {
                0 => None,
                n => Some(n),
            },
            queue_cap: bf_obs::env::parse_or(
                "BF_SERVE_QUEUE",
                d.queue_cap,
                "a positive queue capacity",
            )
            .max(1),
            deadline_units: bf_obs::env::parse_or(
                "BF_SERVE_DEADLINE",
                d.deadline_units,
                "a per-request budget in work units",
            ),
            breaker: BreakerConfig {
                open_after: bf_obs::env::parse_or(
                    "BF_SERVE_BREAKER_OPEN",
                    d.breaker.open_after,
                    "consecutive failures before the breaker opens",
                )
                .max(1),
                cooldown_units: bf_obs::env::parse_or(
                    "BF_SERVE_BREAKER_COOLDOWN",
                    d.breaker.cooldown_units,
                    "open-state cooldown in work units",
                ),
                close_after: bf_obs::env::parse_or(
                    "BF_SERVE_BREAKER_PROBES",
                    d.breaker.close_after,
                    "half-open probe successes before closing",
                )
                .max(1),
            },
            ..d
        }
    }

    /// Whether `id` falls inside the configured slow-model storm.
    pub fn in_slow_storm(&self, id: u64) -> bool {
        self.slow_storm.is_some_and(|(start, end)| id >= start && id < end)
    }
}

/// Deterministic open-loop arrival stream: `n` requests over `n_sites`
/// sites with exponentially distributed inter-arrival gaps of mean
/// `mean_gap_units` (0 means an instantaneous burst). Arrivals are
/// non-decreasing and the whole stream is a pure function of `seed`.
pub fn open_loop_arrivals(
    n: usize,
    n_sites: usize,
    mean_gap_units: f64,
    seed: u64,
) -> Vec<ServeRequest> {
    assert!(n_sites > 0, "need at least one site");
    let mut rng = SeedRng::new(combine_seeds(seed, 0x5E17E));
    let mut tick = 0u64;
    (0..n as u64)
        .map(|i| {
            if mean_gap_units > 0.0 {
                tick += rng.exponential(mean_gap_units).round() as u64;
            }
            ServeRequest {
                id: i,
                site: rng.int_range(0, n_sites as u64) as usize,
                seed: combine_seeds(seed, i),
                arrival: tick,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Serializes tests that mutate process environment.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn arrivals_are_deterministic_monotone_and_in_range() {
        let a = open_loop_arrivals(200, 7, 40.0, 99);
        let b = open_loop_arrivals(200, 7, 40.0, 99);
        assert_eq!(a, b, "stream must be a pure function of the seed");
        assert_eq!(a.len(), 200);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(a.iter().all(|r| r.site < 7));
        let c = open_loop_arrivals(200, 7, 40.0, 100);
        assert_ne!(a, c, "different seeds give different streams");
    }

    #[test]
    fn burst_arrivals_share_tick_zero() {
        let a = open_loop_arrivals(10, 3, 0.0, 1);
        assert!(a.iter().all(|r| r.arrival == 0));
    }

    #[test]
    fn config_from_env_reads_knobs_and_survives_garbage() {
        let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        bf_obs::env::reset_warnings();
        std::env::set_var("BF_SERVE_QUEUE", "8");
        std::env::set_var("BF_SERVE_DEADLINE", "500");
        std::env::set_var("BF_SERVE_BREAKER_OPEN", "not-a-number");
        std::env::set_var("BF_SERVE_BREAKER_COOLDOWN", "750");
        std::env::set_var("BF_SERVE_BREAKER_PROBES", "2");
        std::env::set_var("BF_SERVE_TIER_LADDER", "0");
        std::env::set_var("BF_SERVE_TIER_CONF", "70");
        std::env::set_var("BF_SERVE_TIER_DISTILLED_UNITS", "9");
        std::env::set_var("BF_SERVE_BATCH", "4");
        let cfg = ServeConfig::from_env();
        std::env::remove_var("BF_SERVE_QUEUE");
        std::env::remove_var("BF_SERVE_DEADLINE");
        std::env::remove_var("BF_SERVE_BREAKER_OPEN");
        std::env::remove_var("BF_SERVE_BREAKER_COOLDOWN");
        std::env::remove_var("BF_SERVE_BREAKER_PROBES");
        std::env::remove_var("BF_SERVE_TIER_LADDER");
        std::env::remove_var("BF_SERVE_TIER_CONF");
        std::env::remove_var("BF_SERVE_TIER_DISTILLED_UNITS");
        std::env::remove_var("BF_SERVE_BATCH");
        bf_obs::env::reset_warnings();
        assert_eq!(cfg.batch, 4);
        assert_eq!(cfg.queue_cap, 8);
        assert_eq!(cfg.deadline_units, 500);
        let d = ServeConfig::default();
        assert_eq!(cfg.breaker.open_after, d.breaker.open_after, "garbage falls back");
        assert_eq!(cfg.breaker.cooldown_units, 750);
        assert_eq!(cfg.breaker.close_after, 2);
        assert_eq!(cfg.collect_attempt_units, d.collect_attempt_units);
        assert!(!cfg.tiers.ladder, "BF_SERVE_TIER_LADDER=0 disables the ladder");
        assert!((cfg.tiers.confidence_threshold - 0.70).abs() < 1e-9);
        assert_eq!(cfg.tiers.distilled_units, 9);
    }

    #[test]
    fn env_config_defaults_enable_the_ladder() {
        let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        for k in [
            "BF_SERVE_TIER_LADDER",
            "BF_SERVE_TIER_CONF",
            "BF_SERVE_TIER_DISTILLED_UNITS",
            "BF_SERVE_BATCH",
        ] {
            std::env::remove_var(k);
        }
        let cfg = ServeConfig::from_env();
        assert!(cfg.tiers.ladder, "from_env turns the ladder on by default");
        assert!(
            (cfg.tiers.confidence_threshold - TierConfig::default().confidence_threshold).abs()
                < 1e-9
        );
        assert_eq!(cfg.batch, 8, "from_env turns micro-batching on by default");
        assert!(!ServeConfig::default().tiers.ladder, "plain default stays legacy");
        assert_eq!(ServeConfig::default().batch, 1, "plain default stays per-request");
    }

    #[test]
    fn zero_knobs_are_clamped_where_they_would_deadlock() {
        let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        std::env::set_var("BF_SERVE_QUEUE", "0");
        std::env::set_var("BF_SERVE_BREAKER_OPEN", "0");
        std::env::set_var("BF_SERVE_BATCH", "0");
        let cfg = ServeConfig::from_env();
        std::env::remove_var("BF_SERVE_QUEUE");
        std::env::remove_var("BF_SERVE_BREAKER_OPEN");
        std::env::remove_var("BF_SERVE_BATCH");
        assert_eq!(cfg.queue_cap, 1);
        assert_eq!(cfg.breaker.open_after, 1);
        assert_eq!(cfg.batch, 1);
    }

    #[test]
    fn slow_storm_window_is_half_open() {
        let cfg = ServeConfig { slow_storm: Some((10, 20)), ..ServeConfig::default() };
        assert!(!cfg.in_slow_storm(9));
        assert!(cfg.in_slow_storm(10));
        assert!(cfg.in_slow_storm(19));
        assert!(!cfg.in_slow_storm(20));
        assert!(!ServeConfig::default().in_slow_storm(10));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Outcome::Shed.label(), "shed");
        assert_eq!(Outcome::Timeout { stage: Stage::Queue }.label(), "timeout");
        assert_eq!(Stage::Collect.label(), "collect");
        assert_eq!(Stage::Predict.label(), "predict");
        assert_eq!(Outcome::Failed { reason: String::new() }.label(), "failed");
        assert_eq!(Outcome::ShardDown.label(), "shard_down");
        assert_eq!(Tier::Full.label(), "full");
        assert_eq!(Tier::EarlyExit(25).label(), "early_exit_25");
        assert_eq!(Tier::EarlyExit(50).label(), "early_exit_50");
        assert_eq!(Tier::EarlyExit(75).label(), "early_exit_75");
        assert_eq!(Tier::EarlyExit(33).label(), "early_exit");
        assert_eq!(Tier::Distilled.label(), "distilled");
        assert_eq!(Tier::Centroid.label(), "centroid");
    }

    #[test]
    fn latency_is_queue_plus_work() {
        let r = Resolved {
            id: 1,
            site: 0,
            outcome: Outcome::Shed,
            arrival: 10,
            started: 25,
            completed: 40,
            queue_units: 15,
            work_units: 15,
        };
        assert_eq!(r.latency_units(), 30);
    }
}
