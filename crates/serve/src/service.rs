//! The wave-based virtual-time scheduler.
//!
//! [`Service::run`] drains an arrival stream through four stages:
//!
//! 1. **Admission** — arrivals at or before the current tick enter the
//!    bounded queue; overflow is shed immediately.
//! 2. **Dispatch** — up to `wave_cap × batch` queued jobs form a wave
//!    (`wave_cap` follows [`bf_par::threads`] unless pinned); jobs whose
//!    deadline already elapsed resolve as queue timeouts.
//! 3. **Collect** — the wave's trace collections run in parallel
//!    ([`bf_par::par_map_indexed`]), each under a [`CancelToken`]
//!    bounded by its remaining deadline budget; transient faults retry
//!    with seeded exponential backoff charged to the same budget.
//! 4. **Predict** — applied *sequentially* in virtual-completion order
//!    `(collect units, wave position)`, so circuit-breaker bookkeeping
//!    (consecutive failures, cooldown expiry) is independent of OS
//!    scheduling. With `batch > 1`, consecutive healthy jobs in that
//!    order are grouped into micro-batches of up to `batch` requests
//!    that share one stacked forward pass per rung, each member charged
//!    `ceil(inference / batch_size)` of the model cost; fault-flagged
//!    jobs flush the pending group and take the per-request path. The
//!    clock then advances by the wave's longest job.
//!
//! Parallelism changes wall time only: for a fixed `(stream, config,
//! BF_THREADS)` — the batch capacity included — the outcomes, tick
//! accounting, and breaker transitions are bit-identical from run to
//! run. `batch = 1` reproduces the pre-batching per-request schedule
//! exactly; batch sizes only differ through the documented shared-cost
//! rule (and the breaker bookkeeping order that cheaper climbs imply).

use crate::breaker::{BreakerState, CircuitBreaker};
use crate::{Outcome, Resolved, ServeConfig, ServeRequest, Stage, Tier};
use bf_core::collect::CollectionConfig;
use bf_fault::CancelToken;
use bf_ml::{metrics::argmax, AnytimeLadder, Calibration, CentroidClassifier, Classifier};
use bf_obs::trace;
use bf_obs::TraceCtx;
use bf_victim::WebsiteProfile;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The root trace context for one request, when tracing keeps it:
/// derived purely from `(seed, id)`, so every stage of the lifecycle —
/// on any thread — recomputes the same tree without passing IDs around.
fn trace_root(req: &ServeRequest) -> Option<TraceCtx> {
    if trace::enabled() && trace::sample_keep(req.id) {
        Some(TraceCtx::root(req.seed, req.id))
    } else {
        None
    }
}

/// The context of the request's top-level `request` span (minted when
/// the request resolves); collect/predict spans parent under it.
fn trace_request_ctx(req: &ServeRequest) -> Option<TraceCtx> {
    trace_root(req).map(|root| trace::first_child_ctx(root, "request"))
}

fn outcome_label(outcome: &Outcome) -> &'static str {
    match outcome {
        Outcome::Prediction { .. } => "prediction",
        Outcome::Degraded { .. } => "degraded",
        Outcome::Timeout { stage: Stage::Queue } => "timeout_queue",
        Outcome::Timeout { stage: Stage::Collect } => "timeout_collect",
        Outcome::Timeout { stage: Stage::Predict } => "timeout_predict",
        Outcome::Shed => "shed",
        Outcome::Failed { .. } => "failed",
        Outcome::ShardDown => "shard_down",
    }
}

/// Whether `tick` falls inside any of the sorted, non-overlapping
/// half-open `[crash, restart)` down windows.
fn down_at(windows: &[(u64, u64)], tick: u64) -> bool {
    windows
        .binary_search_by(|&(start, end)| {
            if tick < start {
                std::cmp::Ordering::Greater
            } else if tick >= end {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        })
        .is_ok()
}

/// Readiness and terminal-outcome accounting, exposed for health
/// checks and end-of-run invariants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// `true` unless the breaker is open (degraded-only service).
    pub ready: bool,
    /// Current breaker state.
    pub breaker: BreakerState,
    /// Configured queue capacity.
    pub queue_cap: usize,
    /// Requests ever submitted to [`Service::run`].
    pub submitted: u64,
    /// Primary-path predictions returned.
    pub predictions: u64,
    /// Degraded (centroid) predictions returned.
    pub degraded: u64,
    /// Explicit deadline timeouts.
    pub timeouts: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Explicit failures (quarantine, contained panics).
    pub failed: u64,
    /// Requests resolved [`Outcome::ShardDown`] by a shard crash.
    pub shard_down: u64,
    /// Supervised shard restarts performed so far.
    pub restarts: u64,
    /// Worker panics contained by the service.
    pub worker_panics: u64,
}

impl HealthSnapshot {
    /// Sum of the six terminal-outcome counts. The service guarantees
    /// this equals [`HealthSnapshot::submitted`] after every run.
    pub fn resolved(&self) -> u64 {
        self.predictions + self.degraded + self.timeouts + self.shed + self.failed
            + self.shard_down
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Tallies {
    submitted: u64,
    predictions: u64,
    degraded: u64,
    timeouts: u64,
    shed: u64,
    failed: u64,
    shard_down: u64,
    restarts: u64,
    /// Breaker transitions accumulated from breakers discarded by
    /// supervised restarts; [`Service::breaker_flaps`] adds the live
    /// breaker's count on top.
    flaps: u64,
    worker_panics: u64,
}

/// A job dispatched into a wave: request index plus the deadline budget
/// remaining at dispatch time.
struct WaveJob {
    idx: usize,
    budget: u64,
}

/// What the parallel collect stage produced for one wave job.
enum Collected {
    Features(Vec<f32>),
    Quarantined,
    Deadline,
    Panicked(String),
}

struct CollectOut {
    pos: usize,
    idx: usize,
    budget: u64,
    /// Units charged by the collect stage, clamped to the budget.
    collect_units: u64,
    token: CancelToken,
    res: Collected,
}

/// Why a pending micro-batch was handed to the predict stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushReason {
    /// The batch reached `ServeConfig::batch` capacity.
    Full,
    /// A fault-flagged or failed-collect job interrupted the run of
    /// batchable completions; the batch flushes so the interrupting job
    /// keeps its per-request path *in completion order*.
    TierMismatch,
    /// The wave ended with a partial batch pending.
    Deadline,
}

impl FlushReason {
    fn label(self) -> &'static str {
        match self {
            FlushReason::Full => "full",
            FlushReason::TierMismatch => "tier_mismatch",
            FlushReason::Deadline => "deadline",
        }
    }

    fn counter(self) -> &'static str {
        match self {
            FlushReason::Full => "serve.batch.flushed.full",
            FlushReason::TierMismatch => "serve.batch.flushed.tier_mismatch",
            FlushReason::Deadline => "serve.batch.flushed.deadline",
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_owned())
}

/// The anytime ladder's models, attached via [`Service::with_tiers`]:
/// per-rung calibrations for the primary, and (optionally) a distilled
/// student with its own calibration.
pub struct TierModels {
    /// Per-prefix-length calibrations for the primary classifier.
    pub ladder: AnytimeLadder,
    /// The distilled small student, when one was trained.
    pub distilled: Option<Box<dyn Classifier>>,
    /// Confidence calibration for the distilled student.
    pub distilled_calibration: Calibration,
}

impl Default for TierModels {
    fn default() -> Self {
        TierModels {
            ladder: AnytimeLadder::identity(),
            distilled: None,
            distilled_calibration: Calibration::identity(),
        }
    }
}

/// Per-tier cost estimates in virtual units, published as
/// `serve.tier.cost.*` gauges. Each rung entry is the *incremental*
/// cost of climbing to that rung from the one below (rung 0's
/// collection share is charged by the collect stage). Estimates start
/// at the config formulas and track the running max of successfully
/// charged steps, so the controller's admission check reflects what the
/// tiers actually cost — updated only in the sequential predict stage,
/// keeping them schedule-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TierCosts {
    steps: [u64; bf_ml::PREFIX_PERCENTS.len()],
    distilled: u64,
    centroid: u64,
}

impl TierCosts {
    fn step_gauge(idx: usize) -> &'static str {
        match bf_ml::PREFIX_PERCENTS[idx] {
            25 => "serve.tier.cost.early_exit_25",
            50 => "serve.tier.cost.early_exit_50",
            75 => "serve.tier.cost.early_exit_75",
            _ => "serve.tier.cost.full",
        }
    }

    fn from_config(cfg: &ServeConfig) -> Self {
        let cc4 = (cfg.collect_attempt_units / 4).max(1);
        let mut steps = [0u64; bf_ml::PREFIX_PERCENTS.len()];
        for (i, &level) in bf_ml::PREFIX_PERCENTS.iter().enumerate() {
            let predict = ((cfg.primary_units * level as u64) / 100).max(1);
            steps[i] = if i == 0 { predict } else { cc4 + predict };
        }
        let costs = TierCosts {
            steps,
            distilled: cfg.tiers.distilled_units.max(1),
            centroid: cfg.fallback_units.max(1),
        };
        for (i, &s) in costs.steps.iter().enumerate() {
            bf_obs::gauge(Self::step_gauge(i)).set(s as f64);
        }
        bf_obs::gauge("serve.tier.cost.distilled").set(costs.distilled as f64);
        bf_obs::gauge("serve.tier.cost.centroid").set(costs.centroid as f64);
        costs
    }

    /// Record the actual units a successful rung step charged.
    fn observe_step(&mut self, idx: usize, units: u64) {
        if units > self.steps[idx] {
            self.steps[idx] = units;
            bf_obs::gauge(Self::step_gauge(idx)).set(units as f64);
        }
    }

    fn observe_distilled(&mut self, units: u64) {
        if units > self.distilled {
            self.distilled = units;
            bf_obs::gauge("serve.tier.cost.distilled").set(units as f64);
        }
    }
}

/// The online fingerprinting service. Owns a collection pipeline, a
/// primary classifier, a fitted centroid fallback, and a circuit
/// breaker; see the module docs for scheduling semantics.
pub struct Service {
    collection: CollectionConfig,
    sites: Vec<WebsiteProfile>,
    primary: Box<dyn Classifier>,
    fallback: CentroidClassifier,
    tiers: TierModels,
    cfg: ServeConfig,
    breaker: CircuitBreaker,
    tier_costs: TierCosts,
    tallies: Tallies,
    /// Fleet shard index, when this service runs as one shard of a
    /// [`crate::fleet::Fleet`]: stamped onto every request span so the
    /// Perfetto export can group timelines by shard.
    shard_label: Option<usize>,
}

impl Service {
    /// Assemble a service. `collection.faults` is the serving-time fault
    /// plan (transient retries, slow-model and worker-panic injection).
    ///
    /// # Panics
    ///
    /// Panics when `sites` is empty or `fallback` is not fitted — an
    /// unfitted fallback would turn graceful degradation into a panic
    /// at the worst possible moment.
    pub fn new(
        collection: CollectionConfig,
        sites: Vec<WebsiteProfile>,
        primary: Box<dyn Classifier>,
        fallback: CentroidClassifier,
        cfg: ServeConfig,
    ) -> Self {
        assert!(!sites.is_empty(), "service needs at least one site");
        assert!(
            !fallback.centroids().is_empty(),
            "fallback classifier must be fitted before serving"
        );
        let breaker = CircuitBreaker::new(cfg.breaker);
        let tier_costs = TierCosts::from_config(&cfg);
        Service {
            collection,
            sites,
            primary,
            fallback,
            tiers: TierModels::default(),
            cfg,
            breaker,
            tier_costs,
            tallies: Tallies::default(),
            shard_label: None,
        }
    }

    /// Attach anytime-ladder models (per-rung calibrations and an
    /// optional distilled student). Without this, a ladder-enabled
    /// config still works — calibrations default to identity and the
    /// distilled tier is skipped.
    pub fn with_tiers(mut self, tiers: TierModels) -> Self {
        self.tiers = tiers;
        self
    }

    /// Label this service as fleet shard `shard`: request spans gain a
    /// `shard` argument and the Perfetto export groups them under a
    /// per-shard process lane.
    pub fn with_shard_label(mut self, shard: usize) -> Self {
        self.shard_label = Some(shard);
        self
    }

    /// The service's config.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Swap the service's tuning without refitting any model: breaker
    /// state, tallies, and tier-cost estimates restart from the new
    /// config. This is what lets a deadline sweep reuse one (expensive)
    /// fitted primary across dozens of configurations.
    pub fn reconfigure(&mut self, cfg: ServeConfig) {
        self.cfg = cfg;
        self.reset();
    }

    /// The breaker's transition history (see [`CircuitBreaker`]).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Total breaker state transitions over this service's lifetime —
    /// the live breaker's history plus transitions of breakers
    /// discarded by supervised restarts. This is the "breaker flap"
    /// count the fleet SLO report aggregates.
    pub fn breaker_flaps(&self) -> u64 {
        self.tallies.flaps + self.breaker.transitions().len() as u64
    }

    /// Clear breaker state, transition history, and outcome tallies:
    /// a fresh service with the same fitted models and config. Lets a
    /// load generator replay the same stream for determinism checks
    /// without refitting the (expensive) primary.
    pub fn reset(&mut self) {
        self.breaker = CircuitBreaker::new(self.cfg.breaker);
        self.tier_costs = TierCosts::from_config(&self.cfg);
        self.tallies = Tallies::default();
    }

    /// Readiness + outcome accounting across all runs so far.
    pub fn health(&self) -> HealthSnapshot {
        let t = &self.tallies;
        HealthSnapshot {
            ready: self.breaker.state() != BreakerState::Open,
            breaker: self.breaker.state(),
            queue_cap: self.cfg.queue_cap,
            submitted: t.submitted,
            predictions: t.predictions,
            degraded: t.degraded,
            timeouts: t.timeouts,
            shed: t.shed,
            failed: t.failed,
            shard_down: t.shard_down,
            restarts: t.restarts,
            worker_panics: t.worker_panics,
        }
    }

    /// Record breaker history and outcome tallies into a run manifest.
    pub fn record_in_manifest(&self, mb: &mut bf_obs::ManifestBuilder) {
        let t = &self.tallies;
        mb.config("serve.breaker_state", self.breaker.state().label());
        mb.config("serve.breaker_transitions", self.breaker.transitions_summary());
        mb.config(
            "serve.outcomes",
            format!(
                "submitted={} predictions={} degraded={} timeouts={} shed={} failed={} \
                 shard_down={} restarts={} worker_panics={}",
                t.submitted, t.predictions, t.degraded, t.timeouts, t.shed, t.failed,
                t.shard_down, t.restarts, t.worker_panics
            ),
        );
    }

    /// Drain `requests` (sorted internally by `(arrival, id)`) to
    /// terminal outcomes. The returned records are in input order and
    /// there is exactly one per request — see the crate docs for the
    /// exhaustiveness guarantee. The virtual clock starts at 0 for each
    /// call; breaker state and tallies persist across calls.
    pub fn run(&mut self, requests: &[ServeRequest]) -> Vec<Resolved> {
        let n = requests.len();
        self.tallies.submitted += n as u64;
        bf_obs::counter("serve.submitted").add(n as u64);
        let _span = bf_obs::span!("serve.run");

        let mut order: Vec<usize> = (0..n).collect(); // alloc-ok: per-run staging
        order.sort_by_key(|&i| (requests[i].arrival, requests[i].id, i));
        let mut resolved: Vec<Option<Resolved>> = (0..n).map(|_| None).collect(); // alloc-ok: per-run staging
        let mut queue: VecDeque<usize> = VecDeque::new();
        // A wave carries one micro-batch worth of jobs per logical
        // worker: the collect stage fans out across the pool, the
        // predict stage regroups completions into batches.
        let dispatch_cap = self.cfg.wave_cap.unwrap_or_else(bf_par::threads).max(1)
            * self.cfg.batch.max(1);
        let mut now = 0u64;
        let mut next_arrival = 0usize;
        // Supervised outage schedule, local to this run: the virtual
        // clock restarts at 0 per call, so windows are run-relative.
        let windows = self.cfg.down_windows.clone(); // alloc-ok: per-run staging
        let mut next_window = 0usize;

        loop {
            // Idle: jump the clock to the next arrival, or finish.
            if queue.is_empty() {
                match order.get(next_arrival) {
                    Some(&i) => now = now.max(requests[i].arrival),
                    None => break,
                }
            }

            // Supervised crash: when the clock reaches a down window,
            // the shard died at the window's start tick. Everything
            // still queued resolves ShardDown — that is the in-flight
            // set; waves dispatched before the crash already completed
            // (the wave is the crash atom). At the window end the
            // supervisor has restarted the shard: the crashed breaker's
            // transition history rolls into the flap tally and a fresh,
            // closed breaker takes over. Bookkeeping runs exactly once
            // per window, even when an idle clock jump skips it whole.
            while next_window < windows.len() && windows[next_window].0 <= now {
                let (_, end) = windows[next_window];
                next_window += 1;
                while let Some(idx) = queue.pop_front() {
                    let req = requests[idx];
                    resolved[idx] = Some(self.resolve_at(&req, Outcome::ShardDown, now, 0));
                }
                self.tallies.flaps += self.breaker.transitions().len() as u64;
                self.breaker = CircuitBreaker::new(self.cfg.breaker);
                self.tallies.restarts += 1;
                bf_obs::counter("serve.restarts").inc();
                now = now.max(end);
            }

            // Admission: everything that has arrived by `now`. Arrivals
            // that landed inside a down window bounce straight to
            // ShardDown — the shard was not accepting work when they
            // arrived.
            while next_arrival < n && requests[order[next_arrival]].arrival <= now {
                let idx = order[next_arrival];
                next_arrival += 1;
                let req = requests[idx];
                if down_at(&windows, req.arrival) {
                    resolved[idx] =
                        Some(self.resolve_at(&req, Outcome::ShardDown, req.arrival, 0));
                } else if queue.len() >= self.cfg.queue_cap {
                    bf_obs::counter("serve.shed").inc();
                    self.tallies.shed += 1;
                    resolved[idx] = Some(self.resolve_at(&req, Outcome::Shed, req.arrival, 0));
                } else {
                    queue.push_back(idx);
                }
            }
            bf_obs::gauge("serve.queue_depth").set(queue.len() as f64);
            if queue.is_empty() {
                continue;
            }

            // Dispatch a wave, expiring deadlines that lapsed in queue.
            let mut wave: Vec<WaveJob> = Vec::new();
            while wave.len() < dispatch_cap {
                let Some(idx) = queue.pop_front() else { break };
                let req = requests[idx];
                let deadline = req.arrival.saturating_add(self.cfg.deadline_units);
                if now >= deadline {
                    resolved[idx] =
                        Some(self.resolve_at(&req, Outcome::Timeout { stage: Stage::Queue }, now, 0));
                } else {
                    wave.push(WaveJob { idx, budget: deadline - now });
                }
            }
            bf_obs::gauge("serve.queue_depth").set(queue.len() as f64);
            if wave.is_empty() {
                continue;
            }

            // Parallel collect stage. The closure only borrows Sync
            // pieces of the service (collection config, catalog, knobs);
            // panics are contained per job.
            let collection = &self.collection;
            let sites = &self.sites;
            let cfg = &self.cfg;
            // With the ladder on, a collect attempt is only charged for
            // the first rung's prefix share of the trace; climbing a
            // rung later charges another quarter (see the ladder's
            // predict stage). The wall-time collection is unchanged —
            // virtual accounting is what the deadline sees.
            let attempt_units = if cfg.tiers.ladder {
                (cfg.collect_attempt_units / 4).max(1)
            } else {
                cfg.collect_attempt_units
            };
            let dispatch_tick = now;
            let mut outs: Vec<CollectOut> = bf_par::par_map_indexed(&wave, |pos, job| {
                let req = &requests[job.idx];
                // Reconstruct the request's trace tree on whichever
                // worker claimed the job: the collect span parents under
                // the (not-yet-recorded) `request` span, and the virtual
                // clock is offset to the wave's dispatch tick.
                let _trace = trace::adopt(trace_request_ctx(req), dispatch_tick);
                let mut collect_span = trace::span_at("collect", dispatch_tick);
                collect_span.arg_u64("budget", job.budget);
                let token = CancelToken::new(job.budget);
                let res = if req.site >= sites.len() {
                    Collected::Panicked(format!(
                        "unknown site index {} (catalog has {})",
                        req.site,
                        sites.len()
                    ))
                } else {
                    match catch_unwind(AssertUnwindSafe(|| {
                        collection.collect_trace_deadline(
                            &sites[req.site],
                            req.seed,
                            &token,
                            &cfg.backoff,
                            attempt_units,
                        )
                    })) {
                        Ok(Ok(Some(trace))) => Collected::Features(collection.featurize(&trace)),
                        Ok(Ok(None)) => Collected::Quarantined,
                        Ok(Err(_)) => Collected::Deadline,
                        Err(payload) => Collected::Panicked(panic_message(payload)),
                    }
                };
                let collect_units = token.used().min(job.budget);
                collect_span.arg_str(
                    "result",
                    match &res {
                        Collected::Features(_) => "features",
                        Collected::Quarantined => "quarantined",
                        Collected::Deadline => "deadline",
                        Collected::Panicked(_) => "panicked",
                    },
                );
                collect_span.finish(dispatch_tick + collect_units);
                CollectOut { pos, idx: job.idx, budget: job.budget, collect_units, token, res }
            });

            // Sequential predict stage, in virtual-completion order so
            // breaker bookkeeping is schedule-independent. With
            // batching enabled, consecutive healthy completions in that
            // order share stacked forward passes; `batch = 1` runs the
            // per-request path bit-identically to the pre-batching
            // scheduler.
            outs.sort_by_key(|o| (o.collect_units, o.pos));
            let wave_advance = if self.cfg.batch > 1 {
                self.predict_wave_batched(requests, outs, now, &mut resolved)
            } else {
                let mut adv = 1u64;
                for out in outs {
                    adv = adv.max(self.predict_out(requests, out, now, &mut resolved));
                }
                adv
            };
            now += wave_advance;
        }
        bf_obs::gauge("serve.queue_depth").set(0.0);

        let done: Vec<Resolved> = resolved
            .into_iter()
            .map(|r| r.expect("scheduler resolved every request"))
            .collect(); // alloc-ok: per-run staging (result assembly)
        debug_assert_eq!(done.len(), n);
        done
    }

    /// Resolve one collect completion through the per-request predict
    /// path — the only path when `batch` is 1, and the fault-isolation
    /// path under batching. Returns the work units charged (they cap
    /// the wave's clock advance).
    fn predict_out(
        &mut self,
        requests: &[ServeRequest],
        out: CollectOut,
        now: u64,
        resolved: &mut [Option<Resolved>],
    ) -> u64 {
        let req = requests[out.idx];
        let tick = now + out.collect_units;
        let outcome = match out.res {
            Collected::Deadline => Outcome::Timeout { stage: Stage::Collect },
            Collected::Quarantined => {
                bf_obs::counter("serve.quarantined").inc();
                Outcome::Failed {
                    reason: "collection quarantined: repair/retry budget exhausted".to_owned(),
                }
            }
            Collected::Panicked(msg) => {
                self.tallies.worker_panics += 1;
                bf_obs::counter("serve.worker_panics").inc();
                bf_obs::error!("contained collect panic for request {}: {msg}", req.id);
                Outcome::Failed { reason: format!("collection panicked: {msg}") }
            }
            Collected::Features(features) => {
                let o = if self.cfg.tiers.ladder {
                    self.predict_one_ladder(&req, &features, &out.token, tick)
                } else {
                    self.predict_one(&req, std::slice::from_ref(&features), &out.token, tick)
                };
                let _trace = trace::adopt(trace_request_ctx(&req), now);
                let mut predict_span = trace::span_at("predict", tick);
                predict_span.arg_str("path", Self::predict_path_label(&o));
                if let Outcome::Prediction { tier, confidence, .. }
                | Outcome::Degraded { tier, confidence, .. } = &o
                {
                    predict_span.arg_str("tier", tier.label());
                    predict_span.arg_f64("confidence", *confidence as f64);
                }
                predict_span.finish(now + out.token.used().min(out.budget));
                o
            }
        };
        let work = out.token.used().min(out.budget);
        resolved[out.idx] = Some(self.resolve_at(&req, outcome, now, work));
        work
    }

    /// The `path` span argument for a predict outcome.
    fn predict_path_label(o: &Outcome) -> &'static str {
        match o {
            Outcome::Prediction { .. } => "primary",
            Outcome::Degraded { tier: Tier::Distilled, .. } => "distilled",
            Outcome::Degraded { tier: Tier::EarlyExit(_), .. } => "primary",
            Outcome::Degraded { .. } => "fallback",
            _ => "none",
        }
    }

    /// Whether the fault plan (or the configured slow storm) targets
    /// this request at the predict stage. Flagged requests never join a
    /// micro-batch: an injected slow model or panic must charge and
    /// fail its own request only, so fault containment is identical at
    /// every batch size. A pure function of `(id, config)` — batch
    /// membership is deterministic.
    fn fault_flagged(&self, id: u64) -> bool {
        let plan = &self.collection.faults;
        plan.slow_model_for(id) || plan.worker_panic_for(id) || self.cfg.in_slow_storm(id)
    }

    /// The batching predict dispatcher for one wave: walk completions in
    /// virtual-completion order, accumulating consecutive healthy
    /// feature-bearing jobs into a pending micro-batch. The batch
    /// flushes when it reaches `batch` capacity (`full`), when a
    /// fault-flagged or failed-collect job interrupts the run
    /// (`tier_mismatch` — the interrupting job then takes the
    /// per-request path in order), or when the wave ends (`deadline`).
    /// Returns the wave's clock advance.
    fn predict_wave_batched(
        &mut self,
        requests: &[ServeRequest],
        outs: Vec<CollectOut>,
        now: u64,
        resolved: &mut [Option<Resolved>],
    ) -> u64 {
        let batch = self.cfg.batch.max(1);
        let mut advance = 1u64;
        let mut pending: Vec<CollectOut> = Vec::with_capacity(batch); // alloc-ok: per-wave staging
        for out in outs {
            let eligible = matches!(out.res, Collected::Features(_))
                && !self.fault_flagged(requests[out.idx].id);
            if eligible {
                pending.push(out);
                if pending.len() == batch {
                    advance = advance.max(self.flush_batch(
                        requests,
                        std::mem::take(&mut pending),
                        now,
                        FlushReason::Full,
                        resolved,
                    ));
                }
            } else {
                if !pending.is_empty() {
                    advance = advance.max(self.flush_batch(
                        requests,
                        std::mem::take(&mut pending),
                        now,
                        FlushReason::TierMismatch,
                        resolved,
                    ));
                }
                advance = advance.max(self.predict_out(requests, out, now, resolved));
            }
        }
        if !pending.is_empty() {
            advance = advance.max(self.flush_batch(
                requests,
                pending,
                now,
                FlushReason::Deadline,
                resolved,
            ));
        }
        advance
    }

    /// Run one assembled micro-batch through the (ladder or plain)
    /// batched predict path, record batch observability, and resolve
    /// every member. Exactly one outcome per member, in completion
    /// order. Returns the batch's clock advance.
    fn flush_batch(
        &mut self,
        requests: &[ServeRequest],
        members: Vec<CollectOut>,
        now: u64,
        reason: FlushReason,
        resolved: &mut [Option<Resolved>],
    ) -> u64 {
        debug_assert!(!members.is_empty());
        bf_obs::counter("serve.batch.assembled").inc();
        bf_obs::counter(reason.counter()).inc();
        bf_obs::histogram("serve.batch.size").record(members.len() as f64);

        let outcomes = if self.cfg.tiers.ladder {
            self.predict_batch_ladder(&members, now)
        } else {
            self.predict_batch_plain(&members, now)
        };
        debug_assert_eq!(outcomes.len(), members.len());

        // One `predict_batch` span on the leader's (first completion's)
        // timeline covering the shared forward passes, plus the usual
        // per-member predict span annotated with its batch coordinates.
        let leader = &members[0];
        let leader_req = &requests[leader.idx];
        {
            let _trace = trace::adopt(trace_request_ctx(leader_req), now);
            let mut batch_span = trace::span_at("predict_batch", now + leader.collect_units);
            batch_span.arg_u64("batch_size", members.len() as u64);
            batch_span.arg_str("flush", reason.label());
            batch_span.finish(now + leader.token.used().min(leader.budget));
        }

        let batch_size = members.len();
        let mut advance = 1u64;
        for (pos, (out, outcome)) in members.into_iter().zip(outcomes).enumerate() {
            let req = requests[out.idx];
            let tick = now + out.collect_units;
            {
                let _trace = trace::adopt(trace_request_ctx(&req), now);
                let mut predict_span = trace::span_at("predict", tick);
                predict_span.arg_str("path", Self::predict_path_label(&outcome));
                predict_span.arg_u64("batch_size", batch_size as u64);
                predict_span.arg_u64("batch_pos", pos as u64);
                if let Outcome::Prediction { tier, confidence, .. }
                | Outcome::Degraded { tier, confidence, .. } = &outcome
                {
                    predict_span.arg_str("tier", tier.label());
                    predict_span.arg_f64("confidence", *confidence as f64);
                }
                predict_span.finish(now + out.token.used().min(out.budget));
            }
            let work = out.token.used().min(out.budget);
            advance = advance.max(work);
            resolved[out.idx] = Some(self.resolve_at(&req, outcome, now, work));
        }
        advance
    }

    /// The batched anytime-ladder climb: the whole micro-batch walks the
    /// rungs together, one [`AnytimeLadder::classify_at_batch`] stacked
    /// forward pass per rung. Per member the decision sequence —
    /// breaker gate at its own completion tick, per-rung admission
    /// against the (undivided) cost estimate, threshold exit,
    /// budget-stopped best answer, fall-down to distilled/centroid — is
    /// the same as [`Service::predict_one_ladder`]; only the rung's
    /// inference charge differs: `ceil(prefix_inference / b)` where `b`
    /// is the number of members admitted to that rung (the per-request
    /// collection share `cc4` is never divided). Fault-flagged requests
    /// never reach this path, so no slow penalty or injected panic
    /// applies here.
    fn predict_batch_ladder(&mut self, members: &[CollectOut], now: u64) -> Vec<Outcome> {
        struct Climb {
            outcome: Option<Outcome>,
            best: Option<(Vec<f32>, f32, u8)>,
            paid_level: u8,
            climbing: bool,
            primary_failed: bool,
        }
        let features: Vec<&[f32]> = members
            .iter()
            .map(|m| match &m.res {
                Collected::Features(f) => f.as_slice(),
                _ => unreachable!("only feature-bearing jobs are batched"),
            })
            .collect(); // alloc-ok: per-batch staging
        let Service { tiers, primary, breaker, tier_costs, tallies, cfg, .. } = self;
        let levels = tiers.ladder.levels();
        let n_levels = levels.len();
        let cc4 = (cfg.collect_attempt_units / 4).max(1);
        let first_level = levels.first().copied().unwrap_or(100);
        let mut st: Vec<Climb> = members
            .iter()
            .map(|m| {
                let tick = now + m.collect_units;
                let climbing = breaker.allow_primary(tick);
                if !climbing {
                    bf_obs::counter("serve.breaker_rejections").inc();
                }
                Climb {
                    outcome: None,
                    best: None,
                    paid_level: first_level,
                    climbing,
                    primary_failed: false,
                }
            })
            .collect(); // alloc-ok: per-batch staging

        for (idx, &level) in levels.iter().enumerate() {
            // Admission per member against the single-request estimate
            // (conservative: a member only joins a rung its own budget
            // could afford unshared). Members that fall out keep their
            // best-so-far answer.
            let admitted: Vec<usize> = (0..members.len())
                .filter(|&i| {
                    st[i].climbing && tier_costs.steps[idx] <= members[i].token.remaining()
                })
                .collect(); // alloc-ok: per-batch staging
            for (i, s) in st.iter_mut().enumerate() {
                if s.climbing && !admitted.contains(&i) {
                    s.climbing = false;
                }
            }
            if admitted.is_empty() {
                break;
            }
            let predict_units = ((cfg.primary_units * level as u64) / 100).max(1);
            let shared = predict_units.div_ceil(admitted.len() as u64);
            let cost = (if idx > 0 { cc4 } else { 0 }) + shared;
            let mut charged: Vec<usize> = Vec::with_capacity(admitted.len()); // alloc-ok: per-batch staging
            for &i in &admitted {
                if members[i].token.charge(cost).is_ok() {
                    charged.push(i);
                } else {
                    // Mid-batch deadline: this member's climb ends in a
                    // primary failure exactly as it would solo.
                    st[i].climbing = false;
                    st[i].primary_failed = true;
                    breaker.record_failure(now + members[i].collect_units);
                    bf_obs::counter("serve.primary_timeouts").inc();
                }
            }
            if charged.is_empty() {
                continue;
            }
            let rows: Vec<&[f32]> = charged.iter().map(|&i| features[i]).collect(); // alloc-ok: per-batch staging
            let ladder = &tiers.ladder;
            let attempt =
                catch_unwind(AssertUnwindSafe(|| ladder.classify_at_batch(&mut **primary, &rows, idx)));
            match attempt {
                Ok(results) => {
                    debug_assert_eq!(results.len(), charged.len());
                    for (&i, (probs, confidence)) in charged.iter().zip(results) {
                        tier_costs.observe_step(idx, cost);
                        if idx > 0 {
                            st[i].paid_level = level;
                        }
                        let tick = now + members[i].collect_units;
                        let cleared = confidence as f64 >= cfg.tiers.confidence_threshold;
                        if cleared || idx == n_levels - 1 {
                            breaker.record_success(tick);
                            bf_obs::counter("serve.predictions").inc();
                            tallies.predictions += 1;
                            let tier =
                                if level >= 100 { Tier::Full } else { Tier::EarlyExit(level) };
                            Self::tier_metrics(tier, confidence);
                            st[i].outcome = Some(Outcome::Prediction {
                                class: argmax(&probs),
                                probs,
                                tier,
                                confidence,
                            });
                            st[i].climbing = false;
                        } else {
                            st[i].best = Some((probs, confidence, level));
                        }
                    }
                }
                Err(payload) => {
                    // A genuine primary panic (injection never reaches a
                    // batch) fails every member that charged this rung;
                    // each falls down its own ladder below.
                    let msg = panic_message(payload);
                    tallies.worker_panics += 1;
                    bf_obs::counter("serve.worker_panics").inc();
                    bf_obs::error!("contained batched predict panic: {msg}");
                    for &i in &charged {
                        breaker.record_failure(now + members[i].collect_units);
                        st[i].climbing = false;
                        st[i].primary_failed = true;
                    }
                }
            }
        }

        // Settle the stragglers in completion order: budget-stopped
        // climbs answer with their best rung (a breaker success — the
        // primary did infer), everything else falls down to the
        // distilled/centroid tiers.
        let mut outcomes = Vec::with_capacity(members.len()); // alloc-ok: per-batch result rows
        for (i, m) in members.iter().enumerate() {
            let tick = now + m.collect_units;
            let s = &mut st[i];
            let outcome = match s.outcome.take() {
                Some(o) => o,
                None => match (!s.primary_failed, s.best.take()) {
                    (true, Some((probs, confidence, level))) => {
                        self.breaker.record_success(tick);
                        bf_obs::counter("serve.degraded").inc();
                        self.tallies.degraded += 1;
                        let tier = Tier::EarlyExit(level);
                        Self::tier_metrics(tier, confidence);
                        Outcome::Degraded { class: argmax(&probs), probs, tier, confidence }
                    }
                    _ => {
                        let paid = s.paid_level;
                        self.ladder_fall_down(features[i], &m.token, paid)
                    }
                },
            };
            outcomes.push(outcome);
        }
        outcomes
    }

    /// The batched legacy (non-ladder) predict path: every member the
    /// breaker admits charges `ceil(primary_units / b)` and the whole
    /// group shares one stacked full-trace forward pass. Per-member
    /// outcomes and fallback behavior match [`Service::predict_one`];
    /// fault-flagged requests never reach this path.
    fn predict_batch_plain(&mut self, members: &[CollectOut], now: u64) -> Vec<Outcome> {
        let features: Vec<&[f32]> = members
            .iter()
            .map(|m| match &m.res {
                Collected::Features(f) => f.as_slice(),
                _ => unreachable!("only feature-bearing jobs are batched"),
            })
            .collect(); // alloc-ok: per-batch staging
        let mut outcomes: Vec<Option<Outcome>> = (0..members.len()).map(|_| None).collect(); // alloc-ok: per-batch staging
        let allowed: Vec<usize> = members
            .iter()
            .enumerate()
            .filter_map(|(i, m)| {
                if self.breaker.allow_primary(now + m.collect_units) {
                    Some(i)
                } else {
                    bf_obs::counter("serve.breaker_rejections").inc();
                    None
                }
            })
            .collect(); // alloc-ok: per-batch staging
        if !allowed.is_empty() {
            let cost = self.cfg.primary_units.div_ceil(allowed.len() as u64);
            let mut charged: Vec<usize> = Vec::with_capacity(allowed.len()); // alloc-ok: per-batch staging
            for &i in &allowed {
                if members[i].token.charge(cost).is_ok() {
                    charged.push(i);
                } else {
                    self.breaker.record_failure(now + members[i].collect_units);
                    bf_obs::counter("serve.primary_timeouts").inc();
                }
            }
            if !charged.is_empty() {
                let rows: Vec<Vec<f32>> =
                    charged.iter().map(|&i| features[i].to_vec()).collect(); // alloc-ok: per-batch staging (trait API takes owned rows)
                let primary = &mut self.primary;
                let attempt =
                    catch_unwind(AssertUnwindSafe(|| primary.predict_proba(&rows)));
                match attempt {
                    Ok(results) => {
                        debug_assert_eq!(results.len(), charged.len());
                        for (&i, probs) in charged.iter().zip(results) {
                            let tick = now + members[i].collect_units;
                            self.breaker.record_success(tick);
                            bf_obs::counter("serve.predictions").inc();
                            self.tallies.predictions += 1;
                            let confidence = probs.iter().copied().fold(0.0f32, f32::max);
                            Self::tier_metrics(Tier::Full, confidence);
                            outcomes[i] = Some(Outcome::Prediction {
                                class: argmax(&probs),
                                probs,
                                tier: Tier::Full,
                                confidence,
                            });
                        }
                    }
                    Err(payload) => {
                        let msg = panic_message(payload);
                        self.tallies.worker_panics += 1;
                        bf_obs::counter("serve.worker_panics").inc();
                        bf_obs::error!("contained batched predict panic: {msg}");
                        for &i in &charged {
                            self.breaker.record_failure(now + members[i].collect_units);
                        }
                    }
                }
            }
        }
        members
            .iter()
            .enumerate()
            .map(|(i, m)| match outcomes[i].take() {
                Some(o) => o,
                None => self.fallback_predict(std::slice::from_ref(
                    match &m.res {
                        Collected::Features(f) => f,
                        _ => unreachable!("only feature-bearing jobs are batched"),
                    },
                ), &m.token),
            })
            .collect() // alloc-ok: per-batch result rows
    }

    /// Predict stage for one job whose collect finished at `tick` with
    /// `features`. Chooses primary vs fallback through the breaker,
    /// contains injected/real panics, and charges the token.
    fn predict_one(
        &mut self,
        req: &ServeRequest,
        input: &[Vec<f32>],
        token: &CancelToken,
        tick: u64,
    ) -> Outcome {
        if self.breaker.allow_primary(tick) {
            let plan = &self.collection.faults;
            let slow = plan.slow_model_for(req.id) || self.cfg.in_slow_storm(req.id);
            let panic_injected = plan.worker_panic_for(req.id);
            let cost =
                self.cfg.primary_units + if slow { self.cfg.slow_penalty_units } else { 0 };
            let primary = &mut self.primary;
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                if panic_injected {
                    panic!("injected worker panic (request {})", req.id);
                }
                token.charge(cost)?;
                primary.predict_proba_deadline(input, token)
            }));
            match attempt {
                Ok(Ok(mut probs)) => {
                    self.breaker.record_success(tick);
                    bf_obs::counter("serve.predictions").inc();
                    self.tallies.predictions += 1;
                    let probs = probs.pop().unwrap_or_default();
                    let confidence = probs.iter().copied().fold(0.0f32, f32::max);
                    Self::tier_metrics(Tier::Full, confidence);
                    return Outcome::Prediction {
                        class: argmax(&probs),
                        probs,
                        tier: Tier::Full,
                        confidence,
                    };
                }
                Ok(Err(_)) => {
                    self.breaker.record_failure(tick);
                    bf_obs::counter("serve.primary_timeouts").inc();
                }
                Err(payload) => {
                    self.breaker.record_failure(tick);
                    self.tallies.worker_panics += 1;
                    bf_obs::counter("serve.worker_panics").inc();
                    bf_obs::error!(
                        "contained worker panic for request {}: {}",
                        req.id,
                        panic_message(payload)
                    );
                }
            }
        } else {
            bf_obs::counter("serve.breaker_rejections").inc();
        }

        self.fallback_predict(input, token)
    }

    /// Degraded path shared by the per-request and batched non-ladder
    /// predict stages: the cheap centroid gets its own small charge. A
    /// sticky token (primary blew the whole budget) fails here and the
    /// request resolves as an explicit predict-stage timeout.
    fn fallback_predict(&mut self, input: &[Vec<f32>], token: &CancelToken) -> Outcome {
        if token.charge(self.cfg.fallback_units).is_err() {
            return Outcome::Timeout { stage: Stage::Predict };
        }
        match self.fallback.predict_proba_deadline(input, token) {
            Ok(mut probs) => {
                bf_obs::counter("serve.degraded").inc();
                self.tallies.degraded += 1;
                let probs = probs.pop().unwrap_or_default();
                let confidence = probs.iter().copied().fold(0.0f32, f32::max);
                Self::tier_metrics(Tier::Centroid, confidence);
                Outcome::Degraded {
                    class: argmax(&probs),
                    probs,
                    tier: Tier::Centroid,
                    confidence,
                }
            }
            Err(_) => Outcome::Timeout { stage: Stage::Predict },
        }
    }

    /// Per-tier outcome counter plus a confidence histogram, keyed by
    /// the tier's stable label.
    fn tier_metrics(tier: Tier, confidence: f32) {
        bf_obs::counter(match tier {
            Tier::Full => "serve.tier.full",
            Tier::EarlyExit(25) => "serve.tier.early_exit_25",
            Tier::EarlyExit(50) => "serve.tier.early_exit_50",
            Tier::EarlyExit(75) => "serve.tier.early_exit_75",
            Tier::EarlyExit(_) => "serve.tier.early_exit",
            Tier::Distilled => "serve.tier.distilled",
            Tier::Centroid => "serve.tier.centroid",
        })
        .inc();
        bf_obs::histogram("serve.confidence").record(confidence as f64);
    }

    /// The anytime-ladder predict stage: climb the prefix rungs of the
    /// primary model, exiting as soon as the calibrated confidence
    /// clears the configured threshold; fall *down* the ladder — best
    /// early-exit answer, then the distilled student, then the centroid
    /// — when the budget, the breaker, or a primary failure cuts the
    /// climb short.
    ///
    /// Tier-selection rule, in order:
    ///
    /// 1. While the breaker allows the primary, climb rungs whose
    ///    *estimated* incremental cost (collection share + prefix
    ///    inference, from [`TierCosts`]) fits the remaining budget. A
    ///    rung whose calibrated confidence ≥ threshold answers as
    ///    `Prediction` (tier `EarlyExit(level)`, or `Full` at 100%);
    ///    the 100% rung always answers.
    /// 2. If the budget stops the climb after at least one successful
    ///    rung, the best rung so far answers as `Degraded` with its
    ///    `EarlyExit` tier — and still counts as a breaker success: the
    ///    primary model *did* answer, just below the confidence bar.
    /// 3. On primary failure (deadline blown by a slow model, contained
    ///    panic) or an open breaker, the distilled student answers on
    ///    the already-paid prefix if it fits the budget; otherwise
    /// 4. the centroid floor answers; otherwise the request times out
    ///    in the predict stage.
    ///
    /// All decisions run in the sequential predict stage, so rung
    /// choices, breaker bookkeeping, and cost-estimate updates are
    /// bit-identical for a fixed `(stream, config)` at any thread
    /// count.
    fn predict_one_ladder(
        &mut self,
        req: &ServeRequest,
        features: &[f32],
        token: &CancelToken,
        tick: u64,
    ) -> Outcome {
        let levels = self.tiers.ladder.levels();
        let n_levels = levels.len();
        let cc4 = (self.cfg.collect_attempt_units / 4).max(1);
        // Best successful rung so far: calibrated probs, confidence,
        // level, rung index.
        let mut best: Option<(Vec<f32>, f32, u8)> = None;
        // Highest prefix level whose collection has been charged (the
        // collect stage paid for the first rung's share).
        let mut paid_level = levels.first().copied().unwrap_or(100);
        let mut primary_failed = false;

        if self.breaker.allow_primary(tick) {
            let plan = &self.collection.faults;
            let slow = plan.slow_model_for(req.id) || self.cfg.in_slow_storm(req.id);
            let panic_injected = plan.worker_panic_for(req.id);
            for (idx, &level) in levels.iter().enumerate().take(n_levels) {
                // Admission check against the *estimate* before any
                // charge: an unaffordable rung must not cancel the
                // token — the cheaper tiers below still get a shot.
                if self.tier_costs.steps[idx] > token.remaining() {
                    break;
                }
                let cost = (if idx > 0 { cc4 } else { 0 })
                    + ((self.cfg.primary_units * level as u64) / 100).max(1)
                    + if idx == 0 && slow { self.cfg.slow_penalty_units } else { 0 };
                let ladder = &self.tiers.ladder;
                let primary = &mut self.primary;
                let attempt = catch_unwind(AssertUnwindSafe(
                    || -> Result<(Vec<f32>, f32), bf_fault::DeadlineExceeded> {
                        if idx == 0 && panic_injected {
                            panic!("injected worker panic (request {})", req.id);
                        }
                        token.charge(cost)?;
                        Ok(ladder.classify_at(&mut **primary, features, idx))
                    },
                ));
                match attempt {
                    Ok(Ok((probs, confidence))) => {
                        self.tier_costs.observe_step(idx, cost);
                        if idx > 0 {
                            paid_level = level;
                        }
                        let cleared = confidence as f64 >= self.cfg.tiers.confidence_threshold;
                        if cleared || idx == n_levels - 1 {
                            // The final (full-trace) rung always
                            // answers, threshold or not.
                            self.breaker.record_success(tick);
                            bf_obs::counter("serve.predictions").inc();
                            self.tallies.predictions += 1;
                            let tier = if level >= 100 {
                                Tier::Full
                            } else {
                                Tier::EarlyExit(level)
                            };
                            Self::tier_metrics(tier, confidence);
                            return Outcome::Prediction {
                                class: argmax(&probs),
                                probs,
                                tier,
                                confidence,
                            };
                        }
                        // Below the bar: remember the most-informed
                        // answer in case the budget stops the climb.
                        best = Some((probs, confidence, level));
                    }
                    Ok(Err(_)) => {
                        primary_failed = true;
                        self.breaker.record_failure(tick);
                        bf_obs::counter("serve.primary_timeouts").inc();
                        break;
                    }
                    Err(payload) => {
                        primary_failed = true;
                        self.breaker.record_failure(tick);
                        self.tallies.worker_panics += 1;
                        bf_obs::counter("serve.worker_panics").inc();
                        bf_obs::error!(
                            "contained worker panic for request {}: {}",
                            req.id,
                            panic_message(payload)
                        );
                        break;
                    }
                }
            }
            if !primary_failed {
                if let Some((probs, confidence, level)) = best {
                    // Budget overran the climb but a rung did answer:
                    // degrade to the best early exit. The primary model
                    // inferred successfully, so this *is* a breaker
                    // success — a half-open probe that lands here still
                    // counts toward closing.
                    self.breaker.record_success(tick);
                    bf_obs::counter("serve.degraded").inc();
                    self.tallies.degraded += 1;
                    let tier = Tier::EarlyExit(level);
                    Self::tier_metrics(tier, confidence);
                    return Outcome::Degraded {
                        class: argmax(&probs),
                        probs,
                        tier,
                        confidence,
                    };
                }
            }
        } else {
            bf_obs::counter("serve.breaker_rejections").inc();
        }

        self.ladder_fall_down(features, token, paid_level)
    }

    /// Fall *down* the ladder after a failed or rejected climb — shared
    /// by the per-request and batched ladder paths. The distilled
    /// student answers on the prefix whose collection has actually been
    /// charged (`paid_level`), then the centroid floor, then an
    /// explicit predict-stage timeout.
    fn ladder_fall_down(
        &mut self,
        features: &[f32],
        token: &CancelToken,
        paid_level: u8,
    ) -> Outcome {
        // Distilled tier: the small student answers on the prefix whose
        // collection has actually been charged.
        let prefix = bf_ml::prefix_features(features, paid_level);
        if let Some(distilled) = self.tiers.distilled.as_mut() {
            if self.tier_costs.distilled <= token.remaining()
                && token.charge(self.cfg.tiers.distilled_units).is_ok()
            {
                let mut probs = distilled
                    .predict_proba_prefix(std::slice::from_ref(&prefix))
                    .pop()
                    .unwrap_or_default();
                self.tiers.distilled_calibration.apply_in_place(&mut probs);
                self.tier_costs.observe_distilled(self.cfg.tiers.distilled_units);
                let confidence = probs.iter().copied().fold(0.0f32, f32::max);
                bf_obs::counter("serve.degraded").inc();
                self.tallies.degraded += 1;
                Self::tier_metrics(Tier::Distilled, confidence);
                return Outcome::Degraded {
                    class: argmax(&probs),
                    probs,
                    tier: Tier::Distilled,
                    confidence,
                };
            }
        }

        // Centroid floor, on the same paid prefix (its distance
        // computation truncates naturally).
        if self.tier_costs.centroid > token.remaining()
            || token.charge(self.cfg.fallback_units).is_err()
        {
            return Outcome::Timeout { stage: Stage::Predict };
        }
        match self.fallback.predict_proba_deadline(std::slice::from_ref(&prefix), token) {
            Ok(mut probs) => {
                bf_obs::counter("serve.degraded").inc();
                self.tallies.degraded += 1;
                let probs = probs.pop().unwrap_or_default();
                let confidence = probs.iter().copied().fold(0.0f32, f32::max);
                Self::tier_metrics(Tier::Centroid, confidence);
                Outcome::Degraded {
                    class: argmax(&probs),
                    probs,
                    tier: Tier::Centroid,
                    confidence,
                }
            }
            Err(_) => Outcome::Timeout { stage: Stage::Predict },
        }
    }

    /// Build the `Resolved` record for a job dispatched at `started`
    /// that charged `work` units, updating tallies and histograms for
    /// the outcome kinds not already tallied in `predict_one`.
    fn resolve_at(
        &mut self,
        req: &ServeRequest,
        outcome: Outcome,
        started: u64,
        work: u64,
    ) -> Resolved {
        match &outcome {
            Outcome::Timeout { stage } => {
                self.tallies.timeouts += 1;
                bf_obs::counter("serve.timeouts").inc();
                bf_obs::counter(match stage {
                    Stage::Queue => "serve.timeouts.queue",
                    Stage::Collect => "serve.timeouts.collect",
                    Stage::Predict => "serve.timeouts.predict",
                })
                .inc();
            }
            Outcome::Failed { .. } => {
                self.tallies.failed += 1;
                bf_obs::counter("serve.failed").inc();
            }
            Outcome::ShardDown => {
                self.tallies.shard_down += 1;
                bf_obs::counter("serve.shard_down").inc();
            }
            // Tallied at their decision sites.
            Outcome::Prediction { .. } | Outcome::Degraded { .. } | Outcome::Shed => {}
        }
        let queue_units = started.saturating_sub(req.arrival);
        // Tail latencies carry the trace ID as an exemplar, so a p99
        // manifest entry links straight to its timeline (re-runnable at
        // the same seed with BF_TRACE=1 even if tracing was off now).
        let exemplar_id = trace::trace_id_for(req.seed, req.id);
        bf_obs::histogram("serve.units.queue").record(queue_units as f64);
        bf_obs::histogram("serve.units.work").record(work as f64);
        bf_obs::histogram("serve.units.total")
            .record_exemplar((queue_units + work) as f64, exemplar_id);

        // Mint the request's top-level span; collect/predict spans
        // recorded by the workers parent under it by construction.
        if let Some(root) = trace_root(req) {
            let _trace = trace::adopt(Some(root), 0);
            let mut request_span = trace::span_at("request", req.arrival);
            request_span
                .arg_u64("request_id", req.id)
                .arg_u64("site", req.site as u64)
                .arg_str("outcome", outcome_label(&outcome));
            if let Some(shard) = self.shard_label {
                request_span.arg_u64("shard", shard as u64);
            }
            trace::leaf_at("queue", req.arrival, queue_units);
            request_span.finish(started + work);
        }
        Resolved {
            id: req.id,
            site: req.site,
            outcome,
            arrival: req.arrival,
            started,
            completed: started + work,
            queue_units,
            work_units: work,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::open_loop_arrivals;
    use bf_core::collect::{AttackKind, CollectionConfig};
    use bf_core::scale::ExperimentScale;
    use bf_fault::FaultPlan;
    use bf_ml::Dataset;
    use bf_timer::BrowserKind;
    use bf_victim::Catalog;

    /// Serializes tests that override the global thread count.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    const N_SITES: usize = 3;

    fn collection(plan: FaultPlan) -> CollectionConfig {
        CollectionConfig::new(BrowserKind::Chrome, AttackKind::LoopCounting)
            .with_scale(ExperimentScale::Smoke)
            .with_faults(plan)
    }

    /// Collect a tiny clean training set and fit a centroid on it.
    fn fitted_centroid(sites: &[WebsiteProfile]) -> CentroidClassifier {
        let clean = collection(FaultPlan::off());
        let mut data = Dataset::new(sites.len());
        for (label, site) in sites.iter().enumerate() {
            for rep in 0..2u64 {
                let trace = clean.collect_trace(site, 1000 + rep * 31 + label as u64);
                data.push(clean.featurize(&trace), label);
            }
        }
        let mut c = CentroidClassifier::new(sites.len());
        c.fit(&data, &Dataset::new(sites.len()));
        c
    }

    fn service(plan: FaultPlan, cfg: ServeConfig) -> Service {
        let sites = Catalog::closed_world_subset(N_SITES).sites().to_vec();
        let model = fitted_centroid(&sites);
        Service::new(collection(plan), sites, Box::new(model.clone()), model, cfg)
    }

    fn with_one_thread<R>(f: impl FnOnce() -> R) -> R {
        let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        bf_par::set_threads(Some(1));
        let out = f();
        bf_par::set_threads(None);
        out
    }

    #[test]
    fn clean_stream_resolves_every_request_identically_across_runs() {
        let reqs = open_loop_arrivals(8, N_SITES, 200.0, 7);
        let run = || {
            let mut s = service(FaultPlan::off(), ServeConfig::default());
            let out = s.run(&reqs);
            (out, s.health())
        };
        let ((a, ha), (b, hb)) = (run(), run());
        assert_eq!(a, b, "outcomes must replay bit-identically");
        assert_eq!(ha, hb);
        assert_eq!(ha.submitted, 8);
        assert_eq!(ha.resolved(), 8, "every request reaches a terminal outcome");
        assert_eq!(ha.predictions, 8, "clean stream is all primary predictions");
        assert!(ha.ready);
        for (r, q) in a.iter().zip(&reqs) {
            assert_eq!(r.id, q.id, "results are in input order");
            assert_eq!(r.work_units, 150, "one collect attempt + one primary predict");
        }
    }

    #[test]
    fn burst_beyond_queue_capacity_sheds_exactly_the_excess() {
        let cfg = ServeConfig { queue_cap: 4, ..ServeConfig::default() };
        let reqs = open_loop_arrivals(9, N_SITES, 0.0, 3); // burst at tick 0
        let out = with_one_thread(|| service(FaultPlan::off(), cfg).run(&reqs));
        let shed: Vec<u64> =
            out.iter().filter(|r| r.outcome == Outcome::Shed).map(|r| r.id).collect();
        assert_eq!(shed, vec![4, 5, 6, 7, 8], "arrivals past the cap shed in order");
        assert_eq!(out.iter().filter(|r| matches!(r.outcome, Outcome::Prediction { .. })).count(), 4);
    }

    #[test]
    fn tight_deadline_times_out_in_the_right_stage() {
        // 99 units cannot fit one 100-unit collect attempt.
        let cfg = ServeConfig { deadline_units: 99, ..ServeConfig::default() };
        let reqs = open_loop_arrivals(2, N_SITES, 500.0, 5);
        let out = with_one_thread(|| service(FaultPlan::off(), cfg).run(&reqs));
        for r in &out {
            assert_eq!(r.outcome, Outcome::Timeout { stage: Stage::Collect });
            assert_eq!(r.work_units, 99, "budget fully consumed, never exceeded");
        }
        // 120 units fit the collect but not the 50-unit primary; the
        // sticky token then also rejects the fallback: predict timeout.
        let cfg = ServeConfig { deadline_units: 120, ..ServeConfig::default() };
        let out = with_one_thread(|| service(FaultPlan::off(), cfg).run(&reqs));
        for r in &out {
            assert_eq!(r.outcome, Outcome::Timeout { stage: Stage::Predict });
        }
    }

    #[test]
    fn queued_requests_past_their_deadline_time_out_in_queue() {
        // One worker, burst of 6, deadline fits barely one wave of work:
        // later queue entries expire before dispatch.
        let cfg = ServeConfig { deadline_units: 200, ..ServeConfig::default() };
        let reqs = open_loop_arrivals(6, N_SITES, 0.0, 11);
        let out = with_one_thread(|| service(FaultPlan::off(), cfg).run(&reqs));
        let queue_timeouts = out
            .iter()
            .filter(|r| r.outcome == Outcome::Timeout { stage: Stage::Queue })
            .count();
        let timeouts =
            out.iter().filter(|r| matches!(r.outcome, Outcome::Timeout { .. })).count();
        let ok = out.iter().filter(|r| matches!(r.outcome, Outcome::Prediction { .. })).count();
        assert!(queue_timeouts >= 3, "got {queue_timeouts} queue timeouts");
        assert!(ok >= 1, "the first dispatched request should finish in time");
        assert_eq!(timeouts + ok, 6, "exactly one terminal outcome each");
    }

    #[test]
    fn slow_storm_opens_breaker_degrades_then_recovers() {
        // Requests 0..6 hit a 10_000-unit slow penalty: each blows its
        // own deadline (primary timeout), opening the breaker after 5.
        // While open, requests degrade to the centroid. After the
        // cooldown, probes succeed and the breaker closes again.
        let cfg = ServeConfig {
            slow_storm: Some((0, 6)),
            breaker: crate::BreakerConfig { open_after: 5, cooldown_units: 2_000, close_after: 2 },
            ..ServeConfig::default()
        };
        let reqs = open_loop_arrivals(24, N_SITES, 400.0, 13);
        let (out, transitions, health) = with_one_thread(|| {
            let mut s = service(FaultPlan::off(), cfg);
            let out = s.run(&reqs);
            (out, s.breaker().transitions().to_vec(), s.health())
        });
        let labels: Vec<&str> = transitions.iter().map(|t| t.to.label()).collect();
        assert!(
            labels.starts_with(&["open", "half_open", "closed"]),
            "expected a full breaker cycle, got {labels:?}"
        );
        assert!(health.degraded > 0, "open breaker must degrade, not drop");
        assert!(health.timeouts >= 5, "slow storm requests time out explicitly");
        assert_eq!(health.resolved(), 24);
        assert!(
            matches!(out.last().unwrap().outcome, Outcome::Prediction { .. }),
            "recovered service answers on the primary path again"
        );
    }

    #[test]
    fn degraded_predictions_match_the_standalone_centroid() {
        // Breaker thresholds of 1 force: first request opens the
        // breaker (slow), the rest degrade while it cools down.
        let cfg = ServeConfig {
            slow_storm: Some((0, 1)),
            breaker: crate::BreakerConfig {
                open_after: 1,
                cooldown_units: 1_000_000,
                close_after: 1,
            },
            ..ServeConfig::default()
        };
        // Explicit, widely spaced arrivals: no queueing, so every
        // request reaches predict with a full budget.
        let reqs: Vec<ServeRequest> = (0..4u64)
            .map(|i| ServeRequest {
                id: i,
                site: (i as usize) % N_SITES,
                seed: 900 + i,
                arrival: i * 20_000,
            })
            .collect();
        let (out, mut standalone, collectioncfg) = with_one_thread(|| {
            let mut s = service(FaultPlan::off(), cfg);
            let out = s.run(&reqs);
            let sites = Catalog::closed_world_subset(N_SITES).sites().to_vec();
            (out, fitted_centroid(&sites), collection(FaultPlan::off()))
        });
        for (r, q) in out.iter().zip(&reqs).skip(1) {
            let Outcome::Degraded { class, probs, .. } = &r.outcome else {
                panic!("expected degraded outcome, got {:?}", r.outcome);
            };
            let trace = collectioncfg.collect_trace_resilient(
                &Catalog::closed_world_subset(N_SITES).sites()[q.site],
                q.seed,
            );
            let features = collectioncfg.featurize(&trace.expect("clean trace"));
            let want = standalone.predict_proba(&[features]).remove(0);
            let got: Vec<u32> = probs.iter().map(|v| v.to_bits()).collect();
            let exp: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, exp, "degraded output must be bit-identical to the centroid");
            assert_eq!(*class, argmax(&want));
        }
    }

    #[test]
    fn worker_panics_are_contained_and_degrade() {
        let plan = FaultPlan { seed: 5, worker_panic: 1.0, ..FaultPlan::off() };
        let reqs = open_loop_arrivals(3, N_SITES, 400.0, 19);
        let (out, health) = with_one_thread(|| {
            let mut s = service(plan, ServeConfig::default());
            let out = s.run(&reqs);
            (out, s.health())
        });
        assert_eq!(health.worker_panics, 3, "every request's primary panicked");
        assert_eq!(health.resolved(), 3);
        for r in &out {
            assert!(
                matches!(r.outcome, Outcome::Degraded { .. }),
                "a contained panic should degrade, got {:?}",
                r.outcome
            );
        }
    }

    #[test]
    fn quarantined_collection_is_an_explicit_failure() {
        // drop faults always trigger quarantine after the recollect
        // budget, never a hang or a timeout.
        let plan = FaultPlan { seed: 9, drop: 1.0, ..FaultPlan::off() };
        let cfg = ServeConfig { deadline_units: 100_000, ..ServeConfig::default() };
        let reqs = open_loop_arrivals(2, N_SITES, 400.0, 23);
        let out = with_one_thread(|| service(plan, cfg).run(&reqs));
        for r in &out {
            assert!(
                matches!(&r.outcome, Outcome::Failed { reason } if reason.contains("quarantined")),
                "got {:?}",
                r.outcome
            );
        }
    }

    /// A fixed-output primary/distilled stand-in for tier-routing tests.
    #[derive(Debug, Clone)]
    struct ConstClassifier {
        probs: Vec<f32>,
    }

    impl Classifier for ConstClassifier {
        fn fit(&mut self, _train: &Dataset, _val: &Dataset) {}
        fn predict_proba(&mut self, traces: &[Vec<f32>]) -> Vec<Vec<f32>> {
            traces.iter().map(|_| self.probs.clone()).collect()
        }
        fn n_classes(&self) -> usize {
            self.probs.len()
        }
    }

    fn ladder_cfg(threshold: f64) -> ServeConfig {
        ServeConfig {
            tiers: crate::TierConfig {
                ladder: true,
                confidence_threshold: threshold,
                distilled_units: 15,
            },
            ..ServeConfig::default()
        }
    }

    #[test]
    fn ladder_exits_at_the_first_rung_when_the_bar_is_low() {
        // Threshold 0: every successful first rung answers. One collect
        // quarter (25u) plus the 25% prefix inference (12u) is all a
        // request costs — versus 150u on the legacy path.
        let reqs = open_loop_arrivals(6, N_SITES, 5_000.0, 7);
        let run = || {
            let mut s = service(FaultPlan::off(), ladder_cfg(0.0));
            let out = s.run(&reqs);
            (out, s.health())
        };
        let ((a, ha), (b, hb)) = (run(), run());
        assert_eq!(a, b, "ladder outcomes must replay bit-identically");
        assert_eq!(ha, hb);
        assert_eq!(ha.predictions, 6);
        for r in &a {
            let Outcome::Prediction { tier, confidence, .. } = &r.outcome else {
                panic!("expected an early-exit prediction, got {:?}", r.outcome);
            };
            assert_eq!(*tier, Tier::EarlyExit(25));
            assert!(*confidence > 0.0);
            assert_eq!(r.work_units, 37, "quarter collect (25) + quarter inference (12)");
        }
    }

    #[test]
    fn ladder_climbs_to_full_when_the_bar_is_unreachable() {
        // Threshold 2.0 can never be cleared: the climb visits every
        // rung and the full-trace rung answers anyway.
        let reqs = open_loop_arrivals(3, N_SITES, 5_000.0, 9);
        let out = with_one_thread(|| service(FaultPlan::off(), ladder_cfg(2.0)).run(&reqs));
        for r in &out {
            let Outcome::Prediction { tier, .. } = &r.outcome else {
                panic!("expected a full prediction, got {:?}", r.outcome);
            };
            assert_eq!(*tier, Tier::Full);
            // collect 25 + rungs 12 + (25+25) + (25+37) + (25+50).
            assert_eq!(r.work_units, 224, "incremental collection charged per rung");
        }
    }

    #[test]
    fn ladder_budget_cutoff_degrades_to_best_rung_without_tripping_the_breaker() {
        // Deadline 100: collect (25) + rung 25% (12) + rung 50% (50)
        // fit, the 75% rung's estimated 62 does not. The most-informed
        // successful rung answers as Degraded and the breaker records a
        // *success* — the primary did infer.
        let cfg = ServeConfig { deadline_units: 100, ..ladder_cfg(2.0) };
        let reqs = open_loop_arrivals(4, N_SITES, 5_000.0, 11);
        let (out, health, transitions) = with_one_thread(|| {
            let mut s = service(FaultPlan::off(), cfg);
            let out = s.run(&reqs);
            (out, s.health(), s.breaker().transitions().len())
        });
        assert_eq!(health.degraded, 4);
        assert_eq!(transitions, 0, "budget cutoffs are successes, not breaker failures");
        for r in &out {
            let Outcome::Degraded { tier, .. } = &r.outcome else {
                panic!("expected a budget-cutoff degrade, got {:?}", r.outcome);
            };
            assert_eq!(*tier, Tier::EarlyExit(50));
            assert_eq!(r.work_units, 87, "only the affordable rungs were charged");
        }
    }

    #[test]
    fn open_breaker_falls_to_distilled_then_centroid_tiers() {
        // Request 0 hits a slow primary and blows its budget, opening
        // the breaker (open_after 1); the cooldown outlives the run.
        let cfg = ServeConfig {
            slow_storm: Some((0, 1)),
            breaker: crate::BreakerConfig {
                open_after: 1,
                cooldown_units: 1_000_000,
                close_after: 1,
            },
            ..ladder_cfg(0.0)
        };
        let reqs: Vec<ServeRequest> = (0..3u64)
            .map(|i| ServeRequest { id: i, site: (i as usize) % N_SITES, seed: 40 + i, arrival: i * 20_000 })
            .collect();
        // With a distilled student attached, open-breaker requests land
        // on the distilled tier (its calibration applied).
        let distilled_probs = vec![0.1f32, 0.7, 0.2];
        let (with_student, without_student) = with_one_thread(|| {
            let sites = Catalog::closed_world_subset(N_SITES).sites().to_vec();
            let model = fitted_centroid(&sites);
            let mut s = Service::new(
                collection(FaultPlan::off()),
                sites.clone(),
                Box::new(model.clone()),
                model.clone(),
                cfg.clone(),
            )
            .with_tiers(TierModels {
                ladder: bf_ml::AnytimeLadder::identity(),
                distilled: Some(Box::new(ConstClassifier { probs: distilled_probs.clone() })),
                distilled_calibration: bf_ml::Calibration::with_temperature(2.0),
            });
            let with_student = s.run(&reqs);
            let mut plain = Service::new(
                collection(FaultPlan::off()),
                sites,
                Box::new(model.clone()),
                model,
                cfg.clone(),
            );
            (with_student, plain.run(&reqs))
        });
        assert!(
            matches!(with_student[0].outcome, Outcome::Timeout { stage: Stage::Predict }),
            "slow request blows its whole budget, got {:?}",
            with_student[0].outcome
        );
        for r in &with_student[1..] {
            let Outcome::Degraded { tier, probs, .. } = &r.outcome else {
                panic!("expected a distilled degrade, got {:?}", r.outcome);
            };
            assert_eq!(*tier, Tier::Distilled);
            let mut want = distilled_probs.clone();
            bf_ml::Calibration::with_temperature(2.0).apply_in_place(&mut want);
            let got: Vec<u32> = probs.iter().map(|v| v.to_bits()).collect();
            let exp: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, exp, "distilled probs must be calibrated");
        }
        // Without a student, the same requests land on the centroid.
        for r in &without_student[1..] {
            let Outcome::Degraded { tier, .. } = &r.outcome else {
                panic!("expected a centroid degrade, got {:?}", r.outcome);
            };
            assert_eq!(*tier, Tier::Centroid);
        }
    }

    #[test]
    fn reconfigure_swaps_tuning_and_resets_state() {
        let reqs = open_loop_arrivals(3, N_SITES, 5_000.0, 21);
        let (legacy, laddered) = with_one_thread(|| {
            let mut s = service(FaultPlan::off(), ServeConfig::default());
            let legacy = s.run(&reqs);
            s.reconfigure(ladder_cfg(0.0));
            (legacy, s.run(&reqs))
        });
        assert!(legacy.iter().all(|r| r.work_units == 150));
        assert!(laddered.iter().all(|r| r.work_units == 37));
    }

    #[test]
    fn batched_ladder_wave_shares_the_rung_charge_and_matches_single_bits() {
        // Eight simultaneous arrivals, one thread, batch capacity 8: the
        // whole wave climbs as one micro-batch. Rung-0 inference (12u)
        // splits eight ways (ceil -> 2u each), so a request costs
        // collect 25 + 2 = 27 instead of the solo 37 — and the probs it
        // answers with are bit-identical to its solo run.
        let reqs = open_loop_arrivals(8, N_SITES, 0.0, 7);
        let cfg = ServeConfig { batch: 8, ..ladder_cfg(0.0) };
        let (batched, assembled, full_flushes) = with_one_thread(|| {
            let a0 = bf_obs::counter("serve.batch.assembled").get();
            let f0 = bf_obs::counter("serve.batch.flushed.full").get();
            let out = service(FaultPlan::off(), cfg).run(&reqs);
            (
                out,
                bf_obs::counter("serve.batch.assembled").get() - a0,
                bf_obs::counter("serve.batch.flushed.full").get() - f0,
            )
        });
        let solo = with_one_thread(|| service(FaultPlan::off(), ladder_cfg(0.0)).run(&reqs));
        assert_eq!(assembled, 1, "one full wave, one micro-batch");
        assert_eq!(full_flushes, 1);
        for (b, s) in batched.iter().zip(&solo) {
            assert_eq!(b.id, s.id);
            assert_eq!(b.work_units, 27, "quarter collect (25) + shared inference (2)");
            let (Outcome::Prediction { probs: bp, tier: bt, .. },
                 Outcome::Prediction { probs: sp, tier: st, .. }) = (&b.outcome, &s.outcome)
            else {
                panic!("expected predictions, got {:?} / {:?}", b.outcome, s.outcome);
            };
            assert_eq!(bt, st);
            let (bb, sb): (Vec<u32>, Vec<u32>) = (
                bp.iter().map(|v| v.to_bits()).collect(),
                sp.iter().map(|v| v.to_bits()).collect(),
            );
            assert_eq!(bb, sb, "batched probs must be bit-identical to the solo run");
        }
    }

    #[test]
    fn batched_plain_wave_shares_the_primary_charge() {
        // Non-ladder path: the full 50-unit primary splits eight ways
        // (ceil -> 7u), so a request costs collect 100 + 7 = 107 instead
        // of the legacy 150, with bit-identical probs.
        // A generous deadline keeps the solo (batch 1) run from
        // expiring the back of the burst while its waves serialize.
        let reqs = open_loop_arrivals(8, N_SITES, 0.0, 7);
        let cfg = ServeConfig { batch: 8, deadline_units: 10_000, ..ServeConfig::default() };
        let solo_cfg = ServeConfig { deadline_units: 10_000, ..ServeConfig::default() };
        let batched = with_one_thread(|| service(FaultPlan::off(), cfg).run(&reqs));
        let solo = with_one_thread(|| service(FaultPlan::off(), solo_cfg).run(&reqs));
        for (b, s) in batched.iter().zip(&solo) {
            assert_eq!(b.work_units, 107, "full collect (100) + shared primary (7)");
            let (Outcome::Prediction { probs: bp, tier: Tier::Full, .. },
                 Outcome::Prediction { probs: sp, tier: Tier::Full, .. }) =
                (&b.outcome, &s.outcome)
            else {
                panic!("expected full predictions, got {:?} / {:?}", b.outcome, s.outcome);
            };
            let (bb, sb): (Vec<u32>, Vec<u32>) = (
                bp.iter().map(|v| v.to_bits()).collect(),
                sp.iter().map(|v| v.to_bits()).collect(),
            );
            assert_eq!(bb, sb);
        }
    }

    #[test]
    fn a_batch_of_one_charges_exactly_the_legacy_cost() {
        // Widely spaced arrivals never co-occupy a wave, so every
        // micro-batch holds one member and ceil(cost / 1) degenerates to
        // the per-request rule: work units match the solo path exactly.
        let reqs: Vec<ServeRequest> = (0..4u64)
            .map(|i| ServeRequest { id: i, site: (i as usize) % N_SITES, seed: 60 + i, arrival: i * 20_000 })
            .collect();
        let cfg = ServeConfig { batch: 8, ..ladder_cfg(0.0) };
        let (out, deadline_flushes) = with_one_thread(|| {
            let d0 = bf_obs::counter("serve.batch.flushed.deadline").get();
            let out = service(FaultPlan::off(), cfg).run(&reqs);
            (out, bf_obs::counter("serve.batch.flushed.deadline").get() - d0)
        });
        assert_eq!(deadline_flushes, 4, "each singleton wave flushes at wave end");
        for r in &out {
            assert_eq!(r.work_units, 37, "a batch of one costs the legacy 25 + 12");
        }
    }

    #[test]
    fn fault_flagged_requests_flush_the_batch_and_keep_their_own_path() {
        // Five simultaneous arrivals; request 2 sits in a slow storm.
        // The batcher flushes {0,1} (tier_mismatch), runs 2 through the
        // per-request path where the slow penalty blows its own budget
        // only, then batches {3,4} at the wave deadline.
        let cfg = ServeConfig { batch: 8, slow_storm: Some((2, 3)), ..ladder_cfg(0.0) };
        let reqs = open_loop_arrivals(5, N_SITES, 0.0, 7);
        let (out, mismatch_flushes, deadline_flushes) = with_one_thread(|| {
            let m0 = bf_obs::counter("serve.batch.flushed.tier_mismatch").get();
            let d0 = bf_obs::counter("serve.batch.flushed.deadline").get();
            let out = service(FaultPlan::off(), cfg).run(&reqs);
            (
                out,
                bf_obs::counter("serve.batch.flushed.tier_mismatch").get() - m0,
                bf_obs::counter("serve.batch.flushed.deadline").get() - d0,
            )
        });
        assert_eq!(mismatch_flushes, 1, "the flagged request interrupts one batch");
        assert_eq!(deadline_flushes, 1, "the tail pair flushes at wave end");
        assert_eq!(
            out[2].outcome,
            Outcome::Timeout { stage: Stage::Predict },
            "the slow request pays its penalty alone"
        );
        for r in [&out[0], &out[1], &out[3], &out[4]] {
            assert!(
                matches!(r.outcome, Outcome::Prediction { .. }),
                "healthy batch members answer normally, got {:?}",
                r.outcome
            );
            assert_eq!(r.work_units, 31, "quarter collect (25) + pair-shared inference (6)");
        }
    }

    #[test]
    fn unknown_site_index_fails_explicitly() {
        let reqs =
            [ServeRequest { id: 0, site: N_SITES + 10, seed: 1, arrival: 0 }];
        let out = with_one_thread(|| service(FaultPlan::off(), ServeConfig::default()).run(&reqs));
        assert!(
            matches!(&out[0].outcome, Outcome::Failed { reason } if reason.contains("unknown site")),
            "got {:?}",
            out[0].outcome
        );
    }

    #[test]
    fn down_at_is_a_half_open_interval_lookup() {
        let windows = [(100u64, 200u64), (500, 600)];
        assert!(!down_at(&windows, 99));
        assert!(down_at(&windows, 100));
        assert!(down_at(&windows, 199));
        assert!(!down_at(&windows, 200));
        assert!(down_at(&windows, 550));
        assert!(!down_at(&windows, 600));
        assert!(!down_at(&[], 0));
    }

    #[test]
    fn crash_drains_queue_and_arrivals_in_window_bounce() {
        // Clean request work is 150 units; three requests land before the
        // crash at tick 200 but only the first wave (one request at a
        // single thread, batch 1) dispatches before it. One more arrives
        // mid-window and one after the restart.
        let reqs: Vec<ServeRequest> = [0u64, 10, 20, 400, 1_300]
            .iter()
            .enumerate()
            .map(|(i, &arrival)| ServeRequest {
                id: i as u64,
                site: i % N_SITES,
                seed: 70 + i as u64,
                arrival,
            })
            .collect();
        let cfg = ServeConfig {
            down_windows: vec![(200, 1_200)],
            deadline_units: 100_000,
            ..ServeConfig::default()
        };
        let (out, health) = with_one_thread(|| {
            let mut s = service(FaultPlan::off(), cfg);
            let out = s.run(&reqs);
            (out, s.health())
        });
        // Request 0 dispatched in the first wave and completed normally.
        assert!(matches!(out[0].outcome, Outcome::Prediction { .. }), "got {:?}", out[0].outcome);
        // Request 1's wave was already in flight when the crash tick
        // passed: the wave is the crash atom, so it completes.
        assert!(
            matches!(out[1].outcome, Outcome::Prediction { .. }),
            "in-flight wave survives the crash, got {:?}",
            out[1].outcome
        );
        // Request 2 was still queued when the supervisor processed the
        // crash: drained as ShardDown.
        assert_eq!(out[2].outcome, Outcome::ShardDown, "queued request must drain as ShardDown");
        assert!(out[2].completed >= 200, "drain happens at the crash tick or later");
        // Request 3 arrived mid-window: bounced on arrival.
        assert_eq!(out[3].outcome, Outcome::ShardDown);
        assert_eq!(out[3].completed, out[3].arrival, "mid-window arrivals bounce immediately");
        // Request 4 arrived after the restart and was answered.
        assert!(matches!(out[4].outcome, Outcome::Prediction { .. }), "got {:?}", out[4].outcome);
        assert_eq!(health.shard_down, 2);
        assert_eq!(health.restarts, 1);
        assert_eq!(health.resolved(), reqs.len() as u64);
    }

    #[test]
    fn restart_installs_a_fresh_closed_breaker() {
        // Force the breaker open with guaranteed worker panics, then let
        // the shard crash and restart: the replacement breaker must be
        // closed, and the old breaker's transitions must survive in the
        // flap tally.
        let panic_all = FaultPlan::parse("seed=1,worker_panic=1.0");
        let reqs: Vec<ServeRequest> = (0..8u64)
            .map(|i| ServeRequest { id: i, site: (i as usize) % N_SITES, seed: 80 + i, arrival: i * 200 })
            .collect();
        let late = ServeRequest { id: 99, site: 0, seed: 999, arrival: 60_000 };
        let cfg = ServeConfig {
            down_windows: vec![(30_000, 50_000)],
            ..ServeConfig::default()
        };
        let (ready_after, flaps, restarts) = with_one_thread(|| {
            let mut s = service(panic_all, cfg);
            let mut all = reqs.clone();
            all.push(late);
            s.run(&all);
            (s.health().ready, s.breaker_flaps(), s.health().restarts)
        });
        assert_eq!(restarts, 1);
        assert!(ready_after, "post-restart breaker must admit primary traffic");
        assert!(flaps >= 1, "pre-crash breaker transitions persist in the flap tally");
    }

    #[test]
    fn idle_jump_over_a_whole_window_still_counts_the_restart() {
        // Two requests far apart; the down window sits entirely between
        // them, so the idle clock jump skips it without any queued work.
        let reqs = [
            ServeRequest { id: 0, site: 0, seed: 1, arrival: 0 },
            ServeRequest { id: 1, site: 1, seed: 2, arrival: 100_000 },
        ];
        let cfg = ServeConfig {
            down_windows: vec![(10_000, 12_000)],
            ..ServeConfig::default()
        };
        let (out, health) = with_one_thread(|| {
            let mut s = service(FaultPlan::off(), cfg);
            let out = s.run(&reqs);
            (out, s.health())
        });
        assert!(matches!(out[0].outcome, Outcome::Prediction { .. }));
        assert!(matches!(out[1].outcome, Outcome::Prediction { .. }));
        assert_eq!(health.restarts, 1, "skipped windows still book their restart");
        assert_eq!(health.shard_down, 0);
    }

    #[test]
    fn down_window_runs_are_bit_deterministic() {
        let reqs = open_loop_arrivals(24, N_SITES, 120.0, 23);
        let cfg = ServeConfig {
            down_windows: vec![(400, 2_400), (9_000, 11_000)],
            ..ServeConfig::default()
        };
        let run = || {
            let mut s = service(FaultPlan::off(), cfg.clone());
            s.run(&reqs)
        };
        let (a, b) = with_one_thread(|| (run(), run()));
        assert_eq!(a, b, "down-window scheduling must be a pure function of the stream");
        assert!(
            a.iter().any(|r| r.outcome == Outcome::ShardDown),
            "the windows must actually catch traffic for this test to bite"
        );
    }
}
