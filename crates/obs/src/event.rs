//! Leveled event emission. Events print to stderr as
//! `[LEVEL path] message`, where `path` is the emitting span path (or a
//! caller-supplied target). The level check happens in the macro before
//! any formatting, so disabled events cost one relaxed atomic load.

use crate::level::Level;
use parking_lot::Mutex;
use std::io::Write;
use std::sync::OnceLock;

/// Where emitted events go. Stderr by default; tests can capture.
enum Sink {
    Stderr,
    Capture(Vec<String>),
}

fn sink() -> &'static Mutex<Sink> {
    static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Sink::Stderr))
}

/// Emit one already-filtered event. Callers should check
/// [`crate::level::enabled`] first (the macros do).
pub fn emit(level: Level, target: &str, message: &str) {
    let line = if target.is_empty() {
        format!("[{}] {}", level.label(), message)
    } else {
        format!("[{} {}] {}", level.label(), target, message)
    };
    let mut sink = sink().lock();
    match &mut *sink {
        Sink::Stderr => {
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err, "{line}");
        }
        Sink::Capture(lines) => lines.push(line),
    }
}

/// Emit with the current span path as the target.
pub fn emit_here(level: Level, message: &str) {
    let path = crate::span::current_path().unwrap_or_default();
    emit(level, &path, message);
}

/// Redirect events into an in-memory buffer (tests). Returns lines
/// captured when switched back with [`end_capture`].
pub fn begin_capture() {
    *sink().lock() = Sink::Capture(Vec::new());
}

/// Stop capturing and return the captured lines.
pub fn end_capture() -> Vec<String> {
    match std::mem::replace(&mut *sink().lock(), Sink::Stderr) {
        Sink::Capture(lines) => lines,
        Sink::Stderr => Vec::new(),
    }
}

/// Emit an event at an explicit level.
#[macro_export]
macro_rules! event {
    ($level:expr, $($arg:tt)+) => {
        if $crate::level::enabled($level) {
            $crate::event::emit_here($level, &format!($($arg)+));
        }
    };
}

/// Emit an [`Level::Error`](crate::Level::Error) event.
#[macro_export]
macro_rules! error {
    ($($arg:tt)+) => { $crate::event!($crate::Level::Error, $($arg)+) };
}

/// Emit an [`Level::Info`](crate::Level::Info) event.
#[macro_export]
macro_rules! info {
    ($($arg:tt)+) => { $crate::event!($crate::Level::Info, $($arg)+) };
}

/// Emit a [`Level::Debug`](crate::Level::Debug) event.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)+) => { $crate::event!($crate::Level::Debug, $($arg)+) };
}

/// Emit a [`Level::Trace`](crate::Level::Trace) event.
#[macro_export]
macro_rules! trace {
    ($($arg:tt)+) => { $crate::event!($crate::Level::Trace, $($arg)+) };
}
