//! Thread-safe metrics: counters, gauges, and log-scale histograms, kept
//! in a registry whose snapshots feed [`crate::manifest::RunManifest`].
//!
//! Counters and gauges are single relaxed atomics — always on, cheap
//! enough for per-event accounting. Histograms use base-2 log-scale
//! buckets so one fixed-size array covers nanoseconds to hours. Hot loops
//! that dispatch millions of events should tally into a
//! [`LocalHistogram`] / plain integers and flush once (see the `bf-sim`
//! engine), which makes instrumentation overhead unmeasurable.

use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Number of log-scale buckets: exponents `2^-32 .. 2^31` around 1.0.
pub const HISTOGRAM_BUCKETS: usize = 64;
/// Exponent offset: bucket index = floor(log2(value)) + OFFSET.
const EXP_OFFSET: i32 = 32;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Create a counter at zero.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins floating-point gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Create a gauge at zero.
    pub const fn new() -> Self {
        Gauge {
            bits: AtomicU64::new(0),
        }
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Map an f64 to a u64 whose unsigned ordering matches the float's total
/// ordering (sign bit flipped for positives, all bits for negatives), so
/// atomic `fetch_min`/`fetch_max` work on encoded values.
#[inline]
fn order_encode(value: f64) -> u64 {
    let bits = value.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

#[inline]
fn order_decode(enc: u64) -> f64 {
    if enc >> 63 == 1 {
        f64::from_bits(enc & !(1 << 63))
    } else {
        f64::from_bits(!enc)
    }
}

#[inline]
fn bucket_of(value: f64) -> usize {
    if value <= 0.0 || !value.is_finite() {
        return 0;
    }
    // floor(log2(x)) for normal positive x is the unbiased exponent;
    // subnormals have biased exponent 0 and clamp to bucket 0, same as
    // the analytic result. Avoids a libm log2 call on the record path.
    let exp = ((value.to_bits() >> 52) & 0x7ff) as i32 - 1023 + EXP_OFFSET;
    exp.clamp(0, HISTOGRAM_BUCKETS as i32 - 1) as usize
}

/// Lower edge of bucket `i` (`2^(i - EXP_OFFSET)`).
pub fn bucket_lower_edge(i: usize) -> f64 {
    ((i as i32 - EXP_OFFSET) as f64).exp2()
}

/// How many exemplars a histogram retains (the largest observations, so
/// the set covers the p99+ tail of any realistically sized run).
pub const EXEMPLAR_CAP: usize = 4;

/// A tail observation annotated with the trace that produced it, linking
/// a histogram's p99+ entries back to their [`crate::trace`] timelines.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Exemplar {
    /// The observed value.
    pub value: f64,
    /// Trace ID of the request that recorded it (never 0).
    pub trace_id: u64,
}

/// Canonical exemplar order: largest value first, trace_id as the
/// deterministic tie-break — so the retained set is independent of
/// observation order and thread interleaving.
fn sort_exemplars(xs: &mut Vec<Exemplar>) {
    xs.sort_by(|a, b| {
        b.value
            .total_cmp(&a.value)
            .then_with(|| a.trace_id.cmp(&b.trace_id))
    });
    xs.dedup_by(|a, b| a.trace_id == b.trace_id && a.value == b.value);
    xs.truncate(EXEMPLAR_CAP);
}

/// A thread-safe histogram with base-2 log-scale buckets.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    /// Sum in f64 bits, updated by CAS (low contention by design).
    sum_bits: AtomicU64,
    /// Min/max in total-order-comparable bit patterns (values are >= 0).
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    /// Top-[`EXEMPLAR_CAP`] observations by value, tagged with trace IDs.
    exemplars: Mutex<Vec<Exemplar>>,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(order_encode(f64::INFINITY)),
            max_bits: AtomicU64::new(order_encode(f64::NEG_INFINITY)),
            exemplars: Mutex::new(Vec::new()),
        }
    }

    /// [`record`](Self::record), additionally retaining `(value,
    /// trace_id)` as an exemplar when it ranks among the top
    /// [`EXEMPLAR_CAP`] observations. A `trace_id` of 0 (no active
    /// trace) records the value without an exemplar.
    pub fn record_exemplar(&self, value: f64, trace_id: u64) {
        self.record(value);
        if trace_id == 0 || !value.is_finite() {
            return;
        }
        let mut xs = self.exemplars.lock();
        if xs.len() >= EXEMPLAR_CAP {
            if let Some(last) = xs.last() {
                if value < last.value {
                    return;
                }
            }
        }
        xs.push(Exemplar { value, trace_id });
        sort_exemplars(&mut xs);
    }

    /// Record one observation (negative / non-finite values land in the
    /// lowest bucket; the sum ignores non-finite values).
    pub fn record(&self, value: f64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if value.is_finite() {
            let mut cur = self.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + value).to_bits();
                match self.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
            self.min_bits
                .fetch_min(order_encode(value), Ordering::Relaxed);
            self.max_bits
                .fetch_max(order_encode(value), Ordering::Relaxed);
        }
    }

    /// Fold a thread-local tally into this histogram in one pass.
    pub fn merge_local(&self, local: &LocalHistogram) {
        if local.count == 0 {
            return;
        }
        for (i, &c) in local.buckets.iter().enumerate() {
            if c > 0 {
                self.buckets[i].fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(local.count, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + local.sum).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        if local.min.is_finite() {
            self.min_bits
                .fetch_min(order_encode(local.min), Ordering::Relaxed);
        }
        if local.max.is_finite() {
            self.max_bits
                .fetch_max(order_encode(local.max), Ordering::Relaxed);
        }
    }

    /// An immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect(); // alloc-ok: snapshot path, manifest-time, not per-record
        let min = order_decode(self.min_bits.load(Ordering::Relaxed));
        let max = order_decode(self.max_bits.load(Ordering::Relaxed));
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: if min.is_finite() { Some(min) } else { None },
            max: if max.is_finite() { Some(max) } else { None },
            exemplars: self.exemplars.lock().clone(),
        }
    }
}

/// Single-threaded histogram tally for hot loops; fold into a shared
/// [`LogHistogram`] with [`LogHistogram::merge_local`] when done.
#[derive(Debug, Clone)]
pub struct LocalHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalHistogram {
    /// Create an empty tally.
    pub fn new() -> Self {
        LocalHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, value: f64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        if value.is_finite() {
            self.sum += value;
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Immutable histogram state, mergeable across threads / processes.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (`HISTOGRAM_BUCKETS` log-scale buckets).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of finite observations.
    pub sum: f64,
    /// Smallest finite observation, if any.
    pub min: Option<f64>,
    /// Largest finite observation, if any.
    pub max: Option<f64>,
    /// Top observations by value, tagged with the trace that produced
    /// them (empty unless recorded via [`LogHistogram::record_exemplar`]).
    #[serde(default)]
    pub exemplars: Vec<Exemplar>,
}

impl HistogramSnapshot {
    /// An empty snapshot (the identity element of [`merge`](Self::merge)).
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; HISTOGRAM_BUCKETS], // alloc-ok: empty-snapshot constructor, manifest path
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
            exemplars: Vec::new(),
        }
    }

    /// Combine two snapshots: bucket-wise addition; min/max widen. The
    /// operation is associative and count-preserving (the bucket counts
    /// and `count` combine exactly; `sum` is float addition, associative
    /// up to rounding).
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let n = self.buckets.len().max(other.buckets.len());
        let mut buckets = vec![0u64; n]; // alloc-ok: merge runs at snapshot time
        for (i, slot) in buckets.iter_mut().enumerate() {
            *slot = self.buckets.get(i).copied().unwrap_or(0)
                + other.buckets.get(i).copied().unwrap_or(0);
        }
        let mut exemplars: Vec<Exemplar> = self
            .exemplars
            .iter()
            .chain(other.exemplars.iter())
            .copied()
            .collect(); // alloc-ok: merge runs at snapshot time
        sort_exemplars(&mut exemplars);
        HistogramSnapshot {
            buckets,
            count: self.count + other.count,
            sum: self.sum + other.sum,
            min: match (self.min, other.min) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
            max: match (self.max, other.max) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            },
            exemplars,
        }
    }

    /// Mean of finite observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile from the log-scale buckets (geometric bucket
    /// midpoint), `q` in `[0, 1]`. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let lo = bucket_lower_edge(i);
                return Some(lo * std::f64::consts::SQRT_2);
            }
        }
        self.max
    }

    /// The counts-only difference `self - earlier` (for per-run deltas of
    /// cumulative histograms). Min/max/sum are taken from `self` when the
    /// counts differ, as an upper-bound approximation.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let n = self.buckets.len();
        let mut buckets = vec![0u64; n]; // alloc-ok: per-run delta, manifest path
        for (i, slot) in buckets.iter_mut().enumerate() {
            *slot = self.buckets[i].saturating_sub(earlier.buckets.get(i).copied().unwrap_or(0));
        }
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum - earlier.sum,
            min: self.min,
            max: self.max,
            // Exemplars are a cumulative top-K; the current set is the
            // best available answer for "which traces own the tail".
            exemplars: self.exemplars.clone(),
        }
    }
}

/// One metric's snapshot value.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// A point-in-time copy of every metric in a registry.
pub type MetricsSnapshot = BTreeMap<String, MetricValue>;

/// Counts-only delta of `now - before` (gauges keep their current value).
pub fn snapshot_delta(now: &MetricsSnapshot, before: &MetricsSnapshot) -> MetricsSnapshot {
    now.iter()
        .map(|(name, value)| {
            let delta = match (value, before.get(name)) {
                (MetricValue::Counter(n), Some(MetricValue::Counter(b))) => {
                    MetricValue::Counter(n.saturating_sub(*b))
                }
                (MetricValue::Histogram(n), Some(MetricValue::Histogram(b))) => {
                    MetricValue::Histogram(n.delta_since(b))
                }
                (v, _) => v.clone(),
            };
            (name.clone(), delta)
        })
        .collect() // alloc-ok: registry-wide delta, manifest path
}

/// A named collection of metrics. Most code uses the process-wide
/// [`global`] registry; tests can build private ones.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<LogHistogram>>>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(self.counters.write().entry(name.to_owned()).or_default())
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(self.gauges.write().entry(name.to_owned()).or_default())
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<LogHistogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(self.histograms.write().entry(name.to_owned()).or_default())
    }

    /// Copy every metric's current value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new();
        for (name, c) in self.counters.read().iter() {
            out.insert(name.clone(), MetricValue::Counter(c.get()));
        }
        for (name, g) in self.gauges.read().iter() {
            out.insert(name.clone(), MetricValue::Gauge(g.get()));
        }
        for (name, h) in self.histograms.read().iter() {
            out.insert(name.clone(), MetricValue::Histogram(h.snapshot()));
        }
        out
    }
}

/// The process-wide registry that instrumented code reports into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Get or create a counter in the [`global`] registry.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Get or create a gauge in the [`global`] registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Get or create a histogram in the [`global`] registry.
pub fn histogram(name: &str) -> Arc<LogHistogram> {
    global().histogram(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("x");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("x").get(), 5);
        let g = r.gauge("y");
        g.set(2.5);
        assert_eq!(r.gauge("y").get(), 2.5);
    }

    #[test]
    fn histogram_buckets_are_log_scale() {
        assert_eq!(bucket_of(1.0), EXP_OFFSET as usize);
        assert_eq!(bucket_of(2.0), EXP_OFFSET as usize + 1);
        assert_eq!(bucket_of(0.5), EXP_OFFSET as usize - 1);
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(f64::INFINITY), 0);
        // ~1 ns in seconds lands within range.
        assert!(bucket_of(1e-9) > 0);
    }

    #[test]
    fn histogram_snapshot_stats() {
        let h = LogHistogram::new();
        for v in [0.5, 1.5, 3.0, 3.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, Some(0.5));
        assert_eq!(s.max, Some(3.0));
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert!(s.quantile(0.5).is_some());
    }

    #[test]
    fn local_histogram_merges_exactly() {
        let shared = LogHistogram::new();
        let mut local = LocalHistogram::new();
        for i in 1..=100 {
            local.record(i as f64);
        }
        shared.merge_local(&local);
        let s = shared.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, Some(1.0));
        assert_eq!(s.max, Some(100.0));
        assert!((s.sum - 5_050.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_delta_subtracts_counters() {
        let r = Registry::new();
        r.counter("n").add(10);
        let before = r.snapshot();
        r.counter("n").add(7);
        r.gauge("g").set(1.25);
        let after = r.snapshot();
        let d = snapshot_delta(&after, &before);
        assert_eq!(d.get("n"), Some(&MetricValue::Counter(7)));
        assert_eq!(d.get("g"), Some(&MetricValue::Gauge(1.25)));
    }

    #[test]
    fn exemplars_keep_the_tail_deterministically() {
        let h = LogHistogram::new();
        for i in 1..=100u64 {
            h.record_exemplar(i as f64, 1000 + i);
        }
        h.record_exemplar(500.0, 0); // no trace context → value only
        let s = h.snapshot();
        assert_eq!(s.count, 101);
        assert_eq!(s.exemplars.len(), EXEMPLAR_CAP);
        let values: Vec<f64> = s.exemplars.iter().map(|e| e.value).collect();
        assert_eq!(values, vec![100.0, 99.0, 98.0, 97.0]);
        assert_eq!(s.exemplars[0].trace_id, 1100);
        // Merging is canonical: same set in, same set out.
        let merged = s.merge(&s);
        assert_eq!(merged.exemplars, s.exemplars);
    }

    #[test]
    fn quantile_orders_buckets() {
        let h = LogHistogram::new();
        for _ in 0..90 {
            h.record(1.0);
        }
        for _ in 0..10 {
            h.record(1000.0);
        }
        let s = h.snapshot();
        assert!(s.quantile(0.5).unwrap() < 3.0);
        assert!(s.quantile(0.99).unwrap() > 500.0);
    }
}
