//! A minimal JSON value model and writer for run manifests.
//!
//! The build environment pins dependencies to offline shims, so no JSON
//! serializer crate is available; manifests are small and write-only,
//! which this hand-rolled emitter covers. Numbers are emitted exactly
//! for `u64`/`i64` and via shortest-roundtrip `{:?}` formatting for
//! `f64`; non-finite floats become `null` to keep output valid JSON.

use std::collections::BTreeMap;
use std::fmt::Write;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (exact).
    UInt(u64),
    /// Signed integer (exact).
    Int(i64),
    /// Floating point; NaN / infinities serialize as `null`.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with deterministic (sorted) key order.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serialize compactly (no whitespace).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(map) if !map.is_empty() => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            _ => self.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    // {:?} gives shortest representation that round-trips,
                    // always with a decimal point or exponent.
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_is_valid_shapes() {
        let v = Json::object([
            ("name", Json::from("table2")),
            ("seed", Json::UInt(42)),
            ("ok", Json::Bool(true)),
            ("loss", Json::Float(0.25)),
            ("skip", Json::Null),
            ("xs", Json::from(vec![1u64, 2, 3])),
        ]);
        assert_eq!(
            v.to_compact_string(),
            r#"{"loss":0.25,"name":"table2","ok":true,"seed":42,"skip":null,"xs":[1,2,3]}"#
        );
    }

    #[test]
    fn escapes_control_and_quote_chars() {
        let mut s = String::new();
        write_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).to_compact_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_compact_string(), "null");
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Json::object([("a", Json::UInt(1))]);
        assert_eq!(v.to_pretty_string(), "{\n  \"a\": 1\n}\n");
    }

    #[test]
    fn u64_is_exact() {
        assert_eq!(
            Json::UInt(u64::MAX).to_compact_string(),
            "18446744073709551615"
        );
    }
}
