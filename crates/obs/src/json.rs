//! A minimal JSON value model and writer for run manifests.
//!
//! The build environment pins dependencies to offline shims, so no JSON
//! serializer crate is available; manifests are small and write-only,
//! which this hand-rolled emitter covers. Numbers are emitted exactly
//! for `u64`/`i64` and via shortest-roundtrip `{:?}` formatting for
//! `f64`; non-finite floats become `null` to keep output valid JSON.

use std::collections::BTreeMap;
use std::fmt::Write;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (exact).
    UInt(u64),
    /// Signed integer (exact).
    Int(i64),
    /// Floating point; NaN / infinities serialize as `null`.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with deterministic (sorted) key order.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serialize compactly (no whitespace).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(map) if !map.is_empty() => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            _ => self.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    // {:?} gives shortest representation that round-trips,
                    // always with a decimal point or exponent.
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

/// Recursive-descent JSON parser (used by `bench_diff` and the overhead
/// gate to read checked-in `BENCH_*.json` artifacts back).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("json parse error at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err(&format!("expected `{lit}`"))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => self.parse_string().map(Json::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => self.err(&format!("unexpected byte `{}`", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return self.err("expected `,` or `]`");
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Object(map)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return self.err("expected `,` or `}`");
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return self.err("unterminated string"),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return self.err("truncated \\u escape");
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| "non-utf8 \\u escape".to_owned())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        self.pos += 4;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return self.err("bad escape"),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the full UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return self.err("invalid utf-8"),
                    };
                    if start + len > self.bytes.len() {
                        return self.err("truncated utf-8");
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| "invalid utf-8".to_owned())?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_owned())?;
        if integral {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("bad number `{text}`"))
    }
}

impl Json {
    /// Parse a JSON document. Integers that fit exactly become
    /// [`Json::UInt`] / [`Json::Int`]; everything else numeric becomes
    /// [`Json::Float`]. Errors carry the byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return p.err("trailing data");
        }
        Ok(v)
    }

    /// Object member access (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Numeric view of this value, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_is_valid_shapes() {
        let v = Json::object([
            ("name", Json::from("table2")),
            ("seed", Json::UInt(42)),
            ("ok", Json::Bool(true)),
            ("loss", Json::Float(0.25)),
            ("skip", Json::Null),
            ("xs", Json::from(vec![1u64, 2, 3])),
        ]);
        assert_eq!(
            v.to_compact_string(),
            r#"{"loss":0.25,"name":"table2","ok":true,"seed":42,"skip":null,"xs":[1,2,3]}"#
        );
    }

    #[test]
    fn escapes_control_and_quote_chars() {
        let mut s = String::new();
        write_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).to_compact_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_compact_string(), "null");
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Json::object([("a", Json::UInt(1))]);
        assert_eq!(v.to_pretty_string(), "{\n  \"a\": 1\n}\n");
    }

    #[test]
    fn parse_roundtrips_writer_output() {
        let v = Json::object([
            ("name", Json::from("table2")),
            ("seed", Json::UInt(42)),
            ("neg", Json::Int(-3)),
            ("ok", Json::Bool(true)),
            ("loss", Json::Float(0.25)),
            ("skip", Json::Null),
            ("xs", Json::from(vec![1u64, 2, 3])),
            ("s", Json::from("a\"b\\c\nd")),
            (
                "nested",
                Json::object([("k", Json::Float(1.5e-9)), ("m", Json::Array(vec![]))]),
            ),
        ]);
        for text in [v.to_compact_string(), v.to_pretty_string()] {
            assert_eq!(Json::parse(&text).expect("parse"), v);
        }
    }

    #[test]
    fn parse_number_classes() {
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("1.0").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_reads_checked_in_artifact_shapes() {
        let text = r#"{"runs":[{"threads":1,"p99_latency_units":999.0,"degraded_fraction":0.636}],"unicode":"µs é"}"#;
        let v = Json::parse(text).unwrap();
        let runs = match v.get("runs") {
            Some(Json::Array(xs)) => xs,
            other => panic!("unexpected: {other:?}"),
        };
        assert_eq!(
            runs[0].get("p99_latency_units").and_then(Json::as_f64),
            Some(999.0)
        );
        assert_eq!(v.get("unicode"), Some(&Json::Str("µs é".to_owned())));
    }

    #[test]
    fn u64_is_exact() {
        assert_eq!(
            Json::UInt(u64::MAX).to_compact_string(),
            "18446744073709551615"
        );
    }
}
