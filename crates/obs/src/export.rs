//! Chrome `trace_event` / Perfetto JSON export for [`crate::trace`]
//! records.
//!
//! The exporter emits the *virtual* clock only: timestamps and durations
//! are deterministic work units (1 unit = 1 µs in the viewer), so the
//! rendered file is byte-identical across runs and thread counts at the
//! same seed. Wall-clock nanoseconds ride along in `args` only when
//! `BF_TRACE_WALL=1`, which deliberately breaks byte-stability.
//!
//! Layout: one viewer thread lane per trace, lanes ordered by first
//! virtual activity. Traces whose spans carry a `shard` arg (requests
//! served by a fleet shard) group under a per-shard process (`pid` =
//! shard + 2, named `shard <k>`); everything else lives in the default
//! process (`pid` 1, `bigger-fish`), so a fleet timeline renders one
//! swimlane block per fault domain. Load the file at
//! <https://ui.perfetto.dev> or `chrome://tracing`.

use crate::json::Json;
use crate::trace::{self, ArgVal, SpanRec};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Deterministic total order on records: lane-major (see
/// [`lane_order`]), then start time, then tree position.
fn sort_records(records: &mut [SpanRec]) {
    records.sort_by(|a, b| {
        (a.trace_id, a.ts, a.depth, a.parent_id, a.seq, a.span_id, a.name).cmp(&(
            b.trace_id, b.ts, b.depth, b.parent_id, b.seq, b.span_id, b.name,
        ))
    });
}

/// Viewer-lane assignment: traces ordered by (first virtual timestamp,
/// trace_id), so concurrently active requests stack in arrival order.
fn lane_order(records: &[SpanRec]) -> BTreeMap<u64, u64> {
    let mut first_ts: BTreeMap<u64, u64> = BTreeMap::new();
    for r in records {
        let slot = first_ts.entry(r.trace_id).or_insert(u64::MAX);
        *slot = (*slot).min(r.ts);
    }
    let mut order: Vec<(u64, u64)> = first_ts.into_iter().map(|(id, ts)| (ts, id)).collect();
    order.sort_unstable();
    order
        .into_iter()
        .enumerate()
        .map(|(lane, (_, id))| (id, lane as u64 + 1))
        .collect()
}

/// Per-shard process grouping: a trace whose spans carry a `shard` arg
/// (set by fleet services on their request spans) renders under that
/// shard's process. Returns `trace_id → shard`.
fn shard_assignment(records: &[SpanRec]) -> BTreeMap<u64, u64> {
    let mut shards: BTreeMap<u64, u64> = BTreeMap::new();
    for r in records {
        for (k, v) in &r.args {
            if *k == "shard" {
                if let ArgVal::U(shard) = v {
                    shards.entry(r.trace_id).or_insert(*shard);
                }
            }
        }
    }
    shards
}

/// Viewer pid for a trace: shard-labelled traces get `shard + 2`,
/// everything else the default process 1.
fn pid_for(shards: &BTreeMap<u64, u64>, trace_id: u64) -> u64 {
    shards.get(&trace_id).map_or(1, |s| s + 2)
}

fn hex(id: u64) -> Json {
    Json::Str(format!("{id:#018x}"))
}

fn arg_json(v: &ArgVal) -> Json {
    match v {
        ArgVal::U(n) => Json::UInt(*n),
        ArgVal::F(x) => Json::Float(*x),
        ArgVal::S(s) => Json::Str(s.clone()),
    }
}

/// Render records as a Chrome `trace_event` JSON document.
///
/// `include_wall` adds `wall_start_ns` / `wall_dur_ns` args (and makes
/// the output machine- and run-dependent).
pub fn to_chrome_json(mut records: Vec<SpanRec>, include_wall: bool) -> Json {
    sort_records(&mut records);
    let lanes = lane_order(&records);
    let shards = shard_assignment(&records);
    let mut events: Vec<Json> = Vec::with_capacity(records.len() + lanes.len() + 1);

    events.push(Json::object([
        ("ph", Json::from("M")),
        ("name", Json::from("process_name")),
        ("pid", Json::UInt(1)),
        ("tid", Json::UInt(0)),
        ("args", Json::object([("name", Json::from("bigger-fish"))])),
    ]));
    let mut shard_pids: Vec<u64> = shards.values().copied().collect();
    shard_pids.sort_unstable();
    shard_pids.dedup();
    for shard in shard_pids {
        events.push(Json::object([
            ("ph", Json::from("M")),
            ("name", Json::from("process_name")),
            ("pid", Json::UInt(shard + 2)),
            ("tid", Json::UInt(0)),
            ("args", Json::object([("name", Json::Str(format!("shard {shard}")))])),
        ]));
    }
    let mut lane_meta: Vec<(u64, u64)> = lanes.iter().map(|(&id, &lane)| (lane, id)).collect();
    lane_meta.sort_unstable();
    for (lane, trace_id) in lane_meta {
        events.push(Json::object([
            ("ph", Json::from("M")),
            ("name", Json::from("thread_name")),
            ("pid", Json::UInt(pid_for(&shards, trace_id))),
            ("tid", Json::UInt(lane)),
            (
                "args",
                Json::object([("name", Json::Str(format!("trace {trace_id:#018x}")))]),
            ),
        ]));
    }

    for r in &records {
        let mut args: BTreeMap<String, Json> = BTreeMap::new();
        args.insert("trace_id".to_owned(), hex(r.trace_id));
        args.insert("span_id".to_owned(), hex(r.span_id));
        args.insert("parent_id".to_owned(), hex(r.parent_id));
        for (k, v) in &r.args {
            args.insert((*k).to_owned(), arg_json(v));
        }
        if include_wall {
            args.insert("wall_start_ns".to_owned(), Json::UInt(r.wall_start_ns));
            args.insert("wall_dur_ns".to_owned(), Json::UInt(r.wall_dur_ns));
        }
        events.push(Json::object([
            ("ph", Json::from("X")),
            ("name", Json::from(r.name)),
            ("cat", Json::from("bf")),
            ("pid", Json::UInt(pid_for(&shards, r.trace_id))),
            ("tid", Json::UInt(lanes.get(&r.trace_id).copied().unwrap_or(0))),
            ("ts", Json::UInt(r.ts)),
            ("dur", Json::UInt(r.dur)),
            ("args", Json::Object(args)),
        ]));
    }

    Json::object([
        ("displayTimeUnit", Json::from("ms")),
        ("traceEvents", Json::Array(events)),
    ])
}

/// Render records to the final JSON text (pretty, trailing newline).
pub fn render(records: Vec<SpanRec>, include_wall: bool) -> String {
    to_chrome_json(records, include_wall).to_pretty_string()
}

/// Should wall-clock args be included? (`BF_TRACE_WALL=1`.)
pub fn include_wall_from_env() -> bool {
    matches!(
        std::env::var("BF_TRACE_WALL").ok().as_deref(),
        Some("1") | Some("true") | Some("on")
    )
}

/// Where the trace file goes: `BF_TRACE_OUT` if set, else
/// `$BF_MANIFEST_DIR/trace-<tag>.json` (default `manifests/`).
pub fn out_path(tag: &str) -> PathBuf {
    if let Ok(p) = std::env::var("BF_TRACE_OUT") {
        if !p.is_empty() {
            return PathBuf::from(p);
        }
    }
    let dir = std::env::var("BF_MANIFEST_DIR").unwrap_or_else(|_| "manifests".to_owned());
    PathBuf::from(dir).join(format!("trace-{tag}.json"))
}

/// If tracing is enabled, drain all buffered records and write the
/// timeline to [`out_path`]. Returns the written path, or `None` when
/// tracing is off. IO failures are reported, not fatal.
pub fn write_if_enabled(tag: &str) -> Option<PathBuf> {
    if !trace::enabled() {
        return None;
    }
    let records = trace::drain();
    let n = records.len();
    let text = render(records, include_wall_from_env());
    let path = out_path(tag);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match std::fs::write(&path, text) {
        Ok(()) => {
            crate::info!("trace timeline ({n} spans) written to {}", path.display());
            Some(path)
        }
        Err(e) => {
            crate::error!("failed to write trace timeline: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace_id: u64, span_id: u64, parent_id: u64, name: &'static str, ts: u64, dur: u64) -> SpanRec {
        SpanRec {
            trace_id,
            span_id,
            parent_id,
            name,
            ts,
            dur,
            wall_start_ns: 123,
            wall_dur_ns: 456,
            depth: if parent_id == 0 { 1 } else { 2 },
            seq: 0,
            args: Vec::new(),
        }
    }

    #[test]
    fn export_shape_and_lane_assignment() {
        // Trace 7 starts later than trace 9 → trace 9 gets lane 1.
        let records = vec![
            rec(7, 71, 0, "request", 50, 10),
            rec(9, 91, 0, "request", 10, 30),
            rec(9, 92, 91, "collect", 12, 20),
        ];
        let json = to_chrome_json(records, false);
        let text = json.to_compact_string();
        assert!(text.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(text.contains("\"process_name\""));
        assert!(text.contains("\"thread_name\""));
        // Lane 1 belongs to trace 9 (earliest ts).
        let t9 = format!("trace {:#018x}", 9u64);
        let t7 = format!("trace {:#018x}", 7u64);
        assert!(text.find(&t9).unwrap() < text.find(&t7).unwrap());
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ts\":12"));
        // Wall args excluded by default.
        assert!(!text.contains("wall_start_ns"));
        let with_wall = render(
            vec![rec(1, 11, 0, "x", 0, 1)],
            true,
        );
        assert!(with_wall.contains("wall_start_ns"));
    }

    #[test]
    fn shard_labelled_traces_group_under_per_shard_processes() {
        let mut shard0 = rec(5, 51, 0, "request", 0, 10);
        shard0.args.push(("shard", ArgVal::U(0)));
        let mut shard3 = rec(6, 61, 0, "request", 5, 10);
        shard3.args.push(("shard", ArgVal::U(3)));
        // Child spans inherit the trace's shard via trace_id even
        // without their own `shard` arg.
        let child = rec(6, 62, 61, "collect", 6, 4);
        let unlabelled = rec(8, 81, 0, "fit", 20, 10);
        let json = to_chrome_json(vec![shard0, shard3, child, unlabelled], false);
        let text = json.to_compact_string();
        assert!(text.contains("\"name\":\"shard 0\""));
        assert!(text.contains("\"name\":\"shard 3\""));
        // shard 0 → pid 2, shard 3 → pid 5, unlabelled → pid 1.
        assert!(text.contains("\"name\":\"request\",\"ph\":\"X\",\"pid\":2"), "{text}");
        assert!(text.contains("\"name\":\"collect\",\"ph\":\"X\",\"pid\":5"), "{text}");
        assert!(text.contains("\"name\":\"fit\",\"ph\":\"X\",\"pid\":1"), "{text}");
    }

    #[test]
    fn render_is_deterministic_under_input_permutation() {
        let a = vec![
            rec(3, 31, 0, "request", 0, 9),
            rec(3, 32, 31, "collect", 1, 4),
            rec(4, 41, 0, "request", 2, 5),
        ];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(render(a, false), render(b, false));
    }
}
