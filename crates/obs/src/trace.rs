//! bf-trace: deterministic causal span trees with stable IDs.
//!
//! Flat span aggregates ([`crate::span`]) answer "how much time went to
//! `serve.collect` overall"; they cannot answer "which phase of request
//! 977 burned its deadline". This module adds per-request *trace trees*:
//!
//! * A [`TraceCtx`] `{ trace_id, span_id, parent_id }` identifies one
//!   node of one request's tree. IDs are derived **deterministically**
//!   from `(seed, request/trace index)` via a splitmix64 chain — never
//!   from wall clocks or RNG — so the same run at the same seed yields
//!   bit-identical trees regardless of `BF_THREADS`.
//! * Contexts propagate across `bf-par` fork-join workers: the spawner
//!   captures [`current`], each worker restores it with [`adopt_branch`]
//!   keyed by item index, and child span IDs stay collision-free because
//!   every branch owns a disjoint sequence-number namespace.
//! * Each finished span records **dual clocks**: a virtual timestamp /
//!   duration in deterministic work units (supplied by the caller from
//!   whatever virtual clock the subsystem has — serve ticks, cancel-token
//!   units, attempt ordinals) plus wall-clock nanoseconds measured here.
//!   Only the virtual clock is exported by default; see
//!   [`crate::export`].
//! * Records land in per-thread buffers and are folded into a process
//!   sink on flush/thread-exit, keeping the record path lock-free in the
//!   common case.
//!
//! Tracing is **off** unless `BF_TRACE=1` (or [`set_enabled`] in tests);
//! when off, every entry point is a single relaxed atomic load and no
//! allocation happens. `BF_TRACE_SAMPLE=N` keeps a deterministic ~1/N of
//! traces (selected by hashing the trace index, so the kept set is the
//! same across runs, machines, and thread counts).

use parking_lot::Mutex;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Identity of one node in one trace tree.
///
/// `span_id == 0` marks a *root* context: spans entered under it get
/// `parent_id == 0`, which the exporter treats as "top of the tree".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Stable identity of the whole tree (one per request / trace).
    pub trace_id: u64,
    /// This node's span ID (0 for the synthetic root context).
    pub span_id: u64,
    /// Parent span ID (0 at the top of the tree).
    pub parent_id: u64,
}

const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(GOLDEN);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministically combine two words (order-sensitive).
#[inline]
pub fn mix(a: u64, b: u64) -> u64 {
    splitmix64(a ^ splitmix64(b))
}

#[inline]
fn nonzero(x: u64) -> u64 {
    if x == 0 {
        GOLDEN
    } else {
        x
    }
}

/// FNV-1a over the span name, so IDs depend on the name as well as the
/// position in the tree.
#[inline]
fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl TraceCtx {
    /// The root context of the trace keyed by `(seed, index)` — e.g.
    /// `(request.seed, request.id)` in bf-serve or `(run_seed, trace
    /// index)` in batch collection.
    pub fn root(seed: u64, index: u64) -> TraceCtx {
        TraceCtx {
            trace_id: nonzero(mix(seed, index)),
            span_id: 0,
            parent_id: 0,
        }
    }
}

/// Stable trace ID for `(seed, index)` without building a context.
pub fn trace_id_for(seed: u64, index: u64) -> u64 {
    nonzero(mix(seed, index))
}

/// Sequence-number namespace base for branch `b` (see [`adopt_branch`]).
#[inline]
fn branch_base(branch: u64) -> u64 {
    (branch + 1) << 32
}

/// The context that the *first* `span_at(name, ..)` under
/// `adopt(Some(ctx), ..)` will mint. Lets code that finishes a request
/// elsewhere (e.g. a scheduler resolving on the main thread while
/// workers trace the collect stage) precompute the span every
/// participant should parent under, without passing IDs around.
pub fn first_child_ctx(ctx: TraceCtx, name: &str) -> TraceCtx {
    TraceCtx {
        trace_id: ctx.trace_id,
        span_id: span_id_for(&ctx, name, branch_base(0)),
        parent_id: ctx.span_id,
    }
}

#[inline]
fn span_id_for(parent: &TraceCtx, name: &str, seq: u64) -> u64 {
    nonzero(mix(mix(parent.trace_id ^ parent.span_id, name_hash(name)), seq))
}

// ---------------------------------------------------------------------------
// Enable / sampling state
// ---------------------------------------------------------------------------

const STATE_UNSET: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static ENABLED: AtomicU8 = AtomicU8::new(STATE_UNSET);
/// Sampling modulus; 0 = not yet read from the environment.
static SAMPLE: AtomicU64 = AtomicU64::new(0);

fn enabled_slow() -> bool {
    let on = matches!(
        std::env::var("BF_TRACE").ok().as_deref(),
        Some("1") | Some("true") | Some("on")
    );
    ENABLED.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Is tracing on? One relaxed atomic load after the first call.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => enabled_slow(),
    }
}

/// Force tracing on or off, overriding `BF_TRACE` (tests, benches).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Re-read `BF_TRACE` / `BF_TRACE_SAMPLE` on next use.
pub fn reload_env() {
    ENABLED.store(STATE_UNSET, Ordering::Relaxed);
    SAMPLE.store(0, Ordering::Relaxed);
}

fn sample_modulus() -> u64 {
    let n = SAMPLE.load(Ordering::Relaxed);
    if n != 0 {
        return n;
    }
    let n = crate::env::parse_or("BF_TRACE_SAMPLE", 1u64, "a positive integer").max(1);
    SAMPLE.store(n, Ordering::Relaxed);
    n
}

/// Override the sampling modulus (tests, benches).
pub fn set_sample(n: u64) {
    SAMPLE.store(n.max(1), Ordering::Relaxed);
}

/// Deterministic sampling decision for the trace keyed by `index`:
/// keeps ~1 in `BF_TRACE_SAMPLE` traces, the same set on every run and
/// thread count. Always true when sampling is 1 (the default).
pub fn sample_keep(index: u64) -> bool {
    let n = sample_modulus();
    n <= 1 || mix(index, 0x5a4d_9ced).is_multiple_of(n)
}

// ---------------------------------------------------------------------------
// Thread-local context stack + record buffers
// ---------------------------------------------------------------------------

struct Frame {
    ctx: TraceCtx,
    next_seq: u64,
}

/// One finished span, as buffered for export.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRec {
    /// Tree identity.
    pub trace_id: u64,
    /// This span's stable ID.
    pub span_id: u64,
    /// Parent span ID (0 at the top of the tree).
    pub parent_id: u64,
    /// Span name (static at every call site).
    pub name: &'static str,
    /// Virtual start timestamp (work units; deterministic).
    pub ts: u64,
    /// Virtual duration (work units; deterministic).
    pub dur: u64,
    /// Wall-clock start, ns since process trace epoch (non-deterministic).
    pub wall_start_ns: u64,
    /// Wall-clock duration in ns (non-deterministic).
    pub wall_dur_ns: u64,
    /// Nesting depth below the adopted root (deterministic).
    pub depth: u16,
    /// Sequence number within the parent's branch namespace.
    pub seq: u64,
    /// Extra key/value attributes.
    pub args: Vec<(&'static str, ArgVal)>,
}

/// Attribute value on a [`SpanRec`].
#[derive(Debug, Clone, PartialEq)]
pub enum ArgVal {
    /// Unsigned integer.
    U(u64),
    /// Float.
    F(f64),
    /// String.
    S(String),
}

struct ThreadBuf(Vec<SpanRec>);

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        flush_into_sink(&mut self.0);
    }
}

thread_local! {
    static FRAMES: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    static OFFSET: Cell<u64> = const { Cell::new(0) };
    static BUF: RefCell<ThreadBuf> = const { RefCell::new(ThreadBuf(Vec::new())) };
}

fn sink() -> &'static Mutex<Vec<SpanRec>> {
    static SINK: OnceLock<Mutex<Vec<SpanRec>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

fn flush_into_sink(buf: &mut Vec<SpanRec>) {
    if !buf.is_empty() {
        sink().lock().append(buf);
    }
}

/// Process epoch for the secondary wall clock.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn wall_now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Flush this thread's record buffer into the process sink.
pub fn flush_thread_buffer() {
    BUF.with(|b| flush_into_sink(&mut b.borrow_mut().0));
}

/// Take every buffered record (current thread's buffer is flushed first;
/// worker threads flush on exit, so call this after joins).
pub fn drain() -> Vec<SpanRec> {
    flush_thread_buffer();
    std::mem::take(&mut *sink().lock())
}

/// The innermost active context on this thread (the adopted base, or the
/// deepest open [`TraceSpan`]). This is what `bf-par` captures at spawn.
pub fn current() -> Option<TraceCtx> {
    if !enabled() {
        return None;
    }
    FRAMES.with(|f| f.borrow().last().map(|fr| fr.ctx))
}

/// This thread's virtual-clock offset: spans started now should use
/// `virtual_offset() + <local work units>` as their timestamp.
pub fn virtual_offset() -> u64 {
    OFFSET.get()
}

/// RAII guard restoring the previous context stack depth and offset.
#[derive(Debug)]
pub struct AdoptGuard {
    restore: Option<(usize, u64)>,
}

/// Install `ctx` as this thread's base context with virtual offset
/// `offset`. Returns an inert guard when tracing is off or `ctx` is
/// `None`.
pub fn adopt(ctx: Option<TraceCtx>, offset: u64) -> AdoptGuard {
    adopt_branch(ctx, offset, 0)
}

/// [`adopt`], but giving this adoption a disjoint child-sequence
/// namespace keyed by `branch` (e.g. a `par_map_indexed` item index), so
/// sibling branches restored on different workers mint non-colliding
/// span IDs without coordination.
pub fn adopt_branch(ctx: Option<TraceCtx>, offset: u64, branch: u64) -> AdoptGuard {
    let Some(ctx) = ctx else {
        return AdoptGuard { restore: None };
    };
    if !enabled() {
        return AdoptGuard { restore: None };
    }
    let depth = FRAMES.with(|f| {
        let mut f = f.borrow_mut();
        let depth = f.len();
        f.push(Frame {
            ctx,
            // Branch b owns sequence numbers [(b+1)<<32, (b+2)<<32).
            next_seq: branch_base(branch),
        });
        depth
    });
    let prev_offset = OFFSET.replace(offset);
    AdoptGuard {
        restore: Some((depth, prev_offset)),
    }
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        if let Some((depth, prev_offset)) = self.restore.take() {
            FRAMES.with(|f| f.borrow_mut().truncate(depth));
            OFFSET.set(prev_offset);
        }
    }
}

/// RAII guard adding `extra` to the thread's virtual offset (used to
/// spread sibling work items across the virtual timeline).
#[derive(Debug)]
pub struct OffsetGuard {
    prev: Option<u64>,
}

/// Add `extra` virtual units to the current offset until the guard drops.
pub fn offset_add(extra: u64) -> OffsetGuard {
    if !enabled() {
        return OffsetGuard { prev: None };
    }
    let prev = OFFSET.get();
    OFFSET.set(prev + extra);
    OffsetGuard { prev: Some(prev) }
}

impl Drop for OffsetGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            OFFSET.set(prev);
        }
    }
}

struct OpenSpan {
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    name: &'static str,
    ts: u64,
    wall_start_ns: u64,
    wall_start: Instant,
    depth: u16,
    seq: u64,
    frame_depth: usize,
    args: Vec<(&'static str, ArgVal)>,
}

/// An open span in the current trace tree. Inert (all methods no-ops)
/// when there is no active context. Must be closed with an explicit
/// virtual end timestamp via [`finish`](Self::finish); dropping an open
/// span records it with zero virtual duration.
#[derive(Debug)]
#[must_use = "hold the span and call finish(end_ts)"]
pub struct TraceSpan {
    open: Option<Box<OpenSpan>>,
}

impl std::fmt::Debug for OpenSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpenSpan")
            .field("name", &self.name)
            .field("span_id", &self.span_id)
            .finish()
    }
}

/// Enter a span named `name` at absolute virtual timestamp `ts`, as a
/// child of the innermost active context. Inert when tracing is off or
/// no context is adopted on this thread.
pub fn span_at(name: &'static str, ts: u64) -> TraceSpan {
    if !enabled() {
        return TraceSpan { open: None };
    }
    let open = FRAMES.with(|f| {
        let mut f = f.borrow_mut();
        let frame_depth = f.len();
        let parent = f.last_mut()?;
        let seq = parent.next_seq;
        parent.next_seq += 1;
        let ctx = parent.ctx;
        let span_id = span_id_for(&ctx, name, seq);
        let child = TraceCtx {
            trace_id: ctx.trace_id,
            span_id,
            parent_id: ctx.span_id,
        };
        f.push(Frame {
            ctx: child,
            next_seq: 0,
        });
        Some(Box::new(OpenSpan {
            trace_id: child.trace_id,
            span_id,
            parent_id: child.parent_id,
            name,
            ts,
            wall_start_ns: wall_now_ns(),
            wall_start: Instant::now(),
            depth: frame_depth.min(u16::MAX as usize) as u16,
            seq,
            frame_depth,
            args: Vec::new(),
        }))
    });
    TraceSpan { open }
}

/// Record a closed leaf span `[ts, ts + dur)` with no children.
pub fn leaf_at(name: &'static str, ts: u64, dur: u64) {
    span_at(name, ts).finish(ts + dur);
}

impl TraceSpan {
    /// Is this span actually recording?
    pub fn active(&self) -> bool {
        self.open.is_some()
    }

    /// The context of this span (children adopt it), if active.
    pub fn ctx(&self) -> Option<TraceCtx> {
        self.open.as_ref().map(|o| TraceCtx {
            trace_id: o.trace_id,
            span_id: o.span_id,
            parent_id: o.parent_id,
        })
    }

    /// Attach an unsigned-integer attribute.
    pub fn arg_u64(&mut self, key: &'static str, value: u64) -> &mut Self {
        if let Some(o) = self.open.as_mut() {
            o.args.push((key, ArgVal::U(value)));
        }
        self
    }

    /// Attach a float attribute.
    pub fn arg_f64(&mut self, key: &'static str, value: f64) -> &mut Self {
        if let Some(o) = self.open.as_mut() {
            o.args.push((key, ArgVal::F(value)));
        }
        self
    }

    /// Attach a string attribute.
    pub fn arg_str(&mut self, key: &'static str, value: &str) -> &mut Self {
        if let Some(o) = self.open.as_mut() {
            o.args.push((key, ArgVal::S(value.to_owned())));
        }
        self
    }

    /// Close the span at absolute virtual timestamp `end_ts` (clamped to
    /// the start timestamp) and buffer the record.
    pub fn finish(mut self, end_ts: u64) {
        self.close(Some(end_ts));
    }

    fn close(&mut self, end_ts: Option<u64>) {
        let Some(o) = self.open.take() else { return };
        FRAMES.with(|f| f.borrow_mut().truncate(o.frame_depth));
        let rec = SpanRec {
            trace_id: o.trace_id,
            span_id: o.span_id,
            parent_id: o.parent_id,
            name: o.name,
            ts: o.ts,
            dur: end_ts.map_or(0, |e| e.saturating_sub(o.ts)),
            wall_start_ns: o.wall_start_ns,
            wall_dur_ns: o.wall_start.elapsed().as_nanos() as u64,
            depth: o.depth,
            seq: o.seq,
            args: o.args,
        };
        BUF.with(|b| {
            let buf = &mut b.borrow_mut().0;
            buf.push(rec);
            if buf.len() >= 1024 {
                flush_into_sink(buf);
            }
        });
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        self.close(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enable flag, sampling modulus, and record sink are process
    // globals; tests touching them must not interleave.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn with_tracing<R>(f: impl FnOnce() -> R) -> R {
        let _lock = SERIAL.lock();
        set_enabled(true);
        let out = f();
        set_enabled(false);
        let _ = drain();
        out
    }

    #[test]
    fn ids_are_deterministic_and_seed_keyed() {
        let a = TraceCtx::root(42, 7);
        let b = TraceCtx::root(42, 7);
        let c = TraceCtx::root(42, 8);
        let d = TraceCtx::root(43, 7);
        assert_eq!(a, b);
        assert_ne!(a.trace_id, c.trace_id);
        assert_ne!(a.trace_id, d.trace_id);
        assert_eq!(a.span_id, 0);
        assert_eq!(a.parent_id, 0);
        assert_ne!(a.trace_id, 0);
    }

    #[test]
    fn disabled_tracing_is_inert() {
        let _lock = SERIAL.lock();
        set_enabled(false);
        let g = adopt(Some(TraceCtx::root(1, 1)), 0);
        assert!(g.restore.is_none());
        let s = span_at("x", 0);
        assert!(!s.active());
        s.finish(1);
        assert!(drain().is_empty());
    }

    #[test]
    fn span_tree_records_parentage_and_virtual_clocks() {
        with_tracing(|| {
            let root = TraceCtx::root(9, 1);
            {
                let _g = adopt(Some(root), 100);
                assert_eq!(virtual_offset(), 100);
                let mut outer = span_at("request", 100);
                let outer_ctx = outer.ctx().unwrap();
                assert_eq!(outer_ctx.parent_id, 0);
                outer.arg_u64("id", 1);
                let inner = span_at("collect", 110);
                let inner_ctx = inner.ctx().unwrap();
                assert_eq!(inner_ctx.parent_id, outer_ctx.span_id);
                assert_eq!(inner_ctx.trace_id, root.trace_id);
                inner.finish(150);
                outer.finish(200);
            }
            let recs = drain();
            assert_eq!(recs.len(), 2);
            let outer = recs.iter().find(|r| r.name == "request").unwrap();
            let inner = recs.iter().find(|r| r.name == "collect").unwrap();
            assert_eq!(outer.ts, 100);
            assert_eq!(outer.dur, 100);
            assert_eq!(inner.parent_id, outer.span_id);
            assert_eq!(inner.dur, 40);
            assert_eq!(outer.depth, 1);
            assert_eq!(inner.depth, 2);
            assert_eq!(
                outer.args,
                vec![("id", ArgVal::U(1))],
            );
        });
    }

    #[test]
    fn same_inputs_mint_same_span_ids() {
        let run = || {
            let _g = adopt(Some(TraceCtx::root(5, 3)), 0);
            let s = span_at("phase", 0);
            let id = s.ctx().unwrap().span_id;
            s.finish(10);
            id
        };
        let (a, b) = with_tracing(|| {
            let a = run();
            let _ = drain();
            let b = run();
            (a, b)
        });
        assert_eq!(a, b);
    }

    #[test]
    fn branch_namespaces_do_not_collide() {
        with_tracing(|| {
            let root = TraceCtx::root(11, 0);
            let mut ids = Vec::new();
            for branch in 0..4u64 {
                let _g = adopt_branch(Some(root), 0, branch);
                let s = span_at("item", branch);
                ids.push(s.ctx().unwrap().span_id);
                s.finish(branch + 1);
            }
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 4, "span ids must be unique across branches");
            let _ = drain();
        });
    }

    #[test]
    fn first_child_ctx_matches_actual_first_span() {
        with_tracing(|| {
            let root = TraceCtx::root(21, 4);
            let predicted = first_child_ctx(root, "request");
            let _g = adopt(Some(root), 0);
            let s = span_at("request", 0);
            let actual = s.ctx().unwrap();
            s.finish(5);
            assert_eq!(actual, predicted);
        });
    }

    #[test]
    fn sampling_is_deterministic() {
        let _lock = SERIAL.lock();
        set_sample(4);
        let kept: Vec<u64> = (0..100).filter(|&i| sample_keep(i)).collect();
        let again: Vec<u64> = (0..100).filter(|&i| sample_keep(i)).collect();
        assert_eq!(kept, again);
        assert!(!kept.is_empty() && kept.len() < 100);
        set_sample(1);
        assert!((0..100).all(sample_keep));
    }

    #[test]
    fn offset_guard_nests_and_restores() {
        with_tracing(|| {
            let _g = adopt(Some(TraceCtx::root(2, 2)), 50);
            assert_eq!(virtual_offset(), 50);
            {
                let _o = offset_add(8);
                assert_eq!(virtual_offset(), 58);
            }
            assert_eq!(virtual_offset(), 50);
        });
    }
}
