//! Strict, reporting environment-knob parsing.
//!
//! Every `BF_*` knob used to fail open silently: a typo'd
//! `BF_THREADS=fuor` or `BF_SCALE=small` was indistinguishable from the
//! knob being unset, and the run quietly used a default the operator did
//! not ask for. The helpers here keep the fail-open behaviour (a bad
//! value never aborts a run) but make the failure *loud exactly once*: the
//! first time a malformed value for a given variable is seen, an
//! [`error!`](crate::error) event names the variable, the rejected value,
//! and the accepted set. Subsequent reads of the same variable stay
//! silent so hot paths that re-resolve knobs don't spam the log.

use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::str::FromStr;
use std::sync::OnceLock;

fn warned_keys() -> &'static Mutex<BTreeSet<String>> {
    static WARNED: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Report an invalid value for environment variable `key` — at most once
/// per process per variable. Returns `true` when the event was emitted
/// (first offence), `false` when this key already warned.
pub fn warn_invalid(key: &str, value: &str, accepted: &str) -> bool {
    let fresh = warned_keys().lock().insert(key.to_owned());
    if fresh {
        crate::error!("{key}: ignoring invalid value `{value}` (accepted: {accepted})");
    }
    fresh
}

/// Forget which variables already warned, so tests can observe the
/// one-shot event again.
#[doc(hidden)]
pub fn reset_warnings() {
    warned_keys().lock().clear();
}

/// Read and parse environment variable `key`.
///
/// * unset → `None`, silently (an absent knob is not an error);
/// * parses → `Some(value)`;
/// * malformed → `None`, after a one-shot [`warn_invalid`] naming the
///   rejected value and `accepted`.
pub fn parse<T: FromStr>(key: &str, accepted: &str) -> Option<T> {
    let raw = std::env::var(key).ok()?;
    let trimmed = raw.trim();
    match trimmed.parse::<T>() {
        Ok(v) => Some(v),
        Err(_) => {
            warn_invalid(key, trimmed, accepted);
            None
        }
    }
}

/// [`parse`] with a fallback: unset *or* malformed yields `default`
/// (malformed values still warn once).
pub fn parse_or<T: FromStr>(key: &str, default: T, accepted: &str) -> T {
    parse(key, accepted).unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{begin_capture, end_capture};

    // Env-mutating tests share the process environment and the capture
    // sink with the rest of the obs suite.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn unset_is_silent_default() {
        let _lock = SERIAL.lock();
        std::env::remove_var("BF_TEST_UNSET_KNOB");
        reset_warnings();
        begin_capture();
        assert_eq!(parse_or("BF_TEST_UNSET_KNOB", 7u64, "an integer"), 7);
        let lines = end_capture();
        assert!(lines.is_empty(), "{lines:?}");
    }

    #[test]
    fn valid_value_parses_without_warning() {
        let _lock = SERIAL.lock();
        std::env::set_var("BF_TEST_VALID_KNOB", " 42 ");
        reset_warnings();
        begin_capture();
        assert_eq!(parse_or("BF_TEST_VALID_KNOB", 0u64, "an integer"), 42);
        let lines = end_capture();
        assert!(lines.is_empty(), "{lines:?}");
        std::env::remove_var("BF_TEST_VALID_KNOB");
    }

    #[test]
    fn malformed_value_warns_exactly_once_and_falls_back() {
        let _lock = SERIAL.lock();
        std::env::set_var("BF_TEST_BAD_KNOB", "fuor");
        reset_warnings();
        begin_capture();
        assert_eq!(parse_or("BF_TEST_BAD_KNOB", 4usize, "a positive integer"), 4);
        assert_eq!(parse_or("BF_TEST_BAD_KNOB", 4usize, "a positive integer"), 4);
        let lines = end_capture();
        let warnings: Vec<_> = lines.iter().filter(|l| l.contains("BF_TEST_BAD_KNOB")).collect();
        assert_eq!(warnings.len(), 1, "{lines:?}");
        assert!(warnings[0].contains("[error]"), "{warnings:?}");
        assert!(warnings[0].contains("`fuor`"), "{warnings:?}");
        assert!(warnings[0].contains("a positive integer"), "{warnings:?}");
        std::env::remove_var("BF_TEST_BAD_KNOB");
    }

    #[test]
    fn warn_invalid_is_per_key() {
        let _lock = SERIAL.lock();
        reset_warnings();
        begin_capture();
        assert!(warn_invalid("BF_TEST_KEY_A", "x", "set A"));
        assert!(warn_invalid("BF_TEST_KEY_B", "y", "set B"));
        assert!(!warn_invalid("BF_TEST_KEY_A", "z", "set A"));
        let lines = end_capture();
        assert_eq!(lines.len(), 2, "{lines:?}");
    }
}
