//! # bf-obs — observability for the bigger-fish pipeline
//!
//! One small crate gives every layer of the simulation → collection →
//! training pipeline the same three primitives:
//!
//! 1. **Leveled events and hierarchical spans** — `info!`/`debug!`/… macros
//!    filtered by the `BF_LOG` environment variable
//!    (`off|error|info|debug|trace`, default `info`), and [`span!`] guards
//!    that time scopes and nest into dotted paths (`table2.collect.site`).
//!    A disabled event costs one relaxed atomic load; nothing is formatted.
//! 2. **A thread-safe metrics registry** — counters, gauges, and base-2
//!    log-scale histograms, e.g. `sim.events_dispatched`,
//!    `sim.interrupts{kind=timer}`, `collect.traces`, `nn.epochs`,
//!    `ml.fold_seconds`. Hot loops tally locally
//!    ([`metrics::LocalHistogram`], plain integers) and flush once so the
//!    instrumented simulator stays within noise of the uninstrumented one.
//! 3. **Run manifests** — every experiment runner records config, seed,
//!    scale, per-phase wall-clock timing, span statistics, and the metric
//!    delta of the run, then writes JSON to `$BF_MANIFEST_DIR`
//!    (default `manifests/`) via [`manifest::ManifestBuilder`].
//!
//! The crate depends only on `parking_lot` and `serde`, keeping it safe to
//! pull into every other workspace crate.

pub mod env;
pub mod event;
pub mod export;
pub mod json;
pub mod level;
pub mod manifest;
pub mod metrics;
pub mod span;
pub mod trace;

pub use event::{begin_capture, end_capture};
pub use json::Json;
pub use level::{enabled, max_level, set_level, Level};
pub use manifest::{ManifestBuilder, PhaseTiming, RunManifest};
pub use metrics::{
    counter, gauge, histogram, Counter, Exemplar, Gauge, HistogramSnapshot, LocalHistogram,
    LogHistogram, MetricsSnapshot, Registry,
};
pub use span::{span, SpanGuard, SpanStats};
pub use trace::TraceCtx;

#[cfg(test)]
mod tests {
    use super::*;

    // These tests mutate the process-wide level filter and sink.
    static SERIAL: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

    /// Level filtering, event capture, and span nesting interact through
    /// global state, so exercise them in one test to avoid interleaving.
    #[test]
    fn level_filter_gates_events_and_spans_nest() {
        let _lock = SERIAL.lock();
        begin_capture();

        set_level(Some(Level::Info));
        info!("kept");
        debug!("dropped");
        error!("also kept");

        set_level(Some(Level::Debug));
        {
            let _outer = span!("lvl_test");
            let _inner = span!("inner");
            debug!("now visible at {}", span::current_path().unwrap());
        }

        set_level(None); // off
        error!("silenced");

        set_level(Some(Level::Info)); // restore default-ish
        let lines = end_capture();
        assert!(lines.iter().any(|l| l.contains("[info] kept")), "{lines:?}");
        assert!(lines.iter().any(|l| l.contains("[error] also kept")));
        assert!(!lines.iter().any(|l| l.contains("dropped")));
        assert!(!lines.iter().any(|l| l.contains("silenced")));
        assert!(
            lines
                .iter()
                .any(|l| l.contains("lvl_test.inner") && l.contains("now visible")),
            "span path missing: {lines:?}"
        );
    }

    #[test]
    fn disabled_levels_report_not_enabled() {
        let _lock = SERIAL.lock();
        set_level(Some(Level::Error));
        assert!(enabled(Level::Error));
        assert!(!enabled(Level::Trace));
        assert_eq!(max_level(), Some(Level::Error));
        set_level(Some(Level::Info));
    }
}
