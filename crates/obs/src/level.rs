//! Verbosity levels and the `BF_LOG` environment filter.

use std::sync::atomic::{AtomicU8, Ordering};

/// Event verbosity, ordered from most to least important.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or surprising conditions.
    Error = 1,
    /// Coarse progress: phase starts, per-site collection, per-fold CV.
    Info = 2,
    /// Fine progress: per-trace, per-epoch detail.
    Debug = 3,
    /// Noise: span enter/exit, per-event detail.
    Trace = 4,
}

impl Level {
    /// Lowercase name as used in `BF_LOG`.
    pub fn label(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Sentinel: filter not yet initialized from the environment.
const UNSET: u8 = u8::MAX;
/// Numeric value of "no events at all".
const OFF: u8 = 0;

/// The process-wide maximum enabled level (0 = off, 1..=4 = Level).
static MAX_LEVEL: AtomicU8 = AtomicU8::new(UNSET);

fn parse(value: &str) -> u8 {
    match value.trim().to_ascii_lowercase().as_str() {
        "off" | "none" | "0" => OFF,
        "error" | "1" => Level::Error as u8,
        "info" | "warn" | "2" => Level::Info as u8,
        "debug" | "3" => Level::Debug as u8,
        "trace" | "4" => Level::Trace as u8,
        other => {
            eprintln!("[bf-obs] unrecognized BF_LOG={other:?}; defaulting to `info`");
            Level::Info as u8
        }
    }
}

#[cold]
fn init_from_env() -> u8 {
    let level = match std::env::var("BF_LOG") {
        Ok(v) => parse(&v),
        Err(_) => Level::Info as u8,
    };
    MAX_LEVEL.store(level, Ordering::Relaxed);
    level
}

#[inline]
fn current() -> u8 {
    let v = MAX_LEVEL.load(Ordering::Relaxed);
    if v == UNSET {
        init_from_env()
    } else {
        v
    }
}

/// Whether events at `level` are currently emitted. One relaxed atomic
/// load on the hot path.
#[inline]
pub fn enabled(level: Level) -> bool {
    level as u8 <= current()
}

/// The currently enabled maximum level, or `None` when logging is off.
pub fn max_level() -> Option<Level> {
    match current() {
        1 => Some(Level::Error),
        2 => Some(Level::Info),
        3 => Some(Level::Debug),
        4 => Some(Level::Trace),
        _ => None,
    }
}

/// Override the level filter programmatically (tests, embedding). `None`
/// silences all events, like `BF_LOG=off`.
pub fn set_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map_or(OFF, |l| l as u8), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_names_and_numbers() {
        assert_eq!(parse("off"), 0);
        assert_eq!(parse("ERROR"), 1);
        assert_eq!(parse("info"), 2);
        assert_eq!(parse(" debug "), 3);
        assert_eq!(parse("trace"), 4);
        assert_eq!(parse("4"), 4);
    }

    #[test]
    fn unknown_value_falls_back_to_info() {
        assert_eq!(parse("verbose"), Level::Info as u8);
    }

    #[test]
    fn ordering_matches_verbosity() {
        assert!(Level::Error < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }
}
