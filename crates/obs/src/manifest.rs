//! Run manifests: a JSON record of what an experiment runner did —
//! config, seed, scale, per-phase wall-clock timing, span statistics,
//! and a delta snapshot of every metric touched during the run.
//!
//! Builders take a metrics snapshot at construction and subtract it at
//! [`ManifestBuilder::finish`], so several experiments in one process
//! (e.g. the `all` bin) each report only their own activity.

use crate::json::Json;
use crate::metrics::{self, HistogramSnapshot, MetricValue, MetricsSnapshot};
use crate::span::{drain_span_stats, SpanStats};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Wall-clock timing of one named phase of a run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PhaseTiming {
    /// Phase name (`collect`, `train`, `evaluate`, …).
    pub name: String,
    /// Elapsed wall-clock seconds.
    pub seconds: f64,
}

/// The complete record of one experiment run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunManifest {
    /// Runner name (`table2`, `figure6`, …).
    pub name: String,
    /// Experiment scale label (`smoke`, `default`, `paper`).
    pub scale: String,
    /// Base RNG seed.
    pub seed: u64,
    /// Free-form configuration key/value pairs.
    pub config: BTreeMap<String, String>,
    /// Unix timestamp (seconds) when the run started.
    pub started_unix: u64,
    /// Total wall-clock seconds.
    pub total_seconds: f64,
    /// Per-phase wall-clock timings, in execution order.
    pub phases: Vec<PhaseTiming>,
    /// Delta of every metric over the run (counters/histograms are
    /// run-local; gauges report their final value).
    pub metrics: MetricsSnapshot,
    /// Aggregate span timings recorded during the run.
    pub spans: BTreeMap<String, SpanStats>,
}

impl RunManifest {
    /// Render as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("name", Json::from(self.name.as_str())),
            ("scale", Json::from(self.scale.as_str())),
            ("seed", Json::UInt(self.seed)),
            (
                "config",
                Json::Object(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(v.as_str())))
                        .collect(),
                ),
            ),
            ("started_unix", Json::UInt(self.started_unix)),
            ("total_seconds", Json::Float(self.total_seconds)),
            (
                "phases",
                Json::Array(
                    self.phases
                        .iter()
                        .map(|p| {
                            Json::object([
                                ("name", Json::from(p.name.as_str())),
                                ("seconds", Json::Float(p.seconds)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "metrics",
                Json::Object(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), metric_to_json(v)))
                        .collect(),
                ),
            ),
            (
                "spans",
                Json::Object(
                    self.spans
                        .iter()
                        .map(|(k, s)| {
                            (
                                k.clone(),
                                Json::object([
                                    ("count", Json::UInt(s.count)),
                                    ("total_seconds", Json::Float(s.total_seconds)),
                                    ("min_seconds", Json::Float(s.min_seconds)),
                                    ("p50_seconds", Json::Float(s.p50_seconds())),
                                    ("p99_seconds", Json::Float(s.p99_seconds())),
                                    ("max_seconds", Json::Float(s.max_seconds)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Pretty-printed JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty_string()
    }

    /// Write the manifest under `dir` as `<name>-<scale>-seed<seed>.json`,
    /// creating the directory if needed. Returns the written path.
    pub fn write_to_dir(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!(
            "{}-{}-seed{}.json",
            self.name, self.scale, self.seed
        ));
        std::fs::write(&path, self.to_json_string())?;
        Ok(path)
    }

    /// Write to the directory named by `BF_MANIFEST_DIR` (default
    /// `manifests/`). Returns the written path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = std::env::var("BF_MANIFEST_DIR").unwrap_or_else(|_| "manifests".to_owned());
        self.write_to_dir(Path::new(&dir))
    }
}

fn histogram_to_json(h: &HistogramSnapshot) -> Json {
    let nonzero: BTreeMap<String, Json> = h
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| {
            (
                format!("{:.3e}", metrics::bucket_lower_edge(i)),
                Json::UInt(c),
            )
        })
        .collect();
    let exemplars: Vec<Json> = h
        .exemplars
        .iter()
        .map(|e| {
            Json::object([
                ("value", Json::Float(e.value)),
                ("trace_id", Json::Str(format!("{:#018x}", e.trace_id))),
            ])
        })
        .collect();
    Json::object([
        ("count", Json::UInt(h.count)),
        ("sum", Json::Float(h.sum)),
        ("mean", Json::Float(h.mean())),
        ("min", h.min.into()),
        ("max", h.max.into()),
        ("p50", h.quantile(0.5).into()),
        ("p99", h.quantile(0.99).into()),
        ("buckets", Json::Object(nonzero)),
        ("exemplars", Json::Array(exemplars)),
    ])
}

fn metric_to_json(v: &MetricValue) -> Json {
    match v {
        MetricValue::Counter(n) => Json::UInt(*n),
        MetricValue::Gauge(x) => Json::Float(*x),
        MetricValue::Histogram(h) => histogram_to_json(h),
    }
}

/// Accumulates one run's manifest; create at runner start, call
/// [`finish`](Self::finish) (or [`finish_and_write`](Self::finish_and_write))
/// at the end.
#[derive(Debug)]
pub struct ManifestBuilder {
    name: String,
    scale: String,
    seed: u64,
    config: BTreeMap<String, String>,
    started_unix: u64,
    start: Instant,
    baseline: MetricsSnapshot,
    phases: Vec<PhaseTiming>,
}

impl ManifestBuilder {
    /// Start building a manifest for runner `name`. Takes the metrics
    /// baseline snapshot and clears accumulated span statistics so the
    /// manifest covers only this run.
    pub fn new(name: &str, scale: &str, seed: u64) -> Self {
        drain_span_stats();
        ManifestBuilder {
            name: name.to_owned(),
            scale: scale.to_owned(),
            seed,
            config: BTreeMap::new(),
            started_unix: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            start: Instant::now(),
            baseline: metrics::global().snapshot(),
            phases: Vec::new(),
        }
    }

    /// Record a configuration key/value pair.
    pub fn config(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
        self.config.insert(key.to_owned(), value.to_string());
        self
    }

    /// Run `f` as a named phase, timing it and opening a span of the
    /// same name.
    pub fn phase<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let _span = crate::span::span(name);
        crate::info!("phase `{name}` starting");
        let start = Instant::now();
        let out = f();
        let seconds = start.elapsed().as_secs_f64();
        crate::info!("phase `{name}` done in {seconds:.3} s");
        self.phases.push(PhaseTiming {
            name: name.to_owned(),
            seconds,
        });
        out
    }

    /// Record a phase timed externally.
    pub fn record_phase(&mut self, name: &str, seconds: f64) -> &mut Self {
        self.phases.push(PhaseTiming {
            name: name.to_owned(),
            seconds,
        });
        self
    }

    /// Close the run: compute the metric delta against the baseline and
    /// collect span statistics.
    pub fn finish(self) -> RunManifest {
        let now = metrics::global().snapshot();
        RunManifest {
            name: self.name,
            scale: self.scale,
            seed: self.seed,
            config: self.config,
            started_unix: self.started_unix,
            total_seconds: self.start.elapsed().as_secs_f64(),
            phases: self.phases,
            metrics: metrics::snapshot_delta(&now, &self.baseline),
            spans: drain_span_stats(),
        }
    }

    /// [`finish`](Self::finish), write via [`RunManifest::write`], and
    /// report the path at info level. IO errors are reported, not fatal.
    pub fn finish_and_write(self) -> RunManifest {
        let manifest = self.finish();
        match manifest.write() {
            Ok(path) => crate::info!("run manifest written to {}", path.display()),
            Err(e) => crate::error!("failed to write run manifest: {e}"),
        }
        manifest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Builders drain the global span table, so tests that build
    // manifests must not interleave.
    static SERIAL: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

    #[test]
    fn manifest_reports_run_local_metric_delta() {
        let _lock = SERIAL.lock();
        metrics::counter("manifest_test.pre").add(100);
        let mut b = ManifestBuilder::new("unit", "smoke", 7);
        b.config("sites", 3);
        let out = b.phase("work", || {
            metrics::counter("manifest_test.pre").add(5);
            metrics::counter("manifest_test.inner").inc();
            21 * 2
        });
        assert_eq!(out, 42);
        let m = b.finish();
        assert_eq!(m.name, "unit");
        assert_eq!(m.seed, 7);
        assert_eq!(m.config.get("sites").map(String::as_str), Some("3"));
        assert_eq!(m.phases.len(), 1);
        assert_eq!(m.phases[0].name, "work");
        match m.metrics.get("manifest_test.pre") {
            Some(MetricValue::Counter(n)) => assert_eq!(*n, 5),
            other => panic!("unexpected: {other:?}"),
        }
        assert!(m.spans.contains_key("work"));
    }

    #[test]
    fn manifest_json_contains_required_fields() {
        let _lock = SERIAL.lock();
        let mut b = ManifestBuilder::new("jsonny", "default", 42);
        b.phase("only", || ());
        let text = b.finish().to_json_string();
        for needle in [
            "\"name\": \"jsonny\"",
            "\"scale\": \"default\"",
            "\"seed\": 42",
            "\"phases\"",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }

    #[test]
    fn manifest_writes_to_dir() {
        let _lock = SERIAL.lock();
        let dir = std::env::temp_dir().join("bf_obs_manifest_test");
        let b = ManifestBuilder::new("writer", "smoke", 1);
        let m = b.finish();
        let path = m.write_to_dir(&dir).expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(text.contains("\"writer\""));
        let _ = std::fs::remove_file(path);
    }
}
