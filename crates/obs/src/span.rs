//! Hierarchical spans: scoped wall-clock timers that nest into dotted
//! paths (`table2.collect.site` …) and feed per-span aggregate timing
//! statistics into the run manifest.
//!
//! A [`SpanGuard`] pushes its *interned path ID* onto a thread-local
//! stack on entry and pops on drop, recording the elapsed wall-clock
//! time under the full dotted path. Paths are interned in a process-wide
//! trie keyed by (parent ID, name), so the steady-state enter/exit path
//! performs **no heap allocation**: strings are built once, the first
//! time a path is seen, and thereafter a span is a `u32` push plus a
//! stats update. Stats accumulate per path ID, which
//! [`drain_span_stats`] snapshots for manifests.

use crate::level::{enabled, Level};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

thread_local! {
    static SPAN_STACK: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

/// Fixed log-scale bucket count for per-span latency spread.
pub const SPAN_HIST_BUCKETS: usize = 40;
/// Bucket index = floor(log2(seconds)) + offset: covers ~1 ns to ~17 min.
const SPAN_EXP_OFFSET: i32 = 30;

#[inline]
fn span_bucket_of(secs: f64) -> usize {
    if secs <= 0.0 || !secs.is_finite() {
        return 0;
    }
    let exp = ((secs.to_bits() >> 52) & 0x7ff) as i32 - 1023 + SPAN_EXP_OFFSET;
    exp.clamp(0, SPAN_HIST_BUCKETS as i32 - 1) as usize
}

/// Lower edge of span-histogram bucket `i`, in seconds.
pub fn span_bucket_lower_edge(i: usize) -> f64 {
    ((i as i32 - SPAN_EXP_OFFSET) as f64).exp2()
}

/// Aggregate wall-clock statistics for one span path: count, total,
/// min/max, and a fixed-bucket log histogram for streaming p50/p99.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SpanStats {
    /// Number of completed spans at this path.
    pub count: u64,
    /// Total wall-clock seconds across all completions.
    pub total_seconds: f64,
    /// Longest single completion, in seconds.
    pub max_seconds: f64,
    /// Shortest single completion, in seconds (0 when no completions).
    pub min_seconds: f64,
    /// Base-2 log-scale latency buckets ([`SPAN_HIST_BUCKETS`] wide).
    pub buckets: Vec<u64>,
}

impl Default for SpanStats {
    fn default() -> Self {
        Self::empty()
    }
}

impl SpanStats {
    /// Stats with no completions.
    pub fn empty() -> Self {
        SpanStats {
            count: 0,
            total_seconds: 0.0,
            max_seconds: 0.0,
            min_seconds: 0.0,
            buckets: vec![0; SPAN_HIST_BUCKETS], // alloc-ok: once per distinct span path
        }
    }

    fn record(&mut self, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        self.min_seconds = if self.count == 0 {
            secs
        } else {
            self.min_seconds.min(secs)
        };
        self.count += 1;
        self.total_seconds += secs;
        self.max_seconds = self.max_seconds.max(secs);
        self.buckets[span_bucket_of(secs)] += 1;
    }

    /// Mean seconds per completion (0 when empty).
    pub fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_seconds / self.count as f64
        }
    }

    /// Approximate quantile in seconds from the log buckets (geometric
    /// bucket midpoint), `q` in `[0, 1]`. `None` when empty.
    pub fn quantile_seconds(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(span_bucket_lower_edge(i) * std::f64::consts::SQRT_2);
            }
        }
        Some(self.max_seconds)
    }

    /// Streaming median estimate (0 when empty).
    pub fn p50_seconds(&self) -> f64 {
        self.quantile_seconds(0.5).unwrap_or(0.0)
    }

    /// Streaming p99 estimate (0 when empty).
    pub fn p99_seconds(&self) -> f64 {
        self.quantile_seconds(0.99).unwrap_or(0.0)
    }
}

/// One node of the span-path trie: full dotted path, child lookup by
/// name, and accumulated stats. Node 0 is the root sentinel.
struct PathNode {
    path: String,
    children: HashMap<String, u32>,
    stats: SpanStats,
}

struct PathTable {
    nodes: Vec<PathNode>,
}

impl PathTable {
    fn new() -> Self {
        PathTable {
            nodes: vec![PathNode { // alloc-ok: table construction, once per process
                path: String::new(),
                children: HashMap::new(),
                stats: SpanStats::empty(),
            }],
        }
    }

    /// Child of `parent` named `name`, interning on first sight. The
    /// hit path (steady state) allocates nothing: the name is looked up
    /// by `&str` against the interned `String` keys.
    fn child_of(&mut self, parent: u32, name: &str) -> u32 {
        if let Some(&id) = self.nodes[parent as usize].children.get(name) {
            return id;
        }
        let parent_path = &self.nodes[parent as usize].path;
        let path = if parent_path.is_empty() {
            name.to_owned()
        } else {
            format!("{parent_path}.{name}")
        };
        let id = self.nodes.len() as u32;
        self.nodes.push(PathNode {
            path,
            children: HashMap::new(),
            stats: SpanStats::empty(),
        });
        self.nodes[parent as usize]
            .children
            .insert(name.to_owned(), id);
        id
    }
}

fn span_table() -> &'static Mutex<PathTable> {
    static TABLE: OnceLock<Mutex<PathTable>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(PathTable::new()))
}

fn collect_stats(table: &mut PathTable, drain: bool) -> BTreeMap<String, SpanStats> {
    table
        .nodes
        .iter_mut()
        .filter(|n| n.stats.count > 0)
        .map(|n| {
            let stats = if drain {
                std::mem::take(&mut n.stats)
            } else {
                n.stats.clone()
            };
            (n.path.clone(), stats)
        })
        .collect() // alloc-ok: manifest snapshot path, not per-span
}

/// Snapshot the accumulated per-path span statistics.
pub fn span_stats() -> BTreeMap<String, SpanStats> {
    collect_stats(&mut span_table().lock(), false)
}

/// Snapshot and clear the accumulated span statistics (used by manifest
/// builders so consecutive experiments in one process don't bleed into
/// each other). Interned paths persist; only the stats reset.
pub fn drain_span_stats() -> BTreeMap<String, SpanStats> {
    collect_stats(&mut span_table().lock(), true)
}

/// The dotted path of the innermost active span on this thread, if any.
pub fn current_path() -> Option<String> {
    let id = SPAN_STACK.with(|s| s.borrow().last().copied())?;
    Some(span_table().lock().nodes[id as usize].path.clone())
}

/// RAII guard for one span. Created by [`span`] or the `span!` macro.
#[derive(Debug)]
pub struct SpanGuard {
    id: u32,
    start: Instant,
}

/// Enter a span named `name`, nested under the thread's current span.
/// Steady-state cost is one mutex-guarded trie lookup and a `u32` push —
/// no heap allocation after the first time a path is seen.
pub fn span(name: &str) -> SpanGuard {
    let parent = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
    let id = span_table().lock().child_of(parent, name);
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
    if enabled(Level::Trace) {
        crate::event::emit(Level::Trace, &path_of(id), "enter");
    }
    SpanGuard {
        id,
        start: Instant::now(),
    }
}

fn path_of(id: u32) -> String {
    span_table().lock().nodes[id as usize].path.clone()
}

impl SpanGuard {
    /// The full dotted path of this span.
    pub fn path(&self) -> String {
        path_of(self.id)
    }

    /// Elapsed wall-clock time since entry.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
        span_table().lock().nodes[self.id as usize]
            .stats
            .record(elapsed);
        if enabled(Level::Trace) {
            crate::event::emit(
                Level::Trace,
                &path_of(self.id),
                &format!("exit ({:.3} ms)", elapsed.as_secs_f64() * 1e3),
            );
        }
    }
}

/// Enter a span; the guard keeps it open until dropped.
///
/// ```
/// let _span = bf_obs::span!("collect");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::span($name)
    };
    ($fmt:expr, $($arg:tt)+) => {
        $crate::span::span(&format!($fmt, $($arg)+))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_into_dotted_paths() {
        let _a = span("outer_test_span");
        assert_eq!(current_path().as_deref(), Some("outer_test_span"));
        {
            let b = span("inner");
            assert_eq!(b.path(), "outer_test_span.inner");
            assert_eq!(current_path().as_deref(), Some("outer_test_span.inner"));
        }
        assert_eq!(current_path().as_deref(), Some("outer_test_span"));
    }

    #[test]
    fn stats_accumulate_per_path() {
        // Other tests (and manifest builders) may drain the global table
        // concurrently, so retry until a snapshot observes our records.
        let mut observed = None;
        for _ in 0..8 {
            for _ in 0..3 {
                let _s = span("stats_accumulate_probe");
                std::hint::black_box(0u64);
            }
            if let Some(s) = span_stats().get("stats_accumulate_probe") {
                observed = Some(s.clone());
                break;
            }
        }
        let s = observed.expect("recorded");
        assert!(s.count >= 1);
        assert!(s.total_seconds >= 0.0);
        assert!(s.max_seconds <= s.total_seconds + 1e-9);
        assert!(s.min_seconds <= s.max_seconds);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        assert!(s.p50_seconds() >= 0.0);
        assert!(s.p99_seconds() >= s.p50_seconds() - 1e-12);
    }

    #[test]
    fn span_quantiles_track_distribution() {
        let mut s = SpanStats::empty();
        for _ in 0..90 {
            s.record(Duration::from_micros(100));
        }
        for _ in 0..10 {
            s.record(Duration::from_millis(100));
        }
        assert_eq!(s.count, 100);
        assert!((s.min_seconds - 1e-4).abs() < 1e-6);
        let p50 = s.p50_seconds();
        let p99 = s.p99_seconds();
        assert!(p50 < 1e-3, "p50 {p50} should sit near 100 µs");
        assert!(p99 > 5e-2, "p99 {p99} should sit near 100 ms");
    }

    #[test]
    fn interned_paths_are_stable_across_drain() {
        let mut drained = false;
        for _ in 0..8 {
            {
                let _s = span("drain_probe");
            }
            if drain_span_stats().contains_key("drain_probe") {
                drained = true;
                break;
            }
        }
        assert!(drained, "drain should observe the recorded path");
        let mut seen_again = false;
        for _ in 0..8 {
            {
                let _s = span("drain_probe");
            }
            if span_stats().contains_key("drain_probe") {
                seen_again = true;
                break;
            }
        }
        assert!(seen_again, "path must be re-recordable after drain");
    }
}
