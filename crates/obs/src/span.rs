//! Hierarchical spans: scoped wall-clock timers that nest into dotted
//! paths (`table2.collect.site` …) and feed per-span aggregate timing
//! statistics into the run manifest.
//!
//! A [`SpanGuard`] pushes its name onto a thread-local stack on entry
//! and pops on drop, recording the elapsed wall-clock time under the
//! full dotted path. Stats accumulate in a process-wide table keyed by
//! path, which [`drain_span_stats`] snapshots for manifests.

use crate::level::{enabled, Level};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Aggregate wall-clock statistics for one span path.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SpanStats {
    /// Number of completed spans at this path.
    pub count: u64,
    /// Total wall-clock seconds across all completions.
    pub total_seconds: f64,
    /// Longest single completion, in seconds.
    pub max_seconds: f64,
}

impl SpanStats {
    fn record(&mut self, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        self.count += 1;
        self.total_seconds += secs;
        self.max_seconds = self.max_seconds.max(secs);
    }
}

fn span_table() -> &'static Mutex<BTreeMap<String, SpanStats>> {
    static TABLE: OnceLock<Mutex<BTreeMap<String, SpanStats>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Snapshot the accumulated per-path span statistics.
pub fn span_stats() -> BTreeMap<String, SpanStats> {
    span_table().lock().clone()
}

/// Snapshot and clear the accumulated span statistics (used by manifest
/// builders so consecutive experiments in one process don't bleed into
/// each other).
pub fn drain_span_stats() -> BTreeMap<String, SpanStats> {
    std::mem::take(&mut *span_table().lock())
}

/// The dotted path of the innermost active span on this thread, if any.
pub fn current_path() -> Option<String> {
    SPAN_STACK.with(|s| {
        let s = s.borrow();
        if s.is_empty() {
            None
        } else {
            Some(s.join("."))
        }
    })
}

/// RAII guard for one span. Created by [`span`] or the `span!` macro.
#[derive(Debug)]
pub struct SpanGuard {
    path: String,
    start: Instant,
}

/// Enter a span named `name`, nested under the thread's current span.
pub fn span(name: &str) -> SpanGuard {
    let path = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.push(name.to_owned());
        s.join(".")
    });
    if enabled(Level::Trace) {
        crate::event::emit(Level::Trace, &path, "enter");
    }
    SpanGuard {
        path,
        start: Instant::now(),
    }
}

impl SpanGuard {
    /// The full dotted path of this span.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Elapsed wall-clock time since entry.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
        span_table()
            .lock()
            .entry(self.path.clone())
            .or_insert(SpanStats {
                count: 0,
                total_seconds: 0.0,
                max_seconds: 0.0,
            })
            .record(elapsed);
        if enabled(Level::Trace) {
            crate::event::emit(
                Level::Trace,
                &self.path,
                &format!("exit ({:.3} ms)", elapsed.as_secs_f64() * 1e3),
            );
        }
    }
}

/// Enter a span; the guard keeps it open until dropped.
///
/// ```
/// let _span = bf_obs::span!("collect");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::span($name)
    };
    ($fmt:expr, $($arg:tt)+) => {
        $crate::span::span(&format!($fmt, $($arg)+))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_into_dotted_paths() {
        assert_eq!(current_path(), None);
        let _a = span("outer_test_span");
        assert_eq!(current_path().as_deref(), Some("outer_test_span"));
        {
            let b = span("inner");
            assert_eq!(b.path(), "outer_test_span.inner");
            assert_eq!(current_path().as_deref(), Some("outer_test_span.inner"));
        }
        assert_eq!(current_path().as_deref(), Some("outer_test_span"));
    }

    #[test]
    fn stats_accumulate_per_path() {
        for _ in 0..3 {
            let _s = span("stats_accumulate_probe");
            std::hint::black_box(0u64);
        }
        let stats = span_stats();
        let s = stats.get("stats_accumulate_probe").expect("recorded");
        assert!(s.count >= 3);
        assert!(s.total_seconds >= 0.0);
        assert!(s.max_seconds <= s.total_seconds + 1e-9);
    }
}
