//! Property-based invariants for the observability primitives.

use bf_obs::metrics::{HistogramSnapshot, LogHistogram};
use proptest::prelude::*;

fn observations(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1e-9f64..1e9, len)
}

fn snapshot_of(xs: &[f64]) -> HistogramSnapshot {
    let h = LogHistogram::new();
    for &x in xs {
        h.record(x);
    }
    h.snapshot()
}

/// Bucket counts and totals must match exactly; float sums up to rounding.
fn assert_equivalent(a: &HistogramSnapshot, b: &HistogramSnapshot) {
    assert_eq!(a.buckets, b.buckets);
    assert_eq!(a.count, b.count);
    assert_eq!(a.min, b.min);
    assert_eq!(a.max, b.max);
    let scale = a.sum.abs().max(b.sum.abs()).max(1.0);
    assert!((a.sum - b.sum).abs() <= 1e-9 * scale, "sums differ: {} vs {}", a.sum, b.sum);
}

proptest! {
    #[test]
    fn merge_preserves_count_and_buckets(xs in observations(0..200), ys in observations(0..200)) {
        let merged = snapshot_of(&xs).merge(&snapshot_of(&ys));
        prop_assert_eq!(merged.count, (xs.len() + ys.len()) as u64);
        let bucket_total: u64 = merged.buckets.iter().sum();
        prop_assert_eq!(bucket_total, merged.count);
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        prop_assert_eq!(&merged.buckets, &snapshot_of(&all).buckets);
    }

    #[test]
    fn merge_is_associative(
        xs in observations(0..120),
        ys in observations(0..120),
        zs in observations(0..120),
    ) {
        let (a, b, c) = (snapshot_of(&xs), snapshot_of(&ys), snapshot_of(&zs));
        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        assert_equivalent(&left, &right);
    }

    #[test]
    fn merge_is_commutative(xs in observations(0..150), ys in observations(0..150)) {
        let (a, b) = (snapshot_of(&xs), snapshot_of(&ys));
        assert_equivalent(&a.merge(&b), &b.merge(&a));
    }

    #[test]
    fn empty_is_merge_identity(xs in observations(0..150)) {
        let a = snapshot_of(&xs);
        assert_equivalent(&a.merge(&HistogramSnapshot::empty()), &a);
        assert_equivalent(&HistogramSnapshot::empty().merge(&a), &a);
    }

    #[test]
    fn min_max_bound_every_observation(xs in observations(1..150)) {
        let s = snapshot_of(&xs);
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min, Some(lo));
        prop_assert_eq!(s.max, Some(hi));
        if let Some(p50) = s.quantile(0.5) {
            // Quantiles come from log-bucket midpoints: within one bucket
            // (factor of 2) of the true range.
            prop_assert!(p50 >= lo / 2.0 && p50 <= hi * 2.0, "p50 {p50} lo {lo} hi {hi}");
        }
    }
}
