//! NN kernel microbenchmarks at the paper's shapes: 5 000-sample traces,
//! batch 32, the §4.1 architecture's layer geometry (conv 256 filters
//! k=8 s=3, LSTM 32 units over 256-channel/34-step input, dense 32→100).
//!
//! These isolate the im2col + blocked-matmul kernels from end-to-end
//! training; run at `BF_THREADS=1` they measure pure cache-layout wins
//! over the naive loops, at higher thread counts the intra-batch
//! parallelism on top.

use bf_nn::{Conv1d, Dense, Layer, Lstm, Tensor};
use bf_stats::SeedRng;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn signal(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SeedRng::new(seed);
    (0..n).map(|_| rng.standard_normal() as f32).collect()
}

/// The pre-im2col conv forward (the seed's naive (i, co, p, ci, k)
/// loop), kept here verbatim as the reference the kernel rewrite is
/// measured against.
#[allow(clippy::too_many_arguments)]
fn conv_forward_naive(
    x: &Tensor,
    weight: &[f32],
    bias: &[f32],
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
) -> Tensor {
    let (n, l) = (x.shape()[0], x.shape()[2]);
    let lo = (l - kernel) / stride + 1;
    let mut out = Tensor::zeros(&[n, out_channels, lo]);
    for i in 0..n {
        for co in 0..out_channels {
            for p in 0..lo {
                let start = p * stride;
                let mut acc = bias[co];
                for ci in 0..in_channels {
                    let xbase = x.idx3(i, ci, start);
                    let wbase = (co * in_channels + ci) * kernel;
                    let xs = &x.data()[xbase..xbase + kernel];
                    let ws = &weight[wbase..wbase + kernel];
                    for (xv, wv) in xs.iter().zip(ws) {
                        acc += xv * wv;
                    }
                }
                let oi = out.idx3(i, co, p);
                out.data_mut()[oi] = acc;
            }
        }
    }
    out
}

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels");
    g.sample_size(10);

    // First conv layer at paper scale: (32, 1, 5000) -> (32, 256, 1665).
    let x_conv = Tensor::new(&[32, 1, 5_000], signal(32 * 5_000, 1));
    g.bench_function("conv1d_forward_32x5000_256f_naive", |b| {
        let weight = signal(256 * 8, 13);
        let bias = signal(256, 14);
        b.iter(|| {
            black_box(conv_forward_naive(
                black_box(&x_conv),
                &weight,
                &bias,
                1,
                256,
                8,
                3,
            ))
        })
    });
    g.bench_function("conv1d_forward_32x5000_256f", |b| {
        let mut rng = SeedRng::new(2);
        let mut conv = Conv1d::new(1, 256, 8, 3, &mut rng);
        b.iter(|| black_box(conv.forward(black_box(&x_conv), false)))
    });
    g.bench_function("conv1d_backward_32x5000_256f", |b| {
        let mut rng = SeedRng::new(3);
        let mut conv = Conv1d::new(1, 256, 8, 3, &mut rng);
        let y = conv.forward(&x_conv, true);
        let grad = Tensor::new(y.shape(), signal(y.len(), 4));
        b.iter(|| black_box(conv.backward(black_box(&grad))))
    });

    // Second conv layer geometry: (32, 256, 416) -> (32, 256, 137).
    // This is where im2col pays: the naive loop strides across 256
    // channel rows per output element, the unfolded column is one
    // contiguous 2048-float dot.
    let x_conv2 = Tensor::new(&[32, 256, 416], signal(32 * 256 * 416, 15));
    g.bench_function("conv1d_forward_32x256x416_256f_naive", |b| {
        let weight = signal(256 * 256 * 8, 16);
        let bias = signal(256, 17);
        b.iter(|| {
            black_box(conv_forward_naive(
                black_box(&x_conv2),
                &weight,
                &bias,
                256,
                256,
                8,
                3,
            ))
        })
    });
    g.bench_function("conv1d_forward_32x256x416_256f", |b| {
        let mut rng = SeedRng::new(18);
        let mut conv = Conv1d::new(256, 256, 8, 3, &mut rng);
        b.iter(|| black_box(conv.forward(black_box(&x_conv2), false)))
    });
    g.bench_function("conv1d_backward_32x256x416_256f", |b| {
        let mut rng = SeedRng::new(19);
        let mut conv = Conv1d::new(256, 256, 8, 3, &mut rng);
        let y = conv.forward(&x_conv2, true);
        let grad = Tensor::new(y.shape(), signal(y.len(), 20));
        b.iter(|| black_box(conv.backward(black_box(&grad))))
    });

    // LSTM over the conv/pool stack's output geometry: 256 channels,
    // 34 timesteps, 32 hidden units.
    let x_lstm = Tensor::new(&[32, 256, 34], signal(32 * 256 * 34, 5));
    g.bench_function("lstm_forward_32x256x34_32h", |b| {
        let mut rng = SeedRng::new(6);
        let mut lstm = Lstm::new(256, 32, &mut rng);
        b.iter(|| black_box(lstm.forward(black_box(&x_lstm), false)))
    });
    g.bench_function("lstm_backward_32x256x34_32h", |b| {
        let mut rng = SeedRng::new(7);
        let mut lstm = Lstm::new(256, 32, &mut rng);
        let y = lstm.forward(&x_lstm, true);
        let grad = Tensor::new(y.shape(), signal(y.len(), 8));
        b.iter(|| black_box(lstm.backward(black_box(&grad))))
    });

    // Classifier head: 32 hidden units -> 100 closed-world classes.
    let x_dense = Tensor::new(&[32, 32], signal(32 * 32, 9));
    g.bench_function("dense_forward_32x32_100c", |b| {
        let mut rng = SeedRng::new(10);
        let mut dense = Dense::new(32, 100, &mut rng);
        b.iter(|| black_box(dense.forward(black_box(&x_dense), false)))
    });
    g.bench_function("dense_backward_32x32_100c", |b| {
        let mut rng = SeedRng::new(11);
        let mut dense = Dense::new(32, 100, &mut rng);
        let y = dense.forward(&x_dense, true);
        let grad = Tensor::new(y.shape(), signal(y.len(), 12));
        b.iter(|| black_box(dense.backward(black_box(&grad))))
    });

    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
