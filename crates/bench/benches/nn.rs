//! CNN+LSTM training/inference benchmarks (the classifier of §4.1).

use bf_nn::{CnnLstm, CnnLstmConfig, Tensor};
use bf_stats::SeedRng;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn toy_batch(n: usize, len: usize, seed: u64) -> (Tensor, Vec<usize>) {
    let mut rng = SeedRng::new(seed);
    let data: Vec<f32> = (0..n * len).map(|_| rng.standard_normal() as f32).collect();
    let labels: Vec<usize> = (0..n).map(|i| i % 4).collect();
    (Tensor::new(&[n, 1, len], data), labels)
}

fn bench_nn(c: &mut Criterion) {
    let mut g = c.benchmark_group("nn");
    g.sample_size(10);

    let (x, labels) = toy_batch(8, 300, 1);

    g.bench_function("train_batch_8x300_16f", |b| {
        let mut net = CnnLstm::new(CnnLstmConfig::scaled(300, 4, 16), 7);
        b.iter(|| black_box(net.train_batch(black_box(&x), &labels)))
    });

    g.bench_function("predict_8x300_16f", |b| {
        let mut net = CnnLstm::new(CnnLstmConfig::scaled(300, 4, 16), 7);
        b.iter(|| black_box(net.predict_proba(black_box(&x))))
    });

    g.bench_function("forward_paper_arch_1x3000", |b| {
        let mut net = CnnLstm::new(CnnLstmConfig::paper(3_000, 100), 7);
        let x = Tensor::zeros(&[1, 1, 3_000]);
        b.iter(|| black_box(net.forward(black_box(&x), false)))
    });

    g.finish();
}

criterion_group!(benches, bench_nn);
criterion_main!(benches);
