//! Timer-model benchmarks: observation and inverse queries drive every
//! attack replay.

use bf_timer::{JitteredTimer, Nanos, PreciseTimer, QuantizedTimer, RandomizedTimer, Timer};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_timers(c: &mut Criterion) {
    let mut g = c.benchmark_group("timers");

    g.bench_function("precise_observe", |b| {
        let mut t = PreciseTimer::new();
        let mut now = 0u64;
        b.iter(|| {
            now += 5_000;
            black_box(t.observe(Nanos(now)))
        })
    });

    g.bench_function("jittered_observe", |b| {
        let mut t = JitteredTimer::new(Nanos::from_micros(100), 1);
        let mut now = 0u64;
        b.iter(|| {
            now += 5_000;
            black_box(t.observe(Nanos(now)))
        })
    });

    g.bench_function("randomized_observe", |b| {
        let mut t = RandomizedTimer::with_defaults(1);
        let mut now = 0u64;
        b.iter(|| {
            now += 5_000;
            black_box(t.observe(Nanos(now)))
        })
    });

    g.bench_function("jittered_earliest_at_or_above_5ms", |b| {
        let mut t = JitteredTimer::new(Nanos::from_micros(100), 1);
        let mut now = 0u64;
        b.iter(|| {
            now += 5_000_000;
            black_box(t.earliest_at_or_above(Nanos(now), Nanos(now + 5_000_000)))
        })
    });

    g.bench_function("quantized_earliest_at_or_above", |b| {
        let mut t = QuantizedTimer::new(Nanos::from_millis(100));
        let mut now = 0u64;
        b.iter(|| {
            now += 5_000_000;
            black_box(t.earliest_at_or_above(Nanos(now), Nanos(now + 5_000_000)))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_timers);
criterion_main!(benches);
