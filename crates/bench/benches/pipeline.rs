//! End-to-end pipeline benchmarks: workload synthesis, machine
//! simulation, attack replay, and gap attribution.

use bf_attack::{GapWatcher, LoopCountingAttacker, SweepCountingAttacker};
use bf_ebpf::{ProbeSet, TraceSession};
use bf_sim::{CacheConfig, Machine, MachineConfig};
use bf_timer::{BrowserKind, Nanos, PreciseTimer};
use bf_victim::WebsiteProfile;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const TRACE_SECS: u64 = 2;

fn bench_pipeline(c: &mut Criterion) {
    let site = WebsiteProfile::for_hostname("nytimes.com");
    let duration = Nanos::from_secs(TRACE_SECS);
    let machine = Machine::new(MachineConfig::default());
    let workload = site.generate(duration, 1);
    let sim = machine.run(&workload, 1);

    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);

    g.bench_function("victim_workload_synthesis_2s", |b| {
        b.iter(|| black_box(site.generate(duration, black_box(2))))
    });

    g.bench_function("machine_simulation_2s", |b| {
        b.iter(|| black_box(machine.run(black_box(&workload), 3)))
    });

    g.bench_function("loop_replay_2s", |b| {
        let atk = LoopCountingAttacker::for_browser(BrowserKind::Chrome, Nanos::from_millis(5));
        b.iter(|| {
            let mut timer = BrowserKind::Chrome.timer(4);
            black_box(atk.collect(black_box(&sim), &mut timer))
        })
    });

    g.bench_function("sweep_replay_2s", |b| {
        let atk = SweepCountingAttacker::new(Nanos::from_millis(5), CacheConfig::default());
        b.iter(|| {
            let mut timer = PreciseTimer::new();
            black_box(atk.collect(black_box(&sim), &mut timer, 5))
        })
    });

    g.bench_function("gap_watch_and_attribute_2s", |b| {
        let watcher = GapWatcher::default();
        let session = TraceSession::new(ProbeSet::all());
        b.iter(|| {
            let gaps = watcher.watch(black_box(&sim));
            black_box(session.attribute(&sim, &gaps))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
