//! Statistics-substrate benchmarks.

use bf_stats::{pearson, welch_t_test, Histogram, SeedRng, StepSeries};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_stats(c: &mut Criterion) {
    let mut rng = SeedRng::new(1);
    let xs: Vec<f64> = (0..3_000).map(|_| rng.standard_normal()).collect();
    let ys: Vec<f64> = xs.iter().map(|x| x + 0.3 * rng.standard_normal()).collect();

    let mut g = c.benchmark_group("stats");

    g.bench_function("pearson_3000", |b| {
        b.iter(|| black_box(pearson(black_box(&xs), black_box(&ys)).unwrap()))
    });

    g.bench_function("welch_t_test_3000", |b| {
        b.iter(|| black_box(welch_t_test(black_box(&xs), black_box(&ys)).unwrap()))
    });

    g.bench_function("histogram_record_3000", |b| {
        b.iter(|| {
            let mut h = Histogram::new(-4.0, 4.0, 64).unwrap();
            h.record_all(xs.iter().copied());
            black_box(h)
        })
    });

    g.bench_function("step_series_integrate", |b| {
        let mut s = StepSeries::new(1.0);
        for i in 1..10_000u64 {
            s.push(i * 1_000, 1.0 + (i % 7) as f64 * 0.01);
        }
        b.iter(|| black_box(s.integrate(black_box(123), black_box(9_500_000))))
    });

    g.finish();
}

criterion_group!(benches, bench_stats);
criterion_main!(benches);
