//! `bf-bench` — the benchmark and regeneration harness.
//!
//! # Regenerating the paper's tables and figures
//!
//! Each binary prints one table/figure with the paper's reference values
//! inline. `BF_SCALE` selects `smoke` (seconds), `default` (minutes,
//! the committed EXPERIMENTS.md numbers), or `paper` (the full protocol).
//!
//! ```sh
//! BF_SCALE=default cargo run --release -p bf-bench --bin table1
//! BF_SCALE=default cargo run --release -p bf-bench --bin figure6
//! cargo run --release -p bf-bench --bin all   # everything in sequence
//! ```
//!
//! # Criterion micro-benchmarks
//!
//! `cargo bench -p bf-bench` measures the pipeline's building blocks:
//! machine simulation, attack replay, timer queries, NN training steps,
//! and end-to-end trace collection.

use bf_core::ExperimentScale;

/// Shared binary entry glue: scale from env, seed fixed for
/// reproducibility.
pub fn scale_and_seed() -> (ExperimentScale, u64) {
    (ExperimentScale::from_env(), 42)
}

/// Print a standard header for a regeneration binary.
pub fn banner(what: &str, scale: ExperimentScale) {
    println!("=== bigger-fish reproduction: {what} (scale: {scale}) ===\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_comes_from_env_with_fixed_seed() {
        let (_, seed) = scale_and_seed();
        assert_eq!(seed, 42);
    }

    #[test]
    fn banner_prints_without_panicking() {
        banner("unit test", ExperimentScale::Smoke);
    }
}
