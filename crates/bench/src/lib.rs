//! `bf-bench` — the benchmark and regeneration harness.
//!
//! # Regenerating the paper's tables and figures
//!
//! Each binary prints one table/figure with the paper's reference values
//! inline. `BF_SCALE` selects `smoke` (seconds), `default` (minutes,
//! the committed EXPERIMENTS.md numbers), or `paper` (the full protocol).
//!
//! ```sh
//! BF_SCALE=default cargo run --release -p bf-bench --bin table1
//! BF_SCALE=default cargo run --release -p bf-bench --bin figure6
//! cargo run --release -p bf-bench --bin all   # everything in sequence
//! ```
//!
//! # Criterion micro-benchmarks
//!
//! `cargo bench -p bf-bench` measures the pipeline's building blocks:
//! machine simulation, attack replay, timer queries, NN training steps,
//! and end-to-end trace collection.

pub mod diff;
pub mod load;

pub use load::{open_system_requests, LoadConfig};

use bf_core::ExperimentScale;
use bf_fault::{FaultPlan, ResumeConfig};
use bf_obs::metrics::MetricValue;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

/// Error type regeneration binaries may bubble up through [`run_bin`].
pub type BinError = Box<dyn std::error::Error + Send + Sync>;

/// Shared binary entry glue: scale from `BF_SCALE`, seed from `BF_SEED`
/// (default 42, the seed behind the committed EXPERIMENTS.md numbers).
/// A malformed `BF_SEED` falls back to 42 after a one-shot
/// `bf_obs::error!` naming the rejected value.
pub fn scale_and_seed() -> (ExperimentScale, u64) {
    let seed = bf_obs::env::parse_or("BF_SEED", 42, "a 64-bit unsigned integer");
    (ExperimentScale::from_env(), seed)
}

/// Resolve the output path of a benchmark artifact: the value of
/// `env_key` when set and non-empty, else `default`. Every bin that
/// writes a `BENCH_*.json` resolves its destination through this one
/// helper instead of hand-rolling the `std::env::var(..).unwrap_or(..)`
/// dance.
pub fn artifact_path(env_key: &str, default: &str) -> String {
    std::env::var(env_key)
        .ok()
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| default.to_owned())
}

/// Print a standard header for a regeneration binary.
pub fn banner(what: &str, scale: ExperimentScale) {
    println!("=== bigger-fish reproduction: {what} (scale: {scale}) ===\n");
}

/// Run an experiment under a [`bf_obs::ManifestBuilder`]: phases recorded
/// by `f` are timed, and on completion the run manifest (config, seed,
/// scale, per-phase timings, metric deltas, span stats) is written to
/// `$BF_MANIFEST_DIR` (default `manifests/`).
pub fn with_manifest<R>(
    name: &str,
    scale: ExperimentScale,
    seed: u64,
    f: impl FnOnce(&mut bf_obs::ManifestBuilder) -> R,
) -> R {
    let mut builder = bf_obs::ManifestBuilder::new(name, &scale.to_string(), seed);
    builder.config("scale", scale);
    builder.config("seed", seed);
    record_thread_pool(&mut builder);
    let out = f(&mut builder);
    let manifest = builder.finish();
    let dest = match manifest.write() {
        Ok(path) => format!(" -> {}", path.display()),
        Err(e) => format!(" (write failed: {e})"),
    };
    println!(
        "\nrun manifest: {} phase(s), {} metric(s), {:.1} s total{dest}",
        manifest.phases.len(),
        manifest.metrics.len(),
        manifest.total_seconds,
    );
    out
}

/// Full entry point for a regeneration binary: reads scale/seed from the
/// environment, prints the banner, records the active fault plan
/// (`BF_FAULT_PLAN`) and resume knobs (`BF_RESUME`, `BF_CHECKPOINT_DIR`)
/// in the run manifest, contains any panic from the experiment body, and
/// always finishes and writes the manifest — so even a crashed run leaves
/// its fault/repair counters on disk.
///
/// The returned [`ExitCode`] is non-zero when the body panicked or
/// returned an error, making the bins honest CI citizens.
pub fn run_bin(
    title: &str,
    name: &str,
    f: impl FnOnce(&mut bf_obs::ManifestBuilder, ExperimentScale, u64) -> Result<(), BinError>,
) -> ExitCode {
    if run_bin_inner(title, name, f) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// [`run_bin`] body returning plain success/failure (testable — `ExitCode`
/// has no `PartialEq`).
fn run_bin_inner(
    title: &str,
    name: &str,
    f: impl FnOnce(&mut bf_obs::ManifestBuilder, ExperimentScale, u64) -> Result<(), BinError>,
) -> bool {
    let (scale, seed) = scale_and_seed();
    banner(title, scale);

    let faults = FaultPlan::from_env();
    let resume = ResumeConfig::from_env();
    let mut builder = bf_obs::ManifestBuilder::new(name, &scale.to_string(), seed);
    builder.config("scale", scale);
    builder.config("seed", seed);
    record_thread_pool(&mut builder);
    builder.config("fault_plan", faults.summary());
    builder.config("resume", if resume.enabled { "on" } else { "off" });
    if resume.enabled {
        builder.config("checkpoint_dir", resume.dir.display());
        println!(
            "resume enabled: checkpoints under {}\n",
            resume.dir.display()
        );
    }
    if faults.is_active() {
        println!("fault plan active: {}\n", faults.summary());
    }

    let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut builder, scale, seed)));

    // Flush any causal trace the run produced (`BF_TRACE=1`) before the
    // manifest goes out, so a crashed run still leaves its timeline.
    if let Some(path) = bf_obs::export::write_if_enabled(name) {
        println!("trace timeline -> {}", path.display());
    }

    let manifest = builder.finish();
    let dest = match manifest.write() {
        Ok(path) => format!(" -> {}", path.display()),
        Err(e) => format!(" (write failed: {e})"),
    };
    println!(
        "\nrun manifest: {} phase(s), {} metric(s), {:.1} s total{dest}",
        manifest.phases.len(),
        manifest.metrics.len(),
        manifest.total_seconds,
    );
    print_resilience_summary(&manifest.metrics);

    match outcome {
        Ok(Ok(())) => true,
        Ok(Err(e)) => {
            eprintln!("error: {e}");
            false
        }
        Err(payload) => {
            eprintln!("panic contained: {}", panic_message(&payload));
            false
        }
    }
}

/// Record the resolved `bf-par` pool size in the manifest (config entry
/// and `par.threads` gauge), so every run documents the parallelism it
/// ran at — results are thread-count-invariant, wall times are not.
fn record_thread_pool(builder: &mut bf_obs::ManifestBuilder) {
    let threads = bf_par::threads();
    builder.config("threads", threads);
    bf_obs::gauge("par.threads").set(threads as f64);
}

/// Print every fault/resilience counter the run touched, so operators
/// see injections, repairs and quarantines without opening the manifest.
fn print_resilience_summary(metrics: &bf_obs::metrics::MetricsSnapshot) {
    let interesting = metrics.iter().filter_map(|(name, value)| match value {
        MetricValue::Counter(n)
            if *n > 0 && (name.starts_with("fault.") || name.starts_with("ml.fold_failures")) =>
        {
            Some((name, *n))
        }
        _ => None,
    });
    let mut any = false;
    for (name, n) in interesting {
        if !any {
            println!("resilience counters:");
            any = true;
        }
        println!("  {name} = {n}");
    }
}

/// Best-effort human-readable panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string panic payload>")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that touch `BF_SEED` share the process environment.
    static ENV_SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn scale_comes_from_env_with_fixed_seed() {
        let _lock = ENV_SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let (_, seed) = scale_and_seed();
        assert_eq!(seed, 42);
    }

    #[test]
    fn malformed_seed_warns_and_falls_back() {
        let _lock = ENV_SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        std::env::set_var("BF_SEED", "forty-two");
        bf_obs::env::reset_warnings();
        bf_obs::begin_capture();
        let (_, seed) = scale_and_seed();
        let (_, seed_again) = scale_and_seed();
        let lines = bf_obs::end_capture();
        assert_eq!(seed, 42);
        assert_eq!(seed_again, 42);
        let warnings: Vec<_> = lines.iter().filter(|l| l.contains("BF_SEED")).collect();
        assert_eq!(warnings.len(), 1, "one-shot, not per-read: {lines:?}");
        assert!(warnings[0].contains("`forty-two`"), "{warnings:?}");
        std::env::remove_var("BF_SEED");
        bf_obs::env::reset_warnings();
    }

    #[test]
    fn artifact_path_prefers_env_then_default() {
        std::env::remove_var("BF_TEST_ARTIFACT_OUT");
        assert_eq!(artifact_path("BF_TEST_ARTIFACT_OUT", "out.json"), "out.json");
        std::env::set_var("BF_TEST_ARTIFACT_OUT", "/tmp/custom.json");
        assert_eq!(artifact_path("BF_TEST_ARTIFACT_OUT", "out.json"), "/tmp/custom.json");
        std::env::set_var("BF_TEST_ARTIFACT_OUT", "   ");
        assert_eq!(
            artifact_path("BF_TEST_ARTIFACT_OUT", "out.json"),
            "out.json",
            "blank overrides fall back to the default"
        );
        std::env::remove_var("BF_TEST_ARTIFACT_OUT");
    }

    #[test]
    fn banner_prints_without_panicking() {
        banner("unit test", ExperimentScale::Smoke);
    }

    #[test]
    fn run_bin_contains_panics_and_reports_failure() {
        let ok = run_bin_inner("panic containment test", "bench-panic-test", |_, _, _| {
            panic!("simulated crash")
        });
        assert!(!ok);
    }

    #[test]
    fn run_bin_propagates_errors_as_failure() {
        let ok = run_bin_inner("error path test", "bench-error-test", |_, _, _| {
            Err("deliberate".into())
        });
        assert!(!ok);
    }

    #[test]
    fn run_bin_success_is_zero_exit() {
        let ok = run_bin_inner("success path test", "bench-ok-test", |m, _, _| {
            m.phase("noop", || {});
            Ok(())
        });
        assert!(ok);
    }

    #[test]
    fn panic_messages_are_extracted() {
        let payload: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(payload.as_ref()), "static str");
        let payload: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(payload.as_ref()), "owned");
        let payload: Box<dyn std::any::Any + Send> = Box::new(17u32);
        assert_eq!(panic_message(payload.as_ref()), "<non-string panic payload>");
    }
}
