//! `bf-bench` — the benchmark and regeneration harness.
//!
//! # Regenerating the paper's tables and figures
//!
//! Each binary prints one table/figure with the paper's reference values
//! inline. `BF_SCALE` selects `smoke` (seconds), `default` (minutes,
//! the committed EXPERIMENTS.md numbers), or `paper` (the full protocol).
//!
//! ```sh
//! BF_SCALE=default cargo run --release -p bf-bench --bin table1
//! BF_SCALE=default cargo run --release -p bf-bench --bin figure6
//! cargo run --release -p bf-bench --bin all   # everything in sequence
//! ```
//!
//! # Criterion micro-benchmarks
//!
//! `cargo bench -p bf-bench` measures the pipeline's building blocks:
//! machine simulation, attack replay, timer queries, NN training steps,
//! and end-to-end trace collection.

use bf_core::ExperimentScale;

/// Shared binary entry glue: scale from `BF_SCALE`, seed from `BF_SEED`
/// (default 42, the seed behind the committed EXPERIMENTS.md numbers).
pub fn scale_and_seed() -> (ExperimentScale, u64) {
    let seed = std::env::var("BF_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(42);
    (ExperimentScale::from_env(), seed)
}

/// Print a standard header for a regeneration binary.
pub fn banner(what: &str, scale: ExperimentScale) {
    println!("=== bigger-fish reproduction: {what} (scale: {scale}) ===\n");
}

/// Run an experiment under a [`bf_obs::ManifestBuilder`]: phases recorded
/// by `f` are timed, and on completion the run manifest (config, seed,
/// scale, per-phase timings, metric deltas, span stats) is written to
/// `$BF_MANIFEST_DIR` (default `manifests/`).
pub fn with_manifest<R>(
    name: &str,
    scale: ExperimentScale,
    seed: u64,
    f: impl FnOnce(&mut bf_obs::ManifestBuilder) -> R,
) -> R {
    let mut builder = bf_obs::ManifestBuilder::new(name, &scale.to_string(), seed);
    builder.config("scale", scale);
    builder.config("seed", seed);
    let out = f(&mut builder);
    let manifest = builder.finish();
    let dest = match manifest.write() {
        Ok(path) => format!(" -> {}", path.display()),
        Err(e) => format!(" (write failed: {e})"),
    };
    println!(
        "\nrun manifest: {} phase(s), {} metric(s), {:.1} s total{dest}",
        manifest.phases.len(),
        manifest.metrics.len(),
        manifest.total_seconds,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_comes_from_env_with_fixed_seed() {
        let (_, seed) = scale_and_seed();
        assert_eq!(seed, 42);
    }

    #[test]
    fn banner_prints_without_panicking() {
        banner("unit test", ExperimentScale::Smoke);
    }
}
