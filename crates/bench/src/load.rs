//! Open-system load model for fleet-scale serving benchmarks.
//!
//! The closed-loop `open_loop_arrivals` stream draws one request at a
//! time with exponential gaps — fine for exercising a single service,
//! but population-scale traffic is *open-system*: victims arrive as a
//! Poisson process, browse a handful of sites with think-time gaps
//! between visits, and leave. Site popularity follows a Zipf law over
//! the Appendix-A catalog (a few head sites dominate, a long tail gets
//! occasional hits).
//!
//! [`open_system_requests`] generates exactly that, deterministically:
//!
//! * **Session arrivals** — a Poisson process (exponential inter-start
//!   gaps of mean [`LoadConfig::session_gap_units`]) on the main stream.
//! * **Session shape** — each session draws its visit count
//!   (Poisson around [`LoadConfig::mean_visits`], floored at one) and
//!   per-visit think gaps (exponential of mean
//!   [`LoadConfig::think_units`]) from its own forked stream, so one
//!   session's length never perturbs its neighbours.
//! * **Site choice** — each visit samples a [`bf_stats::Zipf`] rank
//!   with exponent [`LoadConfig::zipf_exponent`] over the catalog.
//!
//! Every draw comes from [`SeedRng`] streams forked off the input seed:
//! the emitted request vector is a pure function of
//! `(cfg, n_requests, n_sites, seed)`, byte-identical across runs,
//! machines, and thread counts.

use bf_serve::ServeRequest;
use bf_stats::rng::{combine_seeds, SeedRng};
use bf_stats::Zipf;

/// Stream id of the session-arrival process.
const ARRIVALS_SEED: u64 = 0x10AD_5E55;

/// The `BF_LOAD_*` knob set: shape of the open-system arrival process.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadConfig {
    /// Mean virtual units between session starts (Poisson arrivals).
    pub session_gap_units: f64,
    /// Mean visits per session (Poisson, floored at one visit).
    pub mean_visits: f64,
    /// Mean think gap between a session's consecutive visits, in
    /// virtual units.
    pub think_units: f64,
    /// Zipf popularity exponent over the site catalog: `0` is uniform,
    /// larger skews harder toward the head.
    pub zipf_exponent: f64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            // Sessions every ~300 units with ~6 visits of ~150-unit
            // work each: a 4-shard fleet keeps up, a single shard
            // visibly saturates.
            session_gap_units: 300.0,
            mean_visits: 6.0,
            think_units: 100.0,
            zipf_exponent: 1.1,
        }
    }
}

impl LoadConfig {
    /// Defaults overridden by `BF_LOAD_SESSION_GAP`, `BF_LOAD_VISITS`,
    /// `BF_LOAD_THINK`, and `BF_LOAD_ZIPF`, each parsed through the
    /// hardened `bf_obs::env` layer. Semantically invalid values —
    /// non-positive or non-finite rates, a NaN or negative Zipf
    /// exponent — warn once and keep the default rather than seeding a
    /// degenerate process.
    pub fn from_env() -> Self {
        let d = LoadConfig::default();
        LoadConfig {
            session_gap_units: positive_knob(
                "BF_LOAD_SESSION_GAP",
                d.session_gap_units,
                "a positive mean session gap in work units",
            ),
            mean_visits: positive_knob(
                "BF_LOAD_VISITS",
                d.mean_visits,
                "a positive mean visit count per session",
            ),
            think_units: positive_knob(
                "BF_LOAD_THINK",
                d.think_units,
                "a positive mean think gap in work units",
            ),
            zipf_exponent: match bf_obs::env::parse::<f64>(
                "BF_LOAD_ZIPF",
                "a finite non-negative Zipf exponent",
            ) {
                Some(s) if s.is_finite() && s >= 0.0 => s,
                Some(bad) => {
                    bf_obs::env::warn_invalid(
                        "BF_LOAD_ZIPF",
                        &bad.to_string(),
                        "a finite non-negative Zipf exponent",
                    );
                    d.zipf_exponent
                }
                None => d.zipf_exponent,
            },
        }
    }
}

/// Parse a rate-like knob that must be finite and strictly positive;
/// anything else warns once and keeps `default`.
fn positive_knob(key: &str, default: f64, accepted: &str) -> f64 {
    match bf_obs::env::parse::<f64>(key, accepted) {
        Some(v) if v.is_finite() && v > 0.0 => v,
        Some(bad) => {
            bf_obs::env::warn_invalid(key, &bad.to_string(), accepted);
            default
        }
        None => default,
    }
}

/// Generate the first `n_requests` visits of an open-system population:
/// Poisson session arrivals, per-session think-gap visit trains, and
/// Zipf site popularity over `n_sites` catalog entries. Requests come
/// back sorted by `(arrival, id)` with ids `0..n_requests` assigned in
/// that order; each request's trace seed is `combine_seeds(seed, id)`.
///
/// # Panics
///
/// Panics when `n_sites == 0` or the config holds values
/// [`LoadConfig::from_env`] would have rejected (NaN exponent,
/// non-positive rates) — callers constructing configs by hand get the
/// same contract the env path enforces.
pub fn open_system_requests(
    cfg: &LoadConfig,
    n_requests: usize,
    n_sites: usize,
    seed: u64,
) -> Vec<ServeRequest> {
    assert!(
        cfg.session_gap_units > 0.0 && cfg.mean_visits > 0.0 && cfg.think_units > 0.0,
        "load rates must be positive: {cfg:?}"
    );
    let zipf = Zipf::new(n_sites, cfg.zipf_exponent).expect("valid Zipf popularity law");
    let mut arrivals = SeedRng::new(combine_seeds(seed, ARRIVALS_SEED));
    // (arrival, session, visit, site): the session/visit components
    // break arrival ties deterministically before ids are assigned.
    let mut visits: Vec<(u64, u64, u64, usize)> = Vec::with_capacity(n_requests * 2);
    let mut session_start = 0.0f64;
    let mut session_idx = 0u64;
    while visits.len() < n_requests {
        session_start += arrivals.exponential(cfg.session_gap_units);
        // Independent per-session stream: a session's visit train is
        // invariant to every other session.
        let mut session = arrivals.fork(session_idx);
        let n_visits = session.poisson(cfg.mean_visits).max(1);
        let mut at = session_start;
        for visit in 0..n_visits {
            if visit > 0 {
                at += session.exponential(cfg.think_units);
            }
            visits.push((at as u64, session_idx, visit, zipf.sample(&mut session)));
        }
        session_idx += 1;
    }
    visits.sort_unstable();
    visits.truncate(n_requests);
    visits
        .into_iter()
        .enumerate()
        .map(|(id, (arrival, _, _, site))| ServeRequest {
            id: id as u64,
            site,
            seed: combine_seeds(seed, id as u64),
            arrival,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that mutate process environment.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    const LOAD_KEYS: [&str; 4] =
        ["BF_LOAD_SESSION_GAP", "BF_LOAD_VISITS", "BF_LOAD_THINK", "BF_LOAD_ZIPF"];

    fn clear_load_env() {
        for k in LOAD_KEYS {
            std::env::remove_var(k);
        }
        bf_obs::env::reset_warnings();
    }

    #[test]
    fn stream_is_bit_deterministic_and_sorted() {
        let cfg = LoadConfig::default();
        let a = open_system_requests(&cfg, 200, 10, 7);
        let b = open_system_requests(&cfg, 200, 10, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival), "sorted by arrival");
        assert!(a.iter().enumerate().all(|(i, r)| r.id == i as u64), "ids follow arrival order");
        assert!(a.iter().all(|r| r.site < 10), "sites stay inside the catalog");
        let c = open_system_requests(&cfg, 200, 10, 8);
        assert_ne!(a, c, "different seeds give different streams");
    }

    #[test]
    fn zipf_head_dominates_the_tail() {
        let cfg = LoadConfig { zipf_exponent: 1.3, ..LoadConfig::default() };
        let reqs = open_system_requests(&cfg, 3_000, 20, 11);
        let mut counts = vec![0usize; 20];
        for r in &reqs {
            counts[r.site] += 1;
        }
        assert!(
            counts[0] > counts[10] && counts[0] > counts[19],
            "rank 0 must dominate the tail: {counts:?}"
        );
    }

    #[test]
    fn sessions_cluster_visits_in_time() {
        // With think gaps far below the session gap, consecutive
        // requests are mostly intra-session: the mean gap of the merged
        // stream sits well under the session gap.
        let cfg = LoadConfig {
            session_gap_units: 10_000.0,
            mean_visits: 8.0,
            think_units: 50.0,
            ..LoadConfig::default()
        };
        let reqs = open_system_requests(&cfg, 400, 5, 3);
        let gaps: Vec<u64> = reqs.windows(2).map(|w| w[1].arrival - w[0].arrival).collect();
        let mean_gap = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        assert!(
            mean_gap < 5_000.0,
            "visit trains must cluster well below the session gap, got {mean_gap}"
        );
    }

    #[test]
    fn from_env_reads_the_knobs() {
        let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        clear_load_env();
        std::env::set_var("BF_LOAD_SESSION_GAP", "120.5");
        std::env::set_var("BF_LOAD_VISITS", "3");
        std::env::set_var("BF_LOAD_THINK", "40");
        std::env::set_var("BF_LOAD_ZIPF", "0.9");
        let cfg = LoadConfig::from_env();
        assert_eq!(cfg.session_gap_units, 120.5);
        assert_eq!(cfg.mean_visits, 3.0);
        assert_eq!(cfg.think_units, 40.0);
        assert_eq!(cfg.zipf_exponent, 0.9);
        clear_load_env();
        assert_eq!(LoadConfig::from_env(), LoadConfig::default());
    }

    #[test]
    fn from_env_rejects_degenerate_rates_and_nan_exponent() {
        let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        clear_load_env();
        std::env::set_var("BF_LOAD_SESSION_GAP", "-4.0");
        std::env::set_var("BF_LOAD_VISITS", "0");
        std::env::set_var("BF_LOAD_THINK", "inf");
        std::env::set_var("BF_LOAD_ZIPF", "NaN");
        let cfg = LoadConfig::from_env();
        assert_eq!(
            cfg,
            LoadConfig::default(),
            "negative/zero/non-finite rates and a NaN exponent all fall back"
        );
        // Unparsable text falls back through the same path.
        std::env::set_var("BF_LOAD_ZIPF", "steep");
        bf_obs::env::reset_warnings();
        assert_eq!(LoadConfig::from_env().zipf_exponent, LoadConfig::default().zipf_exponent);
        clear_load_env();
    }
}
