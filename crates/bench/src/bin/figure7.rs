//! Regenerate Fig. 7 (timer staircases).
use bf_bench::run_bin;
use bf_core::experiments::figure7;
use std::process::ExitCode;

fn main() -> ExitCode {
    run_bin("Figure 7", "figure7", |m, scale, seed| {
        let fig = m.phase("staircases", || figure7::run(scale, seed));
        println!("{fig}");
        Ok(())
    })
}
