//! Regenerate Fig. 7 (timer staircases).
use bf_bench::{banner, scale_and_seed};
use bf_core::experiments::figure7;

fn main() {
    let (scale, seed) = scale_and_seed();
    banner("Figure 7", scale);
    println!("{}", figure7::run(scale, seed));
}
