//! Regenerate Fig. 7 (timer staircases).
use bf_bench::{banner, scale_and_seed, with_manifest};
use bf_core::experiments::figure7;

fn main() {
    let (scale, seed) = scale_and_seed();
    banner("Figure 7", scale);
    let fig = with_manifest("figure7", scale, seed, |m| {
        m.phase("staircases", || figure7::run(scale, seed))
    });
    println!("{fig}");
}
