//! Export figure data as CSV files for external plotting.
//!
//! ```sh
//! BF_SCALE=smoke cargo run --release -p bf-bench --bin export -- out_dir
//! ```

use bf_bench::run_bin;
use bf_core::experiments::{figure3, figure4, figure5, figure7, figure8};
use std::fs;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "figure_data".to_owned());
    run_bin("CSV export", "export", |m, scale, seed| {
        fs::create_dir_all(&dir)?;
        let dir = Path::new(&dir);
        m.config("out_dir", dir.display());

        m.phase("figure3", || -> std::io::Result<()> {
            let fig3 = figure3::run(scale, seed);
            for t in &fig3.traces {
                fs::write(dir.join(format!("figure3_{}.csv", t.name())), t.to_csv())?;
            }
            Ok(())
        })?;

        m.phase("figure4", || -> std::io::Result<()> {
            let fig4 = figure4::run(scale, seed);
            for s in &fig4.sites {
                fs::write(
                    dir.join(format!("figure4_{}_loop.csv", s.site)),
                    s.loop_avg.to_csv(),
                )?;
                fs::write(
                    dir.join(format!("figure4_{}_sweep.csv", s.site)),
                    s.sweep_avg.to_csv(),
                )?;
            }
            Ok(())
        })?;

        m.phase("figure5", || -> std::io::Result<()> {
            let fig5 = figure5::run(scale, seed);
            for s in &fig5.sites {
                fs::write(
                    dir.join(format!("figure5_{}_softirq.csv", s.site)),
                    s.softirq.to_csv(),
                )?;
                fs::write(
                    dir.join(format!("figure5_{}_resched.csv", s.site)),
                    s.reschedule.to_csv(),
                )?;
            }
            Ok(())
        })?;

        m.phase("figure7", || -> std::io::Result<()> {
            let fig7 = figure7::run(scale, seed);
            for t in &fig7.timers {
                let mut csv = String::from("real_ms,observed_ms\n");
                for (r, o) in t.real_ms.iter().zip(&t.observed_ms) {
                    csv.push_str(&format!("{r},{o}\n"));
                }
                fs::write(dir.join(format!("figure7_{}.csv", t.name)), csv)?;
            }
            Ok(())
        })?;

        m.phase("figure8", || -> std::io::Result<()> {
            let fig8 = figure8::run(scale, seed);
            for t in &fig8.timers {
                let mut csv = String::from("duration_ms\n");
                for d in &t.durations_ms {
                    csv.push_str(&format!("{d}\n"));
                }
                fs::write(dir.join(format!("figure8_{}.csv", t.timer)), csv)?;
            }
            Ok(())
        })?;

        println!("wrote CSVs to {}", dir.display());
        Ok(())
    })
}
