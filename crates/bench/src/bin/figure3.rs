//! Regenerate Fig. 3 (example loop-counting traces).
use bf_bench::run_bin;
use bf_core::experiments::figure3;
use std::process::ExitCode;

fn main() -> ExitCode {
    run_bin("Figure 3", "figure3", |m, scale, seed| {
        let fig = m.phase("traces", || figure3::run(scale, seed));
        println!("{fig}");
        Ok(())
    })
}
