//! Regenerate Fig. 3 (example loop-counting traces).
use bf_bench::{banner, scale_and_seed, with_manifest};
use bf_core::experiments::figure3;

fn main() {
    let (scale, seed) = scale_and_seed();
    banner("Figure 3", scale);
    let fig = with_manifest("figure3", scale, seed, |m| {
        m.phase("traces", || figure3::run(scale, seed))
    });
    println!("{fig}");
}
