//! Regenerate Fig. 3 (example loop-counting traces).
use bf_bench::{banner, scale_and_seed};
use bf_core::experiments::figure3;

fn main() {
    let (scale, seed) = scale_and_seed();
    banner("Figure 3", scale);
    println!("{}", figure3::run(scale, seed));
}
