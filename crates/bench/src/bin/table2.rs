//! Regenerate Table 2 (noise study) plus the §4.2 background-noise check.
use bf_bench::run_bin;
use bf_core::experiments::table2;
use std::process::ExitCode;

fn main() -> ExitCode {
    let with_background = std::env::args().any(|a| a == "--background");
    run_bin("Table 2", "table2", |m, scale, seed| {
        m.config("background", with_background);
        let result = m.phase("noise_study", || table2::run(scale, seed, with_background));
        println!("{result}");
        println!("(pass --background for the §4.2 Slack+Spotify rows)");
        Ok(())
    })
}
