//! Regenerate Table 2 (noise study) plus the §4.2 background-noise check.
use bf_bench::{banner, scale_and_seed};
use bf_core::experiments::table2;

fn main() {
    let (scale, seed) = scale_and_seed();
    let with_background = std::env::args().any(|a| a == "--background");
    banner("Table 2", scale);
    let start = std::time::Instant::now();
    let result = table2::run(scale, seed, with_background);
    println!("{result}");
    println!("elapsed: {:.1?} (pass --background for the §4.2 Slack+Spotify rows)", start.elapsed());
}
