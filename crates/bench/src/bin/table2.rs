//! Regenerate Table 2 (noise study) plus the §4.2 background-noise check.
use bf_bench::{banner, scale_and_seed, with_manifest};
use bf_core::experiments::table2;

fn main() {
    let (scale, seed) = scale_and_seed();
    let with_background = std::env::args().any(|a| a == "--background");
    banner("Table 2", scale);
    let result = with_manifest("table2", scale, seed, |m| {
        m.config("background", with_background);
        m.phase("noise_study", || table2::run(scale, seed, with_background))
    });
    println!("{result}");
    println!("(pass --background for the §4.2 Slack+Spotify rows)");
}
