//! Ablation studies over the design choices DESIGN.md calls out:
//! softirq deferral probability, NIC coalescing, and VM amplification.
use bf_bench::run_bin;
use bf_core::{AttackKind, CollectionConfig};
use bf_ml::{Classifier, CnnLstmClassifier, TrainConfig};
use bf_nn::{CnnLstmConfig, LstmActivation, PoolKind};
use bf_sim::engine::KernelTuning;
use bf_sim::{Machine, MachineConfig};
use bf_timer::{BrowserKind, Nanos};
use bf_victim::WebsiteProfile;

fn main() -> std::process::ExitCode {
    run_bin("ablations", "ablation", |m, scale, seed| {
        run_ablations(m, scale, seed);
        Ok(())
    })
}

fn run_ablations(m: &mut bf_obs::ManifestBuilder, scale: bf_core::ExperimentScale, seed: u64) {
    // 1. Softirq deferral: how much attacker-core interrupt share comes
    //    from deferred (non-movable) softirq placement?
    println!("softirq local-execution probability vs attacker-core interrupt share");
    let site = WebsiteProfile::for_hostname("nytimes.com");
    m.phase("softirq_deferral", || {
        for local_prob in [0.25, 0.5, 0.75, 1.0] {
            let tuning = KernelTuning {
                softirq_local_prob: local_prob,
                ..Default::default()
            };
            let mut cfg = MachineConfig::default();
            cfg.isolation.confine_movable_irqs = true;
            cfg.isolation.pin_cores = true;
            let machine = Machine::with_tuning(cfg, tuning);
            let workload = site.generate(Nanos::from_secs(15), seed);
            let sim = machine.run(&workload, seed);
            let share = sim
                .attacker_timeline()
                .interrupt_share(Nanos::ZERO, Nanos::from_secs(5));
            println!(
                "  local_prob {local_prob:.2}: first-5s share {:.3}%",
                share * 100.0
            );
        }
    });

    // 2. NIC coalescing: IRQ batch size vs kernel-event count.
    println!("\nNIC coalescing budget vs kernel event count");
    m.phase("nic_coalescing", || {
        for max in [4u32, 16, 64] {
            let tuning = KernelTuning {
                nic_coalesce_max: max,
                ..Default::default()
            };
            let machine = Machine::with_tuning(MachineConfig::default(), tuning);
            let workload = site.generate(Nanos::from_secs(15), seed);
            let sim = machine.run(&workload, seed);
            println!(
                "  coalesce_max {max:>2}: {} kernel events",
                sim.kernel_log.len()
            );
        }
    });

    // 3. Classifier ablations: pooling operator and LSTM activation
    //    (DESIGN.md §5.6): train on one shared dataset.
    println!("\nclassifier ablations (20 sites x 16 traces, one fold)");
    m.phase("classifier_ablations", || {
        let cfg =
            CollectionConfig::new(BrowserKind::Chrome, AttackKind::LoopCounting).with_scale(scale);
        let data = cfg.collect_closed_world(20, 16, seed);
        let folds = data.stratified_folds(4, 1);
        let (tr, va, te) = data.split_for_fold(&folds, 0, 1);
        let (train, val, test) = (data.subset(&tr), data.subset(&va), data.subset(&te));
        for (label, pool, act) in [
            (
                "max pool + tanh LSTM (scaled default)",
                PoolKind::Max,
                LstmActivation::Tanh,
            ),
            ("avg pool + tanh LSTM", PoolKind::Avg, LstmActivation::Tanh),
            (
                "max pool + sigmoid LSTM (paper literal)",
                PoolKind::Max,
                LstmActivation::Sigmoid,
            ),
        ] {
            let mut arch = CnnLstmConfig::scaled(data.feature_len(), 20, 16);
            arch.pool_kind = pool;
            arch.lstm_activation = act;
            arch.learning_rate = 0.01;
            arch.dropout = 0.5;
            let mut clf = CnnLstmClassifier::new(
                arch,
                TrainConfig {
                    max_epochs: 80,
                    batch_size: 32,
                    patience: 1_000,
                    min_epochs: 0,
                    seed,
                },
            );
            clf.fit(&train, &val);
            let acc = clf
                .predict(test.features())
                .iter()
                .zip(test.labels())
                .filter(|(a, b)| a == b)
                .count() as f64
                / test.len() as f64;
            println!("  {label}: test top-1 {:.1}%", acc * 100.0);
        }
    });

    // 4. VM amplification factor vs attack accuracy.
    println!("\nVM handler-time amplification vs closed-world accuracy");
    m.phase("vm_amplification", || {
        for amp in [1.0f64, 1.9, 3.0] {
            let mut machine = MachineConfig::default();
            machine.isolation.vm = bf_sim::VmMode::SeparateVms;
            machine.vm_amplification = amp.max(1.0);
            let cfg = CollectionConfig::new(BrowserKind::Native, AttackKind::LoopCounting)
                .with_machine(machine)
                .with_scale(scale);
            let r = cfg.evaluate_closed_world(seed);
            println!(
                "  amplification {amp:.1}: top-1 {:.1}%",
                r.mean_accuracy() * 100.0
            );
        }
    });
}
