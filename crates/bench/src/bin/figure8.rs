//! Regenerate Fig. 8 (attacker-period duration distributions).
use bf_bench::run_bin;
use bf_core::experiments::figure8;
use std::process::ExitCode;

fn main() -> ExitCode {
    run_bin("Figure 8", "figure8", |m, scale, seed| {
        let fig = m.phase("durations", || figure8::run(scale, seed));
        println!("{fig}");
        Ok(())
    })
}
