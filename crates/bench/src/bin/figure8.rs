//! Regenerate Fig. 8 (attacker-period duration distributions).
use bf_bench::{banner, scale_and_seed, with_manifest};
use bf_core::experiments::figure8;

fn main() {
    let (scale, seed) = scale_and_seed();
    banner("Figure 8", scale);
    let fig = with_manifest("figure8", scale, seed, |m| {
        m.phase("durations", || figure8::run(scale, seed))
    });
    println!("{fig}");
}
