//! Regenerate Fig. 6 (interrupt gap-length distributions).
use bf_bench::run_bin;
use bf_core::experiments::figure6;
use std::process::ExitCode;

fn main() -> ExitCode {
    run_bin("Figure 6", "figure6", |m, scale, seed| {
        let fig = m.phase("gap_distributions", || figure6::run(scale, seed));
        println!("{fig}");
        for k in &fig.kinds {
            println!("\n{} gap-length histogram (µs):", k.kind);
            print!("{}", k.histogram.render(40));
        }
        Ok(())
    })
}
