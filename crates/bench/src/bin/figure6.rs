//! Regenerate Fig. 6 (interrupt gap-length distributions).
use bf_bench::{banner, scale_and_seed, with_manifest};
use bf_core::experiments::figure6;

fn main() {
    let (scale, seed) = scale_and_seed();
    banner("Figure 6", scale);
    let fig = with_manifest("figure6", scale, seed, |m| {
        m.phase("gap_distributions", || figure6::run(scale, seed))
    });
    println!("{fig}");
    for k in &fig.kinds {
        println!("\n{} gap-length histogram (µs):", k.kind);
        print!("{}", k.histogram.render(40));
    }
}
