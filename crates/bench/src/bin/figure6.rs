//! Regenerate Fig. 6 (interrupt gap-length distributions).
use bf_bench::{banner, scale_and_seed};
use bf_core::experiments::figure6;

fn main() {
    let (scale, seed) = scale_and_seed();
    banner("Figure 6", scale);
    let fig = figure6::run(scale, seed);
    println!("{fig}");
    for k in &fig.kinds {
        println!("\n{} gap-length histogram (µs):", k.kind);
        print!("{}", k.histogram.render(40));
    }
}
