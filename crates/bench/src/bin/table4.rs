//! Regenerate Table 4 (timer-defense sweep).
use bf_bench::{banner, scale_and_seed};
use bf_core::experiments::table4;

fn main() {
    let (scale, seed) = scale_and_seed();
    banner("Table 4", scale);
    let start = std::time::Instant::now();
    let result = table4::run(scale, seed);
    println!("{result}");
    println!("elapsed: {:.1?}", start.elapsed());
}
