//! Regenerate Table 4 (timer-defense sweep).
use bf_bench::{banner, scale_and_seed, with_manifest};
use bf_core::experiments::table4;

fn main() {
    let (scale, seed) = scale_and_seed();
    banner("Table 4", scale);
    let result = with_manifest("table4", scale, seed, |m| {
        m.phase("timer_sweep", || table4::run(scale, seed))
    });
    println!("{result}");
}
