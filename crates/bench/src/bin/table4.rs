//! Regenerate Table 4 (timer-defense sweep).
use bf_bench::run_bin;
use bf_core::experiments::table4;
use std::process::ExitCode;

fn main() -> ExitCode {
    run_bin("Table 4", "table4", |m, scale, seed| {
        let result = m.phase("timer_sweep", || table4::run(scale, seed));
        println!("{result}");
        Ok(())
    })
}
