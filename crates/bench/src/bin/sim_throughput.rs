//! Simulation-engine throughput at collect-phase shapes.
//!
//! Times steady-state `Machine::run` over real website workloads (the
//! same `WebsiteProfile` fixtures `collect_trace` feeds the engine),
//! sequentially (1 thread) and fanned out across seeds on the
//! configured `bf_par` pool, and writes a `BENCH_sim_throughput.json`
//! summary. Each configuration also re-times the same runs with the sim
//! workspace cleared before every run, isolating how much of the win
//! comes from buffer reuse versus the streamed merge itself.
//!
//! The committed pre-PR reference numbers (materialize-then-sort engine,
//! 1 thread) are embedded per shape so the summary carries its own
//! speedup-vs-baseline column.
//!
//! ```sh
//! BF_SCALE=smoke   cargo run --release -p bf-bench --bin sim_throughput
//! BF_SCALE=default cargo run --release -p bf-bench --bin sim_throughput
//! ```

use bf_bench::run_bin;
use bf_core::ExperimentScale;
use bf_sim::{Machine, MachineConfig, Workload};
use bf_obs::Json;
use bf_stats::rng::combine_seeds;
use bf_timer::Nanos;
use bf_victim::{LoadEnv, WebsiteProfile};
use std::process::ExitCode;
use std::time::Instant;

/// One benchmark shape plus its pre-PR single-thread reference.
struct Shape {
    name: &'static str,
    hostname: &'static str,
    /// Simulated trace duration (the default shape matches the Chrome
    /// collect-phase trace length used by `collect_trace`).
    duration_ms: u64,
    timed_runs: usize,
    /// Runs/sec of the materialize-then-sort implementation this PR
    /// replaced, measured with this exact fixture at `BF_THREADS=1`.
    baseline_runs_per_sec: f64,
}

const SHAPES: &[Shape] = &[
    Shape {
        name: "smoke",
        hostname: "github.com",
        duration_ms: 2_000,
        timed_runs: 40,
        baseline_runs_per_sec: 270.0,
    },
    Shape {
        name: "default",
        hostname: "github.com",
        duration_ms: 15_000,
        timed_runs: 30,
        baseline_runs_per_sec: 145.0,
    },
];

const WARMUP_RUNS: usize = 3;

/// Consume a run's output the way `collect_trace` does: read it, then
/// either recycle it into the pool (steady state) or drop it (cold).
fn finish_run(out: bf_sim::SimOutput, warm: bool) -> u64 {
    let events = out.kernel_log.len() as u64;
    std::hint::black_box(&out);
    if warm {
        bf_sim::workspace::recycle(out);
    }
    events
}

/// The collect-phase workload for a shape: a direct (non-Tor) page load
/// of the shape's site, exactly what `collect_trace` hands the engine.
fn shape_workload(shape: &Shape, seed: u64) -> Workload {
    WebsiteProfile::for_hostname(shape.hostname).generate_in_env(
        Nanos::from_millis(shape.duration_ms),
        seed,
        &LoadEnv::direct(),
    )
}

/// Single-thread runs/sec and events/sec for one shape. `warm` runs on
/// recycled workspace arenas (steady state, zero allocation); cold
/// clears the pool before every run, isolating the streamed merge from
/// buffer reuse.
fn measure_seq(machine: &Machine, workload: &Workload, shape: &Shape, warm: bool) -> (f64, f64) {
    bf_sim::workspace::clear_thread();
    let mut events = 0u64;
    for i in 0..WARMUP_RUNS {
        finish_run(machine.run(workload, combine_seeds(0xBEEF, i as u64)), warm);
    }
    let t = Instant::now();
    for i in 0..shape.timed_runs {
        if !warm {
            bf_sim::workspace::clear_thread();
        }
        events += finish_run(machine.run(workload, combine_seeds(42, i as u64)), warm);
    }
    let secs = t.elapsed().as_secs_f64().max(1e-12);
    let runs_per_sec = shape.timed_runs as f64 / secs;
    (runs_per_sec, events as f64 / secs)
}

/// Fan the same runs out across the `bf_par` pool (one sim per seed —
/// the collect-phase parallelism shape) and report aggregate runs/sec.
/// Each worker recycles into its own thread-local arena.
fn measure_par(machine: &Machine, workload: &Workload, shape: &Shape) -> (f64, f64) {
    let seeds: Vec<u64> = (0..shape.timed_runs as u64)
        .map(|i| combine_seeds(42, i))
        .collect();
    // Warm every worker's thread-local state.
    let _ = bf_par::par_map_indexed(&seeds[..seeds.len().min(4)], |_, &s| {
        finish_run(machine.run(workload, s), true)
    });
    let t = Instant::now();
    let event_counts =
        bf_par::par_map_indexed(&seeds, |_, &s| finish_run(machine.run(workload, s), true));
    let secs = t.elapsed().as_secs_f64().max(1e-12);
    let events: u64 = event_counts.iter().sum();
    (shape.timed_runs as f64 / secs, events as f64 / secs)
}

fn main() -> ExitCode {
    run_bin(
        "simulation throughput",
        "sim_throughput",
        |m, scale, _seed| {
            let par_threads = bf_par::threads().max(2);
            m.config("par_threads", par_threads);
            // Smoke keeps CI fast with the short trace only; larger
            // scales also time the collect-phase 15 s default shape.
            let shapes: &[Shape] = if scale == ExperimentScale::Smoke {
                &SHAPES[..1]
            } else {
                SHAPES
            };

            println!(
                "shape     mode       threads   runs/s     events/s     ms/run    vs pre-PR (1t)"
            );
            let mut rows = Vec::new();
            let mut smoke_steady_speedup = f64::NAN;
            for shape in shapes {
                let machine = Machine::new(MachineConfig::default());
                let workload = shape_workload(shape, 7);
                for (mode, threads) in
                    [("steady", 1usize), ("cold", 1usize), ("par", par_threads)]
                {
                    bf_par::set_threads(Some(threads));
                    let label = format!("{}_{mode}", shape.name);
                    let (runs_per_sec, events_per_sec) = m.phase(&label, || match mode {
                        "steady" => measure_seq(&machine, &workload, shape, true),
                        "cold" => measure_seq(&machine, &workload, shape, false),
                        _ => measure_par(&machine, &workload, shape),
                    });
                    bf_par::set_threads(None);
                    let ms_per_run = 1e3 / runs_per_sec;
                    let vs_baseline = if mode == "steady" {
                        runs_per_sec / shape.baseline_runs_per_sec
                    } else {
                        0.0
                    };
                    if mode == "steady" && shape.name == "smoke" {
                        smoke_steady_speedup = vs_baseline;
                    }
                    println!(
                        "{:<9} {:<10} {:<9} {:>8.2}  {:>10.0}  {:>8.2}    {:>5.2}x",
                        shape.name, mode, threads, runs_per_sec, events_per_sec, ms_per_run,
                        vs_baseline,
                    );
                    bf_obs::gauge("sim.runs_per_sec").set(runs_per_sec);
                    rows.push(Json::object([
                        ("shape", Json::Str(shape.name.into())),
                        ("mode", Json::Str(mode.into())),
                        ("threads", Json::UInt(threads as u64)),
                        ("duration_ms", Json::UInt(shape.duration_ms)),
                        ("timed_runs", Json::UInt(shape.timed_runs as u64)),
                        ("runs_per_sec", Json::Float(runs_per_sec)),
                        ("events_per_sec", Json::Float(events_per_sec)),
                        (
                            "baseline_runs_per_sec",
                            Json::Float(shape.baseline_runs_per_sec),
                        ),
                        ("speedup_vs_baseline", Json::Float(vs_baseline)),
                    ]));
                }
            }

            // Regression floor for CI: the streamed engine must never be
            // slower than the pre-PR engine on the smoke fixture. (The
            // recorded speedups are well above this; the floor only
            // tolerates shared-runner noise.)
            if smoke_steady_speedup < 1.0 || smoke_steady_speedup.is_nan() {
                return Err(format!(
                    "smoke steady-state speedup vs pre-PR baseline is {smoke_steady_speedup:.2}x \
                     (must be >= 1.0x)"
                )
                .into());
            }

            let json = Json::object([
                (
                    "note",
                    Json::Str(
                        "Machine::run throughput over collect-phase website workloads. \
                         Modes: steady = recycled workspace arenas (zero-alloc path), \
                         cold = pool cleared before every run, par = one sim per seed on \
                         the bf_par pool. baseline_runs_per_sec is the pre-streaming \
                         materialize-then-sort engine at 1 thread on the same fixture."
                            .into(),
                    ),
                ),
                ("scale", Json::Str(scale.to_string())),
                ("warmup_runs", Json::UInt(WARMUP_RUNS as u64)),
                ("par_threads", Json::UInt(par_threads as u64)),
                (
                    "hardware_threads",
                    Json::UInt(std::thread::available_parallelism().map_or(1, |n| n.get() as u64)),
                ),
                ("rows", Json::Array(rows)),
            ]);
            let out = bf_bench::artifact_path("BF_SIM_THROUGHPUT_OUT", "BENCH_sim_throughput.json");
            std::fs::write(&out, json.to_pretty_string())?;
            println!("\nwrote {out}");
            Ok(())
        },
    )
}
