//! Regenerate Table 1 (closed/open-world accuracy grid).
use bf_bench::run_bin;
use bf_core::experiments::table1;
use std::process::ExitCode;

fn main() -> ExitCode {
    run_bin("Table 1", "table1", |m, scale, seed| {
        let result = m.phase("accuracy_grid", || table1::run(scale, seed));
        println!("{result}");
        Ok(())
    })
}
