//! Regenerate Table 1 (closed/open-world accuracy grid).
use bf_bench::{banner, scale_and_seed};
use bf_core::experiments::table1;

fn main() {
    let (scale, seed) = scale_and_seed();
    banner("Table 1", scale);
    let start = std::time::Instant::now();
    let result = table1::run(scale, seed);
    println!("{result}");
    println!("elapsed: {:.1?}", start.elapsed());
}
