//! Regenerate Table 1 (closed/open-world accuracy grid).
use bf_bench::{banner, scale_and_seed, with_manifest};
use bf_core::experiments::table1;

fn main() {
    let (scale, seed) = scale_and_seed();
    banner("Table 1", scale);
    let result = with_manifest("table1", scale, seed, |m| {
        m.phase("accuracy_grid", || table1::run(scale, seed))
    });
    println!("{result}");
}
