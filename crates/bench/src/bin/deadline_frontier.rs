//! Accuracy-vs-deadline frontier for the anytime prediction ladder.
//!
//! Trains the same primary / fallback / ladder / distilled-student stack
//! as `serve_load`, then sweeps the per-request deadline against the
//! early-exit confidence threshold over a low-contention request stream
//! (wide arrival gaps, `wave_cap` pinned to 4, so every outcome is a
//! pure function of the seed at any `BF_THREADS`). Each sweep cell
//! records end-to-end accuracy — a request that sheds or times out
//! counts as wrong — plus per-tier answer fractions and per-tier
//! conditional accuracy.
//!
//! The point of the artifact: with the ladder on, tightening the
//! deadline slides answers down the rungs (full → early-exit@k →
//! distilled → centroid) and accuracy degrades smoothly instead of
//! cliff-dropping to zero; at generous deadlines the curve approaches
//! the primary's offline accuracy. At non-smoke scales the run asserts
//! the curve is monotone (within a small tolerance) and that every
//! rung's *confident* exits beat the centroid tier's accuracy measured
//! on the same chaos-corrupted stream (forced budget-cutoff answers are
//! expected to sit near that floor — smooth degradation, not free
//! accuracy).
//!
//! Writes `BENCH_deadline_frontier.json` (override with
//! `BF_DEADLINE_FRONTIER_OUT`). Request count is
//! `BF_FRONTIER_REQUESTS` (default 400).

use bf_bench::run_bin;
use bf_core::{AttackKind, CollectionConfig};
use bf_fault::FaultPlan;
use bf_ml::{
    AnytimeLadder, Calibration, CentroidClassifier, Classifier, Dataset, DistillConfig,
    DistilledClassifier,
};
use bf_obs::Json;
use bf_serve::{open_loop_arrivals, Outcome, ServeConfig, Service, TierModels};
use bf_stats::rng::combine_seeds;
use bf_timer::BrowserKind;
use bf_victim::Catalog;
use std::process::ExitCode;

/// Wide gaps: requests rarely queue, so the deadline budget is spent on
/// collection + inference, not on waiting — the sweep measures the
/// ladder, not the queue.
const MEAN_GAP_UNITS: f64 = 400.0;

/// Per-request deadlines swept (virtual units). With the default cost
/// model the ladder's clean paths land at ~37 (first rung) through ~224
/// (full climb), so the grid spans "only the cheapest rung fits" to
/// "everything fits with slack".
const DEADLINES: [u64; 6] = [40, 60, 90, 130, 180, 320];

/// Early-exit confidence thresholds swept (calibrated probability).
const THRESHOLDS: [f64; 3] = [0.70, 0.85, 0.95];

/// Answer tiers in ladder order, matching [`bf_serve::Tier::label`].
const TIER_LABELS: [&str; 6] = [
    "full",
    "early_exit_25",
    "early_exit_50",
    "early_exit_75",
    "distilled",
    "centroid",
];

/// A rung's aggregate conditional accuracy is only compared against the
/// centroid floor once it has answered this many requests across the
/// whole sweep; rarely-hit rungs are reported but not gated.
const MIN_RUNG_SAMPLES: u64 = 25;

/// Index of the centroid tier in [`TIER_LABELS`] — the ladder's floor.
const CENTROID_SLOT: usize = 5;

/// Adjacent sweep cells may differ by a request or two on knife-edge
/// budgets; the monotonicity gate allows this much accuracy slack.
const MONOTONE_SLACK: f64 = 0.02;

/// One sweep cell's outcome tallies. `tier_*` cover every answer at a
/// rung; `conf_*` cover only confident exits (`Outcome::Prediction`),
/// excluding forced budget-cutoff answers (`Outcome::Degraded`) whose
/// accuracy is expected to sit near the floor — that's what "degrade
/// smoothly" means.
#[derive(Default)]
struct Cell {
    answered: u64,
    correct: u64,
    tier_counts: [u64; TIER_LABELS.len()],
    tier_correct: [u64; TIER_LABELS.len()],
    conf_counts: [u64; TIER_LABELS.len()],
    conf_correct: [u64; TIER_LABELS.len()],
}

impl Cell {
    /// End-to-end accuracy over all submitted requests: a shed, timed
    /// out, or failed request is an unanswered (wrong) one.
    fn accuracy(&self, submitted: u64) -> f64 {
        self.correct as f64 / submitted.max(1) as f64
    }

    fn to_json(&self, deadline: u64, threshold: f64, submitted: u64) -> Json {
        let per_tier = |counts: &[u64], denom: &[u64]| {
            Json::object(TIER_LABELS.iter().enumerate().map(|(i, label)| {
                (*label, Json::Float(counts[i] as f64 / denom[i].max(1) as f64))
            }))
        };
        let answered_denom = [self.answered; TIER_LABELS.len()];
        Json::object([
            ("deadline_units", Json::UInt(deadline)),
            ("confidence_threshold", Json::Float(threshold)),
            ("answered", Json::UInt(self.answered)),
            ("answered_fraction", Json::Float(self.answered as f64 / submitted.max(1) as f64)),
            ("accuracy", Json::Float(self.accuracy(submitted))),
            ("tier_fractions", per_tier(&self.tier_counts, &answered_denom)),
            ("tier_accuracy", per_tier(&self.tier_correct, &self.tier_counts)),
        ])
    }
}

fn tally(resolved: &[bf_serve::Resolved]) -> Cell {
    let mut cell = Cell::default();
    for r in resolved {
        let (class, tier, confident) = match &r.outcome {
            Outcome::Prediction { class, tier, .. } => (*class, tier, true),
            Outcome::Degraded { class, tier, .. } => (*class, tier, false),
            _ => continue,
        };
        let slot = TIER_LABELS
            .iter()
            .position(|l| *l == tier.label())
            .unwrap_or_else(|| panic!("unknown answer tier {:?}", tier.label()));
        let hit = class == r.site;
        cell.answered += 1;
        cell.tier_counts[slot] += 1;
        cell.correct += hit as u64;
        cell.tier_correct[slot] += hit as u64;
        if confident {
            cell.conf_counts[slot] += 1;
            cell.conf_correct[slot] += hit as u64;
        }
    }
    cell
}

/// Offline accuracy of a classifier on a labelled dataset (argmax).
fn offline_accuracy(model: &mut dyn Classifier, data: &Dataset) -> f64 {
    let probs = model.predict_proba(data.features());
    let correct = probs
        .iter()
        .zip(data.labels())
        .filter(|(row, &label)| {
            let best = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i);
            best == Some(label)
        })
        .count();
    correct as f64 / data.len().max(1) as f64
}

fn main() -> ExitCode {
    run_bin("anytime ladder deadline frontier", "deadline_frontier", |m, scale, seed| {
        let n_requests: usize =
            bf_obs::env::parse_or("BF_FRONTIER_REQUESTS", 400, "a positive request count").max(1);
        m.config("frontier.requests", n_requests);
        m.config("frontier.mean_gap_units", MEAN_GAP_UNITS);

        // Offline phase — identical stack to serve_load: primary +
        // centroid fallback + anytime ladder + distilled student.
        let clean = CollectionConfig::new(BrowserKind::Chrome, AttackKind::LoopCounting)
            .with_scale(scale);
        let (n_sites, tps) = (scale.n_sites(), scale.traces_per_site());
        let data = m.phase("train_collect", || clean.collect_closed_world(n_sites, tps, seed));
        let folds = data.stratified_folds(5, seed);
        let train_idx: Vec<usize> = folds[1..].iter().flatten().copied().collect();
        let (train, val) = (data.subset(&train_idx), data.subset(&folds[0]));
        let mut primary = clean.classifier_for(&data, seed);
        m.phase("train_primary", || primary.fit(&train, &val));
        let mut fallback = CentroidClassifier::new(data.n_classes());
        m.phase("train_fallback", || fallback.fit(&train, &val));

        // The floor every rung is measured against: the standalone
        // centroid's offline accuracy on the held-out fold.
        let centroid_floor = offline_accuracy(&mut fallback, &val);
        let primary_offline = offline_accuracy(&mut *primary, &val);
        m.config("frontier.centroid_floor", centroid_floor);
        m.config("frontier.primary_offline_accuracy", primary_offline);

        let ladder = m.phase("fit_ladder", || AnytimeLadder::fit(&mut *primary, &val));
        let distill_cfg = DistillConfig {
            max_epochs: 12,
            seed: combine_seeds(seed, 0xD1),
            ..DistillConfig::default()
        };
        let tiers = if DistilledClassifier::feasible(
            data.feature_len(),
            data.n_classes(),
            distill_cfg.conv_filters,
        ) {
            let mut student =
                DistilledClassifier::new(data.feature_len(), data.n_classes(), distill_cfg);
            m.phase("distill_student", || student.distill(&mut *primary, &train));
            let cal = m.phase("calibrate_student", || {
                Calibration::fit(&student.predict_proba(val.features()), val.labels())
            });
            TierModels { ladder, distilled: Some(Box::new(student)), distilled_calibration: cal }
        } else {
            TierModels { ladder, ..TierModels::default() }
        };

        // Online phase: default chaos plan, no storms — the sweep varies
        // only (deadline, threshold). wave_cap pinned so every cell is a
        // pure function of the seed, bit-identical at any BF_THREADS.
        let plan = FaultPlan { seed: combine_seeds(seed, 0xFB), ..FaultPlan::default_plan() };
        m.config("frontier.fault_plan", plan.summary());
        let cfg_for = |deadline: u64, threshold: f64| ServeConfig {
            deadline_units: deadline,
            wave_cap: Some(4),
            tiers: bf_serve::TierConfig {
                ladder: true,
                confidence_threshold: threshold,
                ..bf_serve::TierConfig::default()
            },
            ..ServeConfig::default()
        };
        let serving = clean.clone().with_faults(plan);
        let sites = Catalog::closed_world_subset_with_tuning(n_sites, clean.tuning)
            .sites()
            .to_vec();
        let requests = open_loop_arrivals(n_requests, n_sites, MEAN_GAP_UNITS, seed);
        let mut svc = Service::new(serving, sites, primary, fallback, cfg_for(DEADLINES[0], THRESHOLDS[0]))
            .with_tiers(tiers);

        let mut cells = Vec::new();
        let mut rung_counts = [0u64; TIER_LABELS.len()];
        let mut rung_correct = [0u64; TIER_LABELS.len()];
        let mut rung_conf_counts = [0u64; TIER_LABELS.len()];
        let mut rung_conf_correct = [0u64; TIER_LABELS.len()];
        let mid = (DEADLINES.len() / 2, THRESHOLDS.len() / 2);
        for (ti, &threshold) in THRESHOLDS.iter().enumerate() {
            for (di, &deadline) in DEADLINES.iter().enumerate() {
                svc.reconfigure(cfg_for(deadline, threshold));
                let label = format!("sweep_d{deadline}_t{}", (threshold * 100.0) as u64);
                let resolved = m.phase(&label, || svc.run(&requests));
                assert_eq!(resolved.len(), n_requests);
                if (di, ti) == mid {
                    // Rerun one representative cell: the sweep must be
                    // bit-deterministic for a fixed seed.
                    svc.reconfigure(cfg_for(deadline, threshold));
                    let again = m.phase(&format!("{label}_replay"), || svc.run(&requests));
                    assert_eq!(
                        resolved, again,
                        "frontier outcomes must be bit-deterministic for a fixed seed"
                    );
                }
                let cell = tally(&resolved);
                for i in 0..TIER_LABELS.len() {
                    rung_counts[i] += cell.tier_counts[i];
                    rung_correct[i] += cell.tier_correct[i];
                    rung_conf_counts[i] += cell.conf_counts[i];
                    rung_conf_correct[i] += cell.conf_correct[i];
                }
                cells.push((deadline, threshold, cell));
            }
        }
        svc.record_in_manifest(m);

        // Report the frontier.
        println!("\ncentroid floor (offline, val) = {centroid_floor:.4}");
        println!("primary offline accuracy (val) = {primary_offline:.4}\n");
        println!("threshold   deadline   answered   accuracy");
        for (deadline, threshold, cell) in &cells {
            println!(
                "{threshold:>9.2} {deadline:>10} {:>10} {:>10.4}",
                cell.answered,
                cell.accuracy(n_requests as u64)
            );
        }
        println!("\nrung                 answers   accuracy   confident   conf accuracy");
        for (i, label) in TIER_LABELS.iter().enumerate() {
            println!(
                "{label:<20} {:>7} {:>10.4} {:>11} {:>15.4}",
                rung_counts[i],
                rung_correct[i] as f64 / rung_counts[i].max(1) as f64,
                rung_conf_counts[i],
                rung_conf_correct[i] as f64 / rung_conf_counts[i].max(1) as f64
            );
        }

        // Gates (skipped at smoke scale, where the 6-site centroid
        // stack leaves too few requests per cell to be statistical).
        let smoke = scale.to_string() == "smoke";
        if !smoke {
            for &threshold in &THRESHOLDS {
                let curve: Vec<f64> = cells
                    .iter()
                    .filter(|(_, t, _)| *t == threshold)
                    .map(|(_, _, c)| c.accuracy(n_requests as u64))
                    .collect();
                for w in curve.windows(2) {
                    assert!(
                        w[1] >= w[0] - MONOTONE_SLACK,
                        "accuracy must degrade monotonically as deadlines tighten \
                         (threshold {threshold}): {curve:?}"
                    );
                }
            }
            // The floor is the centroid tier's *online* accuracy on this
            // very stream (same chaos plan, same paid prefixes) — the
            // offline clean-trace floor above is info, not a gate; the
            // serving path never sees clean full traces. Every rung's
            // confident exits must beat it; forced budget-cutoff answers
            // are expected to sit near it, that's the smooth-degradation
            // deal.
            if rung_counts[CENTROID_SLOT] >= MIN_RUNG_SAMPLES {
                let online_floor = rung_correct[CENTROID_SLOT] as f64
                    / rung_counts[CENTROID_SLOT].max(1) as f64;
                for (i, label) in TIER_LABELS.iter().enumerate() {
                    if i == CENTROID_SLOT || rung_conf_counts[i] < MIN_RUNG_SAMPLES {
                        continue;
                    }
                    let acc =
                        rung_conf_correct[i] as f64 / rung_conf_counts[i].max(1) as f64;
                    assert!(
                        acc >= online_floor,
                        "rung {label}'s confident exits ({acc:.4} over {} answers) must \
                         beat the online centroid floor {online_floor:.4}",
                        rung_conf_counts[i]
                    );
                }
            } else {
                println!(
                    "note: centroid tier answered only {} request(s); rung-vs-floor \
                     gate skipped",
                    rung_counts[CENTROID_SLOT]
                );
            }
        }

        let json = Json::object([
            (
                "note",
                Json::Str(
                    "anytime-ladder deadline frontier: accuracy vs per-request deadline at \
                     three early-exit confidence thresholds, wave_cap pinned so every cell \
                     is a pure function of the seed. Accuracy counts sheds/timeouts as \
                     wrong; tier_accuracy is conditional on answering at that rung. \
                     Deadlines are virtual work units, not wall time."
                        .into(),
                ),
            ),
            ("scale", Json::Str(scale.to_string())),
            ("seed", Json::UInt(seed)),
            ("requests", Json::UInt(n_requests as u64)),
            ("mean_gap_units", Json::Float(MEAN_GAP_UNITS)),
            ("deterministic", Json::Bool(true)),
            ("centroid_floor_accuracy", Json::Float(centroid_floor)),
            ("primary_offline_accuracy", Json::Float(primary_offline)),
            (
                "rung_accuracy",
                Json::object(TIER_LABELS.iter().enumerate().map(|(i, label)| {
                    (
                        *label,
                        Json::object([
                            ("answers", Json::UInt(rung_counts[i])),
                            (
                                "accuracy",
                                Json::Float(
                                    rung_correct[i] as f64 / rung_counts[i].max(1) as f64,
                                ),
                            ),
                            ("confident_answers", Json::UInt(rung_conf_counts[i])),
                            (
                                "confident_accuracy",
                                Json::Float(
                                    rung_conf_correct[i] as f64
                                        / rung_conf_counts[i].max(1) as f64,
                                ),
                            ),
                        ]),
                    )
                })),
            ),
            (
                "cells",
                Json::Array(
                    cells
                        .iter()
                        .map(|(d, t, c)| c.to_json(*d, *t, n_requests as u64))
                        .collect(),
                ),
            ),
        ]);
        let out =
            bf_bench::artifact_path("BF_DEADLINE_FRONTIER_OUT", "BENCH_deadline_frontier.json");
        std::fs::write(&out, json.to_pretty_string())?;
        println!("\nwrote {out}");
        Ok(())
    })
}
