//! Regenerate the §5.2 gap-attribution analysis (the >99% claim).
use bf_bench::run_bin;
use bf_core::experiments::leakage;
use std::process::ExitCode;

fn main() -> ExitCode {
    run_bin("§5.2 leakage attribution", "leakage", |m, scale, seed| {
        let analysis = m.phase("attribution", || leakage::run(scale, seed));
        let (off, on) = m.phase("turbo_comparison", || leakage::run_turbo_comparison(seed));
        println!("{analysis}");
        println!(
            "footnote 4 check - attribution with Turbo Boost disabled: {:.2}%, enabled: {:.2}%",
            off * 100.0,
            on * 100.0
        );
        println!("(the paper disables Turbo Boost for exactly this reason)");
        Ok(())
    })
}
