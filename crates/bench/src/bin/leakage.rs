//! Regenerate the §5.2 gap-attribution analysis (the >99% claim).
use bf_bench::{banner, scale_and_seed, with_manifest};
use bf_core::experiments::leakage;

fn main() {
    let (scale, seed) = scale_and_seed();
    banner("§5.2 leakage attribution", scale);
    let (analysis, off, on) = with_manifest("leakage", scale, seed, |m| {
        let analysis = m.phase("attribution", || leakage::run(scale, seed));
        let (off, on) = m.phase("turbo_comparison", || leakage::run_turbo_comparison(seed));
        (analysis, off, on)
    });
    println!("{analysis}");
    println!(
        "footnote 4 check - attribution with Turbo Boost disabled: {:.2}%, enabled: {:.2}%",
        off * 100.0,
        on * 100.0
    );
    println!("(the paper disables Turbo Boost for exactly this reason)");
}
