//! Regenerate Table 3 (isolation-mechanism ladder).
use bf_bench::{banner, scale_and_seed};
use bf_core::experiments::table3;

fn main() {
    let (scale, seed) = scale_and_seed();
    banner("Table 3", scale);
    let start = std::time::Instant::now();
    let result = table3::run(scale, seed);
    println!("{result}");
    println!("elapsed: {:.1?}", start.elapsed());
}
