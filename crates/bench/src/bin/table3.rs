//! Regenerate Table 3 (isolation-mechanism ladder).
use bf_bench::{banner, scale_and_seed, with_manifest};
use bf_core::experiments::table3;

fn main() {
    let (scale, seed) = scale_and_seed();
    banner("Table 3", scale);
    let result = with_manifest("table3", scale, seed, |m| {
        m.phase("isolation_ladder", || table3::run(scale, seed))
    });
    println!("{result}");
}
