//! Regenerate Table 3 (isolation-mechanism ladder).
use bf_bench::run_bin;
use bf_core::experiments::table3;
use std::process::ExitCode;

fn main() -> ExitCode {
    run_bin("Table 3", "table3", |m, scale, seed| {
        let result = m.phase("isolation_ladder", || table3::run(scale, seed));
        println!("{result}");
        Ok(())
    })
}
