//! Regenerate Fig. 4 (loop vs sweep trace correlation).
use bf_bench::{banner, scale_and_seed, with_manifest};
use bf_core::experiments::figure4;

fn main() {
    let (scale, seed) = scale_and_seed();
    banner("Figure 4", scale);
    let fig = with_manifest("figure4", scale, seed, |m| {
        m.phase("correlation", || figure4::run(scale, seed))
    });
    println!("{fig}");
}
