//! Regenerate Fig. 4 (loop vs sweep trace correlation).
use bf_bench::run_bin;
use bf_core::experiments::figure4;
use std::process::ExitCode;

fn main() -> ExitCode {
    run_bin("Figure 4", "figure4", |m, scale, seed| {
        let fig = m.phase("correlation", || figure4::run(scale, seed));
        println!("{fig}");
        Ok(())
    })
}
