//! Regenerate every table and figure in sequence (EXPERIMENTS.md source).
//!
//! Each experiment runs inside its own panic guard, so a crash in one
//! table still lets the remaining tables regenerate; the bin exits
//! non-zero listing the failed phases.
use bf_bench::run_bin;
use bf_core::experiments::{
    figure3, figure4, figure5, figure6, figure7, figure8, leakage, table1, table2, table3, table4,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

/// Run one experiment as a manifest phase, containing any panic so the
/// remaining experiments still run.
fn guarded<R: std::fmt::Display>(
    m: &mut bf_obs::ManifestBuilder,
    name: &str,
    failed: &mut Vec<String>,
    f: impl FnOnce() -> R,
) {
    match catch_unwind(AssertUnwindSafe(|| m.phase(name, f))) {
        Ok(out) => println!("{out}\n"),
        Err(_) => {
            eprintln!("phase {name} panicked; continuing with the rest\n");
            failed.push(name.to_owned());
        }
    }
}

fn main() -> ExitCode {
    let t0 = std::time::Instant::now();
    let code = run_bin("all tables and figures", "all", |m, scale, seed| {
        let mut failed = Vec::new();
        guarded(m, "figure3", &mut failed, || figure3::run(scale, seed));
        guarded(m, "figure4", &mut failed, || figure4::run(scale, seed));
        guarded(m, "table1", &mut failed, || table1::run(scale, seed));
        guarded(m, "table2", &mut failed, || table2::run(scale, seed, true));
        guarded(m, "table3", &mut failed, || table3::run(scale, seed));
        guarded(m, "leakage", &mut failed, || leakage::run(scale, seed));
        guarded(m, "figure5", &mut failed, || figure5::run(scale, seed));
        guarded(m, "figure6", &mut failed, || figure6::run(scale, seed));
        guarded(m, "figure7", &mut failed, || figure7::run(scale, seed));
        guarded(m, "figure8", &mut failed, || figure8::run(scale, seed));
        guarded(m, "table4", &mut failed, || table4::run(scale, seed));
        if failed.is_empty() {
            Ok(())
        } else {
            Err(format!("{} phase(s) failed: {}", failed.len(), failed.join(", ")).into())
        }
    });
    println!("total elapsed: {:.1?}", t0.elapsed());
    code
}
