//! Regenerate every table and figure in sequence (EXPERIMENTS.md source).
use bf_bench::{banner, scale_and_seed};
use bf_core::experiments::{
    figure3, figure4, figure5, figure6, figure7, figure8, leakage, table1, table2, table3,
    table4,
};

fn main() {
    let (scale, seed) = scale_and_seed();
    banner("all tables and figures", scale);
    let t0 = std::time::Instant::now();
    println!("{}\n", figure3::run(scale, seed));
    println!("{}\n", figure4::run(scale, seed));
    println!("{}\n", table1::run(scale, seed));
    println!("{}\n", table2::run(scale, seed, true));
    println!("{}\n", table3::run(scale, seed));
    println!("{}\n", leakage::run(scale, seed));
    println!("{}\n", figure5::run(scale, seed));
    println!("{}\n", figure6::run(scale, seed));
    println!("{}\n", figure7::run(scale, seed));
    println!("{}\n", figure8::run(scale, seed));
    println!("{}\n", table4::run(scale, seed));
    println!("total elapsed: {:.1?}", t0.elapsed());
}
