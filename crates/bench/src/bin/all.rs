//! Regenerate every table and figure in sequence (EXPERIMENTS.md source).
use bf_bench::{banner, scale_and_seed, with_manifest};
use bf_core::experiments::{
    figure3, figure4, figure5, figure6, figure7, figure8, leakage, table1, table2, table3, table4,
};

fn main() {
    let (scale, seed) = scale_and_seed();
    banner("all tables and figures", scale);
    let t0 = std::time::Instant::now();
    with_manifest("all", scale, seed, |m| {
        println!("{}\n", m.phase("figure3", || figure3::run(scale, seed)));
        println!("{}\n", m.phase("figure4", || figure4::run(scale, seed)));
        println!("{}\n", m.phase("table1", || table1::run(scale, seed)));
        println!("{}\n", m.phase("table2", || table2::run(scale, seed, true)));
        println!("{}\n", m.phase("table3", || table3::run(scale, seed)));
        println!("{}\n", m.phase("leakage", || leakage::run(scale, seed)));
        println!("{}\n", m.phase("figure5", || figure5::run(scale, seed)));
        println!("{}\n", m.phase("figure6", || figure6::run(scale, seed)));
        println!("{}\n", m.phase("figure7", || figure7::run(scale, seed)));
        println!("{}\n", m.phase("figure8", || figure8::run(scale, seed)));
        println!("{}\n", m.phase("table4", || table4::run(scale, seed)));
    });
    println!("total elapsed: {:.1?}", t0.elapsed());
}
