//! Training-step throughput for the zero-allocation hot path.
//!
//! Times steady-state `CnnLstm::train_batch` steps at paper-relevant
//! shapes, sequentially (1 thread) and on the configured pool, and
//! writes a `BENCH_train_throughput.json` summary. Each configuration
//! also re-times the same steps with the workspace arena cleared before
//! every step, isolating how much of the win comes from buffer reuse
//! versus the unrolled kernels.
//!
//! The committed pre-PR reference numbers (allocate-every-step
//! implementation, 1 thread) are embedded per shape so the summary
//! carries its own speedup-vs-baseline column.
//!
//! ```sh
//! BF_SCALE=smoke   cargo run --release -p bf-bench --bin train_throughput
//! BF_SCALE=default cargo run --release -p bf-bench --bin train_throughput
//! ```

use bf_bench::run_bin;
use bf_core::ExperimentScale;
use bf_nn::{CnnLstm, CnnLstmConfig, Tensor};
use bf_obs::Json;
use bf_stats::SeedRng;
use std::process::ExitCode;
use std::time::Instant;

/// One benchmark shape plus its pre-PR single-thread reference.
struct Shape {
    name: &'static str,
    trace_len: usize,
    n_classes: usize,
    filters: usize,
    batch: usize,
    /// Steps/sec of the allocate-every-step implementation this PR
    /// replaced, measured with this exact fixture at `BF_THREADS=1`.
    baseline_steps_per_sec: f64,
}

const SHAPES: &[Shape] = &[
    Shape {
        name: "smoke",
        trace_len: 300,
        n_classes: 4,
        filters: 16,
        batch: 8,
        baseline_steps_per_sec: 1967.42,
    },
    Shape {
        name: "default",
        trace_len: 1000,
        n_classes: 10,
        filters: 32,
        batch: 16,
        baseline_steps_per_sec: 104.66,
    },
];

const WARMUP_STEPS: usize = 3;
const TIMED_STEPS: usize = 30;

/// Steady-state steps/sec for one shape at the current thread setting.
/// `cold_arena` clears the thread's workspace pool before every step,
/// forcing each buffer to be reallocated (the reuse-ablation mode).
fn measure(shape: &Shape, cold_arena: bool) -> f64 {
    let mut cfg = CnnLstmConfig::scaled(shape.trace_len, shape.n_classes, shape.filters);
    cfg.dropout = 0.3;
    cfg.learning_rate = 0.01;
    let mut net = CnnLstm::new(cfg, 42);
    let mut rng = SeedRng::new(7);
    let data: Vec<f32> = (0..shape.batch * shape.trace_len)
        .map(|_| rng.standard_normal() as f32)
        .collect();
    let labels: Vec<usize> = (0..shape.batch).map(|i| i % shape.n_classes).collect();
    let x = Tensor::new(&[shape.batch, 1, shape.trace_len], data);

    for _ in 0..WARMUP_STEPS {
        if cold_arena {
            bf_nn::workspace::clear_thread();
        }
        net.train_batch(&x, &labels);
    }
    let t = Instant::now();
    for _ in 0..TIMED_STEPS {
        if cold_arena {
            bf_nn::workspace::clear_thread();
        }
        net.train_batch(&x, &labels);
    }
    let secs = t.elapsed().as_secs_f64();
    TIMED_STEPS as f64 / secs.max(1e-12)
}

fn main() -> ExitCode {
    run_bin(
        "training-step throughput",
        "train_throughput",
        |m, scale, _seed| {
            let par_threads = bf_par::threads().max(2);
            m.config("par_threads", par_threads);
            // Smoke keeps CI fast with the small shape only; larger
            // scales also time the paper-sized default shape.
            let shapes: &[Shape] = if scale == ExperimentScale::Smoke {
                &SHAPES[..1]
            } else {
                SHAPES
            };

            println!(
                "shape     threads   steps/s    ns/step    cold-arena    vs pre-PR (1t)"
            );
            let mut rows = Vec::new();
            for shape in shapes {
                for (mode, threads) in [("seq", 1usize), ("par", par_threads)] {
                    bf_par::set_threads(Some(threads));
                    let label = format!("{}_{mode}", shape.name);
                    let steps_per_sec = m.phase(&label, || measure(shape, false));
                    let cold_steps_per_sec = measure(shape, true);
                    bf_par::set_threads(None);
                    let ns_per_step = 1e9 / steps_per_sec;
                    let vs_baseline = steps_per_sec / shape.baseline_steps_per_sec;
                    println!(
                        "{:<9} {:<9} {:>8.2}  {:>9.0}   {:>8.2}/s    {:>5.2}x",
                        shape.name, threads, steps_per_sec, ns_per_step,
                        cold_steps_per_sec, vs_baseline,
                    );
                    bf_obs::gauge("train.steps_per_sec").set(steps_per_sec);
                    // The small smoke shape must never lose to the
                    // pre-workspace baseline at *any* pool size: its
                    // per-sample work sits under BF_PAR_MIN_UNITS, so
                    // the kernels run inline and the multi-thread row
                    // matches the 1-thread row instead of paying
                    // dispatch overhead for sub-threshold slices (the
                    // 2-thread row regressed to 0.58x before the
                    // minimum-work gate existed).
                    if shape.name == "smoke" {
                        assert!(
                            vs_baseline >= 1.0,
                            "smoke shape at {threads} thread(s) fell below the \
                             allocate-every-step baseline: {vs_baseline:.2}x"
                        );
                    }
                    rows.push(Json::object([
                        ("shape", Json::Str(shape.name.into())),
                        ("threads", Json::UInt(threads as u64)),
                        ("trace_len", Json::UInt(shape.trace_len as u64)),
                        ("n_classes", Json::UInt(shape.n_classes as u64)),
                        ("filters", Json::UInt(shape.filters as u64)),
                        ("batch", Json::UInt(shape.batch as u64)),
                        ("steps_per_sec", Json::Float(steps_per_sec)),
                        ("ns_per_step", Json::Float(ns_per_step)),
                        ("cold_arena_steps_per_sec", Json::Float(cold_steps_per_sec)),
                        (
                            "baseline_steps_per_sec",
                            Json::Float(shape.baseline_steps_per_sec),
                        ),
                        ("speedup_vs_baseline", Json::Float(vs_baseline)),
                    ]));
                }
            }

            let json = Json::object([
                (
                    "note",
                    Json::Str(
                        "steady-state CnnLstm::train_batch throughput; baseline_steps_per_sec \
                         is the pre-workspace allocate-every-step implementation at 1 thread \
                         on the same fixture. cold_arena re-times with the workspace pool \
                         cleared before every step (isolates reuse vs kernel wins)."
                            .into(),
                    ),
                ),
                ("scale", Json::Str(scale.to_string())),
                ("warmup_steps", Json::UInt(WARMUP_STEPS as u64)),
                ("timed_steps", Json::UInt(TIMED_STEPS as u64)),
                ("par_threads", Json::UInt(par_threads as u64)),
                (
                    "hardware_threads",
                    Json::UInt(std::thread::available_parallelism().map_or(1, |n| n.get() as u64)),
                ),
                ("rows", Json::Array(rows)),
            ]);
            let out =
                bf_bench::artifact_path("BF_TRAIN_THROUGHPUT_OUT", "BENCH_train_throughput.json");
            std::fs::write(&out, json.to_pretty_string())?;
            println!("\nwrote {out}");
            Ok(())
        },
    )
}
