//! `obs_overhead` — the observability overhead budget gate.
//!
//! Re-measures the exact fixtures behind the checked-in
//! `BENCH_obs_baseline.json` criterion summary (workload synthesis,
//! machine simulation, loop replay — all 2 s traces) with tracing and
//! logging off, and asserts the pipeline has not slowed past
//! `BF_OVERHEAD_TOLERANCE` (default 0.02, i.e. the 2% budget) relative
//! to the baseline's `mean_ns` numbers. It then measures the same
//! resilient-collection path with `BF_TRACE`-style tracing fully on
//! (sampling 1) and records — without gating — what a traced run costs.
//!
//! Cross-machine absolute comparisons are meaningless at 2%, so CI
//! first regenerates a machine-local baseline and compares against
//! that:
//!
//! ```sh
//! obs_overhead --write-baseline /tmp/obs_baseline.json
//! BF_OBS_BASELINE=/tmp/obs_baseline.json BF_OVERHEAD_TOLERANCE=0.25 obs_overhead
//! ```
//!
//! Results land in `BENCH_obs_overhead.json` (override with
//! `BF_OBS_OVERHEAD_OUT`).

use bf_attack::LoopCountingAttacker;
use bf_core::{AttackKind, CollectionConfig, ExperimentScale};
use bf_obs::Json;
use bf_sim::{Machine, MachineConfig};
use bf_timer::{BrowserKind, Nanos};
use bf_victim::WebsiteProfile;
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

/// Same trace duration as `benches/pipeline.rs`.
const TRACE_SECS: u64 = 2;

/// Mean wall ns per call of `f` after `warmup` discarded calls.
fn time_ns(warmup: u32, iters: u32, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    t.elapsed().as_nanos() as f64 / f64::from(iters.max(1))
}

struct Fixture {
    bench: &'static str,
    iters: u32,
    measured_ns: f64,
}

/// Re-run the three cheap pipeline fixtures exactly as the criterion
/// bench builds them (same site, same duration, same seeds).
fn measure_fixtures() -> Vec<Fixture> {
    let site = WebsiteProfile::for_hostname("nytimes.com");
    let duration = Nanos::from_secs(TRACE_SECS);
    let machine = Machine::new(MachineConfig::default());
    let workload = site.generate(duration, 1);
    let sim = machine.run(&workload, 1);
    let atk = LoopCountingAttacker::for_browser(BrowserKind::Chrome, Nanos::from_millis(5));

    vec![
        Fixture {
            bench: "pipeline/victim_workload_synthesis_2s",
            iters: 30,
            measured_ns: time_ns(3, 30, || {
                black_box(site.generate(duration, black_box(2)));
            }),
        },
        Fixture {
            bench: "pipeline/machine_simulation_2s",
            iters: 30,
            measured_ns: time_ns(3, 30, || {
                black_box(machine.run(black_box(&workload), 3));
            }),
        },
        Fixture {
            bench: "pipeline/loop_replay_2s",
            iters: 120,
            measured_ns: time_ns(10, 120, || {
                let mut timer = BrowserKind::Chrome.timer(4);
                black_box(atk.collect(black_box(&sim), &mut timer));
            }),
        },
    ]
}

/// `mean_ns` of `bench` inside a `BENCH_obs_baseline.json`-shaped file.
fn baseline_mean_ns(baseline: &Json, bench: &str) -> Option<f64> {
    let pipeline = baseline.get("groups")?.get("pipeline")?;
    let Json::Array(entries) = pipeline else { return None };
    entries.iter().find_map(|e| {
        let name = e.get("bench")?;
        if matches!(name, Json::Str(s) if s == bench) {
            e.get("mean_ns")?.as_f64()
        } else {
            None
        }
    })
}

/// Tracing-on vs tracing-off cost of the resilient collection path at
/// smoke scale. Returns `(off_ns, on_ns, records_per_trace)`.
fn measure_tracing_cost() -> (f64, f64, u64) {
    let cfg = CollectionConfig::new(BrowserKind::Chrome, AttackKind::LoopCounting)
        .with_scale(ExperimentScale::Smoke);
    let site = WebsiteProfile::for_hostname("nytimes.com");
    const ITERS: u32 = 8;

    bf_obs::trace::set_enabled(false);
    let off_ns = time_ns(2, ITERS, || {
        black_box(cfg.collect_trace_resilient(&site, 42));
    });

    bf_obs::trace::set_enabled(true);
    bf_obs::trace::set_sample(1);
    let mut i = 0u64;
    let on_ns = time_ns(2, ITERS, || {
        let _g = bf_obs::trace::adopt(Some(bf_obs::TraceCtx::root(42, i)), 0);
        i += 1;
        black_box(cfg.collect_trace_resilient(&site, 42));
    });
    let records = bf_obs::trace::drain().len() as u64;
    bf_obs::trace::set_enabled(false);

    (off_ns, on_ns, records / u64::from(ITERS + 2).max(1))
}

fn write_baseline(path: &str, fixtures: &[Fixture]) -> Result<(), String> {
    let entries: Vec<Json> = fixtures
        .iter()
        .map(|f| {
            Json::object([
                ("bench", Json::Str(f.bench.to_owned())),
                ("mean_ns", Json::Float(f.measured_ns)),
                ("samples", Json::UInt(1)),
                ("iters_per_sample", Json::UInt(u64::from(f.iters))),
            ])
        })
        .collect();
    let json = Json::object([
        (
            "note",
            Json::Str(
                "machine-local obs overhead baseline regenerated by obs_overhead \
                 --write-baseline; same fixtures as benches/pipeline.rs"
                    .into(),
            ),
        ),
        ("groups", Json::object([("pipeline", Json::Array(entries))])),
    ]);
    std::fs::write(path, json.to_pretty_string()).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    match run() {
        Ok(ok) => {
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("obs_overhead: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<bool, String> {
    // Match the baseline's conditions: logging off, tracing off.
    bf_obs::set_level(None);
    bf_obs::trace::set_enabled(false);

    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--write-baseline") {
        let out = args
            .get(1)
            .cloned()
            .unwrap_or_else(|| "BENCH_obs_local_baseline.json".to_owned());
        let fixtures = measure_fixtures();
        write_baseline(&out, &fixtures)?;
        println!("wrote machine-local baseline -> {out}");
        return Ok(true);
    } else if let Some(other) = args.first() {
        return Err(format!("unknown argument `{other}` (only --write-baseline [PATH])"));
    }

    let tol = bf_obs::env::parse_or("BF_OVERHEAD_TOLERANCE", 0.02f64, "a relative fraction")
        .clamp(0.0, 10.0);
    let baseline_path = bf_bench::artifact_path("BF_OBS_BASELINE", "BENCH_obs_baseline.json");
    let text =
        std::fs::read_to_string(&baseline_path).map_err(|e| format!("{baseline_path}: {e}"))?;
    let baseline = Json::parse(&text).map_err(|e| format!("{baseline_path}: {e}"))?;

    println!(
        "=== obs overhead budget (baseline: {baseline_path}, tolerance {:.0}%) ===\n",
        tol * 100.0
    );
    let fixtures = measure_fixtures();
    let mut rows = Vec::new();
    let mut ok = true;
    for f in &fixtures {
        let base = baseline_mean_ns(&baseline, f.bench)
            .ok_or_else(|| format!("{baseline_path}: no mean_ns for {}", f.bench))?;
        let ratio = f.measured_ns / base.max(1.0);
        let within = ratio <= 1.0 + tol;
        ok &= within;
        println!(
            "{:<42} {:>12.0} ns vs {:>12.0} ns  ratio {:.3}  [{}]",
            f.bench,
            f.measured_ns,
            base,
            ratio,
            if within { "ok" } else { "OVER BUDGET" }
        );
        rows.push(Json::object([
            ("bench", Json::Str(f.bench.to_owned())),
            ("baseline_mean_ns", Json::Float(base)),
            ("measured_mean_ns", Json::Float(f.measured_ns)),
            ("ratio", Json::Float(ratio)),
            ("within_budget", Json::Bool(within)),
        ]));
    }

    let (off_ns, on_ns, records) = measure_tracing_cost();
    let overhead = on_ns / off_ns.max(1.0) - 1.0;
    println!(
        "\ncollect_trace_resilient (smoke): {off_ns:.0} ns off, {on_ns:.0} ns traced \
         ({overhead:+.2}% tracing cost, ~{records} span record(s)/trace)",
        overhead = overhead * 100.0
    );

    let json = Json::object([
        (
            "note",
            Json::Str(
                "tracing-off pipeline cost vs BENCH_obs_baseline (gated at \
                 BF_OVERHEAD_TOLERANCE) plus the measured cost of running with \
                 BF_TRACE=1 sampling 1 (recorded, not gated). Wall times are \
                 machine-local."
                    .into(),
            ),
        ),
        ("baseline", Json::Str(baseline_path.clone())),
        ("tolerance", Json::Float(tol)),
        ("within_budget", Json::Bool(ok)),
        ("fixtures", Json::Array(rows)),
        (
            "tracing_on",
            Json::object([
                ("collect_off_ns", Json::Float(off_ns)),
                ("collect_on_ns", Json::Float(on_ns)),
                ("overhead_fraction", Json::Float(overhead)),
                ("records_per_trace", Json::UInt(records)),
            ]),
        ),
    ]);
    let out = bf_bench::artifact_path("BF_OBS_OVERHEAD_OUT", "BENCH_obs_overhead.json");
    std::fs::write(&out, json.to_pretty_string()).map_err(|e| format!("{out}: {e}"))?;
    println!("wrote {out}");
    if !ok {
        eprintln!(
            "obs_overhead: tracing-off pipeline exceeded the {:.0}% budget",
            tol * 100.0
        );
    }
    Ok(ok)
}
