//! Open-loop load generator for the `bf-serve` online service.
//!
//! Trains a scale-appropriate primary (CNN+LSTM at paper scales, the
//! centroid baseline at smoke scale) plus a centroid fallback on clean
//! traces, fits the anytime prediction ladder (per-prefix calibration
//! plus a distilled student), then replays a deterministic open-loop
//! arrival stream through [`bf_serve::Service`] under the default chaos
//! plan plus injected slow-model and worker-panic faults, once at 1
//! thread and once at 4.
//!
//! An early slow-model storm (requests 5..40) drives the circuit
//! breaker through a full open → half-open → closed cycle, so the run
//! manifest always carries breaker-state transitions. Each configuration
//! is run twice and asserted bit-identical — outcomes, tick accounting,
//! and breaker history are pure functions of `(seed, thread count)`.
//!
//! The predict stage micro-batches up to `BF_SERVE_BATCH` completions
//! per wave (default 8 from the environment), sharing each rung's
//! stacked forward pass across the batch; per-run `batch_*` fields
//! record how many batches assembled, why they flushed, and their mean
//! size. At the full 1000-request stream the run asserts the 1-thread
//! batched path answers >= 75% of requests with <= 25% timeouts.
//!
//! Writes `BENCH_serve_baseline.json` (override with
//! `BF_SERVE_BASELINE_OUT`): virtual-time throughput, p50/p99 latency,
//! shed rate, degraded fraction, and per-tier answer fractions (full /
//! early-exit@k / distilled / centroid over the `answered` denominator)
//! per thread count. Request count is `BF_SERVE_REQUESTS` (default
//! 1000; CI smoke uses a smaller stream).

use bf_bench::run_bin;
use bf_core::{AttackKind, CollectionConfig};
use bf_fault::FaultPlan;
use bf_ml::{
    AnytimeLadder, Calibration, CentroidClassifier, Classifier, DistillConfig, DistilledClassifier,
};
use bf_obs::Json;
use bf_serve::{open_loop_arrivals, Outcome, Resolved, ServeConfig, Service, TierModels};
use bf_stats::rng::combine_seeds;
use bf_timer::BrowserKind;
use bf_victim::Catalog;
use std::process::ExitCode;
use std::time::Instant;

/// Mean virtual inter-arrival gap: well under the ~150-unit per-request
/// service cost, so a single worker saturates (shedding visible) while
/// four workers keep up.
const MEAN_GAP_UNITS: f64 = 40.0;

/// Answer tiers in ladder order, matching [`bf_serve::Tier::label`].
const TIER_LABELS: [&str; 6] = [
    "full",
    "early_exit_25",
    "early_exit_50",
    "early_exit_75",
    "distilled",
    "centroid",
];

/// Latency quantile over answered requests, in virtual units.
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

struct RunStats {
    threads: usize,
    wall_seconds: f64,
    makespan_units: u64,
    p50_units: u64,
    p99_units: u64,
    predictions: u64,
    degraded: u64,
    timeouts: u64,
    shed: u64,
    failed: u64,
    tier_counts: [u64; TIER_LABELS.len()],
    transitions: String,
    /// Micro-batches assembled by the predict stage this run.
    batch_assembled: u64,
    /// Flush-reason breakdown: capacity, wave end, fault interruption.
    batch_flushed_full: u64,
    batch_flushed_deadline: u64,
    batch_flushed_tier_mismatch: u64,
    /// Mean members per assembled micro-batch (0 when batch is 1).
    mean_batch_size: f64,
}

impl RunStats {
    fn total(&self) -> u64 {
        self.predictions + self.degraded + self.timeouts + self.shed + self.failed
    }

    fn shed_rate(&self) -> f64 {
        self.shed as f64 / self.total().max(1) as f64
    }

    /// Requests that got an answer (primary prediction or degraded
    /// fallback) — the denominator of `degraded_fraction` and the
    /// numerator of `throughput_per_kunit`.
    fn answered(&self) -> u64 {
        self.predictions + self.degraded
    }

    fn degraded_fraction(&self) -> f64 {
        self.degraded as f64 / self.answered().max(1) as f64
    }

    /// Answered requests per 1000 virtual units.
    fn throughput_per_kunit(&self) -> f64 {
        self.answered() as f64 * 1000.0 / self.makespan_units.max(1) as f64
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("threads", Json::UInt(self.threads as u64)),
            ("wall_seconds", Json::Float(self.wall_seconds)),
            ("makespan_units", Json::UInt(self.makespan_units)),
            ("p50_latency_units", Json::UInt(self.p50_units)),
            ("p99_latency_units", Json::UInt(self.p99_units)),
            ("throughput_per_kunit", Json::Float(self.throughput_per_kunit())),
            ("predictions", Json::UInt(self.predictions)),
            ("degraded", Json::UInt(self.degraded)),
            ("timeouts", Json::UInt(self.timeouts)),
            ("shed", Json::UInt(self.shed)),
            ("failed", Json::UInt(self.failed)),
            // Explicit denominator for `degraded_fraction` (and the
            // numerator of `throughput_per_kunit`): without it, readers
            // had to know the fraction is over answered requests, not all
            // resolved ones.
            ("answered", Json::UInt(self.answered())),
            ("answered_fraction", Json::Float(self.answered() as f64 / self.total().max(1) as f64)),
            ("shed_rate", Json::Float(self.shed_rate())),
            ("degraded_fraction", Json::Float(self.degraded_fraction())),
            // `degraded_fraction` broken down by answer tier: what share
            // of answered requests came from each ladder rung. Same
            // `answered` denominator on every entry.
            (
                "tier_fractions",
                Json::object(TIER_LABELS.iter().zip(self.tier_counts).map(|(label, n)| {
                    (*label, Json::Float(n as f64 / self.answered().max(1) as f64))
                })),
            ),
            ("breaker_transitions", Json::Str(self.transitions.clone())),
            // Micro-batch shape of the predict stage (Info metrics:
            // deterministic per (seed, threads, batch), echoed so the
            // frontier artifact can be cross-checked against this run).
            ("batch_assembled", Json::UInt(self.batch_assembled)),
            ("batch_flushed_full", Json::UInt(self.batch_flushed_full)),
            ("batch_flushed_deadline", Json::UInt(self.batch_flushed_deadline)),
            ("batch_flushed_tier_mismatch", Json::UInt(self.batch_flushed_tier_mismatch)),
            ("mean_batch_size", Json::Float(self.mean_batch_size)),
        ])
    }
}

/// Counter/histogram state of the `serve.batch.*` metrics, captured
/// before a pass so the pass's deltas can be attributed to it.
struct BatchMetricsMark {
    assembled: u64,
    full: u64,
    deadline: u64,
    tier_mismatch: u64,
    size: bf_obs::HistogramSnapshot,
}

impl BatchMetricsMark {
    fn take() -> Self {
        BatchMetricsMark {
            assembled: bf_obs::counter("serve.batch.assembled").get(),
            full: bf_obs::counter("serve.batch.flushed.full").get(),
            deadline: bf_obs::counter("serve.batch.flushed.deadline").get(),
            tier_mismatch: bf_obs::counter("serve.batch.flushed.tier_mismatch").get(),
            size: bf_obs::histogram("serve.batch.size").snapshot(),
        }
    }

    fn apply_delta(&self, stats: &mut RunStats) {
        stats.batch_assembled = bf_obs::counter("serve.batch.assembled").get() - self.assembled;
        stats.batch_flushed_full = bf_obs::counter("serve.batch.flushed.full").get() - self.full;
        stats.batch_flushed_deadline =
            bf_obs::counter("serve.batch.flushed.deadline").get() - self.deadline;
        stats.batch_flushed_tier_mismatch =
            bf_obs::counter("serve.batch.flushed.tier_mismatch").get() - self.tier_mismatch;
        stats.mean_batch_size =
            bf_obs::histogram("serve.batch.size").snapshot().delta_since(&self.size).mean();
    }
}

fn stats_for(threads: usize, wall_seconds: f64, resolved: &[Resolved], svc: &Service) -> RunStats {
    let mut answered: Vec<u64> = resolved
        .iter()
        .filter(|r| matches!(r.outcome, Outcome::Prediction { .. } | Outcome::Degraded { .. }))
        .map(Resolved::latency_units)
        .collect();
    answered.sort_unstable();
    let count = |f: fn(&Outcome) -> bool| resolved.iter().filter(|r| f(&r.outcome)).count() as u64;
    let mut tier_counts = [0u64; TIER_LABELS.len()];
    for r in resolved {
        let tier = match &r.outcome {
            Outcome::Prediction { tier, .. } | Outcome::Degraded { tier, .. } => tier,
            _ => continue,
        };
        let slot = TIER_LABELS
            .iter()
            .position(|l| *l == tier.label())
            .unwrap_or_else(|| panic!("unknown answer tier {:?}", tier.label()));
        tier_counts[slot] += 1;
    }
    RunStats {
        threads,
        wall_seconds,
        makespan_units: resolved.iter().map(|r| r.completed).max().unwrap_or(0),
        p50_units: quantile(&answered, 0.50),
        p99_units: quantile(&answered, 0.99),
        predictions: count(|o| matches!(o, Outcome::Prediction { .. })),
        degraded: count(|o| matches!(o, Outcome::Degraded { .. })),
        timeouts: count(|o| matches!(o, Outcome::Timeout { .. })),
        shed: count(|o| matches!(o, Outcome::Shed)),
        failed: count(|o| matches!(o, Outcome::Failed { .. })),
        tier_counts,
        transitions: svc.breaker().transitions_summary(),
        batch_assembled: 0,
        batch_flushed_full: 0,
        batch_flushed_deadline: 0,
        batch_flushed_tier_mismatch: 0,
        mean_batch_size: 0.0,
    }
}

fn main() -> ExitCode {
    run_bin("online serving load baseline", "serve_load", |m, scale, seed| {
        let n_requests: usize =
            bf_obs::env::parse_or("BF_SERVE_REQUESTS", 1000, "a positive request count").max(1);
        m.config("serve.requests", n_requests);
        m.config("serve.mean_gap_units", MEAN_GAP_UNITS);

        // Offline phase: clean training corpus + fitted models.
        let clean = CollectionConfig::new(BrowserKind::Chrome, AttackKind::LoopCounting)
            .with_scale(scale);
        let (n_sites, tps) = (scale.n_sites(), scale.traces_per_site());
        let data = m.phase("train_collect", || clean.collect_closed_world(n_sites, tps, seed));
        let folds = data.stratified_folds(5, seed);
        let train_idx: Vec<usize> = folds[1..].iter().flatten().copied().collect();
        let (train, val) = (data.subset(&train_idx), data.subset(&folds[0]));
        let mut primary = clean.classifier_for(&data, seed);
        m.phase("train_primary", || primary.fit(&train, &val));
        let mut fallback = CentroidClassifier::new(data.n_classes());
        m.phase("train_fallback", || fallback.fit(&train, &val));

        // Anytime ladder: per-prefix-length calibration for the primary,
        // plus a distilled student (soft labels from the primary) with
        // its own calibration, all fit on the same held-out fold.
        let ladder = m.phase("fit_ladder", || AnytimeLadder::fit(&mut *primary, &val));
        let distill_cfg = DistillConfig {
            max_epochs: 12,
            seed: combine_seeds(seed, 0xD1),
            ..DistillConfig::default()
        };
        let distilled = if DistilledClassifier::feasible(
            data.feature_len(),
            data.n_classes(),
            distill_cfg.conv_filters,
        ) {
            let mut student =
                DistilledClassifier::new(data.feature_len(), data.n_classes(), distill_cfg);
            m.phase("distill_student", || student.distill(&mut *primary, &train));
            let cal = m.phase("calibrate_student", || {
                Calibration::fit(&student.predict_proba(val.features()), val.labels())
            });
            Some((student, cal))
        } else {
            None
        };
        let tiers = match distilled {
            Some((student, cal)) => TierModels {
                ladder,
                distilled: Some(Box::new(student)),
                distilled_calibration: cal,
            },
            None => TierModels { ladder, ..TierModels::default() },
        };

        // Online phase: default chaos plan + serving faults, plus an
        // early deterministic slow storm to exercise the breaker.
        let plan = FaultPlan {
            seed: combine_seeds(seed, 0xFA),
            slow_model: 0.02,
            worker_panic: 0.01,
            ..FaultPlan::default_plan()
        };
        m.config("serve.fault_plan", plan.summary());
        let serve_cfg = ServeConfig { slow_storm: Some((5, 40)), ..ServeConfig::from_env() };
        let batch = serve_cfg.batch;
        m.config("serve.batch", batch);
        let serving = clean.clone().with_faults(plan);
        let sites = Catalog::closed_world_subset_with_tuning(n_sites, clean.tuning)
            .sites()
            .to_vec();
        let requests = open_loop_arrivals(n_requests, n_sites, MEAN_GAP_UNITS, seed);
        let mut svc = Service::new(serving, sites, primary, fallback, serve_cfg).with_tiers(tiers);

        let mut runs = Vec::new();
        for threads in [1usize, 4] {
            bf_par::set_threads(Some(threads));
            let mut replay = None;
            for pass in 0..2 {
                svc.reset();
                let mark = BatchMetricsMark::take();
                let t = Instant::now();
                let resolved =
                    m.phase(&format!("serve_t{threads}_pass{pass}"), || svc.run(&requests));
                let wall = t.elapsed().as_secs_f64();

                let health = svc.health();
                assert_eq!(
                    health.resolved(),
                    n_requests as u64,
                    "every request must reach exactly one terminal outcome"
                );
                assert_eq!(resolved.len(), n_requests);
                // At 1 thread the service is in overload collapse and
                // storm requests mostly expire in queue before reaching
                // the model, so only the keeping-up 4-thread run is
                // guaranteed a full breaker cycle.
                if threads == 4 {
                    let summary = svc.breaker().transitions_summary();
                    for needle in ["->open@", "->half_open@", "->closed@"] {
                        assert!(
                            summary.contains(needle),
                            "expected a full breaker cycle in {summary:?}"
                        );
                    }
                }
                match replay.take() {
                    None => {
                        m.config(
                            &format!("serve.breaker_transitions.t{threads}"),
                            svc.breaker().transitions_summary(),
                        );
                        m.config(
                            &format!("serve.outcomes.t{threads}"),
                            format!(
                                "predictions={} degraded={} timeouts={} shed={} failed={}",
                                health.predictions,
                                health.degraded,
                                health.timeouts,
                                health.shed,
                                health.failed
                            ),
                        );
                        let mut stats = stats_for(threads, wall, &resolved, &svc);
                        mark.apply_delta(&mut stats);
                        runs.push(stats);
                        replay = Some(resolved);
                    }
                    Some(first) => {
                        assert_eq!(
                            first, resolved,
                            "serving outcomes must be bit-deterministic for fixed \
                             (seed, BF_THREADS)"
                        );
                    }
                }
            }
        }
        bf_par::set_threads(None);
        svc.record_in_manifest(m);

        // Availability floor for the micro-batched fast path at the
        // full default stream: a single worker sharing rung charges
        // across BF_SERVE_BATCH-sized waves must answer at least 75% of
        // requests and leave at most 25% in timeout (the pre-batching
        // baseline sat at 600 answered / 384 timed out of 1000).
        // Short CI smoke streams and explicit batch=1 runs are exempt.
        if n_requests >= 1000 && batch >= 8 {
            let t1 = runs.iter().find(|r| r.threads == 1).expect("1-thread run recorded");
            assert!(
                t1.answered() * 4 >= 3 * n_requests as u64,
                "1-thread batched serving must answer >= 75% of the stream, got {}/{}",
                t1.answered(),
                n_requests
            );
            assert!(
                t1.timeouts * 4 <= n_requests as u64,
                "1-thread batched serving must time out <= 25% of the stream, got {}/{}",
                t1.timeouts,
                n_requests
            );
        }

        println!(
            "\nthreads   throughput/kunit   p50      p99      shed%    degraded%   breaker"
        );
        for r in &runs {
            println!(
                "{:<9} {:>14.2}   {:>6} {:>8}   {:>6.2}   {:>9.2}   {}",
                r.threads,
                r.throughput_per_kunit(),
                r.p50_units,
                r.p99_units,
                r.shed_rate() * 100.0,
                r.degraded_fraction() * 100.0,
                r.transitions
            );
            bf_obs::gauge(&format!("serve.throughput.t{}", r.threads))
                .set(r.throughput_per_kunit());
        }
        for r in &runs {
            let tiers: Vec<String> = TIER_LABELS
                .iter()
                .zip(r.tier_counts)
                .map(|(label, n)| format!("{label}={n}"))
                .collect();
            println!("t{} answer tiers: {}", r.threads, tiers.join(" "));
            println!(
                "t{} batches: assembled={} mean_size={:.2} flushed full={} deadline={} \
                 tier_mismatch={}",
                r.threads,
                r.batch_assembled,
                r.mean_batch_size,
                r.batch_flushed_full,
                r.batch_flushed_deadline,
                r.batch_flushed_tier_mismatch
            );
        }

        let json = Json::object([
            (
                "note",
                Json::Str(
                    "open-loop serving baseline: deterministic virtual-time scheduler under \
                     the default chaos plan + slow-model/worker-panic injection; every \
                     request resolves to exactly one terminal outcome and replays are \
                     bit-identical per (seed, threads). Latencies/throughput are virtual \
                     work units, not wall time."
                        .into(),
                ),
            ),
            ("scale", Json::Str(scale.to_string())),
            ("seed", Json::UInt(seed)),
            ("requests", Json::UInt(n_requests as u64)),
            ("mean_gap_units", Json::Float(MEAN_GAP_UNITS)),
            ("batch", Json::UInt(batch as u64)),
            ("deterministic", Json::Bool(true)),
            ("runs", Json::Array(runs.iter().map(RunStats::to_json).collect())),
        ]);
        let out = bf_bench::artifact_path("BF_SERVE_BASELINE_OUT", "BENCH_serve_baseline.json");
        std::fs::write(&out, json.to_pretty_string())?;
        println!("\nwrote {out}");
        Ok(())
    })
}
