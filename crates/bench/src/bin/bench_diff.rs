//! `bench_diff` — the benchmark regression gate.
//!
//! ```sh
//! bench_diff OLD.json NEW.json              # exit 1 on regression
//! bench_diff BASE.json BASE.json --synthetic 10
//! ```
//!
//! Compares two `BENCH_*.json` artifacts metric-by-metric with
//! per-metric noise thresholds (see [`bf_bench::diff`]): tight 0.5%
//! bands on deterministic virtual-unit metrics, loose 25% bands on
//! wall-clock metrics, config echoes ignored. Exit status is non-zero
//! when any guarded metric regressed or disappeared.
//!
//! `--synthetic PCT` is the gate's self-test: it ignores the second
//! file, perturbs every guarded metric of the first by `PCT` percent in
//! its bad direction, and exits 0 **iff** the gate trips — so CI proves
//! the alarm still rings before trusting its silence.

use bf_bench::diff::{diff_flat, flatten, perturb_worse, Direction, MetricDelta};
use bf_obs::Json;
use std::process::ExitCode;

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn arrow(d: &MetricDelta) -> &'static str {
    match d.direction {
        Direction::HigherBetter => "higher-better",
        Direction::LowerBetter => "lower-better",
        Direction::Info => "info",
    }
}

fn print_delta(d: &MetricDelta, verdict: &str) {
    println!(
        "  {verdict:<4} {:<44} {:>14.4} -> {:>14.4}  ({:+.2}%, band {:.1}%, {})",
        d.path,
        d.old,
        d.new,
        d.rel_change * 100.0,
        d.tolerance * 100.0,
        arrow(d),
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            eprintln!("usage: bench_diff OLD.json NEW.json [--synthetic PCT]");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let (old_path, new_path) = match (args.first(), args.get(1)) {
        (Some(a), Some(b)) => (a.as_str(), b.as_str()),
        _ => return Err("need two artifact paths".into()),
    };
    let synthetic: Option<f64> = match args.get(2).map(String::as_str) {
        None => None,
        Some("--synthetic") => Some(
            args.get(3)
                .ok_or("--synthetic needs a percentage")?
                .parse()
                .map_err(|e| format!("--synthetic: {e}"))?,
        ),
        Some(other) => return Err(format!("unknown argument `{other}`")),
    };

    let old_flat = flatten(&load(old_path)?);
    if let Some(pct) = synthetic {
        // Self-test: a PCT% across-the-board regression MUST trip.
        let report = diff_flat(&old_flat, &perturb_worse(&old_flat, pct));
        let tripped: Vec<_> = report.regressions().collect();
        println!(
            "synthetic {pct}% regression on {old_path}: {} guarded metric(s) flagged",
            tripped.len()
        );
        for d in tripped.iter().take(8) {
            print_delta(d, "FAIL");
        }
        return if tripped.is_empty() {
            eprintln!("bench_diff: synthetic regression was NOT flagged — gate is broken");
            Ok(ExitCode::FAILURE)
        } else {
            Ok(ExitCode::SUCCESS)
        };
    }

    let report = diff_flat(&old_flat, &flatten(&load(new_path)?));
    println!("bench_diff: {old_path} -> {new_path}");
    let mut guarded = 0usize;
    for d in &report.deltas {
        if d.direction == Direction::Info {
            continue;
        }
        guarded += 1;
        if d.regressed {
            print_delta(d, "FAIL");
        } else if d.rel_change.abs() > d.tolerance {
            print_delta(d, "ok"); // improvement beyond the band: show it
        }
    }
    for path in &report.missing {
        println!("  FAIL {path:<44} missing from {new_path}");
    }
    for path in &report.added {
        println!("  note {path:<44} new in {new_path}");
    }
    let n_regressed = report.regressions().count();
    println!(
        "{guarded} guarded metric(s): {n_regressed} regressed, {} missing, {} added",
        report.missing.len(),
        report.added.len()
    );
    Ok(if report.ok() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}
