//! Fleet-scale serving benchmark: supervised shards under an
//! open-system population load.
//!
//! Trains one centroid model pair per shard (the fleet's routing,
//! fault-domain, and supervision dynamics are the object of study, not
//! model quality), then replays a deterministic open-system stream —
//! Poisson session arrivals, per-session think-gap visit trains, Zipf
//! site popularity over the catalog (see [`bf_bench::load`]) — through
//! a [`bf_serve::Fleet`], at 1 and 4 threads, in three scenarios:
//!
//! 1. **baseline** — every shard healthy for the whole run;
//! 2. **kill** — the `BF_FLEET_KILL` schedule (default: two kills of
//!    one shard mid-stream) crashes shards; the supervisor restarts
//!    them after the configured backoff and queued/arriving requests
//!    resolve `ShardDown`;
//! 3. **kill+hedge** (fleets with ≥ 2 shards) — same kills with hedged
//!    retry on: `ShardDown` requests replay on the next healthy shard.
//!
//! Every configuration runs twice and is asserted bit-identical, kill
//! runs included — outcomes are pure functions of
//! `(seed, BF_THREADS, BF_FLEET_SHARDS, kill plan)`. The kill scenario
//! additionally asserts *fault-domain isolation*: requests routed to
//! surviving shards resolve bit-identically to the no-kill baseline.
//!
//! Writes `BENCH_fleet.json` (override with `BF_FLEET_OUT`): per-run
//! fleet SLOs — p50/p99/p99.9 latency, throughput, shed / degraded /
//! shard-down rates, restart and breaker-flap counts, hedged-retry
//! volume — plus a per-shard breakdown. Request count is
//! `BF_FLEET_REQUESTS` (default 600; CI smoke uses less).

use bf_bench::{run_bin, LoadConfig};
use bf_core::{AttackKind, CollectionConfig};
use bf_fault::{FaultPlan, ShardKillPlan};
use bf_ml::{CentroidClassifier, Classifier};
use bf_obs::Json;
use bf_serve::{route, Fleet, FleetConfig, Outcome, Resolved};
use bf_stats::rng::combine_seeds;
use bf_timer::BrowserKind;
use bf_victim::Catalog;
use std::process::ExitCode;
use std::time::Instant;

/// Latency quantile over answered requests, in virtual units.
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

struct ShardStats {
    answered: u64,
    shard_down: u64,
    restarts: u64,
    flaps: u64,
    p99_units: u64,
}

struct RunStats {
    threads: usize,
    scenario: &'static str,
    wall_seconds: f64,
    makespan_units: u64,
    p50_units: u64,
    p99_units: u64,
    p999_units: u64,
    predictions: u64,
    degraded: u64,
    timeouts: u64,
    shed: u64,
    failed: u64,
    shard_down: u64,
    restarts: u64,
    flaps: u64,
    hedged: u64,
    per_shard: Vec<ShardStats>,
}

impl RunStats {
    fn total(&self) -> u64 {
        self.predictions + self.degraded + self.timeouts + self.shed + self.failed
            + self.shard_down
    }

    fn answered(&self) -> u64 {
        self.predictions + self.degraded
    }

    fn throughput_per_kunit(&self) -> f64 {
        self.answered() as f64 * 1000.0 / self.makespan_units.max(1) as f64
    }

    fn rate(&self, n: u64) -> f64 {
        n as f64 / self.total().max(1) as f64
    }

    /// Breaker flaps per 1000 virtual units — the SLO-facing view of
    /// breaker churn (raw counts scale with the stream length).
    fn flap_rate_per_kunit(&self) -> f64 {
        self.flaps as f64 * 1000.0 / self.makespan_units.max(1) as f64
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("threads", Json::UInt(self.threads as u64)),
            ("scenario", Json::Str(self.scenario.to_owned())),
            ("wall_seconds", Json::Float(self.wall_seconds)),
            ("makespan_units", Json::UInt(self.makespan_units)),
            ("p50_latency_units", Json::UInt(self.p50_units)),
            ("p99_latency_units", Json::UInt(self.p99_units)),
            ("p999_latency_units", Json::UInt(self.p999_units)),
            ("throughput_per_kunit", Json::Float(self.throughput_per_kunit())),
            ("predictions", Json::UInt(self.predictions)),
            ("degraded", Json::UInt(self.degraded)),
            ("timeouts", Json::UInt(self.timeouts)),
            ("shed", Json::UInt(self.shed)),
            ("failed", Json::UInt(self.failed)),
            ("shard_down", Json::UInt(self.shard_down)),
            ("answered", Json::UInt(self.answered())),
            ("answered_fraction", Json::Float(self.rate(self.answered()))),
            ("shed_rate", Json::Float(self.rate(self.shed))),
            ("degraded_fraction", Json::Float(self.degraded as f64 / self.answered().max(1) as f64)),
            ("shard_down_rate", Json::Float(self.rate(self.shard_down))),
            // Fault-injection echoes (Info in bench_diff): their scale
            // is set by the kill plan, not by serving quality.
            ("restarts", Json::UInt(self.restarts)),
            ("breaker_flaps", Json::UInt(self.flaps)),
            ("flap_rate_per_kunit", Json::Float(self.flap_rate_per_kunit())),
            ("hedged", Json::UInt(self.hedged)),
            (
                "per_shard",
                Json::Array(
                    self.per_shard
                        .iter()
                        .map(|s| {
                            Json::object([
                                ("answered", Json::UInt(s.answered)),
                                ("shard_down", Json::UInt(s.shard_down)),
                                ("restarts", Json::UInt(s.restarts)),
                                ("breaker_flaps", Json::UInt(s.flaps)),
                                ("p99_latency_units", Json::UInt(s.p99_units)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn stats_for(
    threads: usize,
    scenario: &'static str,
    wall_seconds: f64,
    resolved: &[Resolved],
    fleet: &Fleet,
) -> RunStats {
    let answered_latency = |rs: &mut dyn Iterator<Item = &Resolved>| -> Vec<u64> {
        let mut v: Vec<u64> = rs
            .filter(|r| matches!(r.outcome, Outcome::Prediction { .. } | Outcome::Degraded { .. }))
            .map(Resolved::latency_units)
            .collect();
        v.sort_unstable();
        v
    };
    let fleet_latency = answered_latency(&mut resolved.iter());
    let count = |f: fn(&Outcome) -> bool| resolved.iter().filter(|r| f(&r.outcome)).count() as u64;
    let health = fleet.health();
    let per_shard = (0..fleet.shards())
        .map(|k| {
            let lat = answered_latency(
                &mut resolved.iter().filter(|r| route(r.id, fleet.shards()) == k),
            );
            ShardStats {
                answered: health.shards[k].predictions + health.shards[k].degraded,
                shard_down: health.shards[k].shard_down,
                restarts: health.shards[k].restarts,
                flaps: health.flaps[k],
                p99_units: quantile(&lat, 0.99),
            }
        })
        .collect();
    RunStats {
        threads,
        scenario,
        wall_seconds,
        makespan_units: resolved.iter().map(|r| r.completed).max().unwrap_or(0),
        p50_units: quantile(&fleet_latency, 0.50),
        p99_units: quantile(&fleet_latency, 0.99),
        p999_units: quantile(&fleet_latency, 0.999),
        predictions: count(|o| matches!(o, Outcome::Prediction { .. })),
        degraded: count(|o| matches!(o, Outcome::Degraded { .. })),
        timeouts: count(|o| matches!(o, Outcome::Timeout { .. })),
        shed: count(|o| matches!(o, Outcome::Shed)),
        failed: count(|o| matches!(o, Outcome::Failed { .. })),
        shard_down: count(|o| matches!(o, Outcome::ShardDown)),
        restarts: health.total(|s| s.restarts),
        flaps: health.flaps.iter().sum(),
        hedged: health.hedged,
        per_shard,
    }
}

fn main() -> ExitCode {
    run_bin("fleet serving under open-system load", "fleet_load", |m, scale, seed| {
        let n_requests: usize =
            bf_obs::env::parse_or("BF_FLEET_REQUESTS", 600, "a positive request count").max(1);
        let fleet_cfg = FleetConfig::from_env();
        let load_cfg = LoadConfig::from_env();
        let kills = match std::env::var("BF_FLEET_KILL") {
            Ok(spec) => ShardKillPlan::parse(&spec),
            // Default schedule: two mid-stream kills of the last shard,
            // far enough apart that the first restart completes.
            Err(_) => {
                let victim = fleet_cfg.shards - 1;
                ShardKillPlan::new([(victim, 4_000), (victim, 12_000)])
            }
        };
        m.config("fleet.shards", fleet_cfg.shards);
        m.config("fleet.requests", n_requests);
        m.config("fleet.kill_plan", kills.summary());
        m.config("fleet.restart_backoff", fleet_cfg.restart_backoff.base_units);
        m.config("load.session_gap_units", load_cfg.session_gap_units);
        m.config("load.mean_visits", load_cfg.mean_visits);
        m.config("load.think_units", load_cfg.think_units);
        m.config("load.zipf_exponent", load_cfg.zipf_exponent);

        // Offline phase: one clean corpus, one fitted centroid pair;
        // every shard gets clones (fleet dynamics, not model quality,
        // are under test here).
        let clean = CollectionConfig::new(BrowserKind::Chrome, AttackKind::LoopCounting)
            .with_scale(scale);
        let (n_sites, tps) = (scale.n_sites(), scale.traces_per_site());
        let data = m.phase("train_collect", || clean.collect_closed_world(n_sites, tps, seed));
        let folds = data.stratified_folds(5, seed);
        let train_idx: Vec<usize> = folds[1..].iter().flatten().copied().collect();
        let (train, val) = (data.subset(&train_idx), data.subset(&folds[0]));
        let mut model = CentroidClassifier::new(data.n_classes());
        m.phase("train_model", || model.fit(&train, &val));

        let plan = FaultPlan {
            seed: combine_seeds(seed, 0xFA),
            slow_model: 0.02,
            worker_panic: 0.01,
            ..FaultPlan::default_plan()
        };
        m.config("fleet.fault_plan", plan.summary());
        let serving = clean.clone().with_faults(plan);
        let sites = Catalog::closed_world_subset_with_tuning(n_sites, clean.tuning)
            .sites()
            .to_vec();
        let requests =
            bf_bench::open_system_requests(&load_cfg, n_requests, n_sites, seed);

        let build_fleet = |cfg: &FleetConfig, kills: &ShardKillPlan| {
            Fleet::new(cfg, kills, |_| {
                bf_serve::Service::new(
                    serving.clone(),
                    sites.clone(),
                    Box::new(model.clone()),
                    model.clone(),
                    cfg.serve.clone(),
                )
            })
        };
        let hedged_cfg = FleetConfig { hedge: true, ..fleet_cfg.clone() };
        let scenarios: Vec<(&'static str, &FleetConfig, ShardKillPlan)> = {
            let mut s = vec![
                ("baseline", &fleet_cfg, ShardKillPlan::off()),
                ("kill", &fleet_cfg, kills.clone()),
            ];
            if fleet_cfg.shards > 1 {
                s.push(("kill_hedged", &hedged_cfg, kills.clone()));
            }
            s
        };

        let mut runs = Vec::new();
        for threads in [1usize, 4] {
            bf_par::set_threads(Some(threads));
            let mut baseline: Option<Vec<Resolved>> = None;
            for (name, cfg, kill_plan) in &scenarios {
                let mut fleet = build_fleet(cfg, kill_plan);
                let mut replay = None;
                for pass in 0..2 {
                    fleet.reset();
                    let t = Instant::now();
                    let resolved = m
                        .phase(&format!("fleet_{name}_t{threads}_pass{pass}"), || {
                            fleet.run(&requests)
                        });
                    let wall = t.elapsed().as_secs_f64();
                    assert_eq!(resolved.len(), n_requests);
                    let health = fleet.health();
                    assert_eq!(
                        health.total(|s| s.resolved()),
                        // The hedge pass re-submits ShardDown requests,
                        // so shard tallies count those twice.
                        n_requests as u64 + health.hedged,
                        "every request reaches exactly one terminal outcome"
                    );
                    match replay.take() {
                        None => {
                            runs.push(stats_for(threads, name, wall, &resolved, &fleet));
                            replay = Some(resolved);
                        }
                        Some(first) => {
                            assert_eq!(
                                first, resolved,
                                "fleet outcomes must be bit-deterministic for fixed \
                                 (seed, BF_THREADS, BF_FLEET_SHARDS, kill plan)"
                            );
                            replay = Some(first);
                        }
                    }
                }
                let resolved = replay.expect("two passes ran");
                if *name == "baseline" {
                    assert!(
                        resolved.iter().all(|r| r.outcome != Outcome::ShardDown),
                        "no shard may go down without a kill plan"
                    );
                    baseline = Some(resolved);
                } else if kill_plan.is_active() {
                    if *name == "kill" {
                        // Fault-domain isolation: requests routed to
                        // surviving shards resolve bit-identically to
                        // the no-kill baseline.
                        let killed: std::collections::BTreeSet<usize> =
                            kill_plan.kills().iter().map(|k| k.shard).collect();
                        let base = baseline.as_ref().expect("baseline ran first");
                        for (b, k) in base.iter().zip(&resolved) {
                            if !killed.contains(&route(b.id, cfg.shards)) {
                                assert_eq!(b, k, "sibling shards must not observe a kill");
                            }
                        }
                        let down = runs.last().expect("stats recorded");
                        assert!(
                            down.shard_down > 0 && down.restarts > 0,
                            "the kill plan must actually bite: {} down / {} restarts",
                            down.shard_down,
                            down.restarts
                        );
                    } else {
                        let hedged = runs.last().expect("stats recorded");
                        assert!(
                            hedged.hedged > 0,
                            "hedging must replay the killed shard's requests"
                        );
                    }
                }
            }
        }
        bf_par::set_threads(None);

        println!(
            "\nthreads scenario      p50      p99     p99.9   shed%  down%  restarts flaps hedged"
        );
        for r in &runs {
            println!(
                "{:<7} {:<12} {:>6} {:>8} {:>9}   {:>5.2}  {:>5.2}  {:>8} {:>5} {:>6}",
                r.threads,
                r.scenario,
                r.p50_units,
                r.p99_units,
                r.p999_units,
                r.rate(r.shed) * 100.0,
                r.rate(r.shard_down) * 100.0,
                r.restarts,
                r.flaps,
                r.hedged,
            );
        }

        let json = Json::object([
            (
                "note",
                Json::Str(
                    "supervised shard fleet under open-system Zipf/Poisson load: \
                     deterministic routing, contained shard crashes with supervised \
                     restart, optional hedged retry. All latencies/throughput are \
                     virtual work units; outcomes replay bit-identically per \
                     (seed, threads, shards, kill plan)."
                        .into(),
                ),
            ),
            ("scale", Json::Str(scale.to_string())),
            ("seed", Json::UInt(seed)),
            ("requests", Json::UInt(n_requests as u64)),
            ("shards", Json::UInt(fleet_cfg.shards as u64)),
            ("kill_plan", Json::Str(kills.summary())),
            ("session_gap_units", Json::Float(load_cfg.session_gap_units)),
            ("mean_visits", Json::Float(load_cfg.mean_visits)),
            ("think_units", Json::Float(load_cfg.think_units)),
            ("zipf_exponent", Json::Float(load_cfg.zipf_exponent)),
            ("deterministic", Json::Bool(true)),
            ("runs", Json::Array(runs.iter().map(RunStats::to_json).collect())),
        ]);
        let out = bf_bench::artifact_path("BF_FLEET_OUT", "BENCH_fleet.json");
        std::fs::write(&out, json.to_pretty_string())?;
        println!("\nwrote {out}");
        Ok(())
    })
}
