//! Regenerate Fig. 5 (interrupt-time share during page loads).
use bf_bench::run_bin;
use bf_core::experiments::figure5;
use std::process::ExitCode;

fn main() -> ExitCode {
    run_bin("Figure 5", "figure5", |m, scale, seed| {
        let fig = m.phase("interrupt_share", || figure5::run(scale, seed));
        println!("{fig}");
        Ok(())
    })
}
