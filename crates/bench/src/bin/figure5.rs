//! Regenerate Fig. 5 (interrupt-time share during page loads).
use bf_bench::{banner, scale_and_seed};
use bf_core::experiments::figure5;

fn main() {
    let (scale, seed) = scale_and_seed();
    banner("Figure 5", scale);
    println!("{}", figure5::run(scale, seed));
}
