//! Regenerate Fig. 5 (interrupt-time share during page loads).
use bf_bench::{banner, scale_and_seed, with_manifest};
use bf_core::experiments::figure5;

fn main() {
    let (scale, seed) = scale_and_seed();
    banner("Figure 5", scale);
    let fig = with_manifest("figure5", scale, seed, |m| {
        m.phase("interrupt_share", || figure5::run(scale, seed))
    });
    println!("{fig}");
}
