//! Batch-size × deadline frontier for the micro-batched predict stage.
//!
//! Trains the same primary / fallback / ladder / distilled-student stack
//! as `serve_load`, then sweeps `ServeConfig::batch` against the
//! per-request deadline over a contended single-worker request stream
//! (`wave_cap` pinned, `BF_THREADS` forced to 1 for the sweep, so every
//! cell is a pure function of the seed). Each cell records answered
//! fraction, end-to-end accuracy, p50/p99 latency, and the assembled
//! micro-batch shape.
//!
//! The point of the artifact: batching is the axis that buys back
//! deadline headroom. At batch 1 a saturated worker spends the whole
//! budget queueing and times out; as the batch capacity grows, each
//! member's share of the stacked forward pass shrinks
//! (`ceil(inference / b)`), waves drain faster, and the answered
//! fraction climbs — without moving any per-request probability bits
//! (the batched forward pass is bit-identical to the solo one; only the
//! documented cost-sharing rule changes outcomes). At non-smoke scales
//! the run asserts the answered fraction is monotone (within slack)
//! in the batch capacity at every deadline.
//!
//! Writes `BENCH_serve_batch_frontier.json` (override with
//! `BF_BATCH_FRONTIER_OUT`). Request count is `BF_FRONTIER_REQUESTS`
//! (default 400).

use bf_bench::run_bin;
use bf_core::{AttackKind, CollectionConfig};
use bf_fault::FaultPlan;
use bf_ml::{
    AnytimeLadder, Calibration, CentroidClassifier, Classifier, DistillConfig,
    DistilledClassifier,
};
use bf_obs::Json;
use bf_serve::{open_loop_arrivals, Outcome, Resolved, ServeConfig, Service, TierModels};
use bf_stats::rng::combine_seeds;
use bf_timer::BrowserKind;
use bf_victim::Catalog;
use std::process::ExitCode;

/// Tight gaps: a single worker saturates at batch 1, so the sweep
/// measures what batching buys back under real contention.
const MEAN_GAP_UNITS: f64 = 40.0;

/// Micro-batch capacities swept (`ServeConfig::batch`).
const BATCHES: [usize; 5] = [1, 2, 4, 8, 16];

/// Per-request deadlines swept (virtual units): from "one queued wave
/// already eats most of the budget" to the default serving deadline.
const DEADLINES: [u64; 4] = [150, 300, 600, 1000];

/// Adjacent cells may differ by a request or two on knife-edge budgets;
/// the monotonicity gate allows this much answered-fraction slack.
const MONOTONE_SLACK: f64 = 0.02;

/// Latency quantile over answered requests, in virtual units.
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// One sweep cell's aggregates.
struct Cell {
    batch: usize,
    deadline: u64,
    answered: u64,
    correct: u64,
    timeouts: u64,
    shed: u64,
    p50_units: u64,
    p99_units: u64,
    batch_assembled: u64,
    mean_batch_size: f64,
}

impl Cell {
    fn answered_fraction(&self, submitted: u64) -> f64 {
        self.answered as f64 / submitted.max(1) as f64
    }

    /// End-to-end accuracy: a shed, timed out, or failed request counts
    /// as wrong.
    fn accuracy(&self, submitted: u64) -> f64 {
        self.correct as f64 / submitted.max(1) as f64
    }

    fn to_json(&self, submitted: u64) -> Json {
        Json::object([
            ("batch", Json::UInt(self.batch as u64)),
            ("deadline_units", Json::UInt(self.deadline)),
            ("answered", Json::UInt(self.answered)),
            ("answered_fraction", Json::Float(self.answered_fraction(submitted))),
            ("accuracy", Json::Float(self.accuracy(submitted))),
            ("timeouts", Json::UInt(self.timeouts)),
            ("shed", Json::UInt(self.shed)),
            ("p50_latency_units", Json::UInt(self.p50_units)),
            ("p99_latency_units", Json::UInt(self.p99_units)),
            ("batch_assembled", Json::UInt(self.batch_assembled)),
            ("mean_batch_size", Json::Float(self.mean_batch_size)),
        ])
    }
}

fn tally(batch: usize, deadline: u64, resolved: &[Resolved]) -> Cell {
    let mut latencies: Vec<u64> = resolved
        .iter()
        .filter(|r| matches!(r.outcome, Outcome::Prediction { .. } | Outcome::Degraded { .. }))
        .map(Resolved::latency_units)
        .collect();
    latencies.sort_unstable();
    let mut cell = Cell {
        batch,
        deadline,
        answered: 0,
        correct: 0,
        timeouts: 0,
        shed: 0,
        p50_units: quantile(&latencies, 0.50),
        p99_units: quantile(&latencies, 0.99),
        batch_assembled: 0,
        mean_batch_size: 0.0,
    };
    for r in resolved {
        match &r.outcome {
            Outcome::Prediction { class, .. } | Outcome::Degraded { class, .. } => {
                cell.answered += 1;
                cell.correct += (*class == r.site) as u64;
            }
            Outcome::Timeout { .. } => cell.timeouts += 1,
            Outcome::Shed => cell.shed += 1,
            _ => {}
        }
    }
    cell
}

fn main() -> ExitCode {
    run_bin("micro-batch deadline frontier", "batch_frontier", |m, scale, seed| {
        let n_requests: usize =
            bf_obs::env::parse_or("BF_FRONTIER_REQUESTS", 400, "a positive request count").max(1);
        m.config("frontier.requests", n_requests);
        m.config("frontier.mean_gap_units", MEAN_GAP_UNITS);

        // Offline phase — identical stack to serve_load: primary +
        // centroid fallback + anytime ladder + distilled student.
        let clean = CollectionConfig::new(BrowserKind::Chrome, AttackKind::LoopCounting)
            .with_scale(scale);
        let (n_sites, tps) = (scale.n_sites(), scale.traces_per_site());
        let data = m.phase("train_collect", || clean.collect_closed_world(n_sites, tps, seed));
        let folds = data.stratified_folds(5, seed);
        let train_idx: Vec<usize> = folds[1..].iter().flatten().copied().collect();
        let (train, val) = (data.subset(&train_idx), data.subset(&folds[0]));
        let mut primary = clean.classifier_for(&data, seed);
        m.phase("train_primary", || primary.fit(&train, &val));
        let mut fallback = CentroidClassifier::new(data.n_classes());
        m.phase("train_fallback", || fallback.fit(&train, &val));

        let ladder = m.phase("fit_ladder", || AnytimeLadder::fit(&mut *primary, &val));
        let distill_cfg = DistillConfig {
            max_epochs: 12,
            seed: combine_seeds(seed, 0xD1),
            ..DistillConfig::default()
        };
        let tiers = if DistilledClassifier::feasible(
            data.feature_len(),
            data.n_classes(),
            distill_cfg.conv_filters,
        ) {
            let mut student =
                DistilledClassifier::new(data.feature_len(), data.n_classes(), distill_cfg);
            m.phase("distill_student", || student.distill(&mut *primary, &train));
            let cal = m.phase("calibrate_student", || {
                Calibration::fit(&student.predict_proba(val.features()), val.labels())
            });
            TierModels { ladder, distilled: Some(Box::new(student)), distilled_calibration: cal }
        } else {
            TierModels { ladder, ..TierModels::default() }
        };

        // Online phase: default chaos plan, a single worker, wave_cap
        // pinned — each cell varies only (batch, deadline).
        let plan = FaultPlan { seed: combine_seeds(seed, 0xFB), ..FaultPlan::default_plan() };
        m.config("frontier.fault_plan", plan.summary());
        let cfg_for = |batch: usize, deadline: u64| ServeConfig {
            batch,
            deadline_units: deadline,
            wave_cap: Some(1),
            tiers: bf_serve::TierConfig {
                ladder: true,
                confidence_threshold: 0.85,
                ..bf_serve::TierConfig::default()
            },
            ..ServeConfig::default()
        };
        let serving = clean.clone().with_faults(plan);
        let sites = Catalog::closed_world_subset_with_tuning(n_sites, clean.tuning)
            .sites()
            .to_vec();
        let requests = open_loop_arrivals(n_requests, n_sites, MEAN_GAP_UNITS, seed);
        let mut svc = Service::new(serving, sites, primary, fallback, cfg_for(1, DEADLINES[0]))
            .with_tiers(tiers);

        bf_par::set_threads(Some(1));
        let mut cells: Vec<Cell> = Vec::new();
        let mid = (BATCHES.len() / 2, DEADLINES.len() / 2);
        for (bi, &batch) in BATCHES.iter().enumerate() {
            for (di, &deadline) in DEADLINES.iter().enumerate() {
                svc.reconfigure(cfg_for(batch, deadline));
                let assembled0 = bf_obs::counter("serve.batch.assembled").get();
                let size0 = bf_obs::histogram("serve.batch.size").snapshot();
                let label = format!("sweep_b{batch}_d{deadline}");
                let resolved = m.phase(&label, || svc.run(&requests));
                assert_eq!(resolved.len(), n_requests);
                if (bi, di) == mid {
                    // Rerun one representative cell: the sweep must be
                    // bit-deterministic for a fixed seed.
                    svc.reconfigure(cfg_for(batch, deadline));
                    let again = m.phase(&format!("{label}_replay"), || svc.run(&requests));
                    assert_eq!(
                        resolved, again,
                        "frontier outcomes must be bit-deterministic for a fixed seed"
                    );
                }
                let mut cell = tally(batch, deadline, &resolved);
                cell.batch_assembled =
                    bf_obs::counter("serve.batch.assembled").get() - assembled0;
                cell.mean_batch_size =
                    bf_obs::histogram("serve.batch.size").snapshot().delta_since(&size0).mean();
                cells.push(cell);
            }
        }
        bf_par::set_threads(None);
        svc.record_in_manifest(m);

        println!("\nbatch   deadline   answered   accuracy   p99    mean batch");
        for c in &cells {
            println!(
                "{:>5} {:>10} {:>10} {:>10.4} {:>6} {:>11.2}",
                c.batch,
                c.deadline,
                c.answered,
                c.accuracy(n_requests as u64),
                c.p99_units,
                c.mean_batch_size
            );
        }

        // Gate (skipped at smoke scale, where cells hold too few
        // requests to be statistical): at every deadline, growing the
        // batch capacity must not cost answered requests.
        if scale.to_string() != "smoke" {
            for &deadline in &DEADLINES {
                let curve: Vec<f64> = cells
                    .iter()
                    .filter(|c| c.deadline == deadline)
                    .map(|c| c.answered_fraction(n_requests as u64))
                    .collect();
                for w in curve.windows(2) {
                    assert!(
                        w[1] >= w[0] - MONOTONE_SLACK,
                        "answered fraction must not regress as the batch grows \
                         (deadline {deadline}): {curve:?}"
                    );
                }
            }
        }

        let json = Json::object([
            (
                "note",
                Json::Str(
                    "micro-batch deadline frontier: answered fraction and accuracy vs \
                     ServeConfig::batch at four per-request deadlines, single worker, \
                     wave_cap pinned so every cell is a pure function of the seed. The \
                     batched forward pass is bit-identical per request; only the \
                     documented ceil(inference/batch) cost share moves outcomes. \
                     Deadlines/latencies are virtual work units, not wall time."
                        .into(),
                ),
            ),
            ("scale", Json::Str(scale.to_string())),
            ("seed", Json::UInt(seed)),
            ("requests", Json::UInt(n_requests as u64)),
            ("mean_gap_units", Json::Float(MEAN_GAP_UNITS)),
            ("deterministic", Json::Bool(true)),
            (
                "cells",
                Json::Array(cells.iter().map(|c| c.to_json(n_requests as u64)).collect()),
            ),
        ]);
        let out =
            bf_bench::artifact_path("BF_BATCH_FRONTIER_OUT", "BENCH_serve_batch_frontier.json");
        std::fs::write(&out, json.to_pretty_string())?;
        println!("\nwrote {out}");
        Ok(())
    })
}
