//! Sequential-vs-parallel baseline for the `bf-par` execution layer.
//!
//! Runs the three parallelized pipeline layers — trace collection,
//! k-fold cross-validation, and the CNN kernels — once on a single
//! thread and once on the configured pool, asserts the results are
//! bit-identical (the whole point of the deterministic pool), records
//! per-phase wall times and speedups in the run manifest, and writes a
//! `BENCH_par_baseline.json` summary next to the manifest output.
//!
//! Speedup is hardware-bound: on a single-core host both runs use one
//! worker's worth of CPU and the ratio hovers around 1×; on a multi-core
//! runner the collect/crossval phases scale with the pool.

use bf_bench::run_bin;
use bf_core::{AttackKind, CollectionConfig};
use bf_nn::{Conv1d, Layer, Tensor};
use bf_obs::Json;
use bf_stats::SeedRng;
use bf_timer::BrowserKind;
use std::process::ExitCode;
use std::time::Instant;

/// One layer's sequential/parallel timing pair.
struct PhasePair {
    name: &'static str,
    seq_seconds: f64,
    par_seconds: f64,
}

impl PhasePair {
    fn speedup(&self) -> f64 {
        if self.par_seconds > 0.0 {
            self.seq_seconds / self.par_seconds
        } else {
            1.0
        }
    }
}

/// Bits of a `f32` feature matrix, for exact comparison.
fn feature_bits(features: &[Vec<f32>]) -> Vec<Vec<u32>> {
    features
        .iter()
        .map(|row| row.iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// One CNN kernel pass: conv forward + backward over a paper-shaped
/// batch (32 standardized traces into the first conv layer).
fn conv_pass(batch: usize, len: usize) -> f64 {
    let mut rng = SeedRng::new(7);
    let mut conv = Conv1d::new(1, 32, 8, 3, &mut rng);
    let x = Tensor::new(
        &[batch, 1, len],
        (0..batch * len).map(|i| (i as f32 * 0.37).sin()).collect(),
    );
    let y = conv.forward(&x, true);
    let grad = Tensor::new(
        y.shape(),
        (0..y.len()).map(|i| (i as f32 * 0.11).cos()).collect(),
    );
    let dx = conv.backward(&grad);
    f64::from(dx.data()[0])
}

fn main() -> ExitCode {
    run_bin(
        "sequential vs parallel baseline",
        "par_baseline",
        |m, scale, seed| {
            // On a single-core host the resolved pool is 1; force at
            // least 2 workers so the parallel path (work claiming,
            // ordered merge) is genuinely exercised either way.
            let par_threads = bf_par::threads().max(2);
            m.config("par_threads", par_threads);
            let cfg = CollectionConfig::new(BrowserKind::Chrome, AttackKind::LoopCounting)
                .with_scale(scale);
            let (n_sites, tps) = (scale.n_sites(), scale.traces_per_site());
            let mut pairs = Vec::new();

            // Layer 1: trace collection.
            bf_par::set_threads(Some(1));
            let t = Instant::now();
            let d_seq = m.phase("collect_seq", || cfg.collect_closed_world(n_sites, tps, seed));
            let seq_seconds = t.elapsed().as_secs_f64();
            bf_par::set_threads(Some(par_threads));
            let t = Instant::now();
            let d_par = m.phase("collect_par", || cfg.collect_closed_world(n_sites, tps, seed));
            let par_seconds = t.elapsed().as_secs_f64();
            assert_eq!(d_seq.labels(), d_par.labels(), "collection labels diverged");
            assert_eq!(
                feature_bits(d_seq.features()),
                feature_bits(d_par.features()),
                "collection features not bit-identical across thread counts"
            );
            pairs.push(PhasePair {
                name: "collect",
                seq_seconds,
                par_seconds,
            });

            // Layer 2: cross-validation.
            bf_par::set_threads(Some(1));
            let t = Instant::now();
            let cv_seq = m.phase("crossval_seq", || cfg.cross_validate(&d_seq, seed));
            let seq_seconds = t.elapsed().as_secs_f64();
            bf_par::set_threads(Some(par_threads));
            let t = Instant::now();
            let cv_par = m.phase("crossval_par", || cfg.cross_validate(&d_seq, seed));
            let par_seconds = t.elapsed().as_secs_f64();
            let bits = |r: &bf_ml::CrossValResult| -> Vec<(u64, u64)> {
                r.folds
                    .iter()
                    .map(|f| (f.accuracy.to_bits(), f.top5.to_bits()))
                    .collect()
            };
            assert_eq!(
                bits(&cv_seq),
                bits(&cv_par),
                "fold metrics not bit-identical across thread counts"
            );
            pairs.push(PhasePair {
                name: "crossval",
                seq_seconds,
                par_seconds,
            });

            // Layer 3: CNN kernels (conv forward + backward, batch 32).
            let len = d_seq.feature_len().max(256);
            bf_par::set_threads(Some(1));
            let t = Instant::now();
            let k_seq = m.phase("kernels_seq", || conv_pass(32, len));
            let seq_seconds = t.elapsed().as_secs_f64();
            bf_par::set_threads(Some(par_threads));
            let t = Instant::now();
            let k_par = m.phase("kernels_par", || conv_pass(32, len));
            let par_seconds = t.elapsed().as_secs_f64();
            assert_eq!(
                k_seq.to_bits(),
                k_par.to_bits(),
                "kernel outputs not bit-identical across thread counts"
            );
            pairs.push(PhasePair {
                name: "kernels",
                seq_seconds,
                par_seconds,
            });
            bf_par::set_threads(None);

            println!("phase         seq (s)    par (s)    speedup (x{par_threads} threads)");
            for p in &pairs {
                println!(
                    "{:<12} {:>8.3}   {:>8.3}    {:>5.2}x",
                    p.name,
                    p.seq_seconds,
                    p.par_seconds,
                    p.speedup()
                );
                bf_obs::gauge(&format!("par.speedup.{}", p.name)).set(p.speedup());
            }

            let json = Json::object([
                (
                    "note",
                    Json::Str(
                        "seq (1 thread) vs par wall times for the bf-par layers; results \
                         asserted bit-identical across thread counts. Speedup is bounded \
                         by hardware_threads — ~1x on a single-core host."
                            .into(),
                    ),
                ),
                ("scale", Json::Str(scale.to_string())),
                ("seed", Json::UInt(seed)),
                ("par_threads", Json::UInt(par_threads as u64)),
                (
                    "hardware_threads",
                    Json::UInt(std::thread::available_parallelism().map_or(1, |n| n.get() as u64)),
                ),
                ("bit_identical", Json::Bool(true)),
                (
                    "phases",
                    Json::Array(
                        pairs
                            .iter()
                            .map(|p| {
                                Json::object([
                                    ("phase", Json::Str(p.name.into())),
                                    ("seq_seconds", Json::Float(p.seq_seconds)),
                                    ("par_seconds", Json::Float(p.par_seconds)),
                                    ("speedup", Json::Float(p.speedup())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]);
            let out = bf_bench::artifact_path("BF_PAR_BASELINE_OUT", "BENCH_par_baseline.json");
            std::fs::write(&out, json.to_pretty_string())?;
            println!("\nwrote {out}");
            Ok(())
        },
    )
}
