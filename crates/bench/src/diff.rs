//! Regression diffing for `BENCH_*.json` artifacts.
//!
//! [`diff`] flattens two benchmark artifacts into dotted metric paths
//! (`runs[1].p99_latency_units`), classifies each numeric metric by its
//! name (higher-better throughput, lower-better latency, or
//! informational), and flags regressions beyond a per-metric noise
//! threshold:
//!
//! * **deterministic / virtual-unit metrics** (latency units,
//!   throughput per kunit, outcome counts) get a tight 0.5% band —
//!   they are pure functions of `(seed, threads)` and any drift is a
//!   real behaviour change;
//! * **wall-clock metrics** (`*_ns`, `*_seconds`, `steps_per_sec`)
//!   get a loose 25% band, wide enough for same-machine run-to-run
//!   noise but narrow enough to catch a real slowdown;
//! * config echoes (`seed`, `threads`, `batch`, …) and anything not
//!   matching a direction rule are reported but never fail.
//!
//! The `bench_diff` binary wraps this into a CI gate with a
//! `--synthetic PCT` self-test mode that perturbs every guarded metric
//! and asserts the gate trips.

use bf_obs::Json;

/// Which direction is an improvement for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger is better (throughput, accuracy, speedup).
    HigherBetter,
    /// Smaller is better (latency, timeouts, ns/step).
    LowerBetter,
    /// No direction: config echoes, counts without a quality meaning.
    Info,
}

/// One metric compared across the two artifacts.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Flattened dotted path, e.g. `runs[0].p99_latency_units`.
    pub path: String,
    pub old: f64,
    pub new: f64,
    pub direction: Direction,
    /// Relative tolerance applied (0.005 or 0.25).
    pub tolerance: f64,
    /// Signed relative change `(new - old) / max(|old|, eps)`.
    pub rel_change: f64,
    /// True when the change exceeds the tolerance in the bad direction.
    pub regressed: bool,
}

/// Full comparison result.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// All metrics present in both artifacts, in path order.
    pub deltas: Vec<MetricDelta>,
    /// Guarded metric paths present in `old` but absent from `new`
    /// (schema breakage — treated as a regression by [`DiffReport::ok`]).
    pub missing: Vec<String>,
    /// Paths present only in `new` (informational; schemas may grow).
    pub added: Vec<String>,
}

impl DiffReport {
    /// The deltas that tripped their threshold.
    pub fn regressions(&self) -> impl Iterator<Item = &MetricDelta> {
        self.deltas.iter().filter(|d| d.regressed)
    }

    /// Gate verdict: no regressed metric and no guarded metric missing.
    pub fn ok(&self) -> bool {
        self.missing.is_empty() && self.regressions().next().is_none()
    }
}

/// Tight band for deterministic virtual-unit metrics.
pub const TOL_VIRTUAL: f64 = 0.005;
/// Loose band for wall-clock metrics (same-machine run-to-run noise).
pub const TOL_WALL: f64 = 0.25;

/// Flatten an artifact into `(dotted.path, value)` pairs, array
/// elements indexed positionally (`runs[0].shed`). Strings, bools, and
/// nulls are skipped — only numbers can regress.
pub fn flatten(json: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    flatten_into(json, String::new(), &mut out);
    out
}

fn flatten_into(json: &Json, prefix: String, out: &mut Vec<(String, f64)>) {
    match json {
        Json::Object(map) => {
            for (k, v) in map {
                let path = if prefix.is_empty() { k.clone() } else { format!("{prefix}.{k}") };
                flatten_into(v, path, out);
            }
        }
        Json::Array(items) => {
            for (i, v) in items.iter().enumerate() {
                flatten_into(v, format!("{prefix}[{i}]"), out);
            }
        }
        Json::UInt(n) => out.push((prefix, *n as f64)),
        Json::Int(n) => out.push((prefix, *n as f64)),
        Json::Float(f) => out.push((prefix, *f)),
        Json::Null | Json::Bool(_) | Json::Str(_) => {}
    }
}

/// Does the final path segment name a wall-clock quantity?
fn is_wall(path: &str) -> bool {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    ["_ns", "_seconds", "steps_per_sec"].iter().any(|s| leaf.ends_with(s))
        || leaf == "ns_per_step"
        || leaf.starts_with("wall")
}

/// Classify a flattened path. Config echoes are pinned to `Info` first
/// so e.g. `requests` or `threads` never count as a throughput.
pub fn direction_for(path: &str) -> Direction {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    let leaf = leaf.split('[').next().unwrap_or(leaf);
    const CONFIG: &[&str] = &[
        "seed", "threads", "par_threads", "hardware_threads", "requests", "batch", "filters",
        "n_classes", "trace_len", "samples", "iters_per_sample", "warmup_steps", "timed_steps",
        "mean_gap_units", "scale", "tolerance", "shards", "session_gap_units", "mean_visits",
        "think_units", "zipf_exponent",
    ];
    if CONFIG.contains(&leaf) {
        return Direction::Info;
    }
    // Raw wall duration of a *virtual-time* run is ambient-load trivia;
    // the virtual metrics next to it are the guarded signal. Wall-based
    // rates (`steps_per_sec`, `ns_per_step`) stay guarded — they ARE the
    // benchmark in the training-throughput artifact.
    if leaf == "wall_seconds" {
        return Direction::Info;
    }
    const HIGHER: &[&str] = &[
        "throughput", "steps_per_sec", "speedup", "predictions", "accuracy", "answered",
    ];
    const LOWER: &[&str] = &[
        "p50", "p99", "latency", "ns_per_step", "mean_ns", "median_ns", "min_ns", "timeouts",
        "shed", "failed", "makespan", "quarantined", "degraded", "seconds", "shard_down",
    ];
    if HIGHER.iter().any(|s| leaf.contains(s)) {
        Direction::HigherBetter
    } else if LOWER.iter().any(|s| leaf.contains(s)) {
        Direction::LowerBetter
    } else {
        Direction::Info
    }
}

/// Per-metric relative tolerance: loose for wall-clock, tight for
/// deterministic virtual-unit metrics.
pub fn tolerance_for(path: &str) -> f64 {
    if is_wall(path) {
        TOL_WALL
    } else {
        TOL_VIRTUAL
    }
}

/// Compare one metric; `Info` metrics never regress.
fn delta(path: &str, old: f64, new: f64) -> MetricDelta {
    let direction = direction_for(path);
    let tolerance = tolerance_for(path);
    let rel_change = (new - old) / old.abs().max(1e-12);
    let regressed = match direction {
        Direction::HigherBetter => rel_change < -tolerance,
        Direction::LowerBetter => rel_change > tolerance,
        Direction::Info => false,
    };
    MetricDelta {
        path: path.to_owned(),
        old,
        new,
        direction,
        tolerance,
        rel_change,
        regressed,
    }
}

/// Diff two already-flattened artifacts (see [`flatten`]).
pub fn diff_flat(old: &[(String, f64)], new: &[(String, f64)]) -> DiffReport {
    let new_map: std::collections::BTreeMap<&str, f64> =
        new.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let old_keys: std::collections::BTreeSet<&str> =
        old.iter().map(|(k, _)| k.as_str()).collect();
    let mut report = DiffReport::default();
    for (path, old_v) in old {
        match new_map.get(path.as_str()) {
            Some(&new_v) => report.deltas.push(delta(path, *old_v, new_v)),
            None if direction_for(path) != Direction::Info => report.missing.push(path.clone()),
            None => {}
        }
    }
    for (path, _) in new {
        if !old_keys.contains(path.as_str()) {
            report.added.push(path.clone());
        }
    }
    report
}

/// Diff two parsed artifacts.
pub fn diff(old: &Json, new: &Json) -> DiffReport {
    diff_flat(&flatten(old), &flatten(new))
}

/// Perturb every *guarded* metric of a flattened artifact by `pct`
/// percent in its bad direction (throughputs shrink, latencies grow).
/// The `bench_diff --synthetic` self-test feeds this back through
/// [`diff_flat`] and demands the gate trips.
pub fn perturb_worse(flat: &[(String, f64)], pct: f64) -> Vec<(String, f64)> {
    let f = pct / 100.0;
    flat.iter()
        .map(|(path, v)| {
            let v = match direction_for(path) {
                Direction::HigherBetter => v * (1.0 - f),
                Direction::LowerBetter => v * (1.0 + f) + f, // `+ f` moves zeros too
                Direction::Info => *v,
            };
            (path.clone(), v)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Json {
        Json::parse(text).expect("test artifact parses")
    }

    #[test]
    fn flatten_indexes_arrays_and_skips_strings() {
        let j = parse(r#"{"runs":[{"p99":7,"note":"x"},{"p99":9}],"seed":42}"#);
        let flat = flatten(&j);
        assert_eq!(
            flat,
            vec![
                ("runs[0].p99".to_owned(), 7.0),
                ("runs[1].p99".to_owned(), 9.0),
                ("seed".to_owned(), 42.0),
            ]
        );
    }

    #[test]
    fn direction_rules_classify_known_metrics() {
        assert_eq!(direction_for("runs[0].throughput_per_kunit"), Direction::HigherBetter);
        assert_eq!(direction_for("rows[2].steps_per_sec"), Direction::HigherBetter);
        assert_eq!(direction_for("runs[0].p99_latency_units"), Direction::LowerBetter);
        assert_eq!(direction_for("rows[0].ns_per_step"), Direction::LowerBetter);
        assert_eq!(direction_for("runs[1].timeouts"), Direction::LowerBetter);
        assert_eq!(direction_for("runs[0].shard_down_rate"), Direction::LowerBetter);
        // Fleet topology and load-model knobs are config echoes, not
        // quality signals — `shards` is not a throughput and the Zipf
        // exponent is an input.
        assert_eq!(direction_for("runs[0].shards"), Direction::Info);
        assert_eq!(direction_for("zipf_exponent"), Direction::Info);
        assert_eq!(direction_for("session_gap_units"), Direction::Info);
        // Restart/flap/hedge counts are fault-injection echoes: their
        // magnitude is set by the kill plan, not by code quality.
        assert_eq!(direction_for("runs[0].restarts"), Direction::Info);
        assert_eq!(direction_for("runs[0].breaker_flaps"), Direction::Info);
        assert_eq!(direction_for("runs[0].hedged"), Direction::Info);
        // Config echoes are informational even when their names smell
        // directional (`threads` is not a throughput).
        assert_eq!(direction_for("runs[0].threads"), Direction::Info);
        assert_eq!(direction_for("seed"), Direction::Info);
        assert_eq!(direction_for("requests"), Direction::Info);
        assert_eq!(direction_for("runs[0].wall_seconds"), Direction::Info);
    }

    #[test]
    fn wall_metrics_get_the_loose_band() {
        assert_eq!(tolerance_for("rows[0].ns_per_step"), TOL_WALL);
        assert_eq!(tolerance_for("runs[0].wall_seconds"), TOL_WALL);
        assert_eq!(tolerance_for("rows[0].steps_per_sec"), TOL_WALL);
        assert_eq!(tolerance_for("runs[0].p99_latency_units"), TOL_VIRTUAL);
        assert_eq!(tolerance_for("runs[0].throughput_per_kunit"), TOL_VIRTUAL);
    }

    #[test]
    fn identical_artifacts_pass() {
        let j = parse(r#"{"runs":[{"p99_latency_units":900,"throughput_per_kunit":17.8}]}"#);
        let report = diff(&j, &j);
        assert!(report.ok(), "{report:?}");
        assert_eq!(report.deltas.len(), 2);
    }

    #[test]
    fn regressions_trip_in_the_bad_direction_only() {
        let old = parse(r#"{"throughput_per_kunit":100.0,"p99_latency_units":1000}"#);
        let better = parse(r#"{"throughput_per_kunit":150.0,"p99_latency_units":500}"#);
        assert!(diff(&old, &better).ok(), "improvements must pass");
        let worse = parse(r#"{"throughput_per_kunit":89.0,"p99_latency_units":1000}"#);
        let report = diff(&old, &worse);
        assert!(!report.ok());
        let paths: Vec<_> = report.regressions().map(|d| d.path.as_str()).collect();
        assert_eq!(paths, ["throughput_per_kunit"]);
    }

    #[test]
    fn wall_noise_passes_but_real_slowdowns_fail() {
        let old = parse(r#"{"rows":[{"ns_per_step":1000000.0}]}"#);
        let noisy = parse(r#"{"rows":[{"ns_per_step":1150000.0}]}"#); // +15% < 25% band
        assert!(diff(&old, &noisy).ok());
        let slow = parse(r#"{"rows":[{"ns_per_step":1400000.0}]}"#); // +40%
        assert!(!diff(&old, &slow).ok());
    }

    #[test]
    fn missing_guarded_metric_is_a_failure_added_is_not() {
        let old = parse(r#"{"p99_latency_units":900}"#);
        let new = parse(r#"{"answered":55}"#);
        let report = diff(&old, &new);
        assert_eq!(report.missing, ["p99_latency_units"]);
        assert_eq!(report.added, ["answered"]);
        assert!(!report.ok());
        // A vanished config echo is fine (schemas may drop Info fields).
        let report = diff(&parse(r#"{"seed":42}"#), &parse("{}"));
        assert!(report.ok(), "{report:?}");
    }

    #[test]
    fn synthetic_perturbation_always_trips_the_gate() {
        let j = parse(
            r#"{"runs":[{"p99_latency_units":900,"throughput_per_kunit":17.8,
                "timeouts":0,"threads":4}],"seed":42}"#,
        );
        let flat = flatten(&j);
        let report = diff_flat(&flat, &perturb_worse(&flat, 10.0));
        assert!(!report.ok(), "a 10% across-the-board regression must be flagged");
        // Zero-valued lower-better counts regress too (0 -> 0.1).
        assert!(report.regressions().any(|d| d.path.ends_with("timeouts")));
        // Config echoes stay untouched.
        assert!(report.deltas.iter().all(|d| !d.path.ends_with("threads") || !d.regressed));
    }
}
