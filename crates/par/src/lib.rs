//! # bf-par — deterministic fork-join work distribution
//!
//! Every hot path in the pipeline — per-trace simulation, per-fold
//! cross-validation, intra-batch NN kernels — is embarrassingly parallel
//! *by construction*: each work item is a pure function of its index and
//! inputs. This crate distributes such items over a scoped thread pool
//! while guaranteeing that **results are returned in input order and are
//! bit-identical regardless of thread count or scheduling**.
//!
//! The contract callers must uphold for that guarantee: the closure
//! passed to [`par_map_indexed`] must depend only on `(index, item)` —
//! never on execution order, shared mutable state, or which worker runs
//! it. Every call site in this workspace derives per-item RNG streams
//! from the item index (`combine_seeds(seed, index)`-style), which is
//! exactly this property.
//!
//! Thread count resolution (first match wins):
//! 1. a programmatic [`set_threads`] override (used by tests and the
//!    speedup harness),
//! 2. the `BF_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! With one thread the map degenerates to an inline sequential loop: no
//! threads are spawned and no synchronization happens, so `BF_THREADS=1`
//! is byte-for-byte the pre-parallel code path.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Panic payload carried out of [`try_par_map_indexed`].
pub type Panic = Box<dyn std::any::Any + Send + 'static>;

/// Programmatic thread-count override; 0 = unset (fall through to the
/// environment).
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Override the pool size for this process, taking precedence over
/// `BF_THREADS`. `None` removes the override. Intended for tests and
/// benchmarks that compare thread counts in-process; production code
/// should let operators steer via the environment.
pub fn set_threads(n: Option<usize>) {
    OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// The worker count parallel maps will use: the [`set_threads`] override,
/// else `BF_THREADS`, else the machine's available parallelism. Always at
/// least 1; a malformed `BF_THREADS` is ignored.
pub fn threads() -> usize {
    let o = OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    if let Ok(s) = std::env::var("BF_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Map `f` over `items` on up to [`threads`] workers, returning results
/// **in input order**. Items are claimed dynamically (an atomic cursor),
/// so uneven item costs still balance, but each result lands in the slot
/// of its input index — scheduling never reorders outputs.
///
/// Runs inline (no threads, no locks) when one worker suffices.
///
/// # Panics
///
/// Propagates a panic from `f`. Use [`try_par_map_indexed`] to survive
/// per-item panics.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_indexed_grained(items, 1, f)
}

/// [`par_map_indexed`] with a minimum number of items per worker: the
/// pool is sized `min(threads, items / min_per_worker)`, so fine-grained
/// workloads (tiny dense layers, short batches) stay inline instead of
/// paying thread spawn cost that dwarfs the work. Determinism is
/// unaffected — the grain only changes *where* items run, never their
/// results or order.
pub fn par_map_indexed_grained<T, R, F>(items: &[T], min_per_worker: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads()
        .min(n / min_per_worker.max(1))
        .min(n)
        .max(1);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let collected: Vec<(usize, R)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move |_| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        let mut all = Vec::with_capacity(n);
        let mut panic: Option<Panic> = None;
        for h in handles {
            match h.join() {
                Ok(local) => all.extend(local),
                Err(p) => panic = Some(p),
            }
        }
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
        all
    })
    .expect("bf-par scope");
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in collected {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

/// Like [`par_map_indexed`] but a panicking item yields `Err(payload)` in
/// its slot instead of tearing down the whole map — the fold engine uses
/// this to skip a crashed fold while keeping the rest.
pub fn try_par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<Result<R, Panic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_indexed(items, |i, t| catch_unwind(AssertUnwindSafe(|| f(i, t))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;

    /// Tests mutate the process-wide override.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        set_threads(Some(n));
        let r = f();
        set_threads(None);
        r
    }

    #[test]
    fn results_are_in_input_order() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let items: Vec<u64> = (0..100).collect();
        let out = with_threads(4, || {
            par_map_indexed(&items, |i, &v| {
                // Uneven cost: late items finish first.
                if i % 7 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                v * 3
            })
        });
        assert_eq!(out, items.iter().map(|v| v * 3).collect::<Vec<_>>());
    }

    #[test]
    fn identical_across_thread_counts() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let items: Vec<u64> = (0..64).collect();
        let f = |i: usize, v: &u64| (i as f32 * 0.37).sin() + (*v as f32).cos();
        let seq = with_threads(1, || par_map_indexed(&items, f));
        let par = with_threads(4, || par_map_indexed(&items, f));
        let sb: Vec<u32> = seq.iter().map(|v| v.to_bits()).collect();
        let pb: Vec<u32> = par.iter().map(|v| v.to_bits()).collect();
        assert_eq!(sb, pb);
    }

    #[test]
    fn single_thread_runs_inline() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let main_id = std::thread::current().id();
        let ids = with_threads(1, || {
            par_map_indexed(&[0u8; 8], |_, _| std::thread::current().id())
        });
        assert!(ids.iter().all(|&id| id == main_id));
    }

    #[test]
    fn grain_keeps_small_batches_inline() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let main_id = std::thread::current().id();
        let ids = with_threads(8, || {
            par_map_indexed_grained(&[0u8; 8], 16, |_, _| std::thread::current().id())
        });
        assert!(ids.iter().all(|&id| id == main_id));
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let count = AtomicU64::new(0);
        let items: Vec<usize> = (0..1000).collect();
        let out = with_threads(4, || {
            par_map_indexed(&items, |i, &v| {
                count.fetch_add(1, Ordering::Relaxed);
                assert_eq!(i, v);
                i
            })
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn try_variant_isolates_panicking_items() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let items: Vec<usize> = (0..10).collect();
        let out = with_threads(3, || {
            try_par_map_indexed(&items, |i, _| {
                if i == 4 {
                    panic!("item 4 exploded");
                }
                i * 2
            })
        });
        assert_eq!(out.len(), 10);
        for (i, r) in out.iter().enumerate() {
            if i == 4 {
                assert!(r.is_err());
            } else {
                assert_eq!(*r.as_ref().unwrap(), i * 2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn plain_variant_propagates_panics() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        set_threads(Some(2));
        let result = std::panic::catch_unwind(|| {
            par_map_indexed(&[0u8; 4], |i, _| {
                if i == 2 {
                    panic!("boom");
                }
                i
            })
        });
        set_threads(None);
        match result {
            Ok(_) => (),
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    #[test]
    fn env_var_is_honoured_when_no_override() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        set_threads(None);
        std::env::set_var("BF_THREADS", "3");
        assert_eq!(threads(), 3);
        std::env::set_var("BF_THREADS", "not a number");
        assert!(threads() >= 1);
        std::env::remove_var("BF_THREADS");
        set_threads(Some(5));
        assert_eq!(threads(), 5);
        set_threads(None);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let out: Vec<u32> = with_threads(4, || par_map_indexed(&[] as &[u8], |_, _| 1u32));
        assert!(out.is_empty());
    }
}
