//! # bf-par — deterministic fork-join work distribution
//!
//! Every hot path in the pipeline — per-trace simulation, per-fold
//! cross-validation, intra-batch NN kernels — is embarrassingly parallel
//! *by construction*: each work item is a pure function of its index and
//! inputs. This crate distributes such items over a scoped thread pool
//! while guaranteeing that **results are returned in input order and are
//! bit-identical regardless of thread count or scheduling**.
//!
//! The contract callers must uphold for that guarantee: the closure
//! passed to [`par_map_indexed`] must depend only on `(index, item)` —
//! never on execution order, shared mutable state, or which worker runs
//! it. Every call site in this workspace derives per-item RNG streams
//! from the item index (`combine_seeds(seed, index)`-style), which is
//! exactly this property.
//!
//! Thread count resolution (first match wins):
//! 1. a programmatic [`set_threads`] override (used by tests and the
//!    speedup harness),
//! 2. the `BF_THREADS` environment variable (resolved once per process;
//!    see [`reload_env`]),
//! 3. [`std::thread::available_parallelism`].
//!
//! With one thread the map degenerates to an inline sequential loop: no
//! threads are spawned and no synchronization happens, so `BF_THREADS=1`
//! is byte-for-byte the pre-parallel code path.
//!
//! ## Parallelism budget
//!
//! Nested parallel maps used to *multiply*: `BF_THREADS=4` crossval
//! folds each spawning 4-way batch kernels put 16 runnable threads on a
//! 4-way host, and the oversubscription showed up as a 0.47x crossval
//! "speedup" in `BENCH_par_baseline.json`. Parallelism is now a
//! *budget* that nesting levels **split instead of multiply**: a map
//! that fans out over `w` workers hands each worker `available() / w`
//! slots, so the outer level (folds) takes priority and inner levels
//! (intra-batch kernels) parallelize only when slots remain. The budget
//! is thread-local, costs nothing to read, and never changes results —
//! only where items run. [`plan`] exposes the same sizing decision the
//! maps make so callers can pick between an inline and a parallel code
//! path (e.g. a zero-allocation sequential kernel vs a buffered
//! fan-out) without second-guessing the pool.
//!
//! ## Minimum-work threshold
//!
//! Fork-join has a fixed price (scoped thread spawn + join) that tiny
//! work items cannot amortize: the 2-thread smoke-shape training
//! regression in `BENCH_train_throughput.json` came entirely from
//! forking kernels whose per-item work was a few thousand multiply-adds.
//! Callers that can estimate their per-item cost pass it to
//! [`plan_units`] / [`par_chunks_mut_scratch_units`]; items below
//! [`min_units`] (the `BF_PAR_MIN_UNITS` knob, default
//! [`DEFAULT_MIN_UNITS`]) run inline, so fork-join is never a
//! pessimization. Like the grain and the budget, the threshold only
//! changes *where* items run — never their results or order.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Panic payload carried out of [`try_par_map_indexed`].
pub type Panic = Box<dyn std::any::Any + Send + 'static>;

/// Programmatic thread-count override; 0 = unset (fall through to the
/// environment).
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cached resolution of `BF_THREADS` / `available_parallelism`.
/// `std::env::var` allocates a `String` on every call, which would put
/// the allocator back on the per-step hot path the workspace arenas
/// exist to clear — so the environment is read once and memoized.
static ENV_THREADS: AtomicUsize = AtomicUsize::new(ENV_UNINIT);
const ENV_UNINIT: usize = usize::MAX;

/// Cached resolution of `BF_PAR_MIN_UNITS` (same memoization rationale
/// as [`ENV_THREADS`]: the hot path must never call `env::var`).
static ENV_MIN_UNITS: AtomicUsize = AtomicUsize::new(ENV_UNINIT);

/// Default per-item work threshold for the units-aware entry points, in
/// caller-estimated work units (the NN kernels pass multiply-add
/// counts). Chosen so the CI smoke shape's kernels (≈6–13k MACs per
/// sample) stay inline while the default experiment shape (≈40–200k)
/// still fans out.
pub const DEFAULT_MIN_UNITS: usize = 16 * 1024;

thread_local! {
    /// Remaining parallelism budget for maps issued from this thread;
    /// 0 = unset (the thread owns the full pool).
    static BUDGET: Cell<usize> = const { Cell::new(0) };
}

/// Override the pool size for this process, taking precedence over
/// `BF_THREADS`. `None` removes the override. Intended for tests and
/// benchmarks that compare thread counts in-process; production code
/// should let operators steer via the environment.
pub fn set_threads(n: Option<usize>) {
    OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// Drop the memoized `BF_THREADS` / `BF_PAR_MIN_UNITS` resolutions so
/// the next [`threads`] / [`min_units`] call re-reads the environment.
/// Only needed by tests that mutate those variables at runtime;
/// processes configured at launch never call this.
pub fn reload_env() {
    ENV_THREADS.store(ENV_UNINIT, Ordering::SeqCst);
    ENV_MIN_UNITS.store(ENV_UNINIT, Ordering::SeqCst);
}

fn env_threads() -> usize {
    let cached = ENV_THREADS.load(Ordering::Relaxed);
    if cached != ENV_UNINIT {
        return cached;
    }
    let resolved = std::env::var("BF_THREADS")
        .ok()
        .and_then(|s| {
            let trimmed = s.trim();
            match trimmed.parse::<usize>() {
                Ok(n) if n > 0 => Some(n),
                // 0 and non-numeric are both misconfigurations: report the
                // rejected value once, then fall back to autodetection.
                _ => {
                    bf_obs::env::warn_invalid(
                        "BF_THREADS",
                        trimmed,
                        "a positive integer worker count",
                    );
                    None
                }
            }
        })
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from));
    ENV_THREADS.store(resolved, Ordering::Relaxed);
    resolved
}

/// The process-wide pool size: the [`set_threads`] override, else
/// `BF_THREADS`, else the machine's available parallelism. Always at
/// least 1; a malformed or zero `BF_THREADS` is reported once (via
/// `bf_obs::error!`) and then ignored.
pub fn threads() -> usize {
    let o = OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    env_threads()
}

/// The parallelism still available to *this thread*: [`threads`] at the
/// top level, or this worker's share of the budget inside a parallel
/// map. Inner maps size themselves off this, which is what stops nested
/// levels from multiplying.
pub fn available() -> usize {
    BUDGET.with(|b| match b.get() {
        0 => threads(),
        n => n,
    })
}

fn set_budget(n: usize) {
    BUDGET.with(|b| b.set(n));
}

/// The worker count a parallel map over `n_items` with the given grain
/// would use right now: `min(available(), n_items / min_per_worker)`,
/// at least 1. Callers use `plan(n, g) <= 1` to choose an inline code
/// path (and skip building parallel-only scratch) without duplicating
/// the sizing rule.
pub fn plan(n_items: usize, min_per_worker: usize) -> usize {
    available()
        .min(n_items / min_per_worker.max(1))
        .min(n_items)
        .max(1)
}

/// The minimum per-item work (in caller-estimated units) below which
/// the units-aware entry points run inline: `BF_PAR_MIN_UNITS` when
/// set and parseable, else [`DEFAULT_MIN_UNITS`]. `0` disables the
/// threshold entirely (every eligible workload forks); a malformed
/// value is reported once and falls back to the default.
pub fn min_units() -> usize {
    let cached = ENV_MIN_UNITS.load(Ordering::Relaxed);
    if cached != ENV_UNINIT {
        return cached;
    }
    let resolved = std::env::var("BF_PAR_MIN_UNITS")
        .ok()
        .and_then(|s| {
            let trimmed = s.trim();
            match trimmed.parse::<usize>() {
                Ok(n) if n != ENV_UNINIT => Some(n),
                _ => {
                    bf_obs::env::warn_invalid(
                        "BF_PAR_MIN_UNITS",
                        trimmed,
                        "a per-item work threshold (0 disables it)",
                    );
                    None
                }
            }
        })
        .unwrap_or(DEFAULT_MIN_UNITS);
    ENV_MIN_UNITS.store(resolved, Ordering::Relaxed);
    resolved
}

/// [`plan`] with a per-item work estimate: items cheaper than
/// [`min_units`] always plan inline (1 worker), because the fixed
/// fork-join cost would dwarf the work itself. Callers use
/// `plan_units(n, g, u) <= 1` exactly like `plan(n, g) <= 1` to pick
/// between inline and parallel arms.
pub fn plan_units(n_items: usize, min_per_worker: usize, units_per_item: usize) -> usize {
    if units_per_item < min_units() {
        return 1;
    }
    plan(n_items, min_per_worker)
}

/// [`par_chunks_mut_scratch`] with a per-chunk work estimate: chunks
/// cheaper than [`min_units`] run on a plain inline loop with a single
/// scratch (no threads spawned), regardless of the pool size.
///
/// # Panics
///
/// Panics if `chunk_len == 0`; propagates panics from `f`.
pub fn par_chunks_mut_scratch_units<T, S, M, F>(
    data: &mut [T],
    chunk_len: usize,
    min_per_worker: usize,
    units_per_chunk: usize,
    mk_scratch: M,
    f: F,
) where
    T: Send,
    S: Send,
    M: Fn() -> S + Sync,
    F: Fn(usize, &mut [T], &mut S) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    if units_per_chunk < min_units() {
        let mut scratch = mk_scratch();
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk, &mut scratch);
        }
        return;
    }
    par_chunks_mut_scratch(data, chunk_len, min_per_worker, mk_scratch, f)
}

/// Map `f` over `items` on up to [`available`] workers, returning
/// results **in input order**. Items are claimed dynamically (an atomic
/// cursor), so uneven item costs still balance, but each result lands
/// in the slot of its input index — scheduling never reorders outputs.
///
/// Runs inline (no threads, no locks) when one worker suffices.
///
/// # Panics
///
/// Propagates a panic from `f`. Use [`try_par_map_indexed`] to survive
/// per-item panics.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_indexed_grained(items, 1, f)
}

/// [`par_map_indexed`] with a minimum number of items per worker: the
/// pool is sized `min(available, items / min_per_worker)`, so
/// fine-grained workloads (tiny dense layers, short batches) stay
/// inline instead of paying thread spawn cost that dwarfs the work.
/// Each spawned worker inherits `available() / workers` budget slots,
/// so maps nested inside `f` split the pool instead of multiplying it.
/// Determinism is unaffected — the grain and the budget only change
/// *where* items run, never their results or order.
pub fn par_map_indexed_grained<T, R, F>(items: &[T], min_per_worker: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = plan(n, min_per_worker);
    // Capture the spawner's trace context once; whichever worker claims
    // item `i` restores it with branch namespace `i`, so spans traced
    // inside `f` mint identical IDs at every thread count (including the
    // inline path below). A `None` context makes the guards no-ops.
    let tctx = bf_obs::trace::current();
    let toff = bf_obs::trace::virtual_offset();
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let _trace = bf_obs::trace::adopt_branch(tctx, toff, i as u64);
                f(i, t)
            })
            .collect();
    }
    let child_budget = (available() / workers).max(1);
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let collected: Vec<(usize, R)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move |_| {
                    set_budget(child_budget);
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let _trace = bf_obs::trace::adopt_branch(tctx, toff, i as u64);
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        let mut all = Vec::with_capacity(n);
        let mut panic: Option<Panic> = None;
        for h in handles {
            match h.join() {
                Ok(local) => all.extend(local),
                Err(p) => panic = Some(p),
            }
        }
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
        all
    })
    .expect("bf-par scope");
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in collected {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

/// Run `f` over the `chunk_len`-sized chunks of `data` in parallel,
/// giving each worker one reusable `scratch` value (from `mk_scratch`)
/// for all the chunks it processes. Chunks are distributed round-robin
/// (chunk `i` → worker `i % workers`), which is deterministic and fair
/// for the uniform chunk costs of NN batch kernels. The final chunk may
/// be shorter than `chunk_len`.
///
/// This is the writer-side counterpart of [`par_map_indexed_grained`]:
/// instead of collecting per-item return values it hands each closure a
/// disjoint `&mut` window of the output, so batch kernels can write
/// results in place without per-item result buffers. Inline (one
/// worker) it is a plain loop with a single scratch — no threads, no
/// allocation beyond what `mk_scratch` does.
///
/// # Panics
///
/// Panics if `chunk_len == 0`; propagates panics from `f`.
pub fn par_chunks_mut_scratch<T, S, M, F>(
    data: &mut [T],
    chunk_len: usize,
    min_per_worker: usize,
    mk_scratch: M,
    f: F,
) where
    T: Send,
    S: Send,
    M: Fn() -> S + Sync,
    F: Fn(usize, &mut [T], &mut S) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n = data.len().div_ceil(chunk_len);
    let workers = plan(n, min_per_worker);
    if workers <= 1 {
        let mut scratch = mk_scratch();
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk, &mut scratch);
        }
        return;
    }
    let child_budget = (available() / workers).max(1);
    let mut buckets: Vec<Vec<(usize, &mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
        buckets[i % workers].push((i, chunk));
    }
    let mk_scratch = &mk_scratch;
    let f = &f;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move |_| {
                    set_budget(child_budget);
                    let mut scratch = mk_scratch();
                    for (i, chunk) in bucket {
                        f(i, chunk, &mut scratch);
                    }
                })
            })
            .collect();
        let mut panic: Option<Panic> = None;
        for h in handles {
            if let Err(p) = h.join() {
                panic = Some(p);
            }
        }
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
    })
    .expect("bf-par scope");
}

/// Like [`par_map_indexed`] but a panicking item yields `Err(payload)` in
/// its slot instead of tearing down the whole map — the fold engine uses
/// this to skip a crashed fold while keeping the rest.
pub fn try_par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<Result<R, Panic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_indexed(items, |i, t| catch_unwind(AssertUnwindSafe(|| f(i, t))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;

    /// Tests mutate the process-wide override.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        set_threads(Some(n));
        let r = f();
        set_threads(None);
        r
    }

    #[test]
    fn results_are_in_input_order() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let items: Vec<u64> = (0..100).collect();
        let out = with_threads(4, || {
            par_map_indexed(&items, |i, &v| {
                // Uneven cost: late items finish first.
                if i % 7 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                v * 3
            })
        });
        assert_eq!(out, items.iter().map(|v| v * 3).collect::<Vec<_>>());
    }

    #[test]
    fn identical_across_thread_counts() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let items: Vec<u64> = (0..64).collect();
        let f = |i: usize, v: &u64| (i as f32 * 0.37).sin() + (*v as f32).cos();
        let seq = with_threads(1, || par_map_indexed(&items, f));
        let par = with_threads(4, || par_map_indexed(&items, f));
        let sb: Vec<u32> = seq.iter().map(|v| v.to_bits()).collect();
        let pb: Vec<u32> = par.iter().map(|v| v.to_bits()).collect();
        assert_eq!(sb, pb);
    }

    #[test]
    fn trace_context_propagates_identically_across_thread_counts() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        bf_obs::trace::set_enabled(true);
        let items: Vec<u64> = (0..32).collect();
        let run = || {
            let root = bf_obs::TraceCtx::root(77, 0);
            let _adopt = bf_obs::trace::adopt(Some(root), 0);
            let spans = par_map_indexed(&items, |i, &v| {
                let s = bf_obs::trace::span_at("item", i as u64);
                let ctx = s.ctx().expect("context restored in worker");
                assert_eq!(ctx.trace_id, root.trace_id);
                s.finish(i as u64 + v);
                ctx.span_id
            });
            drop(_adopt);
            let _ = bf_obs::trace::drain();
            spans
        };
        let seq = with_threads(1, run);
        let par = with_threads(4, run);
        bf_obs::trace::set_enabled(false);
        assert_eq!(seq, par, "span IDs must not depend on the thread count");
        let mut unique = seq.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), items.len(), "branch namespaces must not collide");
    }

    #[test]
    fn single_thread_runs_inline() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let main_id = std::thread::current().id();
        let ids = with_threads(1, || {
            par_map_indexed(&[0u8; 8], |_, _| std::thread::current().id())
        });
        assert!(ids.iter().all(|&id| id == main_id));
    }

    #[test]
    fn grain_keeps_small_batches_inline() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let main_id = std::thread::current().id();
        let ids = with_threads(8, || {
            par_map_indexed_grained(&[0u8; 8], 16, |_, _| std::thread::current().id())
        });
        assert!(ids.iter().all(|&id| id == main_id));
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let count = AtomicU64::new(0);
        let items: Vec<usize> = (0..1000).collect();
        let out = with_threads(4, || {
            par_map_indexed(&items, |i, &v| {
                count.fetch_add(1, Ordering::Relaxed);
                assert_eq!(i, v);
                i
            })
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn try_variant_isolates_panicking_items() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let items: Vec<usize> = (0..10).collect();
        let out = with_threads(3, || {
            try_par_map_indexed(&items, |i, _| {
                if i == 4 {
                    panic!("item 4 exploded");
                }
                i * 2
            })
        });
        assert_eq!(out.len(), 10);
        for (i, r) in out.iter().enumerate() {
            if i == 4 {
                assert!(r.is_err());
            } else {
                assert_eq!(*r.as_ref().unwrap(), i * 2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn plain_variant_propagates_panics() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        set_threads(Some(2));
        let result = std::panic::catch_unwind(|| {
            par_map_indexed(&[0u8; 4], |i, _| {
                if i == 2 {
                    panic!("boom");
                }
                i
            })
        });
        set_threads(None);
        match result {
            Ok(_) => (),
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    #[test]
    fn env_var_is_honoured_when_no_override() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        set_threads(None);
        std::env::set_var("BF_THREADS", "3");
        reload_env();
        assert_eq!(threads(), 3);
        std::env::set_var("BF_THREADS", "not a number");
        reload_env();
        assert!(threads() >= 1);
        std::env::remove_var("BF_THREADS");
        bf_obs::env::reset_warnings();
        reload_env();
        set_threads(Some(5));
        assert_eq!(threads(), 5);
        set_threads(None);
        reload_env();
    }

    #[test]
    fn env_resolution_is_memoized_until_reload() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        set_threads(None);
        std::env::set_var("BF_THREADS", "3");
        reload_env();
        assert_eq!(threads(), 3);
        // A runtime change without reload_env() is invisible: the
        // resolution is cached so the hot path never calls env::var.
        std::env::set_var("BF_THREADS", "7");
        assert_eq!(threads(), 3);
        reload_env();
        assert_eq!(threads(), 7);
        std::env::remove_var("BF_THREADS");
        reload_env();
    }

    #[test]
    fn malformed_env_threads_warns_once_and_falls_back() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        set_threads(None);
        std::env::set_var("BF_THREADS", "fuor");
        bf_obs::env::reset_warnings();
        bf_obs::begin_capture();
        reload_env();
        assert!(threads() >= 1, "malformed value must fall back, not abort");
        reload_env();
        let _ = threads(); // second resolution must stay silent
        let lines = bf_obs::end_capture();
        let warnings: Vec<_> = lines.iter().filter(|l| l.contains("BF_THREADS")).collect();
        assert_eq!(warnings.len(), 1, "{lines:?}");
        assert!(warnings[0].contains("`fuor`"), "{warnings:?}");
        assert!(warnings[0].contains("positive integer"), "{warnings:?}");

        // Zero workers is equally invalid and equally loud.
        std::env::set_var("BF_THREADS", "0");
        bf_obs::env::reset_warnings();
        bf_obs::begin_capture();
        reload_env();
        assert!(threads() >= 1);
        let lines = bf_obs::end_capture();
        assert!(lines.iter().any(|l| l.contains("BF_THREADS") && l.contains("`0`")), "{lines:?}");

        std::env::remove_var("BF_THREADS");
        bf_obs::env::reset_warnings();
        reload_env();
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let out: Vec<u32> = with_threads(4, || par_map_indexed(&[] as &[u8], |_, _| 1u32));
        assert!(out.is_empty());
    }

    #[test]
    fn nested_maps_split_the_budget_instead_of_multiplying() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let outer: Vec<usize> = (0..4).collect();
        let inner_avail = with_threads(4, || {
            par_map_indexed(&outer, |_, _| {
                // Four outer workers split a 4-slot budget: each sees 1
                // slot, so inner maps run inline on the worker thread.
                let avail = available();
                let tid = std::thread::current().id();
                let inner_ids = par_map_indexed(&[0u8; 8], |_, _| std::thread::current().id());
                assert!(inner_ids.iter().all(|&id| id == tid));
                avail
            })
        });
        assert!(inner_avail.iter().all(|&a| a == 1));
    }

    #[test]
    fn partial_fanout_leaves_slots_for_inner_levels() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let outer: Vec<usize> = (0..2).collect();
        let inner_avail = with_threads(8, || {
            par_map_indexed(&outer, |_, _| available())
        });
        // Two outer workers over an 8-slot budget: 4 slots each remain.
        assert_eq!(inner_avail, vec![4, 4]);
    }

    #[test]
    fn budget_resets_between_top_level_maps() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        with_threads(4, || {
            let _ = par_map_indexed(&[0u8; 4], |_, _| ());
            // The caller thread never had its budget clipped by the
            // fan-out it issued.
            assert_eq!(available(), 4);
        });
    }

    #[test]
    fn plan_matches_map_sizing() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        with_threads(4, || {
            assert_eq!(plan(16, 1), 4);
            assert_eq!(plan(16, 8), 2);
            assert_eq!(plan(3, 1), 3);
            assert_eq!(plan(0, 1), 1);
            assert_eq!(plan(16, 0), 4);
        });
        with_threads(1, || {
            assert_eq!(plan(1000, 1), 1);
        });
    }

    fn with_min_units<R>(v: &str, f: impl FnOnce() -> R) -> R {
        std::env::set_var("BF_PAR_MIN_UNITS", v);
        reload_env();
        let r = f();
        std::env::remove_var("BF_PAR_MIN_UNITS");
        bf_obs::env::reset_warnings();
        reload_env();
        r
    }

    #[test]
    fn min_units_defaults_and_reads_env() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        std::env::remove_var("BF_PAR_MIN_UNITS");
        reload_env();
        assert_eq!(min_units(), DEFAULT_MIN_UNITS);
        with_min_units("512", || assert_eq!(min_units(), 512));
        with_min_units("0", || assert_eq!(min_units(), 0));
        // Malformed values fall back to the default (and warn once).
        with_min_units("lots", || assert_eq!(min_units(), DEFAULT_MIN_UNITS));
    }

    #[test]
    fn plan_units_keeps_cheap_items_inline() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        with_threads(4, || {
            with_min_units("1000", || {
                assert_eq!(plan_units(16, 1, 999), 1, "below the threshold: inline");
                assert_eq!(plan_units(16, 1, 1000), 4, "at the threshold: the plain plan");
                assert_eq!(plan_units(16, 8, 5000), 2, "grain still applies above it");
            });
            with_min_units("0", || {
                assert_eq!(plan_units(16, 1, 1), 4, "0 disables the threshold");
            });
        });
    }

    #[test]
    fn chunks_units_variant_stays_inline_below_threshold() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let main_id = std::thread::current().id();
        with_threads(8, || {
            with_min_units("1000", || {
                let mut cheap = vec![std::thread::current().id(); 32];
                par_chunks_mut_scratch_units(&mut cheap, 4, 1, 999, || (), |_, chunk, ()| {
                    chunk.fill(std::thread::current().id());
                });
                assert!(cheap.iter().all(|&id| id == main_id), "cheap chunks run inline");
                let mut costly = vec![std::thread::current().id(); 32];
                par_chunks_mut_scratch_units(&mut costly, 4, 1, 1000, || (), |_, chunk, ()| {
                    chunk.fill(std::thread::current().id());
                });
                assert!(
                    costly.iter().any(|&id| id != main_id),
                    "chunks at the threshold fan out"
                );
            });
        });
    }

    #[test]
    fn units_variants_are_bit_identical_to_the_parallel_path() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let fill = |min_units: &str| {
            with_threads(4, || {
                with_min_units(min_units, || {
                    let mut data = vec![0f32; 64];
                    par_chunks_mut_scratch_units(&mut data, 8, 1, 100, || (), |i, chunk, ()| {
                        for (j, v) in chunk.iter_mut().enumerate() {
                            *v = ((i * 8 + j) as f32 * 0.37).sin();
                        }
                    });
                    data.iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
                })
            })
        };
        assert_eq!(fill("1000000"), fill("0"), "the threshold never changes results");
    }

    #[test]
    fn chunks_mut_scratch_writes_every_chunk_in_place() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        // 10 chunks of 3 over a 29-element buffer: final chunk is short.
        let mut data = vec![0u64; 29];
        with_threads(4, || {
            par_chunks_mut_scratch(
                &mut data,
                3,
                1,
                || 0usize,
                |i, chunk, seen| {
                    *seen += 1;
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = (i * 100 + j) as u64;
                    }
                },
            );
        });
        for (i, chunk) in data.chunks(3).enumerate() {
            for (j, &v) in chunk.iter().enumerate() {
                assert_eq!(v, (i * 100 + j) as u64);
            }
        }
    }

    #[test]
    fn chunks_mut_scratch_is_identical_across_thread_counts() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let fill = |threads: usize| {
            let mut data = vec![0f32; 64];
            with_threads(threads, || {
                par_chunks_mut_scratch(
                    &mut data,
                    8,
                    1,
                    || (),
                    |i, chunk, ()| {
                        for (j, v) in chunk.iter_mut().enumerate() {
                            *v = ((i * 8 + j) as f32 * 0.37).sin();
                        }
                    },
                );
            });
            data.iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
        };
        assert_eq!(fill(1), fill(4));
    }

    #[test]
    fn chunks_mut_scratch_reuses_scratch_inline() {
        let _lock = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let made = AtomicU64::new(0);
        let mut data = vec![0u8; 32];
        with_threads(1, || {
            par_chunks_mut_scratch(
                &mut data,
                4,
                1,
                || {
                    made.fetch_add(1, Ordering::Relaxed);
                },
                |_, _, _| {},
            );
        });
        // One worker → one scratch for all 8 chunks.
        assert_eq!(made.load(Ordering::Relaxed), 1);
    }
}
