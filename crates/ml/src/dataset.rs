//! Labeled trace datasets and splitting.

use bf_stats::SeedRng;
use serde::{Deserialize, Serialize};

/// A labeled collection of fixed-length traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    features: Vec<Vec<f32>>,
    labels: Vec<usize>,
    n_classes: usize,
}

impl Dataset {
    /// An empty dataset over `n_classes` classes.
    ///
    /// # Panics
    ///
    /// Panics when `n_classes` is zero.
    pub fn new(n_classes: usize) -> Self {
        assert!(n_classes > 0, "need at least one class");
        Dataset { features: Vec::new(), labels: Vec::new(), n_classes }
    }

    /// Add one labeled trace.
    ///
    /// # Panics
    ///
    /// Panics when the label is out of range or the trace length differs
    /// from earlier traces.
    pub fn push(&mut self, trace: Vec<f32>, label: usize) {
        assert!(label < self.n_classes, "label {label} out of range");
        if let Some(first) = self.features.first() {
            assert_eq!(first.len(), trace.len(), "trace length mismatch");
        }
        self.features.push(trace);
        self.labels.push(label);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when no samples have been added.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Trace length (0 for an empty dataset).
    pub fn feature_len(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The traces.
    pub fn features(&self) -> &[Vec<f32>] {
        &self.features
    }

    /// The labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Standardize every trace to zero mean and unit variance in place
    /// (constant traces become all-zero). Matching what the training
    /// pipeline feeds the CNN.
    pub fn zscore_traces(&mut self) {
        for trace in &mut self.features {
            let n = trace.len() as f32;
            if n == 0.0 {
                continue;
            }
            let mean: f32 = trace.iter().sum::<f32>() / n;
            let var: f32 = trace.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
            let sd = var.sqrt();
            if sd > 0.0 {
                for v in trace.iter_mut() {
                    *v = (*v - mean) / sd;
                }
            } else {
                for v in trace.iter_mut() {
                    *v = 0.0;
                }
            }
        }
    }

    /// Content fingerprint: FNV-1a over every feature's IEEE-754 bits,
    /// every label, and the class count. Binds resumable cross-validation
    /// checkpoints to the exact dataset that produced them — any change
    /// to a single bit of any trace yields a different fingerprint.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(&(self.n_classes as u64).to_le_bytes());
        eat(&(self.features.len() as u64).to_le_bytes());
        for (trace, &label) in self.features.iter().zip(&self.labels) {
            eat(&(label as u64).to_le_bytes());
            for v in trace {
                eat(&v.to_bits().to_le_bytes());
            }
        }
        h
    }

    /// The subset at the given indices (cloned).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.n_classes);
        for &i in indices {
            out.push(self.features[i].clone(), self.labels[i]);
        }
        out
    }

    /// Per-class sample indices.
    fn by_class(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.n_classes];
        for (i, &l) in self.labels.iter().enumerate() {
            out[l].push(i);
        }
        out
    }

    /// Stratified k-fold partitions: each fold holds ~1/k of every class.
    /// Returns `k` disjoint index sets covering the dataset.
    ///
    /// # Panics
    ///
    /// Panics when `k < 2`.
    pub fn stratified_folds(&self, k: usize, seed: u64) -> Vec<Vec<usize>> {
        assert!(k >= 2, "need at least two folds");
        let mut rng = SeedRng::new(seed);
        let mut folds = vec![Vec::new(); k];
        for mut class_indices in self.by_class() {
            rng.shuffle(&mut class_indices);
            for (j, idx) in class_indices.into_iter().enumerate() {
                folds[j % k].push(idx);
            }
        }
        folds
    }

    /// The paper's per-fold protocol: with fold `f` held out as the test
    /// set, split the remainder 90/10 into train/validation. Returns
    /// `(train, val, test)` index sets.
    ///
    /// # Panics
    ///
    /// Panics when `fold >= k` or `k < 2`.
    pub fn split_for_fold(
        &self,
        folds: &[Vec<usize>],
        fold: usize,
        seed: u64,
    ) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
        assert!(fold < folds.len(), "fold out of range");
        let test = folds[fold].clone();
        let mut rest: Vec<usize> = folds
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != fold)
            .flat_map(|(_, f)| f.iter().copied())
            .collect();
        let mut rng = SeedRng::new(seed ^ fold as u64);
        rng.shuffle(&mut rest);
        let n_val = rest.len() / 10;
        let val = rest.split_off(rest.len() - n_val);
        (rest, val, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(per_class: usize, classes: usize) -> Dataset {
        let mut d = Dataset::new(classes);
        for c in 0..classes {
            for i in 0..per_class {
                d.push(vec![c as f32, i as f32], c);
            }
        }
        d
    }

    #[test]
    fn push_and_accessors() {
        let d = dataset(3, 2);
        assert_eq!(d.len(), 6);
        assert_eq!(d.feature_len(), 2);
        assert_eq!(d.n_classes(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_rejected() {
        let mut d = Dataset::new(2);
        d.push(vec![0.0], 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ragged_traces_rejected() {
        let mut d = Dataset::new(2);
        d.push(vec![0.0, 1.0], 0);
        d.push(vec![0.0], 1);
    }

    #[test]
    fn zscore_standardizes() {
        let mut d = Dataset::new(1);
        d.push(vec![1.0, 2.0, 3.0, 4.0], 0);
        d.zscore_traces();
        let t = &d.features()[0];
        let mean: f32 = t.iter().sum::<f32>() / 4.0;
        let var: f32 = t.iter().map(|v| v * v).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-5);
    }

    #[test]
    fn zscore_constant_trace_becomes_zero() {
        let mut d = Dataset::new(1);
        d.push(vec![7.0; 4], 0);
        d.zscore_traces();
        assert!(d.features()[0].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn stratified_folds_are_disjoint_and_cover() {
        let d = dataset(10, 4);
        let folds = d.stratified_folds(5, 1);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..40).collect::<Vec<_>>());
        // Each fold has 2 samples of each class.
        for f in &folds {
            let sub = d.subset(f);
            for c in 0..4 {
                let n = sub.labels().iter().filter(|&&l| l == c).count();
                assert_eq!(n, 2);
            }
        }
    }

    #[test]
    fn split_for_fold_partitions_everything() {
        let d = dataset(10, 4);
        let folds = d.stratified_folds(5, 2);
        let (train, val, test) = d.split_for_fold(&folds, 1, 7);
        assert_eq!(test.len(), 8);
        assert_eq!(val.len(), 3); // 32 / 10
        assert_eq!(train.len(), 29);
        let mut all: Vec<usize> = train.iter().chain(&val).chain(&test).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 40);
    }

    #[test]
    fn folds_deterministic_per_seed() {
        let d = dataset(6, 3);
        assert_eq!(d.stratified_folds(3, 9), d.stratified_folds(3, 9));
        assert_ne!(d.stratified_folds(3, 9), d.stratified_folds(3, 10));
    }

    #[test]
    fn fingerprint_sensitive_to_any_change() {
        let d = dataset(3, 2);
        assert_eq!(d.fingerprint(), d.fingerprint());
        let mut d2 = d.clone();
        d2.push(vec![9.0, 9.0], 0);
        assert_ne!(d.fingerprint(), d2.fingerprint());
        // A single-bit flip in one value changes the fingerprint.
        let mut d3 = d.clone();
        d3.features[0][0] = f32::from_bits(d3.features[0][0].to_bits() ^ 1);
        assert_ne!(d.fingerprint(), d3.fingerprint());
        // Same samples, different label layout.
        let mut a = Dataset::new(2);
        a.push(vec![1.0], 0);
        a.push(vec![1.0], 1);
        let mut b = Dataset::new(2);
        b.push(vec![1.0], 1);
        b.push(vec![1.0], 0);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn subset_preserves_labels() {
        let d = dataset(2, 3);
        let s = d.subset(&[0, 3, 5]);
        assert_eq!(s.labels(), &[0, 1, 2]);
    }
}
