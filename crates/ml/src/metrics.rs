//! Classification metrics, including the paper's open-world report.

use serde::{Deserialize, Serialize};

/// NaN-tolerant argmax over a probability row.
///
/// Uses [`f32::total_cmp`], so a NaN probability can never panic; under
/// total order NaN sorts above every number, so a poisoned row yields a
/// degenerate (but deterministic) prediction. Each such row is recorded
/// under the `ml.nan_probas` counter so run manifests surface how many
/// predictions were degenerate. Empty rows predict class 0.
pub fn argmax(row: &[f32]) -> usize {
    if row.iter().any(|v| v.is_nan()) {
        bf_obs::counter("ml.nan_probas").inc();
    }
    row.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Fraction of predictions equal to their label.
///
/// # Panics
///
/// Panics when lengths differ or the inputs are empty.
pub fn accuracy(preds: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(preds.len(), labels.len(), "prediction/label length mismatch");
    assert!(!preds.is_empty(), "accuracy of an empty set is undefined");
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f64 / preds.len() as f64
}

/// Fraction of samples whose label appears among the top-`k` classes by
/// probability (the paper reports top-5 for Tor Browser).
///
/// # Panics
///
/// Panics when `k` is zero, inputs are empty, or lengths differ.
pub fn top_k_accuracy(probas: &[Vec<f32>], labels: &[usize], k: usize) -> f64 {
    assert!(k >= 1, "k must be at least 1");
    assert_eq!(probas.len(), labels.len(), "probability/label length mismatch");
    assert!(!probas.is_empty(), "top-k accuracy of an empty set is undefined");
    let mut hits = 0usize;
    for (row, &label) in probas.iter().zip(labels) {
        let mut order: Vec<usize> = (0..row.len()).collect();
        order.sort_by(|&a, &b| row[b].total_cmp(&row[a]));
        if order.iter().take(k).any(|&c| c == label) {
            hits += 1;
        }
    }
    hits as f64 / probas.len() as f64
}

/// A square confusion matrix: `counts[truth][pred]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Build from predictions and labels over `n_classes`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or out-of-range classes.
    pub fn from_predictions(preds: &[usize], labels: &[usize], n_classes: usize) -> Self {
        assert_eq!(preds.len(), labels.len(), "prediction/label length mismatch");
        let mut counts = vec![vec![0usize; n_classes]; n_classes];
        for (&p, &l) in preds.iter().zip(labels) {
            assert!(p < n_classes && l < n_classes, "class out of range");
            counts[l][p] += 1;
        }
        ConfusionMatrix { counts }
    }

    /// Raw counts, `[truth][pred]`.
    pub fn counts(&self) -> &[Vec<usize>] {
        &self.counts
    }

    /// Per-class recall (None for absent classes).
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row = &self.counts[class];
        let total: usize = row.iter().sum();
        if total == 0 {
            None
        } else {
            Some(row[class] as f64 / total as f64)
        }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.counts.len()).map(|i| self.counts[i][i]).sum();
        let total: usize = self.counts.iter().flatten().sum();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

/// The open-world evaluation of Table 1: classes `0..n-1` are sensitive
/// sites; class `n-1` (the last one) is the aggregate "non-sensitive"
/// class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpenWorldReport {
    /// Accuracy on traces whose true class is a sensitive site.
    pub sensitive_accuracy: f64,
    /// Accuracy on non-sensitive traces (predicting "non-sensitive").
    pub non_sensitive_accuracy: f64,
    /// Accuracy over the combined test set (the paper's "combined
    /// accuracy").
    pub combined_accuracy: f64,
}

impl OpenWorldReport {
    /// Compute from predictions, with `non_sensitive_class` holding all
    /// open-world traffic.
    ///
    /// # Panics
    ///
    /// Panics when inputs are empty, lengths differ, or either side of
    /// the split has no samples.
    pub fn from_predictions(
        preds: &[usize],
        labels: &[usize],
        non_sensitive_class: usize,
    ) -> Self {
        assert_eq!(preds.len(), labels.len(), "prediction/label length mismatch");
        assert!(!preds.is_empty(), "open-world report needs samples");
        let mut s_total = 0usize;
        let mut s_hit = 0usize;
        let mut n_total = 0usize;
        let mut n_hit = 0usize;
        for (&p, &l) in preds.iter().zip(labels) {
            if l == non_sensitive_class {
                n_total += 1;
                if p == l {
                    n_hit += 1;
                }
            } else {
                s_total += 1;
                if p == l {
                    s_hit += 1;
                }
            }
        }
        assert!(s_total > 0, "no sensitive samples in test set");
        assert!(n_total > 0, "no non-sensitive samples in test set");
        OpenWorldReport {
            sensitive_accuracy: s_hit as f64 / s_total as f64,
            non_sensitive_accuracy: n_hit as f64 / n_total as f64,
            combined_accuracy: (s_hit + n_hit) as f64 / (s_total + n_total) as f64,
        }
    }

    /// Top-`k` variant computed from probability vectors (the paper's
    /// Tor Browser "top 5" row spans the open-world columns too).
    ///
    /// # Panics
    ///
    /// Same conditions as [`OpenWorldReport::from_predictions`], plus
    /// `k == 0`.
    pub fn from_probas_top_k(
        probas: &[Vec<f32>],
        labels: &[usize],
        non_sensitive_class: usize,
        k: usize,
    ) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert_eq!(probas.len(), labels.len(), "probability/label length mismatch");
        assert!(!probas.is_empty(), "open-world report needs samples");
        let mut s_total = 0usize;
        let mut s_hit = 0usize;
        let mut n_total = 0usize;
        let mut n_hit = 0usize;
        for (row, &l) in probas.iter().zip(labels) {
            let mut order: Vec<usize> = (0..row.len()).collect();
            order.sort_by(|&a, &b| row[b].total_cmp(&row[a]));
            let hit = order.iter().take(k).any(|&c| c == l);
            if l == non_sensitive_class {
                n_total += 1;
                n_hit += hit as usize;
            } else {
                s_total += 1;
                s_hit += hit as usize;
            }
        }
        assert!(s_total > 0, "no sensitive samples in test set");
        assert!(n_total > 0, "no non-sensitive samples in test set");
        OpenWorldReport {
            sensitive_accuracy: s_hit as f64 / s_total as f64,
            non_sensitive_accuracy: n_hit as f64 / n_total as f64,
            combined_accuracy: (s_hit + n_hit) as f64 / (s_total + n_total) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_picks_largest_and_survives_nan() {
        assert_eq!(argmax(&[0.1, 0.7, 0.2]), 1);
        assert_eq!(argmax(&[]), 0);
        // NaN sorts above every number under total order: degenerate but
        // deterministic, and crucially no panic.
        assert_eq!(argmax(&[0.3, f32::NAN, 0.4]), 1);
        assert_eq!(argmax(&[f32::NEG_INFINITY, -0.0, 0.0]), 2);
    }

    #[test]
    fn top_k_tolerates_nan_rows() {
        let probas = vec![vec![f32::NAN, 0.5, 0.2], vec![0.1, 0.2, 0.7]];
        let labels = [1, 2];
        // No panic; the NaN row ranks NaN first, label 1 second.
        assert_eq!(top_k_accuracy(&probas, &labels, 2), 1.0);
    }

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 2, 0], &[0, 1, 1, 0]), 0.75);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch() {
        accuracy(&[0], &[0, 1]);
    }

    #[test]
    fn top_k_includes_lower_ranked_hits() {
        let probas = vec![
            vec![0.5, 0.3, 0.2], // label 1: top-1 miss, top-2 hit
            vec![0.1, 0.2, 0.7], // label 2: top-1 hit
        ];
        let labels = [1, 2];
        assert_eq!(top_k_accuracy(&probas, &labels, 1), 0.5);
        assert_eq!(top_k_accuracy(&probas, &labels, 2), 1.0);
    }

    #[test]
    fn top_1_equals_argmax_accuracy() {
        let probas = vec![vec![0.9, 0.1], vec![0.2, 0.8], vec![0.6, 0.4]];
        let labels = [0, 1, 1];
        let preds: Vec<usize> =
            probas.iter().map(|r| if r[0] >= r[1] { 0 } else { 1 }).collect();
        assert_eq!(top_k_accuracy(&probas, &labels, 1), accuracy(&preds, &labels));
    }

    #[test]
    fn confusion_matrix_counts_and_recall() {
        let cm = ConfusionMatrix::from_predictions(&[0, 0, 1, 1, 1], &[0, 1, 1, 1, 0], 2);
        assert_eq!(cm.counts()[0][0], 1);
        assert_eq!(cm.counts()[0][1], 1);
        assert_eq!(cm.counts()[1][0], 1);
        assert_eq!(cm.counts()[1][1], 2);
        assert_eq!(cm.recall(0), Some(0.5));
        assert_eq!(cm.recall(1), Some(2.0 / 3.0));
        assert_eq!(cm.accuracy(), 0.6);
    }

    #[test]
    fn confusion_absent_class_has_no_recall() {
        let cm = ConfusionMatrix::from_predictions(&[0], &[0], 3);
        assert_eq!(cm.recall(2), None);
    }

    #[test]
    fn open_world_report_splits_correctly() {
        // 3 classes; class 2 = non-sensitive.
        let preds = [0, 1, 0, 2, 2, 1];
        let labels = [0, 0, 0, 2, 2, 2];
        let r = OpenWorldReport::from_predictions(&preds, &labels, 2);
        assert!((r.sensitive_accuracy - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.non_sensitive_accuracy - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.combined_accuracy - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no non-sensitive samples")]
    fn open_world_needs_both_sides() {
        OpenWorldReport::from_predictions(&[0], &[0], 2);
    }
}
