//! Anytime (early-exit) prefix classification.
//!
//! The paper's Table 1 shows accuracy is a smooth function of trace
//! length: 25/50/75% prefixes already carry most of the signal. This
//! module turns that curve into an *anytime* inference ladder: classify
//! the shortest prefix first, read off a per-prefix-length calibrated
//! confidence ([`Calibration`], temperature scaling fit on held-out
//! folds), and stop as soon as the confidence clears a threshold — or
//! whenever the caller's budget runs out, at which point the best
//! answer so far is still a usable (if less accurate) prediction.
//!
//! Prefix features are defined once here and shared by training-time
//! calibration fitting and the online serving path, so the calibration
//! is fit on exactly the distribution it will see: truncate the
//! standardized trace to the prefix and re-standardize over the prefix
//! alone (standardization is affine-invariant, so this equals
//! featurizing a prefix-only collection of the same trace).

use crate::calibrate::Calibration;
use crate::{Classifier, Dataset};
use bf_obs::Json;
use std::path::Path;

/// The ladder's rungs, as percentages of the full trace. The last rung
/// is always the full trace.
pub const PREFIX_PERCENTS: [u8; 4] = [25, 50, 75, 100];

/// Samples in a `percent` prefix of a `full_len`-sample trace (at least
/// one sample, so degenerate traces still classify).
pub fn prefix_len(full_len: usize, percent: u8) -> usize {
    ((full_len * percent as usize) / 100).max(1).min(full_len)
}

/// The first `percent`% of a standardized feature vector,
/// re-standardized over the prefix alone (f64 accumulation, matching
/// `CollectionConfig::featurize`). At 100% the input is returned
/// unchanged, bit-for-bit, so the full rung equals full-trace
/// classification exactly.
pub fn prefix_features(features: &[f32], percent: u8) -> Vec<f32> {
    if percent >= 100 {
        return features.to_vec(); // alloc-ok: per-request staging (full rung passthrough)
    }
    let n = prefix_len(features.len(), percent);
    let prefix = &features[..n];
    let mean: f64 = prefix.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
    let var: f64 =
        prefix.iter().map(|&v| (v as f64 - mean) * (v as f64 - mean)).sum::<f64>() / n as f64;
    let sd = var.sqrt();
    let mut out = vec![0.0f32; n]; // alloc-ok: per-request staging (prefix slice)
    if sd > 0.0 {
        for (o, &v) in out.iter_mut().zip(prefix) {
            *o = ((v as f64 - mean) / sd) as f32;
        }
    }
    out
}

/// The outcome of one anytime classification.
#[derive(Debug, Clone, PartialEq)]
pub struct AnytimeDecision {
    /// Calibrated per-class probabilities at the exit rung.
    pub probs: Vec<f32>,
    /// Calibrated confidence (max of `probs`).
    pub confidence: f32,
    /// The rung answered at, as a percent of the full trace.
    pub level: u8,
    /// Whether the confidence threshold was cleared before the full
    /// trace (as opposed to reaching 100% or exhausting `max_levels`).
    pub exited_early: bool,
}

/// Per-prefix-length calibrations for one model: the rungs of the
/// anytime ladder. Persisted alongside the model snapshot so serving
/// never refits confidence maps.
#[derive(Debug, Clone, PartialEq)]
pub struct AnytimeLadder {
    levels: Vec<u8>,
    calibrations: Vec<Calibration>,
}

impl Default for AnytimeLadder {
    fn default() -> Self {
        AnytimeLadder::identity()
    }
}

impl AnytimeLadder {
    /// An uncalibrated ladder over [`PREFIX_PERCENTS`]: every rung uses
    /// the identity map, so confidence is the raw max probability.
    pub fn identity() -> Self {
        AnytimeLadder {
            levels: PREFIX_PERCENTS.to_vec(), // alloc-ok: constructor
            calibrations: PREFIX_PERCENTS.iter().map(|_| Calibration::identity()).collect(), // alloc-ok: constructor
        }
    }

    /// The rung percentages, shortest first.
    pub fn levels(&self) -> &[u8] {
        &self.levels
    }

    /// The calibration for rung `idx`.
    pub fn calibration(&self, idx: usize) -> &Calibration {
        &self.calibrations[idx]
    }

    /// Fit one temperature per rung on held-out data: classify every
    /// validation trace at each prefix length and scale that rung's
    /// confidences by NLL. Deterministic for a fixed `(model, val)`.
    ///
    /// # Panics
    ///
    /// Panics when `val` is empty.
    pub fn fit(model: &mut dyn Classifier, val: &Dataset) -> Self {
        assert!(!val.is_empty(), "cannot fit a ladder on an empty validation set");
        let levels = PREFIX_PERCENTS.to_vec(); // alloc-ok: fit-time (offline)
        let mut calibrations = Vec::with_capacity(levels.len()); // alloc-ok: fit-time (offline)
        for &level in &levels {
            let prefixes: Vec<Vec<f32>> = val
                .features()
                .iter()
                .map(|f| prefix_features(f, level))
                .collect(); // alloc-ok: fit-time (offline)
            let probs = model.predict_proba_prefix(&prefixes);
            calibrations.push(Calibration::fit(&probs, val.labels()));
        }
        AnytimeLadder { levels, calibrations }
    }

    /// Classify `features` at rung `idx`: prefix, predict, calibrate.
    /// Returns the calibrated distribution and its confidence.
    pub fn classify_at(
        &self,
        model: &mut dyn Classifier,
        features: &[f32],
        idx: usize,
    ) -> (Vec<f32>, f32) {
        let prefix = prefix_features(features, self.levels[idx]);
        let mut probs = model
            .predict_proba_prefix(std::slice::from_ref(&prefix))
            .pop()
            .unwrap_or_default();
        self.calibrations[idx].apply_in_place(&mut probs);
        let confidence = probs.iter().copied().fold(0.0f32, f32::max);
        (probs, confidence)
    }

    /// Classify a micro-batch of requests at rung `idx` in one stacked
    /// forward pass: every row is prefixed, the model sees them as a
    /// single `predict_proba_prefix` call (one im2col/matmul per layer
    /// for the whole group), and each row is calibrated independently.
    /// Row `i` of the result is bit-identical to
    /// [`AnytimeLadder::classify_at`] on `features[i]` alone — batching
    /// changes where the flops run, never what they compute (pinned by
    /// `tests/anytime_props.rs` and the serve replay matrix).
    pub fn classify_at_batch(
        &self,
        model: &mut dyn Classifier,
        features: &[&[f32]],
        idx: usize,
    ) -> Vec<(Vec<f32>, f32)> {
        let prefixes: Vec<Vec<f32>> = features
            .iter()
            .map(|f| prefix_features(f, self.levels[idx]))
            .collect(); // alloc-ok: per-batch staging (request rows)
        let probs = model.predict_proba_prefix(&prefixes);
        probs
            .into_iter()
            .map(|mut p| {
                self.calibrations[idx].apply_in_place(&mut p);
                let confidence = p.iter().copied().fold(0.0f32, f32::max);
                (p, confidence)
            })
            .collect() // alloc-ok: per-batch result rows
    }

    /// Walk the rungs shortest-first, exiting as soon as the calibrated
    /// confidence reaches `threshold` or `max_levels` rungs have been
    /// tried (the budget-capped case); the final rung's answer is
    /// returned when nothing clears the bar.
    pub fn classify_anytime(
        &self,
        model: &mut dyn Classifier,
        features: &[f32],
        threshold: f64,
        max_levels: usize,
    ) -> AnytimeDecision {
        let last = max_levels.clamp(1, self.levels.len()) - 1;
        let mut best: Option<AnytimeDecision> = None;
        for idx in 0..=last {
            let (probs, confidence) = self.classify_at(model, features, idx);
            let level = self.levels[idx];
            let cleared = (confidence as f64) >= threshold;
            best = Some(AnytimeDecision {
                probs,
                confidence,
                level,
                exited_early: cleared && idx < self.levels.len() - 1,
            });
            if cleared {
                break;
            }
        }
        best.expect("at least one rung was classified")
    }

    /// Mean calibrated confidence per rung over a dataset — the
    /// training-distribution signal behind early exit (and the property
    /// test that confidence does not decrease with prefix length).
    pub fn mean_confidences(&self, model: &mut dyn Classifier, data: &Dataset) -> Vec<f64> {
        self.levels
            .iter()
            .enumerate()
            .map(|(idx, _)| {
                let total: f64 = data
                    .features()
                    .iter()
                    .map(|f| self.classify_at(model, f, idx).1 as f64)
                    .sum();
                total / data.len().max(1) as f64
            })
            .collect() // alloc-ok: diagnostics (offline)
    }

    /// JSON form: rung percentages and their fitted temperatures.
    pub fn to_json(&self) -> Json {
        Json::object([
            (
                "levels",
                Json::Array(self.levels.iter().map(|&l| Json::UInt(l as u64)).collect()), // alloc-ok: persistence (offline)
            ),
            (
                "calibrations",
                Json::Array(self.calibrations.iter().map(Calibration::to_json).collect()), // alloc-ok: persistence (offline)
            ),
        ])
    }

    /// Parse a ladder back from [`AnytimeLadder::to_json`] output.
    ///
    /// # Errors
    ///
    /// Describes missing/mismatched arrays or an invalid calibration.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let Some(Json::Array(levels)) = json.get("levels") else {
            return Err("ladder json missing \"levels\" array".to_owned());
        };
        let Some(Json::Array(cals)) = json.get("calibrations") else {
            return Err("ladder json missing \"calibrations\" array".to_owned());
        };
        if levels.len() != cals.len() || levels.is_empty() {
            return Err(format!(
                "ladder json needs matching non-empty arrays, got {} levels / {} calibrations",
                levels.len(),
                cals.len()
            ));
        }
        let mut out_levels = Vec::with_capacity(levels.len()); // alloc-ok: persistence (offline)
        for l in levels {
            match l.as_f64() {
                Some(v) if (1.0..=100.0).contains(&v) => out_levels.push(v as u8),
                other => return Err(format!("bad ladder level {other:?}")),
            }
        }
        let mut out_cals = Vec::with_capacity(cals.len()); // alloc-ok: persistence (offline)
        for c in cals {
            out_cals.push(Calibration::from_json(c)?);
        }
        Ok(AnytimeLadder { levels: out_levels, calibrations: out_cals })
    }

    /// Persist next to the model snapshot (pretty JSON).
    ///
    /// # Errors
    ///
    /// Human-readable I/O failure.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.to_json().to_pretty_string())
            .map_err(|e| format!("write {}: {e}", path.display()))
    }

    /// Load a ladder persisted by [`AnytimeLadder::save`].
    ///
    /// # Errors
    ///
    /// Human-readable I/O or parse failure.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::from_json(&Json::parse(&text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CentroidClassifier;
    use bf_stats::SeedRng;

    /// Class = where the dips sit; longer prefixes see more dips, so
    /// confidence grows with prefix length by construction.
    fn toy(per_class: usize, seed: u64) -> Dataset {
        let mut rng = SeedRng::new(seed);
        let mut d = Dataset::new(3);
        for c in 0..3usize {
            for _ in 0..per_class {
                let mut t = vec![0.0f32; 200];
                for v in t.iter_mut() {
                    *v = 0.3 * rng.standard_normal() as f32;
                }
                for rep in 0..4 {
                    let dip = rep * 50 + c * 12;
                    for v in &mut t[dip..dip + 10] {
                        *v -= 2.0;
                    }
                }
                d.push(t, c);
            }
        }
        d
    }

    #[test]
    fn prefix_features_are_standardized_and_full_is_identity() {
        let f: Vec<f32> = (0..100).map(|i| (i as f32).sin()).collect();
        let full = prefix_features(&f, 100);
        assert_eq!(
            full.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            f.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "100% prefix must be bit-identical to the input"
        );
        let half = prefix_features(&f, 50);
        assert_eq!(half.len(), 50);
        let mean: f32 = half.iter().sum::<f32>() / 50.0;
        assert!(mean.abs() < 1e-4, "prefix mean {mean}");
    }

    #[test]
    fn prefix_len_clamps_sanely() {
        assert_eq!(prefix_len(300, 25), 75);
        assert_eq!(prefix_len(300, 100), 300);
        assert_eq!(prefix_len(2, 25), 1);
        assert_eq!(prefix_len(1, 25), 1);
    }

    #[test]
    fn fitted_ladder_classifies_and_exits_early_on_easy_data() {
        let train = toy(8, 1);
        let val = toy(4, 2);
        let mut model = CentroidClassifier::new(3);
        model.fit(&train, &Dataset::new(3));
        let ladder = AnytimeLadder::fit(&mut model, &val);
        assert_eq!(ladder.levels(), &PREFIX_PERCENTS);
        // A permissive threshold exits at the first rung; an impossible
        // one walks to the full trace.
        let f = &val.features()[0];
        let easy = ladder.classify_anytime(&mut model, f, 0.0, 4);
        assert_eq!(easy.level, 25);
        assert!(easy.exited_early);
        let hard = ladder.classify_anytime(&mut model, f, 1.1, 4);
        assert_eq!(hard.level, 100);
        assert!(!hard.exited_early);
        // Budget-capped at 2 rungs: answers at 50% without early-exit.
        let capped = ladder.classify_anytime(&mut model, f, 1.1, 2);
        assert_eq!(capped.level, 50);
        assert!(!capped.exited_early);
    }

    #[test]
    fn ladder_round_trips_through_json() {
        let train = toy(6, 3);
        let val = toy(3, 4);
        let mut model = CentroidClassifier::new(3);
        model.fit(&train, &Dataset::new(3));
        let ladder = AnytimeLadder::fit(&mut model, &val);
        let back = AnytimeLadder::from_json(&ladder.to_json()).expect("round trip");
        assert_eq!(back, ladder);
        assert!(AnytimeLadder::from_json(&Json::object([])).is_err());
    }

    #[test]
    fn identity_ladder_confidence_is_raw_max_prob() {
        let train = toy(6, 5);
        let mut model = CentroidClassifier::new(3);
        model.fit(&train, &Dataset::new(3));
        let ladder = AnytimeLadder::identity();
        let f = &train.features()[0];
        let (probs, conf) = ladder.classify_at(&mut model, f, 3);
        let raw = model.predict_proba(std::slice::from_ref(&prefix_features(f, 100))).remove(0);
        let raw_max = raw.iter().copied().fold(0.0f32, f32::max);
        assert!((conf - raw_max).abs() < 1e-6);
        assert_eq!(probs.len(), 3);
    }
}
