//! Knowledge distillation: a small student CNN trained on the full
//! model's soft labels.
//!
//! The anytime ladder needs a tier between "run the big CNN+LSTM" and
//! "nearest centroid": cheap enough to fit a nearly-exhausted deadline,
//! accurate enough to beat the centroid floor. Distillation (Hinton et
//! al.) gets there by training a reduced-width [`CnnLstm`] against the
//! teacher's *tempered* predictive distribution — the dark knowledge in
//! the teacher's near-miss probabilities — via
//! [`bf_nn::softmax_cross_entropy_soft`].
//!
//! Training is single-threaded and seeded (weight init, shuffling,
//! dropout all from `SeedRng`), so a distilled student is a pure
//! function of `(teacher predictions, DistillConfig)` — the property
//! test asserts bit-identical students across `BF_THREADS` settings.
//! Inference goes through [`CnnLstm::prefix_batch`], so the student
//! accepts prefix-length rows natively (zero-padded into the pooled
//! workspace tensor, which is handed out zeroed).

use crate::calibrate::Calibration;
use crate::{Classifier, Dataset};
use bf_nn::{CnnLstm, CnnLstmConfig};
use bf_stats::SeedRng;
use serde::{Deserialize, Serialize};

/// Distillation hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistillConfig {
    /// Convolution filters per conv layer of the student (teacher uses
    /// the paper's 256 at full scale).
    pub conv_filters: usize,
    /// Softening temperature applied to the teacher's probabilities
    /// before they become training targets.
    pub temperature: f64,
    /// Fixed epoch count (no early stopping: the soft targets already
    /// regularize, and a fixed count keeps the fit deterministic even
    /// without a validation set).
    pub max_epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Seed for weight init, shuffling, and dropout.
    pub seed: u64,
}

impl Default for DistillConfig {
    fn default() -> Self {
        DistillConfig {
            conv_filters: 8,
            temperature: 2.0,
            max_epochs: 25,
            batch_size: 32,
            seed: 0,
        }
    }
}

/// The distilled student: a reduced-width [`CnnLstm`] plus its
/// distillation protocol.
#[derive(Debug)]
pub struct DistilledClassifier {
    arch: CnnLstmConfig,
    cfg: DistillConfig,
    net: Option<CnnLstm>,
}

impl DistilledClassifier {
    /// A student for `input_len`-sample traces over `n_classes` classes.
    ///
    /// # Panics
    ///
    /// Panics when the conv/pool stack does not fit `input_len` (check
    /// [`DistilledClassifier::feasible`] first).
    pub fn new(input_len: usize, n_classes: usize, cfg: DistillConfig) -> Self {
        let mut arch = CnnLstmConfig::scaled(input_len, n_classes, cfg.conv_filters);
        // Small nets want less regularization and a larger step than the
        // paper's full-width defaults.
        arch.dropout = 0.2;
        arch.learning_rate = 0.01;
        assert!(
            arch.try_lstm_steps().is_some(),
            "input_len {input_len} too short for the student conv/pool stack"
        );
        DistilledClassifier { arch, cfg, net: None }
    }

    /// Whether a student of this geometry can be built at all.
    pub fn feasible(input_len: usize, n_classes: usize, conv_filters: usize) -> bool {
        CnnLstmConfig::scaled(input_len, n_classes, conv_filters)
            .try_lstm_steps()
            .is_some()
    }

    /// The distillation configuration.
    pub fn config(&self) -> &DistillConfig {
        &self.cfg
    }

    /// Train the student against the teacher's predictions on `train`:
    /// query the teacher once for soft labels, temper them, then run the
    /// seeded minibatch loop over [`CnnLstm::train_batch_soft`].
    ///
    /// # Panics
    ///
    /// Panics when `train` is empty or its trace length disagrees with
    /// the student's `input_len`.
    pub fn distill(&mut self, teacher: &mut dyn Classifier, train: &Dataset) {
        assert!(!train.is_empty(), "cannot distill on an empty dataset");
        let mut targets = teacher.predict_proba(train.features());
        let soften = Calibration::with_temperature(self.cfg.temperature);
        for row in targets.iter_mut() {
            soften.apply_in_place(row);
        }
        self.train_on_targets(train.features(), &targets);
    }

    /// The shared training loop behind [`DistilledClassifier::distill`]
    /// and the degenerate one-hot [`Classifier::fit`].
    fn train_on_targets(&mut self, features: &[Vec<f32>], targets: &[Vec<f32>]) {
        assert_eq!(features.len(), targets.len(), "one target row per trace");
        assert_eq!(
            features[0].len(),
            self.arch.input_len,
            "dataset trace length must match architecture input_len"
        );
        let k = self.arch.n_classes;
        let mut net = CnnLstm::new(self.arch, self.cfg.seed);
        let mut rng = SeedRng::new(self.cfg.seed ^ 0xD157);
        let mut order: Vec<usize> = (0..features.len()).collect(); // alloc-ok: fit-time (offline)
        let _span = bf_obs::span!("distill");
        for _epoch in 0..self.cfg.max_epochs {
            rng.shuffle(&mut order);
            let mut loss_sum = 0.0f64;
            let mut batches = 0u32;
            for chunk in order.chunks(self.cfg.batch_size.max(1)) {
                let mut x = bf_nn::workspace::tensor(&[chunk.len(), 1, self.arch.input_len]);
                let mut t = bf_nn::workspace::tensor(&[chunk.len(), k]);
                for (bi, &i) in chunk.iter().enumerate() {
                    let len = self.arch.input_len;
                    x.data_mut()[bi * len..(bi + 1) * len].copy_from_slice(&features[i]);
                    t.data_mut()[bi * k..(bi + 1) * k].copy_from_slice(&targets[i]);
                }
                loss_sum += net.train_batch_soft(&x, &t) as f64;
                bf_nn::workspace::recycle(x);
                bf_nn::workspace::recycle(t);
                batches += 1;
            }
            bf_obs::counter("distill.epochs").inc();
            bf_obs::gauge("distill.loss").set(loss_sum / batches.max(1) as f64);
        }
        self.net = Some(net);
    }
}

impl Classifier for DistilledClassifier {
    /// Degenerate distillation against a perfect teacher: one-hot
    /// targets. Real deployments call [`DistilledClassifier::distill`];
    /// this keeps the student usable wherever a plain [`Classifier`] is
    /// expected. `val` is unused (fixed epochs, no early stopping).
    fn fit(&mut self, train: &Dataset, _val: &Dataset) {
        assert!(!train.is_empty(), "cannot fit on an empty dataset");
        let k = self.arch.n_classes;
        let targets: Vec<Vec<f32>> = train
            .labels()
            .iter()
            .map(|&y| {
                let mut row = vec![0.0f32; k]; // alloc-ok: fit-time (offline)
                row[y] = 1.0;
                row
            })
            .collect(); // alloc-ok: fit-time (offline)
        self.train_on_targets(train.features(), &targets);
    }

    /// Rows may be *any* length up to `input_len`: the student always
    /// predicts through [`CnnLstm::prefix_batch`], zero-padding shorter
    /// rows, so full-trace and prefix inference share one code path.
    fn predict_proba(&mut self, traces: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let net = self.net.as_mut().expect("classifier not fitted");
        let k = self.arch.n_classes;
        let mut out = Vec::with_capacity(traces.len()); // alloc-ok: per-request output
        for chunk in traces.chunks(64) {
            let p = net.predict_proba_batch(chunk);
            for i in 0..chunk.len() {
                out.push(p.data()[i * k..(i + 1) * k].to_vec()); // alloc-ok: per-request output
            }
            bf_nn::workspace::recycle(p);
        }
        out
    }

    fn predict_proba_prefix(&mut self, traces: &[Vec<f32>]) -> Vec<Vec<f32>> {
        self.predict_proba(traces)
    }

    fn n_classes(&self) -> usize {
        self.arch.n_classes
    }

    fn save_network(&mut self, path: &std::path::Path) -> Result<bool, String> {
        match self.net.as_mut() {
            Some(net) => bf_nn::save_network(net, path)
                .map(|()| true)
                .map_err(|e| e.to_string()),
            None => Ok(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CentroidClassifier;

    fn toy_dataset(per_class: usize, seed: u64) -> Dataset {
        let mut rng = SeedRng::new(seed);
        let mut d = Dataset::new(3);
        for c in 0..3usize {
            for _ in 0..per_class {
                let mut t = vec![0.0f32; 300];
                for v in t.iter_mut() {
                    *v = 0.15 * rng.standard_normal() as f32;
                }
                let dip = 40 + c * 80;
                for v in &mut t[dip..dip + 30] {
                    *v -= 3.0;
                }
                d.push(t, c);
            }
        }
        d
    }

    fn small_cfg(seed: u64) -> DistillConfig {
        DistillConfig {
            conv_filters: 8,
            max_epochs: 12,
            batch_size: 8,
            seed,
            ..DistillConfig::default()
        }
    }

    #[test]
    fn distilled_student_learns_from_centroid_teacher() {
        let train = toy_dataset(8, 11);
        let test = toy_dataset(4, 12);
        let mut teacher = CentroidClassifier::new(3);
        teacher.fit(&train, &Dataset::new(3));
        let mut student = DistilledClassifier::new(300, 3, small_cfg(3));
        student.distill(&mut teacher, &train);
        let preds = student.predict(test.features());
        let acc = crate::metrics::accuracy(&preds, test.labels());
        assert!(acc >= 0.7, "student accuracy = {acc}");
    }

    #[test]
    fn distillation_is_bit_deterministic() {
        let train = toy_dataset(5, 21);
        let mut teacher = CentroidClassifier::new(3);
        teacher.fit(&train, &Dataset::new(3));
        let probe: Vec<Vec<f32>> = train.features()[..4].to_vec();
        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut s = DistilledClassifier::new(300, 3, small_cfg(9));
            s.distill(&mut teacher, &train);
            runs.push(s.predict_proba(&probe));
        }
        for (a, b) in runs[0].iter().zip(&runs[1]) {
            let (ab, bb): (Vec<u32>, Vec<u32>) =
                (a.iter().map(|v| v.to_bits()).collect(), b.iter().map(|v| v.to_bits()).collect());
            assert_eq!(ab, bb, "same seed must reproduce the same student bitwise");
        }
    }

    #[test]
    fn prefix_rows_are_accepted_and_full_rows_match_exact_length() {
        let train = toy_dataset(5, 31);
        let mut student = DistilledClassifier::new(300, 3, small_cfg(4));
        student.fit(&train, &Dataset::new(3));
        let full = &train.features()[0];
        let half: Vec<f32> = full[..150].to_vec();
        let p = student.predict_proba(&[full.clone(), half]);
        assert_eq!(p.len(), 2);
        for row in &p {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn feasibility_check_matches_constructor() {
        assert!(DistilledClassifier::feasible(300, 3, 8));
        assert!(!DistilledClassifier::feasible(10, 3, 8));
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn infeasible_geometry_panics() {
        DistilledClassifier::new(10, 3, DistillConfig::default());
    }
}
