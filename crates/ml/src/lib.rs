//! `bf-ml` — the classification pipeline of §4.1.
//!
//! The paper's attack is two-phase: offline, the attacker collects labeled
//! traces and trains a classifier; online, the trained classifier predicts
//! which website produced a fresh trace. This crate provides:
//!
//! * [`Dataset`] — labeled trace collections with per-trace
//!   standardization and stratified splitting;
//! * [`Classifier`] — the common interface over the paper's
//!   [`CnnLstmClassifier`] and the fast [`CentroidClassifier`] baseline
//!   used for smoke-scale runs;
//! * [`metrics`] — top-1/top-k accuracy, confusion matrices, and the
//!   open-world sensitive/non-sensitive/combined report of Table 1;
//! * [`crossval`] — the paper's 10-fold cross-validation protocol
//!   (per fold: one held-out test fold, with the remainder split 90/10
//!   into train/validation and early stopping on validation accuracy),
//!   with folds evaluated on parallel threads.
//!
//! # Example
//!
//! ```
//! use bf_ml::{CentroidClassifier, Classifier, Dataset};
//!
//! // Two classes with an obvious mean difference.
//! let mut d = Dataset::new(2);
//! for i in 0..20 {
//!     let v = if i % 2 == 0 { 1.0 } else { -1.0 };
//!     d.push(vec![v; 8], (i % 2) as usize);
//! }
//! let mut c = CentroidClassifier::new(2);
//! c.fit(&d, &Dataset::new(2));
//! let p = c.predict_proba(&[vec![0.9; 8]]);
//! assert!(p[0][0] > p[0][1]);
//! ```

pub mod anytime;
pub mod calibrate;
pub mod centroid;
pub mod cnn;
pub mod crossval;
pub mod dataset;
pub mod distill;
pub mod metrics;
pub mod openworld;

pub use anytime::{prefix_features, prefix_len, AnytimeDecision, AnytimeLadder, PREFIX_PERCENTS};
pub use calibrate::Calibration;
pub use centroid::CentroidClassifier;
pub use cnn::{CnnLstmClassifier, TrainConfig};
pub use distill::{DistillConfig, DistilledClassifier};
pub use crossval::{
    cross_validate, cross_validate_oof, cross_validate_oof_resumable, cross_validate_resumable,
    CrossValResult, FoldResult, OofPredictions, Resumable, ResumeOptions,
};
pub use dataset::Dataset;
pub use metrics::{accuracy, argmax, top_k_accuracy, ConfusionMatrix, OpenWorldReport};
pub use openworld::{OperatingPoint, ThresholdCurve};

/// A trainable trace classifier.
pub trait Classifier: Send {
    /// Train on `train`, using `val` for early stopping (may be empty for
    /// models that do not need validation).
    fn fit(&mut self, train: &Dataset, val: &Dataset);

    /// Per-class probabilities for each input trace.
    fn predict_proba(&mut self, traces: &[Vec<f32>]) -> Vec<Vec<f32>>;

    /// [`Classifier::predict_proba`] under a cooperative deadline: the
    /// online-serving inference path. The default checkpoints the token
    /// once before predicting (sufficient for cheap models); expensive
    /// models override this to checkpoint *during* inference so a
    /// mid-flight cancellation stops work promptly (the CNN+LSTM checks
    /// between input chunks). Implementations must return bit-identical
    /// probabilities to [`Classifier::predict_proba`] when the token
    /// never cancels — graceful-degradation comparisons rely on it.
    fn predict_proba_deadline(
        &mut self,
        traces: &[Vec<f32>],
        token: &bf_fault::CancelToken,
    ) -> Result<Vec<Vec<f32>>, bf_fault::DeadlineExceeded> {
        token.check()?;
        Ok(self.predict_proba(traces))
    }

    /// [`Classifier::predict_proba`] over *prefix* rows: each trace may
    /// be any length up to the model's expected input length (the
    /// anytime ladder's early-exit rungs, see [`anytime`]). The default
    /// forwards to `predict_proba` — correct for models whose distance
    /// or feature computation naturally truncates (the centroid zips
    /// against the shorter row); fixed-input networks override this to
    /// zero-pad into their input tensor. At full length the result must
    /// be bit-identical to `predict_proba`.
    fn predict_proba_prefix(&mut self, traces: &[Vec<f32>]) -> Vec<Vec<f32>> {
        self.predict_proba(traces)
    }

    /// Argmax class predictions (NaN-tolerant, see [`metrics::argmax`]).
    fn predict(&mut self, traces: &[Vec<f32>]) -> Vec<usize> {
        self.predict_proba(traces)
            .into_iter()
            .map(|row| metrics::argmax(&row))
            .collect()
    }

    /// Snapshot the trained model to `path`, when the model supports it.
    /// Returns `Ok(true)` if a snapshot was written, `Ok(false)` if this
    /// classifier has nothing to snapshot (the default), and `Err` with a
    /// human-readable message on I/O failure.
    fn save_network(&mut self, _path: &std::path::Path) -> Result<bool, String> {
        Ok(false)
    }

    /// Number of classes this model distinguishes.
    fn n_classes(&self) -> usize;
}
