//! `bf-ml` — the classification pipeline of §4.1.
//!
//! The paper's attack is two-phase: offline, the attacker collects labeled
//! traces and trains a classifier; online, the trained classifier predicts
//! which website produced a fresh trace. This crate provides:
//!
//! * [`Dataset`] — labeled trace collections with per-trace
//!   standardization and stratified splitting;
//! * [`Classifier`] — the common interface over the paper's
//!   [`CnnLstmClassifier`] and the fast [`CentroidClassifier`] baseline
//!   used for smoke-scale runs;
//! * [`metrics`] — top-1/top-k accuracy, confusion matrices, and the
//!   open-world sensitive/non-sensitive/combined report of Table 1;
//! * [`crossval`] — the paper's 10-fold cross-validation protocol
//!   (per fold: one held-out test fold, with the remainder split 90/10
//!   into train/validation and early stopping on validation accuracy),
//!   with folds evaluated on parallel threads.
//!
//! # Example
//!
//! ```
//! use bf_ml::{CentroidClassifier, Classifier, Dataset};
//!
//! // Two classes with an obvious mean difference.
//! let mut d = Dataset::new(2);
//! for i in 0..20 {
//!     let v = if i % 2 == 0 { 1.0 } else { -1.0 };
//!     d.push(vec![v; 8], (i % 2) as usize);
//! }
//! let mut c = CentroidClassifier::new(2);
//! c.fit(&d, &Dataset::new(2));
//! let p = c.predict_proba(&[vec![0.9; 8]]);
//! assert!(p[0][0] > p[0][1]);
//! ```

pub mod centroid;
pub mod cnn;
pub mod crossval;
pub mod dataset;
pub mod metrics;
pub mod openworld;

pub use centroid::CentroidClassifier;
pub use cnn::{CnnLstmClassifier, TrainConfig};
pub use crossval::{cross_validate, cross_validate_oof, CrossValResult, FoldResult, OofPredictions};
pub use dataset::Dataset;
pub use metrics::{accuracy, top_k_accuracy, ConfusionMatrix, OpenWorldReport};
pub use openworld::{OperatingPoint, ThresholdCurve};

/// A trainable trace classifier.
pub trait Classifier: Send {
    /// Train on `train`, using `val` for early stopping (may be empty for
    /// models that do not need validation).
    fn fit(&mut self, train: &Dataset, val: &Dataset);

    /// Per-class probabilities for each input trace.
    fn predict_proba(&mut self, traces: &[Vec<f32>]) -> Vec<Vec<f32>>;

    /// Argmax class predictions.
    fn predict(&mut self, traces: &[Vec<f32>]) -> Vec<usize> {
        self.predict_proba(traces)
            .into_iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN probability"))
                    .map(|(i, _)| i)
                    .expect("non-empty probability row")
            })
            .collect()
    }

    /// Number of classes this model distinguishes.
    fn n_classes(&self) -> usize;
}
