//! The paper's k-fold cross-validation protocol (§4.1), with folds
//! evaluated on parallel threads.

use crate::metrics::{accuracy, top_k_accuracy};
use crate::{Classifier, Dataset};
use serde::{Deserialize, Serialize};

/// One fold's held-out test metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FoldResult {
    /// Top-1 accuracy on the held-out fold.
    pub accuracy: f64,
    /// Top-5 accuracy on the held-out fold.
    pub top5: f64,
}

/// Aggregated cross-validation metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossValResult {
    /// Per-fold results, in fold order.
    pub folds: Vec<FoldResult>,
}

impl CrossValResult {
    /// Mean top-1 accuracy across folds.
    pub fn mean_accuracy(&self) -> f64 {
        self.folds.iter().map(|f| f.accuracy).sum::<f64>() / self.folds.len() as f64
    }

    /// Sample standard deviation of fold accuracies (0 for one fold).
    pub fn std_accuracy(&self) -> f64 {
        if self.folds.len() < 2 {
            return 0.0;
        }
        let m = self.mean_accuracy();
        let ss: f64 = self.folds.iter().map(|f| (f.accuracy - m).powi(2)).sum();
        (ss / (self.folds.len() - 1) as f64).sqrt()
    }

    /// Mean top-5 accuracy across folds.
    pub fn mean_top5(&self) -> f64 {
        self.folds.iter().map(|f| f.top5).sum::<f64>() / self.folds.len() as f64
    }

    /// Per-fold accuracies as percentages (for t-tests against a
    /// competing attack, §4.2).
    pub fn accuracies_pct(&self) -> Vec<f64> {
        self.folds.iter().map(|f| f.accuracy * 100.0).collect()
    }
}

/// Run stratified k-fold cross-validation: for each fold, hold it out as
/// the test set, split the remainder 90/10 into train/validation, train a
/// fresh classifier from `builder`, and measure held-out top-1/top-5
/// accuracy. Folds run on parallel threads.
///
/// # Panics
///
/// Panics when `k < 2` or the dataset is too small to stratify.
pub fn cross_validate<F>(dataset: &Dataset, k: usize, seed: u64, builder: F) -> CrossValResult
where
    F: Fn() -> Box<dyn Classifier> + Sync,
{
    bf_obs::info!("cross-validating: {k} folds over {} samples", dataset.len());
    let folds = dataset.stratified_folds(k, seed);
    let results: Vec<FoldResult> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..k)
            .map(|fold| {
                let folds = &folds;
                let builder = &builder;
                scope.spawn(move |_| {
                    let fold_start = std::time::Instant::now();
                    let (train_idx, val_idx, test_idx) = dataset.split_for_fold(folds, fold, seed);
                    let train = dataset.subset(&train_idx);
                    let val = dataset.subset(&val_idx);
                    let test = dataset.subset(&test_idx);
                    let mut clf = builder();
                    clf.fit(&train, &val);
                    let probas = clf.predict_proba(test.features());
                    bf_obs::histogram("ml.fold_seconds").record(fold_start.elapsed().as_secs_f64());
                    let preds: Vec<usize> = probas
                        .iter()
                        .map(|row| {
                            row.iter()
                                .enumerate()
                                .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN probability"))
                                .map(|(i, _)| i)
                                .expect("non-empty row")
                        })
                        .collect();
                    let result = FoldResult {
                        accuracy: accuracy(&preds, test.labels()),
                        top5: top_k_accuracy(&probas, test.labels(), 5),
                    };
                    bf_obs::info!(
                        "fold {}/{k}: acc {:.3} top5 {:.3} ({:.2} s)",
                        fold + 1,
                        result.accuracy,
                        result.top5,
                        fold_start.elapsed().as_secs_f64()
                    );
                    result
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fold thread panicked"))
            .collect()
    })
    .expect("cross-validation scope panicked");
    CrossValResult { folds: results }
}

/// Out-of-fold predictions: every sample's class probabilities, produced
/// by the fold model that held it out. Enables open-world and top-k
/// metrics over the full dataset (Table 1's open-world columns).
#[derive(Debug, Clone, PartialEq)]
pub struct OofPredictions {
    /// Per-sample probabilities, in dataset order.
    pub probas: Vec<Vec<f32>>,
    /// Fold index that held each sample out.
    pub fold_of: Vec<usize>,
}

impl OofPredictions {
    /// Argmax predictions, in dataset order.
    pub fn predictions(&self) -> Vec<usize> {
        self.probas
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN probability"))
                    .map(|(i, _)| i)
                    .expect("non-empty row")
            })
            .collect()
    }

    /// Confusion matrix of the out-of-fold predictions.
    pub fn confusion(&self, labels: &[usize], n_classes: usize) -> crate::ConfusionMatrix {
        crate::ConfusionMatrix::from_predictions(&self.predictions(), labels, n_classes)
    }

    /// Per-fold [`FoldResult`]s against the given labels.
    pub fn fold_results(&self, labels: &[usize], k_folds: usize) -> CrossValResult {
        let folds = (0..k_folds)
            .map(|f| {
                let idx: Vec<usize> = (0..labels.len())
                    .filter(|&i| self.fold_of[i] == f)
                    .collect();
                let probas: Vec<Vec<f32>> = idx.iter().map(|&i| self.probas[i].clone()).collect();
                let labs: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
                let preds: Vec<usize> = probas
                    .iter()
                    .map(|row| {
                        row.iter()
                            .enumerate()
                            .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN probability"))
                            .map(|(i, _)| i)
                            .expect("non-empty row")
                    })
                    .collect();
                FoldResult {
                    accuracy: accuracy(&preds, &labs),
                    top5: top_k_accuracy(&probas, &labs, 5),
                }
            })
            .collect();
        CrossValResult { folds }
    }
}

/// Like [`cross_validate`], but returns every sample's out-of-fold
/// probability vector instead of only per-fold accuracies.
///
/// # Panics
///
/// Panics when `k < 2`.
pub fn cross_validate_oof<F>(dataset: &Dataset, k: usize, seed: u64, builder: F) -> OofPredictions
where
    F: Fn() -> Box<dyn Classifier> + Sync,
{
    bf_obs::info!(
        "cross-validating (OOF): {k} folds over {} samples",
        dataset.len()
    );
    let folds = dataset.stratified_folds(k, seed);
    let per_fold: Vec<(Vec<usize>, Vec<Vec<f32>>)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..k)
            .map(|fold| {
                let folds = &folds;
                let builder = &builder;
                scope.spawn(move |_| {
                    let fold_start = std::time::Instant::now();
                    let (train_idx, val_idx, test_idx) = dataset.split_for_fold(folds, fold, seed);
                    let train = dataset.subset(&train_idx);
                    let val = dataset.subset(&val_idx);
                    let test = dataset.subset(&test_idx);
                    let mut clf = builder();
                    clf.fit(&train, &val);
                    let probas = clf.predict_proba(test.features());
                    bf_obs::histogram("ml.fold_seconds").record(fold_start.elapsed().as_secs_f64());
                    bf_obs::debug!(
                        "oof fold {}/{k} done ({:.2} s)",
                        fold + 1,
                        fold_start.elapsed().as_secs_f64()
                    );
                    (test_idx, probas)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fold thread panicked"))
            .collect()
    })
    .expect("cross-validation scope panicked");
    let n = dataset.len();
    let mut probas = vec![Vec::new(); n];
    let mut fold_of = vec![0usize; n];
    for (fold, (idx, p)) in per_fold.into_iter().enumerate() {
        for (i, row) in idx.into_iter().zip(p) {
            probas[i] = row;
            fold_of[i] = fold;
        }
    }
    OofPredictions { probas, fold_of }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CentroidClassifier;
    use bf_stats::SeedRng;

    fn separable_dataset(per_class: usize, classes: usize, noise: f32, seed: u64) -> Dataset {
        let mut rng = SeedRng::new(seed);
        let mut d = Dataset::new(classes);
        for c in 0..classes {
            for _ in 0..per_class {
                let t: Vec<f32> = (0..20)
                    .map(|i| {
                        let base = if i == c * 2 { 5.0 } else { 0.0 };
                        base + noise * rng.standard_normal() as f32
                    })
                    .collect();
                d.push(t, c);
            }
        }
        d
    }

    #[test]
    fn separable_data_scores_high() {
        let d = separable_dataset(20, 5, 0.3, 1);
        let r = cross_validate(&d, 5, 7, || Box::new(CentroidClassifier::new(5)));
        assert_eq!(r.folds.len(), 5);
        assert!(r.mean_accuracy() > 0.95, "acc = {}", r.mean_accuracy());
        assert!(r.mean_top5() >= r.mean_accuracy());
    }

    #[test]
    fn noisy_data_scores_lower() {
        let clean = separable_dataset(20, 5, 0.3, 2);
        let noisy = separable_dataset(20, 5, 6.0, 2);
        let rc = cross_validate(&clean, 4, 3, || Box::new(CentroidClassifier::new(5)));
        let rn = cross_validate(&noisy, 4, 3, || Box::new(CentroidClassifier::new(5)));
        assert!(rn.mean_accuracy() < rc.mean_accuracy());
    }

    #[test]
    fn deterministic_given_seed() {
        let d = separable_dataset(10, 4, 1.0, 4);
        let a = cross_validate(&d, 3, 11, || Box::new(CentroidClassifier::new(4)));
        let b = cross_validate(&d, 3, 11, || Box::new(CentroidClassifier::new(4)));
        assert_eq!(a, b);
    }

    #[test]
    fn std_zero_for_identical_folds() {
        let r = CrossValResult {
            folds: vec![
                FoldResult {
                    accuracy: 0.9,
                    top5: 1.0
                };
                4
            ],
        };
        assert_eq!(r.std_accuracy(), 0.0);
        assert_eq!(r.mean_accuracy(), 0.9);
    }

    #[test]
    fn oof_covers_every_sample() {
        let d = separable_dataset(10, 4, 0.5, 6);
        let oof = cross_validate_oof(&d, 4, 13, || Box::new(CentroidClassifier::new(4)));
        assert_eq!(oof.probas.len(), d.len());
        assert!(oof.probas.iter().all(|p| p.len() == 4));
        // Every fold id used.
        let mut folds: Vec<usize> = oof.fold_of.clone();
        folds.sort_unstable();
        folds.dedup();
        assert_eq!(folds, vec![0, 1, 2, 3]);
    }

    #[test]
    fn oof_fold_results_match_direct_cv() {
        let d = separable_dataset(12, 3, 0.5, 8);
        let oof = cross_validate_oof(&d, 3, 21, || Box::new(CentroidClassifier::new(3)));
        let via_oof = oof.fold_results(d.labels(), 3);
        let direct = cross_validate(&d, 3, 21, || Box::new(CentroidClassifier::new(3)));
        assert!((via_oof.mean_accuracy() - direct.mean_accuracy()).abs() < 1e-12);
    }

    #[test]
    fn oof_confusion_diagonal_dominates_on_separable_data() {
        let d = separable_dataset(10, 3, 0.3, 14);
        let oof = cross_validate_oof(&d, 2, 3, || Box::new(CentroidClassifier::new(3)));
        let cm = oof.confusion(d.labels(), 3);
        assert!(cm.accuracy() > 0.9, "accuracy = {}", cm.accuracy());
        for c in 0..3 {
            assert!(cm.recall(c).unwrap() > 0.8);
        }
    }

    #[test]
    fn oof_predictions_are_argmax() {
        let d = separable_dataset(8, 3, 0.3, 9);
        let oof = cross_validate_oof(&d, 2, 5, || Box::new(CentroidClassifier::new(3)));
        let preds = oof.predictions();
        let acc = accuracy(&preds, d.labels());
        assert!(acc > 0.9, "acc = {acc}");
    }

    #[test]
    fn accuracies_pct_scaling() {
        let r = CrossValResult {
            folds: vec![
                FoldResult {
                    accuracy: 0.5,
                    top5: 0.9,
                },
                FoldResult {
                    accuracy: 0.7,
                    top5: 1.0,
                },
            ],
        };
        assert_eq!(r.accuracies_pct(), vec![50.0, 70.0]);
        assert!((r.mean_top5() - 0.95).abs() < 1e-12);
    }
}
