//! The paper's k-fold cross-validation protocol (§4.1), with folds
//! distributed over the deterministic `bf-par` pool (`BF_THREADS`).
//!
//! Every public entry point runs on one **resumable fold engine**: each
//! fold is a pure function of `(dataset, k, seed, fold index)`, so folds
//! can be computed in any order, across any number of process restarts,
//! and reassemble into results bit-identical to an uninterrupted run.
//! When [`ResumeOptions::checkpoint`] is set, completed folds are
//! persisted through [`bf_fault::CvCheckpoint`] after each fold finishes;
//! an interrupted run reloads them and computes only the pending folds.
//!
//! Fold failures do not abort the run: a panicking fold thread is
//! recorded (`ml.fold_failures`) and skipped, and the aggregate result
//! simply carries fewer folds.

use crate::metrics::{accuracy, argmax, top_k_accuracy};
use crate::{Classifier, Dataset};
use bf_fault::checkpoint::{CvCheckpoint, FoldRecord};
use bf_stats::rng::combine_seeds;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One fold's held-out test metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FoldResult {
    /// Top-1 accuracy on the held-out fold.
    pub accuracy: f64,
    /// Top-5 accuracy on the held-out fold.
    pub top5: f64,
}

/// Aggregated cross-validation metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossValResult {
    /// Per-fold results, in fold order (failed folds are absent).
    pub folds: Vec<FoldResult>,
}

impl CrossValResult {
    /// Mean top-1 accuracy across folds; 0 when no fold completed (an
    /// all-folds-failed run must aggregate to a number, not NaN).
    pub fn mean_accuracy(&self) -> f64 {
        if self.folds.is_empty() {
            return 0.0;
        }
        self.folds.iter().map(|f| f.accuracy).sum::<f64>() / self.folds.len() as f64
    }

    /// Sample standard deviation of fold accuracies (0 for one fold).
    pub fn std_accuracy(&self) -> f64 {
        if self.folds.len() < 2 {
            return 0.0;
        }
        let m = self.mean_accuracy();
        let ss: f64 = self.folds.iter().map(|f| (f.accuracy - m).powi(2)).sum();
        (ss / (self.folds.len() - 1) as f64).sqrt()
    }

    /// Mean top-5 accuracy across folds; 0 when no fold completed.
    pub fn mean_top5(&self) -> f64 {
        if self.folds.is_empty() {
            return 0.0;
        }
        self.folds.iter().map(|f| f.top5).sum::<f64>() / self.folds.len() as f64
    }

    /// Per-fold accuracies as percentages (for t-tests against a
    /// competing attack, §4.2).
    pub fn accuracies_pct(&self) -> Vec<f64> {
        self.folds.iter().map(|f| f.accuracy * 100.0).collect()
    }
}

/// Checkpoint-and-resume knobs for the fold engine. The default (no
/// checkpoint, no snapshots, no fold cap) reproduces plain in-memory
/// cross-validation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResumeOptions {
    /// Persist completed folds to this checkpoint file after each fold,
    /// and reload them on the next run. Unusable checkpoints (corrupt,
    /// truncated, or from a different dataset/seed) are discarded with a
    /// `fault.checkpoint_errors` count, never panicked on.
    pub checkpoint: Option<PathBuf>,
    /// Save each fold's trained network into this directory (via
    /// [`Classifier::save_network`]); the snapshot path is recorded in
    /// the fold's checkpoint record.
    pub snapshot_dir: Option<PathBuf>,
    /// Compute at most this many *new* folds this run, then stop with
    /// `interrupted = true` (simulates a run interruption for
    /// chaos/resume testing).
    pub max_new_folds: Option<usize>,
}

/// A cross-validation outcome plus how it was obtained: how many folds
/// were computed fresh, reused from a checkpoint, or lost to failures,
/// and whether the run stopped early.
#[derive(Debug, Clone, PartialEq)]
pub struct Resumable<T> {
    /// The (possibly partial) result.
    pub value: T,
    /// True when [`ResumeOptions::max_new_folds`] stopped the run before
    /// every fold was complete.
    pub interrupted: bool,
    /// Folds computed by this run.
    pub computed_folds: usize,
    /// Folds reloaded from the checkpoint.
    pub reused_folds: usize,
    /// Folds whose worker thread panicked (skipped and recorded).
    pub failed_folds: usize,
}

/// Fingerprint binding a checkpoint to one `(dataset, k, seed, mode)`
/// combination, so a stale file from a different run is always rejected.
fn run_fingerprint(dataset: &Dataset, k: usize, seed: u64, mode: u64) -> u64 {
    combine_seeds(
        dataset.fingerprint(),
        combine_seeds(seed, combine_seeds(k as u64, mode)),
    )
}

/// Immutable per-run inputs shared by every fold worker.
struct FoldSpec<'a> {
    folds: &'a [Vec<usize>],
    k: usize,
    seed: u64,
    snapshot_dir: Option<&'a Path>,
    keep_probas: bool,
}

/// Train and evaluate one fold. Pure in `(dataset, spec.k, spec.seed,
/// fold)` — never depends on which other folds run in the same process.
fn compute_fold<F>(dataset: &Dataset, spec: &FoldSpec<'_>, fold: usize, builder: &F) -> FoldRecord
where
    F: Fn() -> Box<dyn Classifier> + Sync,
{
    let FoldSpec {
        folds,
        k,
        seed,
        snapshot_dir,
        keep_probas,
    } = *spec;
    let fold_start = std::time::Instant::now();
    let (train_idx, val_idx, test_idx) = dataset.split_for_fold(folds, fold, seed);
    let train = dataset.subset(&train_idx);
    let val = dataset.subset(&val_idx);
    let test = dataset.subset(&test_idx);
    let mut clf = builder();
    clf.fit(&train, &val);
    let probas = clf.predict_proba(test.features());
    bf_obs::histogram("ml.fold_seconds").record(fold_start.elapsed().as_secs_f64());
    let preds: Vec<usize> = probas.iter().map(|row| argmax(row)).collect();
    let acc = accuracy(&preds, test.labels());
    let top5 = top_k_accuracy(&probas, test.labels(), 5);
    let net_path = snapshot_dir.and_then(|dir| {
        let path = dir.join(format!("fold{fold}.net"));
        std::fs::create_dir_all(dir).ok();
        match clf.save_network(&path) {
            Ok(true) => Some(path.display().to_string()),
            Ok(false) => None,
            Err(e) => {
                bf_obs::counter("fault.checkpoint_errors").inc();
                bf_obs::error!("fold {fold}: network snapshot failed: {e}");
                None
            }
        }
    });
    bf_obs::info!(
        "fold {}/{k}: acc {acc:.3} top5 {top5:.3} ({:.2} s)",
        fold + 1,
        fold_start.elapsed().as_secs_f64()
    );
    FoldRecord {
        fold,
        accuracy: acc,
        top5,
        test_idx,
        probas: if keep_probas { probas } else { Vec::new() },
        net_path,
    }
}

/// The shared fold engine: load any usable checkpoint, compute pending
/// folds on parallel threads (each persisting its record as it
/// completes), and return the merged checkpoint plus run statistics.
fn run_folds<F>(
    dataset: &Dataset,
    k: usize,
    seed: u64,
    builder: F,
    opts: &ResumeOptions,
    keep_probas: bool,
    mode: u64,
) -> (CvCheckpoint, bool, usize, usize, usize)
where
    F: Fn() -> Box<dyn Classifier> + Sync,
{
    let fingerprint = run_fingerprint(dataset, k, seed, mode);
    let ckpt = match &opts.checkpoint {
        Some(path) if path.exists() => match CvCheckpoint::load(path, fingerprint, k) {
            Ok(c) => {
                bf_obs::info!(
                    "resuming from {}: {}/{k} folds already done",
                    path.display(),
                    c.completed()
                );
                c
            }
            Err(e) => {
                bf_obs::counter("fault.checkpoint_errors").inc();
                bf_obs::error!(
                    "ignoring unusable checkpoint {}: {e}; starting fresh",
                    path.display()
                );
                CvCheckpoint::new(fingerprint, k)
            }
        },
        _ => CvCheckpoint::new(fingerprint, k),
    };
    let reused = ckpt.completed();
    let mut pending = ckpt.pending();
    let mut interrupted = false;
    if let Some(max) = opts.max_new_folds {
        if pending.len() > max {
            pending.truncate(max);
            interrupted = true;
            bf_obs::info!("simulated interruption: computing only {max} of the pending folds");
        }
    }
    let n_new = pending.len();
    let folds = dataset.stratified_folds(k, seed);
    let shared = Mutex::new(ckpt);
    let spec = FoldSpec {
        folds: &folds,
        k,
        seed,
        snapshot_dir: opts.snapshot_dir.as_deref(),
        keep_probas,
    };
    // Pending folds are distributed over the bf-par pool (BF_THREADS).
    // Each fold is pure in (dataset, k, seed, fold), so scheduling cannot
    // change its record; the checkpoint mutex only serializes recording
    // and saving. A panicking fold surfaces as an `Err` slot and is
    // skipped rather than aborting the run.
    let outcomes = bf_par::try_par_map_indexed(&pending, |_, &fold| {
        let rec = compute_fold(dataset, &spec, fold, &builder);
        let mut guard = shared
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.record(rec);
        if let Some(path) = opts.checkpoint.as_deref() {
            if let Err(e) = guard.save(path) {
                bf_obs::counter("fault.checkpoint_errors").inc();
                bf_obs::error!("checkpoint save failed: {e}");
            }
        }
    });
    let mut failed = 0usize;
    for outcome in &outcomes {
        if outcome.is_err() {
            failed += 1;
            bf_obs::counter("ml.fold_failures").inc();
            bf_obs::error!("fold worker panicked; skipping that fold");
        }
    }
    let ckpt = shared
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    (ckpt, interrupted, n_new - failed, reused, failed)
}

/// Run stratified k-fold cross-validation: for each fold, hold it out as
/// the test set, split the remainder 90/10 into train/validation, train a
/// fresh classifier from `builder`, and measure held-out top-1/top-5
/// accuracy. Folds run on parallel threads; a fold whose thread panics is
/// skipped and recorded rather than aborting the run.
///
/// # Panics
///
/// Panics when `k < 2` or the dataset is too small to stratify.
pub fn cross_validate<F>(dataset: &Dataset, k: usize, seed: u64, builder: F) -> CrossValResult
where
    F: Fn() -> Box<dyn Classifier> + Sync,
{
    cross_validate_resumable(dataset, k, seed, builder, &ResumeOptions::default()).value
}

/// [`cross_validate`] with checkpoint/resume support: completed folds are
/// persisted as they finish and reloaded (bit-identical) on the next run.
///
/// # Panics
///
/// Panics when `k < 2` or the dataset is too small to stratify.
pub fn cross_validate_resumable<F>(
    dataset: &Dataset,
    k: usize,
    seed: u64,
    builder: F,
    opts: &ResumeOptions,
) -> Resumable<CrossValResult>
where
    F: Fn() -> Box<dyn Classifier> + Sync,
{
    bf_obs::info!("cross-validating: {k} folds over {} samples", dataset.len());
    let (ckpt, interrupted, computed, reused, failed) =
        run_folds(dataset, k, seed, builder, opts, false, 1);
    let folds = (0..k)
        .filter_map(|f| ckpt.get(f))
        .map(|r| FoldResult {
            accuracy: r.accuracy,
            top5: r.top5,
        })
        .collect();
    Resumable {
        value: CrossValResult { folds },
        interrupted,
        computed_folds: computed,
        reused_folds: reused,
        failed_folds: failed,
    }
}

/// Out-of-fold predictions: every sample's class probabilities, produced
/// by the fold model that held it out. Enables open-world and top-k
/// metrics over the full dataset (Table 1's open-world columns).
#[derive(Debug, Clone, PartialEq)]
pub struct OofPredictions {
    /// Per-sample probabilities, in dataset order (empty rows for samples
    /// whose fold failed or has not run yet).
    pub probas: Vec<Vec<f32>>,
    /// Fold index that held each sample out.
    pub fold_of: Vec<usize>,
}

impl OofPredictions {
    /// Argmax predictions, in dataset order.
    pub fn predictions(&self) -> Vec<usize> {
        self.probas.iter().map(|row| argmax(row)).collect()
    }

    /// Confusion matrix of the out-of-fold predictions.
    pub fn confusion(&self, labels: &[usize], n_classes: usize) -> crate::ConfusionMatrix {
        crate::ConfusionMatrix::from_predictions(&self.predictions(), labels, n_classes)
    }

    /// Per-fold [`FoldResult`]s against the given labels.
    pub fn fold_results(&self, labels: &[usize], k_folds: usize) -> CrossValResult {
        let folds = (0..k_folds)
            .map(|f| {
                let idx: Vec<usize> = (0..labels.len())
                    .filter(|&i| self.fold_of[i] == f)
                    .collect();
                let probas: Vec<Vec<f32>> = idx.iter().map(|&i| self.probas[i].clone()).collect();
                let labs: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
                let preds: Vec<usize> = probas.iter().map(|row| argmax(row)).collect();
                FoldResult {
                    accuracy: accuracy(&preds, &labs),
                    top5: top_k_accuracy(&probas, &labs, 5),
                }
            })
            .collect();
        CrossValResult { folds }
    }
}

/// Like [`cross_validate`], but returns every sample's out-of-fold
/// probability vector instead of only per-fold accuracies.
///
/// # Panics
///
/// Panics when `k < 2`.
pub fn cross_validate_oof<F>(dataset: &Dataset, k: usize, seed: u64, builder: F) -> OofPredictions
where
    F: Fn() -> Box<dyn Classifier> + Sync,
{
    cross_validate_oof_resumable(dataset, k, seed, builder, &ResumeOptions::default()).value
}

/// [`cross_validate_oof`] with checkpoint/resume support. Resumed runs
/// reassemble probability rows bit-identical to an uninterrupted run
/// (checkpoints store raw IEEE-754 bits). When `interrupted` is set, the
/// samples of pending folds have empty probability rows.
///
/// # Panics
///
/// Panics when `k < 2`.
pub fn cross_validate_oof_resumable<F>(
    dataset: &Dataset,
    k: usize,
    seed: u64,
    builder: F,
    opts: &ResumeOptions,
) -> Resumable<OofPredictions>
where
    F: Fn() -> Box<dyn Classifier> + Sync,
{
    bf_obs::info!(
        "cross-validating (OOF): {k} folds over {} samples",
        dataset.len()
    );
    let (ckpt, interrupted, computed, reused, failed) =
        run_folds(dataset, k, seed, builder, opts, true, 2);
    let n = dataset.len();
    let mut probas = vec![Vec::new(); n];
    let mut fold_of = vec![0usize; n];
    for fold in 0..k {
        if let Some(rec) = ckpt.get(fold) {
            for (&i, row) in rec.test_idx.iter().zip(&rec.probas) {
                probas[i] = row.clone();
                fold_of[i] = fold;
            }
        }
    }
    Resumable {
        value: OofPredictions { probas, fold_of },
        interrupted,
        computed_folds: computed,
        reused_folds: reused,
        failed_folds: failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CentroidClassifier;
    use bf_stats::SeedRng;

    fn separable_dataset(per_class: usize, classes: usize, noise: f32, seed: u64) -> Dataset {
        let mut rng = SeedRng::new(seed);
        let mut d = Dataset::new(classes);
        for c in 0..classes {
            for _ in 0..per_class {
                let t: Vec<f32> = (0..20)
                    .map(|i| {
                        let base = if i == c * 2 { 5.0 } else { 0.0 };
                        base + noise * rng.standard_normal() as f32
                    })
                    .collect();
                d.push(t, c);
            }
        }
        d
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("bf_ml_cv_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn separable_data_scores_high() {
        let d = separable_dataset(20, 5, 0.3, 1);
        let r = cross_validate(&d, 5, 7, || Box::new(CentroidClassifier::new(5)));
        assert_eq!(r.folds.len(), 5);
        assert!(r.mean_accuracy() > 0.95, "acc = {}", r.mean_accuracy());
        assert!(r.mean_top5() >= r.mean_accuracy());
    }

    #[test]
    fn noisy_data_scores_lower() {
        let clean = separable_dataset(20, 5, 0.3, 2);
        let noisy = separable_dataset(20, 5, 6.0, 2);
        let rc = cross_validate(&clean, 4, 3, || Box::new(CentroidClassifier::new(5)));
        let rn = cross_validate(&noisy, 4, 3, || Box::new(CentroidClassifier::new(5)));
        assert!(rn.mean_accuracy() < rc.mean_accuracy());
    }

    #[test]
    fn deterministic_given_seed() {
        let d = separable_dataset(10, 4, 1.0, 4);
        let a = cross_validate(&d, 3, 11, || Box::new(CentroidClassifier::new(4)));
        let b = cross_validate(&d, 3, 11, || Box::new(CentroidClassifier::new(4)));
        assert_eq!(a, b);
    }

    #[test]
    fn zero_folds_aggregate_to_zero_not_nan() {
        let r = CrossValResult { folds: Vec::new() };
        assert_eq!(r.mean_accuracy(), 0.0);
        assert_eq!(r.mean_top5(), 0.0);
        assert_eq!(r.std_accuracy(), 0.0);
        assert!(r.accuracies_pct().is_empty());
    }

    #[test]
    fn std_zero_for_identical_folds() {
        let r = CrossValResult {
            folds: vec![
                FoldResult {
                    accuracy: 0.9,
                    top5: 1.0
                };
                4
            ],
        };
        assert_eq!(r.std_accuracy(), 0.0);
        assert_eq!(r.mean_accuracy(), 0.9);
    }

    #[test]
    fn oof_covers_every_sample() {
        let d = separable_dataset(10, 4, 0.5, 6);
        let oof = cross_validate_oof(&d, 4, 13, || Box::new(CentroidClassifier::new(4)));
        assert_eq!(oof.probas.len(), d.len());
        assert!(oof.probas.iter().all(|p| p.len() == 4));
        // Every fold id used.
        let mut folds: Vec<usize> = oof.fold_of.clone();
        folds.sort_unstable();
        folds.dedup();
        assert_eq!(folds, vec![0, 1, 2, 3]);
    }

    #[test]
    fn oof_fold_results_match_direct_cv() {
        let d = separable_dataset(12, 3, 0.5, 8);
        let oof = cross_validate_oof(&d, 3, 21, || Box::new(CentroidClassifier::new(3)));
        let via_oof = oof.fold_results(d.labels(), 3);
        let direct = cross_validate(&d, 3, 21, || Box::new(CentroidClassifier::new(3)));
        assert!((via_oof.mean_accuracy() - direct.mean_accuracy()).abs() < 1e-12);
    }

    #[test]
    fn oof_confusion_diagonal_dominates_on_separable_data() {
        let d = separable_dataset(10, 3, 0.3, 14);
        let oof = cross_validate_oof(&d, 2, 3, || Box::new(CentroidClassifier::new(3)));
        let cm = oof.confusion(d.labels(), 3);
        assert!(cm.accuracy() > 0.9, "accuracy = {}", cm.accuracy());
        for c in 0..3 {
            assert!(cm.recall(c).unwrap() > 0.8);
        }
    }

    #[test]
    fn oof_predictions_are_argmax() {
        let d = separable_dataset(8, 3, 0.3, 9);
        let oof = cross_validate_oof(&d, 2, 5, || Box::new(CentroidClassifier::new(3)));
        let preds = oof.predictions();
        let acc = accuracy(&preds, d.labels());
        assert!(acc > 0.9, "acc = {acc}");
    }

    #[test]
    fn accuracies_pct_scaling() {
        let r = CrossValResult {
            folds: vec![
                FoldResult {
                    accuracy: 0.5,
                    top5: 0.9,
                },
                FoldResult {
                    accuracy: 0.7,
                    top5: 1.0,
                },
            ],
        };
        assert_eq!(r.accuracies_pct(), vec![50.0, 70.0]);
        assert!((r.mean_top5() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn interrupted_run_resumes_bit_identical() {
        let d = separable_dataset(10, 4, 1.0, 30);
        let builder = || Box::new(CentroidClassifier::new(4)) as Box<dyn Classifier>;
        let uninterrupted = cross_validate_oof(&d, 4, 17, builder);

        let dir = temp_dir("resume");
        let opts = ResumeOptions {
            checkpoint: Some(dir.join("cv.bfck")),
            snapshot_dir: None,
            max_new_folds: Some(2),
        };
        let first = cross_validate_oof_resumable(&d, 4, 17, builder, &opts);
        assert!(first.interrupted);
        assert_eq!(first.computed_folds, 2);
        assert_eq!(first.reused_folds, 0);

        let opts = ResumeOptions {
            max_new_folds: None,
            ..opts
        };
        let second = cross_validate_oof_resumable(&d, 4, 17, builder, &opts);
        assert!(!second.interrupted);
        assert_eq!(second.reused_folds, 2);
        assert_eq!(second.computed_folds, 2);

        // Bit-identical to the run that was never interrupted.
        assert_eq!(second.value.fold_of, uninterrupted.fold_of);
        for (a, b) in second.value.probas.iter().zip(&uninterrupted.probas) {
            let ba: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(ba, bb);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_checkpoint_degrades_to_fresh_run() {
        let d = separable_dataset(8, 3, 0.5, 31);
        let builder = || Box::new(CentroidClassifier::new(3)) as Box<dyn Classifier>;
        let dir = temp_dir("corrupt_ckpt");
        let path = dir.join("cv.bfck");
        std::fs::write(&path, "this is not a checkpoint").unwrap();
        let opts = ResumeOptions {
            checkpoint: Some(path.clone()),
            ..ResumeOptions::default()
        };
        let r = cross_validate_resumable(&d, 3, 5, builder, &opts);
        assert!(!r.interrupted);
        assert_eq!(r.reused_folds, 0);
        assert_eq!(r.value.folds.len(), 3);
        // The damaged file has been replaced by a valid, complete one.
        let reloaded = cross_validate_resumable(&d, 3, 5, builder, &opts);
        assert_eq!(reloaded.reused_folds, 3);
        assert_eq!(reloaded.computed_folds, 0);
        assert_eq!(reloaded.value, r.value);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_checkpoint_from_other_dataset_rejected() {
        let d1 = separable_dataset(8, 3, 0.5, 32);
        let d2 = separable_dataset(8, 3, 0.5, 33);
        let builder = || Box::new(CentroidClassifier::new(3)) as Box<dyn Classifier>;
        let dir = temp_dir("stale_ckpt");
        let opts = ResumeOptions {
            checkpoint: Some(dir.join("cv.bfck")),
            ..ResumeOptions::default()
        };
        cross_validate_resumable(&d1, 3, 5, builder, &opts);
        // Same path, different dataset: nothing may be reused.
        let r = cross_validate_resumable(&d2, 3, 5, builder, &opts);
        assert_eq!(r.reused_folds, 0);
        assert_eq!(r.computed_folds, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn panicking_fold_is_skipped_not_fatal() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let d = separable_dataset(10, 3, 0.5, 34);
        let calls = AtomicUsize::new(0);
        // Every third classifier build panics (fold threads call the
        // builder once each).
        let r = cross_validate(&d, 3, 5, || {
            if calls.fetch_add(1, Ordering::SeqCst) == 1 {
                panic!("injected fold failure");
            }
            Box::new(CentroidClassifier::new(3))
        });
        assert_eq!(r.folds.len(), 2, "one fold skipped, two kept");
        assert!(r.mean_accuracy() > 0.5);
    }
}
