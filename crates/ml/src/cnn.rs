//! The paper's CNN+LSTM classifier with its training protocol.

use crate::{Classifier, Dataset};
use bf_nn::{CnnLstm, CnnLstmConfig, Tensor};
use bf_stats::SeedRng;
use serde::{Deserialize, Serialize};

/// Training-loop hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Maximum epochs (early stopping usually ends sooner).
    pub max_epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Early-stopping patience: stop after this many epochs without a new
    /// best validation accuracy ("stop training when the validation
    /// accuracy starts decreasing", §4.1).
    pub patience: usize,
    /// No early stopping before this epoch. The sigmoid-activation LSTM
    /// has a long warm-up plateau; stopping inside it would freeze the
    /// network at its untrained constant prediction.
    pub min_epochs: usize,
    /// Seed for weight init, batch shuffling, and dropout.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            max_epochs: 60,
            batch_size: 32,
            patience: 8,
            min_epochs: 15,
            seed: 0,
        }
    }
}

/// The paper's classifier: [`bf_nn::CnnLstm`] plus standardization,
/// minibatch Adam training, and validation-based early stopping.
#[derive(Debug)]
pub struct CnnLstmClassifier {
    arch: CnnLstmConfig,
    train_cfg: TrainConfig,
    net: Option<CnnLstm>,
}

impl CnnLstmClassifier {
    /// A classifier with explicit architecture and training config.
    pub fn new(arch: CnnLstmConfig, train_cfg: TrainConfig) -> Self {
        CnnLstmClassifier {
            arch,
            train_cfg,
            net: None,
        }
    }

    /// The architecture configuration.
    pub fn arch(&self) -> &CnnLstmConfig {
        &self.arch
    }

    /// Accuracy on a dataset (helper for training and tests).
    pub fn evaluate(&mut self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let preds = self.predict(data.features());
        crate::metrics::accuracy(&preds, data.labels())
    }

    /// Gather a minibatch into a pooled workspace tensor (the caller
    /// recycles it after the step, so the steady-state loop never
    /// allocates batch storage).
    fn batch_tensor(features: &[Vec<f32>], indices: &[usize], len: usize) -> Tensor {
        let mut x = bf_nn::workspace::tensor(&[indices.len(), 1, len]);
        for (bi, &i) in indices.iter().enumerate() {
            x.data_mut()[bi * len..(bi + 1) * len].copy_from_slice(&features[i]);
        }
        x
    }
}

impl Classifier for CnnLstmClassifier {
    fn fit(&mut self, train: &Dataset, val: &Dataset) {
        assert!(!train.is_empty(), "cannot fit on an empty dataset");
        assert_eq!(
            train.feature_len(),
            self.arch.input_len,
            "dataset trace length must match architecture input_len"
        );
        let mut net = CnnLstm::new(self.arch, self.train_cfg.seed);
        let mut rng = SeedRng::new(self.train_cfg.seed ^ 0x7A1);
        let n = train.len();
        let mut order: Vec<usize> = (0..n).collect(); // alloc-ok: fit-time (offline)
        let mut best_acc = -1.0f64;
        let mut best_params: Option<Vec<Vec<f32>>> = None;
        let mut since_best = 0usize;
        let _span = bf_obs::span!("fit");
        let mut stop_reason = "max_epochs";
        let mut labels: Vec<usize> = Vec::with_capacity(self.train_cfg.batch_size.max(1)); // alloc-ok: fit-time (offline)
        for epoch in 0..self.train_cfg.max_epochs {
            let epoch_start = std::time::Instant::now();
            rng.shuffle(&mut order);
            let mut loss_sum = 0.0f64;
            let mut batches = 0u32;
            for chunk in order.chunks(self.train_cfg.batch_size.max(1)) {
                let x = Self::batch_tensor(train.features(), chunk, self.arch.input_len);
                labels.clear();
                labels.extend(chunk.iter().map(|&i| train.labels()[i]));
                loss_sum += net.train_batch(&x, &labels) as f64;
                bf_nn::workspace::recycle(x);
                batches += 1;
            }
            let train_secs = epoch_start.elapsed().as_secs_f64();
            let mean_loss = loss_sum / batches.max(1) as f64;
            bf_obs::counter("nn.epochs").inc();
            bf_obs::gauge("nn.loss").set(mean_loss);
            bf_obs::histogram("nn.epoch_seconds").record(train_secs);
            if train_secs > 0.0 {
                bf_obs::gauge("train.steps_per_sec").set(batches as f64 / train_secs);
            }
            // Early stopping on validation accuracy (when provided).
            if val.is_empty() {
                bf_obs::debug!("epoch {}: loss {mean_loss:.4} (no validation)", epoch + 1);
                continue;
            }
            self.net = Some(net);
            let acc = self.evaluate(val);
            net = self.net.take().expect("net stored above");
            bf_obs::debug!(
                "epoch {}: loss {mean_loss:.4} val acc {acc:.3} best {best_acc:.3} \
                 ({:.2} s)",
                epoch + 1,
                epoch_start.elapsed().as_secs_f64()
            );
            if acc > best_acc {
                best_acc = acc;
                best_params = Some(net.save_params());
                since_best = 0;
            } else {
                since_best += 1;
                if epoch + 1 >= self.train_cfg.min_epochs && since_best >= self.train_cfg.patience {
                    stop_reason = "patience_exhausted";
                    break;
                }
            }
        }
        bf_obs::gauge("nn.val_accuracy").set(best_acc.max(0.0));
        bf_obs::info!(
            "training stopped ({stop_reason}) after best val acc {:.3}",
            best_acc.max(0.0)
        );
        if let Some(params) = best_params {
            net.restore_params(&params);
        }
        self.net = Some(net);
    }

    fn predict_proba(&mut self, traces: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let net = self.net.as_mut().expect("classifier not fitted");
        let len = self.arch.input_len;
        let k = self.arch.n_classes;
        let mut out = Vec::with_capacity(traces.len()); // alloc-ok: per-request result rows (trait API)
        // Bounded batches keep activation memory flat; batch and
        // probability tensors are pooled workspace storage, and every
        // chunk runs the one stacked forward pass of
        // [`CnnLstm::predict_proba_batch`] (full-length rows copy
        // identically, so this is bit-equal to the per-trace loop).
        for chunk in traces.chunks(64) {
            for t in chunk {
                assert_eq!(t.len(), len, "trace length mismatch");
            }
            let p = net.predict_proba_batch(chunk);
            for i in 0..chunk.len() {
                out.push(p.data()[i * k..(i + 1) * k].to_vec()); // alloc-ok: per-request result rows (trait API)
            }
            bf_nn::workspace::recycle(p);
        }
        out
    }

    /// Prefix inference for the anytime ladder: rows shorter than
    /// `input_len` are zero-padded into the pooled input tensor via
    /// [`CnnLstm::prefix_batch`] (workspace tensors are handed out
    /// zeroed, so padding is free). Full-length rows produce
    /// bit-identical output to [`Classifier::predict_proba`] — same
    /// chunking, same kernels, same copy.
    fn predict_proba_prefix(&mut self, traces: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let net = self.net.as_mut().expect("classifier not fitted");
        let k = self.arch.n_classes;
        let mut out = Vec::with_capacity(traces.len()); // alloc-ok: per-request result rows (trait API)
        for chunk in traces.chunks(64) {
            let p = net.predict_proba_batch(chunk);
            for i in 0..chunk.len() {
                out.push(p.data()[i * k..(i + 1) * k].to_vec()); // alloc-ok: per-request result rows (trait API)
            }
            bf_nn::workspace::recycle(p);
        }
        out
    }

    /// Deadline-aware inference: checkpoints the token before every
    /// 64-trace chunk, so a cancelled request stops after the chunk in
    /// flight instead of finishing the whole batch. Identical outputs to
    /// [`Classifier::predict_proba`] when never cancelled (same chunking,
    /// same kernels).
    fn predict_proba_deadline(
        &mut self,
        traces: &[Vec<f32>],
        token: &bf_fault::CancelToken,
    ) -> Result<Vec<Vec<f32>>, bf_fault::DeadlineExceeded> {
        let mut out = Vec::with_capacity(traces.len()); // alloc-ok: per-request result rows (trait API)
        for chunk in traces.chunks(64) {
            token.check()?;
            out.extend(self.predict_proba(chunk));
        }
        token.check()?;
        Ok(out)
    }

    fn n_classes(&self) -> usize {
        self.arch.n_classes
    }

    fn save_network(&mut self, path: &std::path::Path) -> Result<bool, String> {
        match self.net.as_mut() {
            Some(net) => bf_nn::save_network(net, path)
                .map(|()| true)
                .map_err(|e| e.to_string()),
            None => Ok(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic dataset: class = position of a dip in a standardized
    /// trace.
    fn toy_dataset(per_class: usize, seed: u64) -> Dataset {
        let mut rng = SeedRng::new(seed);
        let mut d = Dataset::new(3);
        for c in 0..3usize {
            for _ in 0..per_class {
                let mut t = vec![0.0f32; 300];
                for v in t.iter_mut() {
                    *v = 0.15 * rng.standard_normal() as f32;
                }
                let dip = 40 + c * 80;
                for v in &mut t[dip..dip + 30] {
                    *v -= 3.0;
                }
                d.push(t, c);
            }
        }
        d
    }

    fn fast_arch() -> CnnLstmConfig {
        let mut a = CnnLstmConfig::scaled(300, 3, 8);
        a.dropout = 0.2;
        a.learning_rate = 0.01;
        a
    }

    #[test]
    fn learns_separable_toy_data() {
        let train = toy_dataset(8, 1);
        let val = toy_dataset(2, 2);
        let test = toy_dataset(4, 3);
        let mut clf = CnnLstmClassifier::new(
            fast_arch(),
            TrainConfig {
                max_epochs: 40,
                batch_size: 8,
                patience: 6,
                min_epochs: 10,
                seed: 5,
            },
        );
        clf.fit(&train, &val);
        let acc = clf.evaluate(&test);
        assert!(acc >= 0.8, "accuracy = {acc}");
    }

    #[test]
    fn deadline_predict_is_bit_identical_and_cancels_between_chunks() {
        let train = toy_dataset(6, 7);
        let mut clf = CnnLstmClassifier::new(
            fast_arch(),
            TrainConfig {
                max_epochs: 3,
                batch_size: 8,
                patience: 2,
                min_epochs: 1,
                seed: 8,
            },
        );
        clf.fit(&train, &Dataset::new(3));
        // 70 traces span two 64-trace chunks, exercising the mid-batch
        // checkpoint.
        let traces: Vec<Vec<f32>> = (0..70).map(|i| train.features()[i % train.len()].clone()).collect();
        let token = bf_fault::CancelToken::unlimited();
        let deadline = clf.predict_proba_deadline(&traces, &token).expect("unlimited");
        let plain = clf.predict_proba(&traces);
        assert_eq!(deadline.len(), plain.len());
        for (a, b) in deadline.iter().zip(&plain) {
            let (ab, bb): (Vec<u32>, Vec<u32>) =
                (a.iter().map(|v| v.to_bits()).collect(), b.iter().map(|v| v.to_bits()).collect());
            assert_eq!(ab, bb);
        }
        let exhausted = bf_fault::CancelToken::new(0);
        exhausted.charge(1).unwrap_err();
        assert!(clf.predict_proba_deadline(&traces, &exhausted).is_err());
    }

    #[test]
    fn early_stopping_restores_best() {
        let train = toy_dataset(6, 4);
        let val = toy_dataset(2, 5);
        let mut clf = CnnLstmClassifier::new(
            fast_arch(),
            TrainConfig {
                max_epochs: 30,
                batch_size: 8,
                patience: 2,
                min_epochs: 5,
                seed: 6,
            },
        );
        clf.fit(&train, &val);
        // Whatever was restored must predict at least as well on val as a
        // freshly trained single epoch would by chance.
        let acc = clf.evaluate(&val);
        assert!(acc > 0.34, "val accuracy = {acc}");
    }

    #[test]
    fn predict_proba_shape_and_normalization() {
        let train = toy_dataset(4, 7);
        let mut clf = CnnLstmClassifier::new(
            fast_arch(),
            TrainConfig {
                max_epochs: 2,
                batch_size: 8,
                patience: 2,
                min_epochs: 0,
                seed: 8,
            },
        );
        clf.fit(&train, &Dataset::new(3));
        let p = clf.predict_proba(&train.features()[..5]);
        assert_eq!(p.len(), 5);
        for row in &p {
            assert_eq!(row.len(), 3);
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn predict_before_fit_panics() {
        let mut clf = CnnLstmClassifier::new(fast_arch(), TrainConfig::default());
        clf.predict_proba(&[vec![0.0; 300]]);
    }

    #[test]
    #[should_panic(expected = "must match architecture")]
    fn wrong_trace_length_rejected() {
        let mut d = Dataset::new(3);
        d.push(vec![0.0; 100], 0);
        let mut clf = CnnLstmClassifier::new(fast_arch(), TrainConfig::default());
        clf.fit(&d, &Dataset::new(3));
    }
}
