//! Nearest-centroid baseline classifier.
//!
//! Not part of the paper's pipeline — a fast, deterministic baseline used
//! for smoke-scale experiments and as a sanity check on dataset
//! separability before spending time on CNN+LSTM training.

use crate::{Classifier, Dataset};
use serde::{Deserialize, Serialize};

/// Classifies a trace by the nearest class-mean in Euclidean distance,
/// with distances converted to probabilities via a softmax over negative
/// distances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CentroidClassifier {
    n_classes: usize,
    centroids: Vec<Vec<f32>>,
}

impl CentroidClassifier {
    /// An unfitted classifier over `n_classes` classes.
    ///
    /// # Panics
    ///
    /// Panics when `n_classes` is zero.
    pub fn new(n_classes: usize) -> Self {
        assert!(n_classes > 0, "need at least one class");
        CentroidClassifier { n_classes, centroids: Vec::new() }
    }

    /// The fitted class centroids (empty before [`Classifier::fit`]).
    pub fn centroids(&self) -> &[Vec<f32>] {
        &self.centroids
    }
}

impl Classifier for CentroidClassifier {
    fn fit(&mut self, train: &Dataset, _val: &Dataset) {
        assert_eq!(train.n_classes(), self.n_classes, "class count mismatch");
        assert!(!train.is_empty(), "cannot fit on an empty dataset");
        let dim = train.feature_len();
        let mut sums = vec![vec![0.0f64; dim]; self.n_classes];
        let mut counts = vec![0usize; self.n_classes];
        for (x, &y) in train.features().iter().zip(train.labels()) {
            counts[y] += 1;
            for (s, v) in sums[y].iter_mut().zip(x) {
                *s += *v as f64;
            }
        }
        self.centroids = sums
            .into_iter()
            .zip(&counts)
            .map(|(s, &c)| {
                if c == 0 {
                    // An absent class sits infinitely far away.
                    vec![f32::MAX / 4.0; dim]
                } else {
                    s.into_iter().map(|v| (v / c as f64) as f32).collect()
                }
            })
            .collect();
    }

    fn predict_proba(&mut self, traces: &[Vec<f32>]) -> Vec<Vec<f32>> {
        assert!(!self.centroids.is_empty(), "classifier not fitted");
        traces
            .iter()
            .map(|x| {
                let dists: Vec<f64> = self
                    .centroids
                    .iter()
                    .map(|c| {
                        c.iter()
                            .zip(x)
                            .map(|(a, b)| (*a as f64 - *b as f64).powi(2))
                            .sum::<f64>()
                            .sqrt()
                    })
                    .collect();
                // Scale-normalized softmax over negative distances.
                let min = dists.iter().copied().fold(f64::INFINITY, f64::min);
                let scale = dists.iter().copied().fold(0.0f64, f64::max).max(1e-12);
                let exps: Vec<f64> =
                    dists.iter().map(|d| (-(d - min) / scale * 10.0).exp()).collect();
                let sum: f64 = exps.iter().sum();
                exps.into_iter().map(|e| (e / sum) as f32).collect()
            })
            .collect()
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new(3);
        for i in 0..5 {
            d.push(vec![10.0 + i as f32 * 0.1, 0.0], 0);
            d.push(vec![0.0, 10.0 + i as f32 * 0.1], 1);
            d.push(vec![-10.0, -10.0], 2);
        }
        d
    }

    #[test]
    fn fits_and_classifies_separable_data() {
        let mut c = CentroidClassifier::new(3);
        c.fit(&toy(), &Dataset::new(3));
        let preds = c.predict(&[
            vec![9.0, 0.5],
            vec![0.5, 9.0],
            vec![-8.0, -11.0],
        ]);
        assert_eq!(preds, vec![0, 1, 2]);
    }

    #[test]
    fn probabilities_sum_to_one_and_rank_correctly() {
        let mut c = CentroidClassifier::new(3);
        c.fit(&toy(), &Dataset::new(3));
        let p = &c.predict_proba(&[vec![10.0, 0.0]])[0];
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(p[0] > p[1] && p[0] > p[2]);
    }

    #[test]
    fn centroids_are_class_means() {
        let mut c = CentroidClassifier::new(3);
        c.fit(&toy(), &Dataset::new(3));
        assert!((c.centroids()[0][0] - 10.2).abs() < 1e-5);
        assert_eq!(c.centroids()[2], vec![-10.0, -10.0]);
    }

    #[test]
    fn missing_class_never_wins() {
        let mut d = Dataset::new(3);
        for _ in 0..3 {
            d.push(vec![1.0], 0);
            d.push(vec![-1.0], 1);
            // class 2 has no samples
        }
        let mut c = CentroidClassifier::new(3);
        c.fit(&d, &Dataset::new(3));
        let preds = c.predict(&[vec![100.0], vec![-100.0]]);
        assert!(preds.iter().all(|&p| p != 2));
    }

    #[test]
    fn deadline_predict_matches_plain_predict_and_respects_cancellation() {
        let mut c = CentroidClassifier::new(3);
        c.fit(&toy(), &Dataset::new(3));
        let traces = vec![vec![9.0, 0.5], vec![-8.0, -11.0]];
        let token = bf_fault::CancelToken::unlimited();
        let viaded = c.predict_proba_deadline(&traces, &token).expect("unlimited budget");
        let plain = c.predict_proba(&traces);
        let a: Vec<Vec<u32>> =
            viaded.iter().map(|r| r.iter().map(|v| v.to_bits()).collect()).collect();
        let b: Vec<Vec<u32>> =
            plain.iter().map(|r| r.iter().map(|v| v.to_bits()).collect()).collect();
        assert_eq!(a, b, "deadline path must be bit-identical when never cancelled");

        let exhausted = bf_fault::CancelToken::new(1);
        exhausted.charge(2).unwrap_err();
        assert!(c.predict_proba_deadline(&traces, &exhausted).is_err());
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn predict_before_fit_panics() {
        CentroidClassifier::new(2).predict_proba(&[vec![0.0]]);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn fit_empty_panics() {
        CentroidClassifier::new(2).fit(&Dataset::new(2), &Dataset::new(2));
    }
}
