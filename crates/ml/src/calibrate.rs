//! Temperature-scaling confidence calibration.
//!
//! A classifier's raw max-probability is a poor confidence signal: the
//! CNN+LSTM is over-confident on short prefixes and the centroid's
//! softmax-over-distances is arbitrarily peaked. Temperature scaling
//! (Guo et al.'s one-parameter recipe) refits only the sharpness of the
//! predictive distribution: probabilities are mapped through
//! `softmax(log p / T)` with a single `T > 0` chosen to minimize
//! negative log-likelihood on *held-out* data, so argmax — and the full
//! ranking of classes — is preserved exactly for every input.
//!
//! The fit is a deterministic golden-grid search over `log T` (no RNG,
//! f64 accumulation), so a calibration is a pure function of its fitting
//! set, and the applied map is monotone in the raw logit by
//! construction: `l_a > l_b  ⇒  l_a/T > l_b/T  ⇒  q_a > q_b`.
//! Persistence goes through `bf_obs::Json` next to the model snapshot.

use bf_obs::Json;

/// Floor for `log p` so that a zero probability stays finite.
const LOG_FLOOR: f64 = 1e-12;

/// A fitted temperature-scaling map. `T = 1` is the identity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    temperature: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration::identity()
    }
}

impl Calibration {
    /// The identity map (`T = 1`): calibrated probabilities equal raw
    /// ones bit-for-bit through [`Calibration::confidence`]'s f64 path.
    pub fn identity() -> Self {
        Calibration { temperature: 1.0 }
    }

    /// A map with an explicit temperature (also used to temper teacher
    /// probabilities for distillation).
    ///
    /// # Panics
    ///
    /// Panics when `temperature` is not strictly positive and finite.
    pub fn with_temperature(temperature: f64) -> Self {
        assert!(
            temperature.is_finite() && temperature > 0.0,
            "temperature must be positive and finite, got {temperature}"
        );
        Calibration { temperature }
    }

    /// The fitted temperature.
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// Fit `T` on held-out predictions: `probs[i]` is the model's raw
    /// distribution for a sample whose true class is `labels[i]`. The
    /// search walks a fixed geometric grid over `T ∈ [0.05, 20]` and
    /// keeps the NLL-minimizing temperature (first winner on ties), so
    /// the result is a pure function of the inputs.
    ///
    /// # Panics
    ///
    /// Panics on empty input, length mismatch, or an out-of-range label.
    pub fn fit(probs: &[Vec<f32>], labels: &[usize]) -> Self {
        assert!(!probs.is_empty(), "cannot calibrate on an empty validation set");
        assert_eq!(probs.len(), labels.len(), "one label per prediction");
        const GRID: usize = 129;
        let (lo, hi) = (0.05f64.ln(), 20.0f64.ln());
        let mut best_t = 1.0f64;
        let mut best_nll = f64::INFINITY;
        for g in 0..GRID {
            let t = (lo + (hi - lo) * g as f64 / (GRID - 1) as f64).exp();
            let mut nll = 0.0f64;
            for (p, &y) in probs.iter().zip(labels) {
                assert!(y < p.len(), "label {y} out of range for {} classes", p.len());
                // logsumexp of l/T with l = log p; max(l) corresponds to
                // max(p), so normalize against it for stability.
                let pmax = p.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let lmax = (pmax as f64).max(LOG_FLOOR).ln();
                let mut sum = 0.0f64;
                for &v in p {
                    sum += (((v as f64).max(LOG_FLOOR).ln() - lmax) / t).exp();
                }
                let ly = (p[y] as f64).max(LOG_FLOOR).ln();
                nll -= (ly - lmax) / t - sum.ln();
            }
            if nll < best_nll {
                best_nll = nll;
                best_t = t;
            }
        }
        Calibration { temperature: best_t }
    }

    /// Calibrated probabilities, written in place over the raw ones:
    /// `q = softmax(log p / T)`. f64 accumulation, no allocation — this
    /// runs on the serving hot path once per answered request.
    pub fn apply_in_place(&self, probs: &mut [f32]) {
        if probs.is_empty() {
            return;
        }
        let t = self.temperature;
        let lmax = probs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lmax = (lmax as f64).max(LOG_FLOOR).ln();
        let mut sum = 0.0f64;
        for &v in probs.iter() {
            sum += (((v as f64).max(LOG_FLOOR).ln() - lmax) / t).exp();
        }
        for v in probs.iter_mut() {
            *v = (((((*v as f64).max(LOG_FLOOR).ln() - lmax) / t).exp()) / sum) as f32;
        }
    }

    /// Calibrated confidence: the max of the tempered distribution,
    /// computed without materializing it (two passes, no allocation).
    pub fn confidence(&self, probs: &[f32]) -> f32 {
        if probs.is_empty() {
            return 0.0;
        }
        let t = self.temperature;
        let lmax = probs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lmax = (lmax as f64).max(LOG_FLOOR).ln();
        let mut sum = 0.0f64;
        for &v in probs {
            sum += (((v as f64).max(LOG_FLOOR).ln() - lmax) / t).exp();
        }
        // The max raw probability stays the max after tempering (the map
        // is monotone), and its tempered logit is exactly lmax.
        (1.0 / sum) as f32
    }

    /// JSON form for persistence alongside the model snapshot.
    pub fn to_json(&self) -> Json {
        Json::object([("temperature", Json::Float(self.temperature))])
    }

    /// Parse a calibration back from [`Calibration::to_json`] output.
    ///
    /// # Errors
    ///
    /// Describes a missing or non-positive temperature.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let t = json
            .get("temperature")
            .and_then(Json::as_f64)
            .ok_or_else(|| "calibration json missing \"temperature\"".to_owned())?;
        if !(t.is_finite() && t > 0.0) {
            return Err(format!("temperature must be positive and finite, got {t}"));
        }
        Ok(Calibration { temperature: t })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Over-confident predictions: correct class at 0.9 but only right
    /// 60% of the time. The fitted temperature must soften (T > 1).
    fn overconfident() -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut probs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..50usize {
            probs.push(vec![0.9, 0.07, 0.03]);
            labels.push(if i % 5 < 3 { 0 } else { 1 });
        }
        (probs, labels)
    }

    #[test]
    fn fit_softens_overconfident_predictions() {
        let (probs, labels) = overconfident();
        let cal = Calibration::fit(&probs, &labels);
        assert!(cal.temperature() > 1.0, "T = {}", cal.temperature());
        let conf = cal.confidence(&probs[0]);
        assert!(conf < 0.9, "calibrated confidence {conf} must drop below raw 0.9");
    }

    #[test]
    fn fit_is_deterministic() {
        let (probs, labels) = overconfident();
        let a = Calibration::fit(&probs, &labels);
        let b = Calibration::fit(&probs, &labels);
        assert_eq!(a.temperature().to_bits(), b.temperature().to_bits());
    }

    #[test]
    fn identity_keeps_well_formed_probs() {
        let cal = Calibration::identity();
        let mut p = vec![0.7f32, 0.2, 0.1];
        cal.apply_in_place(&mut p);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!((p[0] - 0.7).abs() < 1e-5, "identity map must preserve probabilities");
    }

    #[test]
    fn map_preserves_ranking_and_normalization() {
        for t in [0.1f64, 0.5, 1.0, 3.0, 10.0] {
            let cal = Calibration::with_temperature(t);
            let mut p = vec![0.5f32, 0.3, 0.15, 0.05];
            cal.apply_in_place(&mut p);
            let sum: f32 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "T={t}: sum {sum}");
            assert!(p[0] > p[1] && p[1] > p[2] && p[2] > p[3], "T={t}: order broken {p:?}");
        }
    }

    #[test]
    fn confidence_equals_max_of_applied_map() {
        let cal = Calibration::with_temperature(2.5);
        let raw = vec![0.6f32, 0.25, 0.15];
        let conf = cal.confidence(&raw);
        let mut mapped = raw.clone();
        cal.apply_in_place(&mut mapped);
        let max = mapped.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        assert_eq!(conf.to_bits(), max.to_bits(), "confidence must be the mapped max");
    }

    #[test]
    fn json_round_trip() {
        let cal = Calibration::with_temperature(3.25);
        let back = Calibration::from_json(&cal.to_json()).expect("round trip");
        assert_eq!(back.temperature().to_bits(), cal.temperature().to_bits());
        assert!(Calibration::from_json(&Json::object([])).is_err());
        assert!(
            Calibration::from_json(&Json::object([("temperature", Json::Float(-1.0))])).is_err()
        );
    }

    #[test]
    #[should_panic(expected = "empty validation set")]
    fn empty_fit_panics() {
        Calibration::fit(&[], &[]);
    }
}
