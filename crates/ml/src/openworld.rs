//! Open-world threshold analysis.
//!
//! Table 1 reports accuracy at the classifier's argmax operating point.
//! Website-fingerprinting practice (and the base-rate discussion in
//! §4.2's "open-world results") cares about the trade-off: how many
//! sensitive-site visits are caught vs how often innocent browsing is
//! falsely flagged as a sensitive site. Sweeping a confidence threshold
//! on the "non-sensitive" probability traces out that curve.

use serde::{Deserialize, Serialize};

/// One operating point of the open-world detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Threshold on the non-sensitive-class probability: predictions
    /// with `p(non-sensitive) >= tau` are reported as non-sensitive.
    pub tau: f64,
    /// Fraction of sensitive visits identified with the *correct* site.
    pub sensitive_recall: f64,
    /// Fraction of non-sensitive visits falsely reported as some
    /// sensitive site.
    pub false_positive_rate: f64,
}

/// The threshold sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdCurve {
    /// Points in increasing `tau` order.
    pub points: Vec<OperatingPoint>,
}

impl ThresholdCurve {
    /// Sweep thresholds over out-of-fold probabilities.
    ///
    /// # Panics
    ///
    /// Panics when inputs are empty or lengths differ, or either side of
    /// the sensitive split is empty.
    pub fn sweep(
        probas: &[Vec<f32>],
        labels: &[usize],
        non_sensitive_class: usize,
        steps: usize,
    ) -> Self {
        assert_eq!(probas.len(), labels.len(), "probability/label length mismatch");
        assert!(!probas.is_empty(), "threshold sweep needs samples");
        assert!(steps >= 2, "need at least two thresholds");
        let s_total = labels.iter().filter(|&&l| l != non_sensitive_class).count();
        let n_total = labels.len() - s_total;
        assert!(s_total > 0, "no sensitive samples");
        assert!(n_total > 0, "no non-sensitive samples");
        let points = (0..steps)
            .map(|i| {
                let tau = i as f64 / (steps - 1) as f64;
                let mut s_hit = 0usize;
                let mut n_fp = 0usize;
                for (row, &label) in probas.iter().zip(labels) {
                    let p_ns = f64::from(row[non_sensitive_class]);
                    let flagged_ns = p_ns >= tau;
                    // Best sensitive class by probability.
                    let best_sensitive = row
                        .iter()
                        .enumerate()
                        .filter(|(c, _)| *c != non_sensitive_class)
                        .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN probability"))
                        .map(|(c, _)| c)
                        .expect("at least one sensitive class");
                    if label == non_sensitive_class {
                        if !flagged_ns {
                            n_fp += 1;
                        }
                    } else if !flagged_ns && best_sensitive == label {
                        s_hit += 1;
                    }
                }
                OperatingPoint {
                    tau,
                    sensitive_recall: s_hit as f64 / s_total as f64,
                    false_positive_rate: n_fp as f64 / n_total as f64,
                }
            })
            .collect();
        ThresholdCurve { points }
    }

    /// The highest sensitive recall achievable with a false-positive rate
    /// at or below `max_fpr`, if any threshold achieves it.
    pub fn recall_at_fpr(&self, max_fpr: f64) -> Option<f64> {
        self.points
            .iter()
            .filter(|p| p.false_positive_rate <= max_fpr)
            .map(|p| p.sensitive_recall)
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
    }

    /// CSV export (`tau,sensitive_recall,false_positive_rate`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("tau,sensitive_recall,false_positive_rate\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{}\n",
                p.tau, p.sensitive_recall, p.false_positive_rate
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two sensitive classes (0, 1) and non-sensitive class 2.
    fn toy() -> (Vec<Vec<f32>>, Vec<usize>) {
        let probas = vec![
            vec![0.8, 0.1, 0.1], // sensitive 0, confident
            vec![0.1, 0.5, 0.4], // sensitive 1, borderline
            vec![0.1, 0.1, 0.8], // non-sensitive, confident
            vec![0.4, 0.2, 0.4], // non-sensitive, borderline
        ];
        let labels = vec![0, 1, 2, 2];
        (probas, labels)
    }

    #[test]
    fn extreme_thresholds_behave() {
        let (p, l) = toy();
        let curve = ThresholdCurve::sweep(&p, &l, 2, 11);
        // tau = 0: everything flagged non-sensitive -> no FPs, no recall.
        let first = curve.points.first().unwrap();
        assert_eq!(first.sensitive_recall, 0.0);
        assert_eq!(first.false_positive_rate, 0.0);
        // tau = 1: nothing flagged -> all non-sensitive become FPs.
        let last = curve.points.last().unwrap();
        assert_eq!(last.false_positive_rate, 1.0);
        assert_eq!(last.sensitive_recall, 1.0);
    }

    #[test]
    fn fpr_is_monotone_in_tau() {
        let (p, l) = toy();
        let curve = ThresholdCurve::sweep(&p, &l, 2, 21);
        for w in curve.points.windows(2) {
            assert!(w[1].false_positive_rate >= w[0].false_positive_rate);
        }
    }

    #[test]
    fn recall_at_fpr_picks_best_feasible() {
        let (p, l) = toy();
        let curve = ThresholdCurve::sweep(&p, &l, 2, 101);
        // At zero FPR we can still catch the confident sensitive sample.
        let r = curve.recall_at_fpr(0.0).unwrap();
        assert!(r >= 0.5, "recall at FPR 0 = {r}");
        assert_eq!(curve.recall_at_fpr(1.0), Some(1.0));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let (p, l) = toy();
        let curve = ThresholdCurve::sweep(&p, &l, 2, 5);
        let csv = curve.to_csv();
        assert_eq!(csv.lines().count(), 6);
    }

    #[test]
    #[should_panic(expected = "no sensitive samples")]
    fn needs_both_sides() {
        let probas = vec![vec![0.5f32, 0.5]];
        let labels = vec![1usize];
        ThresholdCurve::sweep(&probas, &labels, 1, 3);
    }
}
