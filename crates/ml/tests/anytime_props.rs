//! Property tests for the anytime ladder's calibration machinery.
//!
//! Two properties the serving tier controller relies on:
//!
//! * temperature scaling is **monotone in the raw logit** — for any
//!   temperature (fixed or fitted), the calibrated map never reorders
//!   classes, so early-exit argmax equals full-path argmax;
//! * on a training-style distribution where longer prefixes carry
//!   strictly more class signal, the ladder's mean calibrated
//!   **confidence is non-decreasing in prefix length** — the
//!   monotonicity that makes "exit when confident" a sane policy.
//!
//! Run alone via `cargo test -p bf-ml --test anytime_props`.

use bf_ml::{AnytimeLadder, Calibration, CentroidClassifier, Classifier, Dataset};
use bf_stats::SeedRng;
use proptest::prelude::*;

proptest! {
    /// For any temperature in the fit grid's range, the calibrated map
    /// preserves the full ranking of the raw distribution and stays a
    /// distribution.
    #[test]
    fn calibration_map_is_monotone_in_the_raw_logit(
        raw in proptest::collection::vec(1e-6f32..1.0f32, 2..12),
        t in 0.05f64..20.0f64,
    ) {
        let sum: f32 = raw.iter().sum();
        let probs: Vec<f32> = raw.iter().map(|v| v / sum).collect();
        let cal = Calibration::with_temperature(t);
        let mut mapped = probs.clone();
        cal.apply_in_place(&mut mapped);
        for i in 0..probs.len() {
            prop_assert!(mapped[i].is_finite() && mapped[i] >= 0.0);
            for j in 0..probs.len() {
                if probs[i] > probs[j] {
                    prop_assert!(
                        mapped[i] >= mapped[j],
                        "T={t}: raw {} > {} but mapped {} < {}",
                        probs[i], probs[j], mapped[i], mapped[j]
                    );
                }
            }
        }
        let s: f32 = mapped.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-3, "calibrated map must stay a distribution, sum {s}");
        // The advertised confidence is exactly the mapped max.
        let max = mapped.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert_eq!(cal.confidence(&probs).to_bits(), max.to_bits());
    }

    /// A *fitted* calibration (temperature chosen by NLL on arbitrary
    /// held-out data) is still monotone: fit only ever picks a positive
    /// finite temperature.
    #[test]
    fn fitted_calibration_is_monotone_and_deterministic(
        seed in 0u64..1_000,
        n in 4usize..24,
        k in 2usize..6,
    ) {
        let mut rng = SeedRng::new(seed);
        let mut probs = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let raw: Vec<f32> = (0..k).map(|_| (rng.uniform() as f32).max(1e-4)).collect();
            let sum: f32 = raw.iter().sum();
            probs.push(raw.iter().map(|v| v / sum).collect::<Vec<f32>>());
            labels.push(rng.int_range(0, k as u64) as usize);
        }
        let cal = Calibration::fit(&probs, &labels);
        prop_assert!(cal.temperature().is_finite() && cal.temperature() > 0.0);
        let again = Calibration::fit(&probs, &labels);
        prop_assert_eq!(cal.temperature().to_bits(), again.temperature().to_bits());
        let mut mapped = probs[0].clone();
        cal.apply_in_place(&mut mapped);
        for i in 0..k {
            for j in 0..k {
                if probs[0][i] > probs[0][j] {
                    prop_assert!(mapped[i] >= mapped[j]);
                }
            }
        }
    }
}

/// Traces whose class signal accrues uniformly along the trace: four
/// identical dip patterns, one per quarter, at class-specific offsets.
/// Every extra quarter a prefix sees adds the same amount of evidence.
fn accruing_dataset(per_class: usize, seed: u64) -> Dataset {
    let mut rng = SeedRng::new(seed);
    let mut d = Dataset::new(3);
    for c in 0..3usize {
        for _ in 0..per_class {
            let mut t = vec![0.0f32; 200];
            for v in t.iter_mut() {
                *v = 1.5 * rng.standard_normal() as f32;
            }
            for quarter in 0..4 {
                let dip = quarter * 50 + c * 12;
                for v in &mut t[dip..dip + 10] {
                    *v -= 0.6;
                }
            }
            d.push(t, c);
        }
    }
    d
}

/// Row `i` of `classify_at_batch` is bit-identical to `classify_at` on
/// row `i` alone, at every rung and batch size, through the real
/// CNN+LSTM — stacked forward passes and zero-padded prefixes never
/// change what a request's flops compute. This is the contract the
/// serving micro-batcher relies on.
#[test]
fn classify_at_batch_rows_match_classify_at() {
    use bf_ml::{CnnLstmClassifier, TrainConfig};

    // 300-sample traces: the shortest length the two-stage conv/pool
    // stack accepts with margin (the 200-sample accruing set is too
    // short for the second stage).
    fn cnn_dataset(per_class: usize, seed: u64) -> Dataset {
        let mut rng = SeedRng::new(seed);
        let mut d = Dataset::new(3);
        for c in 0..3usize {
            for _ in 0..per_class {
                let mut t = vec![0.0f32; 300];
                for v in t.iter_mut() {
                    *v = 0.2 * rng.standard_normal() as f32;
                }
                let dip = 40 + c * 80;
                for v in &mut t[dip..dip + 30] {
                    *v -= 2.5;
                }
                d.push(t, c);
            }
        }
        d
    }

    let train = cnn_dataset(6, 103);
    let mut arch = bf_nn::CnnLstmConfig::scaled(300, 3, 6);
    arch.dropout = 0.2;
    arch.learning_rate = 0.01;
    let mut model = CnnLstmClassifier::new(
        arch,
        TrainConfig { max_epochs: 2, batch_size: 8, patience: 2, min_epochs: 0, seed: 9 },
    );
    model.fit(&train, &Dataset::new(3));
    let ladder = AnytimeLadder::fit(&mut model, &cnn_dataset(3, 104));

    let rows: Vec<&[f32]> = train.features().iter().take(7).map(Vec::as_slice).collect();
    for idx in 0..bf_ml::PREFIX_PERCENTS.len() {
        let singles: Vec<(Vec<u32>, u32)> = rows
            .iter()
            .map(|r| {
                let (p, c) = ladder.classify_at(&mut model, r, idx);
                (p.iter().map(|v| v.to_bits()).collect(), c.to_bits())
            })
            .collect();
        for &b in &[1usize, 2, 7] {
            let batched = ladder.classify_at_batch(&mut model, &rows[..b], idx);
            assert_eq!(batched.len(), b);
            for (i, (p, c)) in batched.iter().enumerate() {
                let bits: Vec<u32> = p.iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    (&bits, c.to_bits()),
                    (&singles[i].0, singles[i].1),
                    "rung {idx} row {i} diverges at batch size {b}"
                );
            }
        }
    }
}

#[test]
fn mean_confidence_is_nondecreasing_in_prefix_length_on_the_training_distribution() {
    let train = accruing_dataset(40, 101);
    let val = accruing_dataset(20, 102);
    let mut model = CentroidClassifier::new(3);
    model.fit(&train, &Dataset::new(3));
    let ladder = AnytimeLadder::fit(&mut model, &val);
    let means = ladder.mean_confidences(&mut model, &train);
    assert_eq!(means.len(), bf_ml::PREFIX_PERCENTS.len());
    for w in means.windows(2) {
        assert!(
            w[1] >= w[0] - 1e-9,
            "mean calibrated confidence must not decrease with prefix length: {means:?}"
        );
    }
    assert!(
        means[means.len() - 1] > means[0],
        "the full trace must be strictly more confident than the shortest prefix: {means:?}"
    );
}
