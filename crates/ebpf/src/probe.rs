//! Probe coverage: which interrupt kinds the instrumentation can hook.

use bf_sim::{InterruptKind, SoftirqKind};

/// All kinds the tool knows how to probe.
pub const ALL_KINDS: [InterruptKind; 12] = [
    InterruptKind::NetworkRx,
    InterruptKind::Disk,
    InterruptKind::Graphics,
    InterruptKind::Usb,
    InterruptKind::TimerTick,
    InterruptKind::RescheduleIpi,
    InterruptKind::TlbShootdown,
    InterruptKind::Softirq(SoftirqKind::NetRx),
    InterruptKind::Softirq(SoftirqKind::Timer),
    InterruptKind::Softirq(SoftirqKind::Tasklet),
    InterruptKind::Softirq(SoftirqKind::Rcu),
    InterruptKind::IrqWork,
];

/// The set of interrupt kinds with probes attached.
///
/// The paper: "One limitation we face is that Linux restricts which kernel
/// functions can be traced... we are unable to monitor all entry points
/// into the operating system." [`ProbeSet::without`] models that
/// restriction; kinds without probes produce no kernel records and their
/// gaps show up as unattributed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeSet {
    enabled: Vec<InterruptKind>,
}

impl ProbeSet {
    /// Probes on every interrupt kind (a ≥5.11 kernel).
    pub fn all() -> Self {
        ProbeSet { enabled: ALL_KINDS.to_vec() }
    }

    /// An empty probe set (attach with [`ProbeSet::with`]).
    pub fn none() -> Self {
        ProbeSet { enabled: Vec::new() }
    }

    /// Add a probe for `kind`.
    #[must_use]
    pub fn with(mut self, kind: InterruptKind) -> Self {
        if !self.enabled.contains(&kind) {
            self.enabled.push(kind);
        }
        self
    }

    /// Remove the probe for `kind` (modeling an untraceable kernel
    /// function).
    #[must_use]
    pub fn without(mut self, kind: InterruptKind) -> Self {
        self.enabled.retain(|k| *k != kind);
        self
    }

    /// Whether `kind` is probed.
    pub fn covers(&self, kind: InterruptKind) -> bool {
        self.enabled.contains(&kind)
    }

    /// The probed kinds.
    pub fn kinds(&self) -> &[InterruptKind] {
        &self.enabled
    }

    /// Number of probed kinds.
    pub fn len(&self) -> usize {
        self.enabled.len()
    }

    /// True when no probes are attached.
    pub fn is_empty(&self) -> bool {
        self.enabled.is_empty()
    }
}

impl Default for ProbeSet {
    fn default() -> Self {
        ProbeSet::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_everything() {
        let p = ProbeSet::all();
        for k in ALL_KINDS {
            assert!(p.covers(k), "{k}");
        }
        assert_eq!(p.len(), 12);
    }

    #[test]
    fn without_removes_coverage() {
        let p = ProbeSet::all().without(InterruptKind::TimerTick);
        assert!(!p.covers(InterruptKind::TimerTick));
        assert!(p.covers(InterruptKind::NetworkRx));
        assert_eq!(p.len(), 11);
    }

    #[test]
    fn with_is_idempotent() {
        let p = ProbeSet::none()
            .with(InterruptKind::TimerTick)
            .with(InterruptKind::TimerTick);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn none_is_empty() {
        assert!(ProbeSet::none().is_empty());
        assert!(!ProbeSet::all().is_empty());
    }
}
