//! Interrupt-activity time series (Fig. 5): percentage of each interval
//! spent in interrupt handlers, split by interrupt class.

use bf_sim::{InterruptClass, SimOutput};
use bf_timer::Nanos;

/// Interrupt-handler time share over consecutive windows, per class.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivitySeries {
    /// Window length.
    pub window: Nanos,
    /// (class, share-per-window) pairs; shares are fractions of window
    /// time spent handling that class.
    pub per_class: Vec<(InterruptClass, Vec<f64>)>,
}

impl ActivitySeries {
    /// Number of windows.
    pub fn windows(&self) -> usize {
        self.per_class.first().map_or(0, |(_, v)| v.len())
    }

    /// Total share (all classes summed) per window.
    pub fn total(&self) -> Vec<f64> {
        let n = self.windows();
        let mut out = vec![0.0; n];
        for (_, shares) in &self.per_class {
            for (o, s) in out.iter_mut().zip(shares) {
                *o += s;
            }
        }
        out
    }

    /// The series for one class, if present.
    pub fn class(&self, class: InterruptClass) -> Option<&[f64]> {
        self.per_class.iter().find(|(c, _)| *c == class).map(|(_, v)| v.as_slice())
    }
}

/// Compute interrupt-time share on a core over consecutive `window`-sized
/// intervals (Fig. 5 uses 100 ms windows).
///
/// # Panics
///
/// Panics when `window` is zero.
pub fn interrupt_activity(sim: &SimOutput, core: usize, window: Nanos) -> ActivitySeries {
    assert!(window > Nanos::ZERO, "window must be positive");
    let n = (sim.duration / window) as usize;
    let mut per_class: Vec<(InterruptClass, Vec<f64>)> =
        InterruptClass::ALL.iter().map(|&c| (c, vec![0.0; n])).collect();
    let w_ns = window.as_nanos() as f64;
    for ev in sim.kernel_log.events_on_core(core) {
        let Some(kind) = ev.kind.interrupt() else { continue };
        let class = kind.class();
        let series = &mut per_class
            .iter_mut()
            .find(|(c, _)| *c == class)
            .expect("all classes pre-registered")
            .1;
        // An event may straddle window boundaries; split its time.
        let mut t = ev.start;
        while t < ev.end {
            let idx = (t / window) as usize;
            if idx >= n {
                break;
            }
            let w_end = window * (idx as u64 + 1);
            let seg_end = ev.end.min(w_end);
            series[idx] += (seg_end - t).as_nanos() as f64 / w_ns;
            t = seg_end;
        }
    }
    ActivitySeries { window, per_class }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf_sim::{Machine, MachineConfig, TimedEvent, Workload, WorkloadEvent};

    fn burst_sim() -> SimOutput {
        let mut w = Workload::new(Nanos::from_secs(1));
        for i in 0..4_000u64 {
            w.push(TimedEvent {
                t: Nanos::from_millis(300) + Nanos::from_micros(i * 50),
                event: WorkloadEvent::NetworkPacket { bytes: 1_400 },
            });
        }
        let mut cfg = MachineConfig::default();
        cfg.isolation.pin_cores = true;
        Machine::new(cfg).run(&w, 9)
    }

    #[test]
    fn activity_peaks_during_burst() {
        let sim = burst_sim();
        let act = interrupt_activity(&sim, sim.attacker_core, Nanos::from_millis(100));
        let total = act.total();
        assert_eq!(total.len(), 10);
        let burst_max = total[3].max(total[4]);
        let quiet = total[8];
        assert!(burst_max > quiet * 1.5, "burst {burst_max} vs quiet {quiet}");
    }

    #[test]
    fn shares_are_fractions() {
        let sim = burst_sim();
        let act = interrupt_activity(&sim, sim.attacker_core, Nanos::from_millis(100));
        for v in act.total() {
            assert!((0.0..=1.0).contains(&v), "share = {v}");
        }
    }

    #[test]
    fn timer_class_always_present() {
        let sim = burst_sim();
        let act = interrupt_activity(&sim, sim.attacker_core, Nanos::from_millis(100));
        let timer = act.class(InterruptClass::Timer).unwrap();
        assert!(timer.iter().all(|&s| s > 0.0), "ticks occur in every window");
    }

    #[test]
    fn softirq_class_rises_with_network_burst() {
        let sim = burst_sim();
        let act = interrupt_activity(&sim, sim.attacker_core, Nanos::from_millis(100));
        let softirq = act.class(InterruptClass::Softirq).unwrap();
        assert!(softirq[3] + softirq[4] > softirq[8] + softirq[9]);
    }

    #[test]
    fn event_straddling_windows_is_split() {
        // Total share across all windows times window length equals total
        // interrupt time on the core.
        let sim = burst_sim();
        let window = Nanos::from_millis(100);
        let act = interrupt_activity(&sim, sim.attacker_core, window);
        let measured: f64 =
            act.total().iter().sum::<f64>() * window.as_nanos() as f64;
        let truth = sim
            .kernel_log
            .interrupt_time_on_core(sim.attacker_core, Nanos::ZERO, sim.duration)
            .as_nanos() as f64;
        // Events running past the duration boundary are clipped by the
        // window accounting; allow a small tolerance.
        assert!((measured - truth).abs() / truth < 0.01, "measured {measured} truth {truth}");
    }
}
