//! Matching attacker-observed gaps to kernel interrupt records.

use crate::probe::ProbeSet;
use bf_attack::ObservedGap;
use bf_sim::{InterruptKind, KernelEvent, SimOutput};
use bf_timer::Nanos;
use std::collections::BTreeMap;

/// What one observed gap was attributed to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GapAttribution {
    /// The gap as the attacker saw it.
    pub gap: ObservedGap,
    /// Probed interrupt kinds whose kernel records overlap the gap
    /// (several per gap is common: softirqs and IRQ work piggyback on
    /// timer ticks).
    pub kinds: Vec<InterruptKind>,
    /// Whether any non-interrupt kernel activity (a context switch)
    /// overlapped instead.
    pub preempted: bool,
}

impl GapAttribution {
    /// True when at least one probed interrupt explains the gap.
    pub fn is_interrupt_caused(&self) -> bool {
        !self.kinds.is_empty()
    }
}

/// The §5.2 analysis result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributionReport {
    /// Per-gap attributions, in gap order.
    pub attributions: Vec<GapAttribution>,
    /// Gap-size threshold used (the paper analyzes gaps >100 ns).
    pub threshold: Nanos,
}

impl AttributionReport {
    /// Number of gaps above the threshold.
    pub fn total_gaps(&self) -> usize {
        self.attributions.len()
    }

    /// Number of gaps attributed to at least one probed interrupt.
    pub fn attributed_gaps(&self) -> usize {
        self.attributions.iter().filter(|a| a.is_interrupt_caused()).count()
    }

    /// Fraction of gaps explained by interrupts — the paper's ">99 %"
    /// number. Returns 1.0 when there are no gaps at all.
    pub fn attributed_fraction(&self) -> f64 {
        if self.attributions.is_empty() {
            return 1.0;
        }
        self.attributed_gaps() as f64 / self.total_gaps() as f64
    }

    /// Count of gaps containing each interrupt kind.
    pub fn kind_counts(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for a in &self.attributions {
            for k in &a.kinds {
                *out.entry(k.label().to_owned()).or_insert(0) += 1;
            }
        }
        out
    }

    /// Gaps explained only by scheduler preemption.
    pub fn preemption_only_gaps(&self) -> usize {
        self.attributions
            .iter()
            .filter(|a| !a.is_interrupt_caused() && a.preempted)
            .count()
    }
}

/// Kernel interrupt records on the attacker core, filtered to probe
/// coverage and sorted by start time.
fn probed_events<'a>(
    sim: &'a SimOutput,
    probes: &ProbeSet,
) -> Vec<&'a KernelEvent> {
    sim.kernel_log
        .events_on_core(sim.attacker_core)
        .filter(|e| match e.kind.interrupt() {
            Some(k) => probes.covers(k),
            None => true, // context switches are visible to the scheduler tracepoints
        })
        .collect()
}

/// Attribute each observed gap above the watcher's threshold to the
/// kernel records overlapping it.
pub fn attribute_gaps(
    sim: &SimOutput,
    gaps: &[ObservedGap],
    probes: &ProbeSet,
) -> AttributionReport {
    let events = probed_events(sim, probes);
    let mut attributions = Vec::with_capacity(gaps.len());
    let mut cursor = 0usize;
    for gap in gaps {
        // Advance past events that end before this gap starts.
        while cursor < events.len() && events[cursor].end <= gap.start {
            cursor += 1;
        }
        let mut kinds = Vec::new();
        let mut preempted = false;
        let mut i = cursor;
        while i < events.len() && events[i].start < gap.end {
            match events[i].kind.interrupt() {
                Some(k) => {
                    if !kinds.contains(&k) {
                        kinds.push(k);
                    }
                }
                None => preempted = true,
            }
            i += 1;
        }
        attributions.push(GapAttribution { gap: *gap, kinds, preempted });
    }
    AttributionReport { attributions, threshold: Nanos::from_nanos(100) }
}

/// For every probed kernel interrupt record, the total length of the
/// observed gap containing it (Fig. 6 samples). Interrupts falling outside
/// any observed gap (e.g. below the watcher threshold) are skipped.
pub fn gap_length_by_kind(
    sim: &SimOutput,
    gaps: &[ObservedGap],
    probes: &ProbeSet,
) -> Vec<(InterruptKind, Vec<Nanos>)> {
    let events = probed_events(sim, probes);
    let mut out: BTreeMap<&'static str, (InterruptKind, Vec<Nanos>)> = BTreeMap::new();
    let mut gi = 0usize;
    for ev in events {
        let Some(kind) = ev.kind.interrupt() else { continue };
        while gi < gaps.len() && gaps[gi].end <= ev.start {
            gi += 1;
        }
        // The containing gap, if this event lies within one.
        let mut j = gi;
        while j < gaps.len() && gaps[j].start < ev.end {
            if gaps[j].start <= ev.start && ev.end <= gaps[j].end {
                out.entry(kind.label())
                    .or_insert_with(|| (kind, Vec::new()))
                    .1
                    .push(gaps[j].len());
                break;
            }
            j += 1;
        }
    }
    out.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf_attack::GapWatcher;
    use bf_sim::{Machine, MachineConfig, TimedEvent, Workload, WorkloadEvent};

    fn sim() -> SimOutput {
        let mut w = Workload::new(Nanos::from_millis(500));
        for i in 0..500u64 {
            w.push(TimedEvent {
                t: Nanos::from_millis(50) + Nanos::from_micros(i * 300),
                event: WorkloadEvent::NetworkPacket { bytes: 1_200 },
            });
        }
        for i in 0..300u64 {
            w.push(TimedEvent {
                t: Nanos::from_millis(60) + Nanos::from_micros(i * 500),
                event: WorkloadEvent::VictimWake,
            });
        }
        Machine::new(MachineConfig::default()).run(&w, 5)
    }

    #[test]
    fn full_probes_attribute_over_99_percent() {
        let sim = sim();
        let gaps = GapWatcher::default().watch(&sim);
        let report = attribute_gaps(&sim, &gaps, &ProbeSet::all());
        assert!(report.total_gaps() > 50);
        assert!(
            report.attributed_fraction() > 0.99,
            "fraction = {}",
            report.attributed_fraction()
        );
    }

    #[test]
    fn missing_probe_lowers_attribution() {
        let sim = sim();
        let gaps = GapWatcher::default().watch(&sim);
        let full = attribute_gaps(&sim, &gaps, &ProbeSet::all());
        let partial = attribute_gaps(
            &sim,
            &gaps,
            &ProbeSet::all().without(InterruptKind::TimerTick),
        );
        assert!(partial.attributed_fraction() < full.attributed_fraction());
    }

    #[test]
    fn kind_counts_include_timer_ticks() {
        let sim = sim();
        let gaps = GapWatcher::default().watch(&sim);
        let report = attribute_gaps(&sim, &gaps, &ProbeSet::all());
        let counts = report.kind_counts();
        assert!(counts.get("timer").copied().unwrap_or(0) > 50, "{counts:?}");
    }

    #[test]
    fn no_probes_attribute_nothing() {
        let sim = sim();
        let gaps = GapWatcher::default().watch(&sim);
        let report = attribute_gaps(&sim, &gaps, &ProbeSet::none());
        assert_eq!(report.attributed_gaps(), 0);
        assert!(report.total_gaps() > 0);
    }

    #[test]
    fn empty_gap_list_is_fully_attributed() {
        let sim = sim();
        let report = attribute_gaps(&sim, &[], &ProbeSet::all());
        assert_eq!(report.attributed_fraction(), 1.0);
        assert_eq!(report.total_gaps(), 0);
    }

    #[test]
    fn gap_lengths_exceed_mitigation_floor() {
        // §5.3: all gaps associated with interrupts exceed 1.5 µs.
        let sim = sim();
        let gaps = GapWatcher::default().watch(&sim);
        let samples = gap_length_by_kind(&sim, &gaps, &ProbeSet::all());
        assert!(!samples.is_empty());
        for (kind, lengths) in &samples {
            for len in lengths {
                assert!(*len >= Nanos::from_nanos(1_500), "{kind}: {len}");
            }
        }
    }

    #[test]
    fn turbo_boost_breaks_the_99_percent_claim() {
        // Footnote 4: with Turbo Boost enabled, a significant number of
        // gaps do not correspond to time in the OS — the attribution
        // fraction must visibly drop below the disabled-Turbo result.
        let cfg = MachineConfig { turbo_boost: true, ..Default::default() };
        let mut w = Workload::new(Nanos::from_millis(500));
        for i in 0..500u64 {
            w.push(TimedEvent {
                t: Nanos::from_millis(50) + Nanos::from_micros(i * 300),
                event: WorkloadEvent::NetworkPacket { bytes: 1_200 },
            });
        }
        let sim = Machine::new(cfg).run(&w, 5);
        let gaps = GapWatcher::default().watch(&sim);
        let report = attribute_gaps(&sim, &gaps, &ProbeSet::all());
        assert!(
            report.attributed_fraction() < 0.95,
            "turbo-on fraction = {}",
            report.attributed_fraction()
        );
    }

    #[test]
    fn piggybacked_softirqs_share_timer_gap_lengths() {
        // Fig. 6: the IRQ-work/softirq gap spike matches the timer-tick
        // spike because they run inside the same gap. Verify that some
        // gaps contain multiple kinds.
        let sim = sim();
        let gaps = GapWatcher::default().watch(&sim);
        let report = attribute_gaps(&sim, &gaps, &ProbeSet::all());
        let multi = report.attributions.iter().filter(|a| a.kinds.len() >= 2).count();
        assert!(multi > 0, "expected some gaps containing multiple interrupt kinds");
    }
}
