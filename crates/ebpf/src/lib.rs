//! `bf-ebpf` — simulated kernel instrumentation and gap attribution.
//!
//! §5.2 of the paper instruments the Linux kernel with eBPF kprobes and
//! tracepoints to log "the timestamp and root cause of various types of
//! interrupts arriving at a specific core", then compares them "to the
//! gaps observed by a user-space attacker pinned to the same CPU core".
//! Both sides read the same monotonic clock, so kernel records and
//! user-space gaps can be matched exactly.
//!
//! This crate plays the same role against the simulator:
//!
//! * [`ProbeSet`] — which interrupt kinds the tool can hook. Like real
//!   eBPF, coverage can be incomplete (the paper notes Linux restricts
//!   which functions may be traced); untraced kinds simply produce no
//!   kernel records, letting us reproduce the "unattributed gap"
//!   methodology honestly.
//! * [`TraceSession`] — runs the probes over a simulation's kernel log and
//!   an attacker's observed gaps, producing an [`AttributionReport`]
//!   (the ">99 % of gaps >100 ns are caused by interrupts" claim),
//!   per-kind gap-length histograms (Fig. 6), and interrupt-activity
//!   time series (Fig. 5).
//!
//! # Example
//!
//! ```
//! use bf_ebpf::{ProbeSet, TraceSession};
//! use bf_attack::GapWatcher;
//! use bf_sim::{Machine, MachineConfig, Workload};
//! use bf_timer::Nanos;
//!
//! let sim = Machine::new(MachineConfig::default())
//!     .run(&Workload::new(Nanos::from_millis(500)), 11);
//! let gaps = GapWatcher::default().watch(&sim);
//! let session = TraceSession::new(ProbeSet::all());
//! let report = session.attribute(&sim, &gaps);
//! assert!(report.attributed_fraction() > 0.99);
//! ```

pub mod activity;
pub mod attribution;
pub mod piggyback;
pub mod probe;
pub mod timeline_export;

pub use activity::{interrupt_activity, ActivitySeries};
pub use attribution::{AttributionReport, GapAttribution};
pub use piggyback::{cohabitation, Cohabitation};
pub use probe::ProbeSet;
pub use timeline_export::{reconstruct, CoreTrace, Span, SpanKind};

use bf_attack::ObservedGap;
use bf_sim::SimOutput;
use bf_timer::Nanos;

/// An instrumentation session: a probe set plus the analyses of §5.2/§5.3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSession {
    probes: ProbeSet,
}

impl TraceSession {
    /// Create a session using the given probe coverage.
    pub fn new(probes: ProbeSet) -> Self {
        TraceSession { probes }
    }

    /// The probe set in use.
    pub fn probes(&self) -> &ProbeSet {
        &self.probes
    }

    /// Attribute attacker-observed gaps to kernel interrupt records
    /// (§5.2's headline analysis).
    pub fn attribute(&self, sim: &SimOutput, gaps: &[ObservedGap]) -> AttributionReport {
        attribution::attribute_gaps(sim, gaps, &self.probes)
    }

    /// Per-interrupt-kind distributions of the *total user-visible gap
    /// length* containing each interrupt (Fig. 6: "the x-axis reflects the
    /// total gap length observed by the attacker rather than just the
    /// amount of time spent processing that particular interrupt").
    pub fn gap_length_samples(
        &self,
        sim: &SimOutput,
        gaps: &[ObservedGap],
    ) -> Vec<(bf_sim::InterruptKind, Vec<Nanos>)> {
        attribution::gap_length_by_kind(sim, gaps, &self.probes)
    }
}

impl Default for TraceSession {
    fn default() -> Self {
        TraceSession::new(ProbeSet::all())
    }
}
