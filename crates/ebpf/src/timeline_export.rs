//! KUtrace-style execution-timeline reconstruction.
//!
//! §5.2: "Truly understanding the causal relationship between non-movable
//! interrupts and other system events would require instrumenting the
//! kernel at a more in-depth level than allowed by eBPF. KUtrace is a
//! good example of such a tool." This module provides that deeper view
//! over the simulator: a complete, nanosecond-exact span timeline per
//! core (user execution / each interrupt kind / context switches), with
//! utilization summaries and a CSV export for external visualization.

use bf_sim::{KernelEventKind, SimOutput};
use bf_timer::Nanos;
use std::collections::BTreeMap;

/// What a core was doing during one span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// User code ran (the attacker's loop, a victim thread...).
    User,
    /// A kernel handler ran; the label is the interrupt kind.
    Kernel(&'static str),
    /// The scheduler ran another task.
    Switched,
}

impl SpanKind {
    /// Column label for exports.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::User => "user",
            SpanKind::Kernel(k) => k,
            SpanKind::Switched => "context_switch",
        }
    }
}

/// One contiguous span on one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Span start.
    pub start: Nanos,
    /// Span end (exclusive).
    pub end: Nanos,
    /// Activity during the span.
    pub kind: SpanKind,
}

impl Span {
    /// Span length.
    pub fn len(&self) -> Nanos {
        self.end - self.start
    }

    /// True for degenerate spans (never produced by the builder).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// The reconstructed timeline of one core.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreTrace {
    /// Core id.
    pub core: usize,
    /// Contiguous spans covering `[0, duration)`.
    pub spans: Vec<Span>,
}

impl CoreTrace {
    /// Total time per span label.
    pub fn utilization(&self) -> BTreeMap<&'static str, Nanos> {
        let mut out = BTreeMap::new();
        for s in &self.spans {
            *out.entry(s.kind.label()).or_insert(Nanos::ZERO) += s.len();
        }
        out
    }

    /// Fraction of the trace spent in user code.
    pub fn user_fraction(&self) -> f64 {
        let total: u64 = self.spans.iter().map(|s| s.len().as_nanos()).sum();
        if total == 0 {
            return 1.0;
        }
        let user: u64 = self
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::User)
            .map(|s| s.len().as_nanos())
            .sum();
        user as f64 / total as f64
    }

    /// CSV rows `start_ns,end_ns,kind` for external plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("start_ns,end_ns,kind\n");
        for s in &self.spans {
            out.push_str(&format!("{},{},{}\n", s.start.as_nanos(), s.end.as_nanos(), s.kind.label()));
        }
        out
    }
}

/// Reconstruct the full span timeline of one core from the kernel log:
/// kernel spans come from the log, and everything between them is user
/// execution.
///
/// # Panics
///
/// Panics when `core` is out of range.
pub fn reconstruct(sim: &SimOutput, core: usize) -> CoreTrace {
    assert!(core < sim.cores.len(), "core out of range");
    let mut spans = Vec::new();
    let mut cursor = Nanos::ZERO;
    for ev in sim.kernel_log.events_on_core(core) {
        let start = ev.start.min(sim.duration);
        let end = ev.end.min(sim.duration);
        if start > cursor {
            spans.push(Span { start: cursor, end: start, kind: SpanKind::User });
        }
        if end > start {
            let kind = match ev.kind {
                KernelEventKind::Interrupt(k) => SpanKind::Kernel(k.label()),
                KernelEventKind::ContextSwitch => SpanKind::Switched,
            };
            spans.push(Span { start, end, kind });
        }
        cursor = cursor.max(end);
        if cursor >= sim.duration {
            break;
        }
    }
    if cursor < sim.duration {
        spans.push(Span { start: cursor, end: sim.duration, kind: SpanKind::User });
    }
    CoreTrace { core, spans }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf_sim::{Machine, MachineConfig, TimedEvent, Workload, WorkloadEvent};

    fn sim() -> SimOutput {
        let mut w = Workload::new(Nanos::from_millis(200));
        for i in 0..200u64 {
            w.push(TimedEvent {
                t: Nanos::from_millis(40) + Nanos::from_micros(i * 200),
                event: WorkloadEvent::NetworkPacket { bytes: 1_000 },
            });
        }
        let mut cfg = MachineConfig::default();
        cfg.isolation.pin_cores = true;
        Machine::new(cfg).run(&w, 13)
    }

    #[test]
    fn spans_are_contiguous_and_cover_duration() {
        let sim = sim();
        let trace = reconstruct(&sim, sim.attacker_core);
        assert_eq!(trace.spans.first().unwrap().start, Nanos::ZERO);
        assert_eq!(trace.spans.last().unwrap().end, sim.duration);
        for pair in trace.spans.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "gap between spans");
        }
        assert!(trace.spans.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn user_fraction_matches_timeline_busy_time() {
        let sim = sim();
        let trace = reconstruct(&sim, sim.attacker_core);
        let tl = sim.attacker_timeline();
        let busy = tl.busy_time_between(Nanos::ZERO, sim.duration).as_nanos() as f64
            / sim.duration.as_nanos() as f64;
        assert!(
            (trace.user_fraction() - busy).abs() < 1e-9,
            "trace {} vs timeline {}",
            trace.user_fraction(),
            busy
        );
    }

    #[test]
    fn utilization_sums_to_duration() {
        let sim = sim();
        let trace = reconstruct(&sim, sim.attacker_core);
        let total: Nanos = trace.utilization().values().copied().sum();
        assert_eq!(total, sim.duration);
    }

    #[test]
    fn kernel_spans_match_log_kinds() {
        let sim = sim();
        let trace = reconstruct(&sim, sim.attacker_core);
        let util = trace.utilization();
        assert!(util.contains_key("timer"));
        assert!(util.contains_key("user"));
    }

    #[test]
    fn csv_has_one_row_per_span() {
        let sim = sim();
        let trace = reconstruct(&sim, 0);
        let csv = trace.to_csv();
        assert_eq!(csv.lines().count(), trace.spans.len() + 1);
        assert!(csv.starts_with("start_ns,end_ns,kind"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_panics() {
        let sim = sim();
        reconstruct(&sim, 99);
    }
}
