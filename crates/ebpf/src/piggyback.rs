//! Deferred-work piggybacking analysis (§5.3).
//!
//! "Multiple interrupts can be associated with a single gap in user-space
//! execution. This is particularly common for softirqs and IRQ work
//! because neither can happen on their own, and thus are typically run
//! while processing a timer interrupt. This is visible in Figure 6."
//!
//! This module quantifies that claim: for each interrupt kind, what
//! fraction of its user-visible gaps also contain another interrupt kind?

use bf_attack::ObservedGap;
use bf_sim::{InterruptKind, SimOutput};
use std::collections::BTreeMap;

/// Co-occurrence statistics for one interrupt kind.
#[derive(Debug, Clone, PartialEq)]
pub struct Cohabitation {
    /// The kind under analysis.
    pub kind: InterruptKind,
    /// Gaps containing this kind.
    pub gaps: usize,
    /// Of those, gaps shared with at least one other interrupt kind.
    pub shared: usize,
    /// Kinds this one shares gaps with, with counts.
    pub partners: BTreeMap<String, usize>,
}

impl Cohabitation {
    /// Fraction of this kind's gaps that contain other interrupt kinds.
    pub fn shared_fraction(&self) -> f64 {
        if self.gaps == 0 {
            return 0.0;
        }
        self.shared as f64 / self.gaps as f64
    }

    /// The most frequent gap partner, if any.
    pub fn top_partner(&self) -> Option<(&str, usize)> {
        self.partners.iter().max_by_key(|(_, &c)| c).map(|(k, &c)| (k.as_str(), c))
    }
}

/// Compute per-kind gap co-occurrence over the attacker core.
pub fn cohabitation(sim: &SimOutput, gaps: &[ObservedGap]) -> Vec<Cohabitation> {
    // Kinds present in each observed gap, in gap order.
    let events: Vec<_> = sim
        .kernel_log
        .events_on_core(sim.attacker_core)
        .filter_map(|e| e.kind.interrupt().map(|k| (e.start, e.end, k)))
        .collect();
    let mut per_gap: Vec<Vec<InterruptKind>> = vec![Vec::new(); gaps.len()];
    let mut cursor = 0usize;
    for (gi, gap) in gaps.iter().enumerate() {
        while cursor < events.len() && events[cursor].1 <= gap.start {
            cursor += 1;
        }
        let mut i = cursor;
        while i < events.len() && events[i].0 < gap.end {
            if !per_gap[gi].contains(&events[i].2) {
                per_gap[gi].push(events[i].2);
            }
            i += 1;
        }
    }

    let mut out: BTreeMap<&'static str, Cohabitation> = BTreeMap::new();
    for kinds in &per_gap {
        for &k in kinds {
            let entry = out.entry(k.label()).or_insert_with(|| Cohabitation {
                kind: k,
                gaps: 0,
                shared: 0,
                partners: BTreeMap::new(),
            });
            entry.gaps += 1;
            if kinds.len() > 1 {
                entry.shared += 1;
            }
        }
        // Partner counting needs a second pass per gap.
        for &k in kinds {
            for &other in kinds {
                if other != k {
                    let entry = out.get_mut(k.label()).expect("inserted above");
                    *entry.partners.entry(other.label().to_owned()).or_insert(0) += 1;
                }
            }
        }
    }
    out.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf_attack::GapWatcher;
    use bf_sim::{Machine, MachineConfig, SoftirqKind, TimedEvent, Workload, WorkloadEvent};
    use bf_timer::Nanos;

    fn analyzed() -> Vec<Cohabitation> {
        let mut w = Workload::new(Nanos::from_secs(2));
        for i in 0..3_000u64 {
            w.push(TimedEvent {
                t: Nanos::from_millis(100) + Nanos::from_micros(i * 400),
                event: WorkloadEvent::NetworkPacket { bytes: 1_200 },
            });
        }
        let mut cfg = MachineConfig::default();
        cfg.isolation.pin_cores = true;
        let sim = Machine::new(cfg).run(&w, 3);
        let gaps = GapWatcher::default().watch(&sim);
        cohabitation(&sim, &gaps)
    }

    fn find(stats: &[Cohabitation], kind: InterruptKind) -> Option<&Cohabitation> {
        stats.iter().find(|c| c.kind == kind)
    }

    #[test]
    fn softirqs_share_gaps_more_than_timer_ticks() {
        // §5.3: softirqs ride other interrupts' gaps; plain timer ticks
        // mostly stand alone.
        let stats = analyzed();
        let softirq = find(&stats, InterruptKind::Softirq(SoftirqKind::NetRx))
            .expect("net_rx softirqs present");
        let timer = find(&stats, InterruptKind::TimerTick).expect("ticks present");
        assert!(
            softirq.shared_fraction() > timer.shared_fraction(),
            "softirq {:.2} vs timer {:.2}",
            softirq.shared_fraction(),
            timer.shared_fraction()
        );
    }

    #[test]
    fn every_kind_has_gaps() {
        for c in analyzed() {
            assert!(c.gaps > 0, "{}", c.kind);
            assert!(c.shared <= c.gaps);
        }
    }

    #[test]
    fn partners_are_symmetric_in_presence() {
        let stats = analyzed();
        // If A lists B as a partner, B must list A.
        for a in &stats {
            for partner in a.partners.keys() {
                let b = stats
                    .iter()
                    .find(|c| c.kind.label() == partner)
                    .expect("partner kind present");
                assert!(
                    b.partners.contains_key(a.kind.label()),
                    "{} -> {partner} not symmetric",
                    a.kind
                );
            }
        }
    }

    #[test]
    fn top_partner_reported() {
        let stats = analyzed();
        let softirq = find(&stats, InterruptKind::Softirq(SoftirqKind::NetRx)).unwrap();
        if softirq.shared > 0 {
            assert!(softirq.top_partner().is_some());
        }
    }
}
