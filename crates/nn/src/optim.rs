//! The Adam optimizer (Kingma & Ba), as used by the paper with
//! learning rate 0.001.

use crate::param::Param;

/// Adam with bias-corrected first and second moments.
///
/// The hot path is [`Adam::begin_step`] + [`Adam::step_param`], which
/// visit parameters one at a time without materializing a list — moment
/// buffers are created lazily on the first step and reused in place
/// forever after, so steady-state updates never allocate. The
/// list-based [`Adam::step`] wraps the same machinery.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    /// Bias corrections `1 - βᵗ` of the step opened by `begin_step`.
    b1t: f32,
    b2t: f32,
    /// Per-parameter moment buffers, keyed by visit position (the
    /// caller must visit parameters in a stable order).
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with the paper's learning rate and standard betas.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            b1t: 0.0,
            b2t: 0.0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of updates performed.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Open an update step: advances the step counter and fixes the
    /// bias corrections that every subsequent [`Adam::step_param`] call
    /// of this step uses.
    pub fn begin_step(&mut self) {
        self.t += 1;
        self.b1t = 1.0 - self.beta1.powi(self.t as i32);
        self.b2t = 1.0 - self.beta2.powi(self.t as i32);
    }

    /// Update one parameter from its accumulated gradient, then zero
    /// the gradient. `pi` is the parameter's position in the caller's
    /// stable visit order; on the first step each new position
    /// allocates its moment buffers, afterwards they are reused.
    ///
    /// # Panics
    ///
    /// Panics when `pi` skips ahead of the known parameter count or the
    /// parameter's size changed between steps.
    pub fn step_param(&mut self, pi: usize, p: &mut Param) {
        if pi == self.m.len() {
            self.m.push(vec![0.0; p.len()]); // alloc-ok: first step only
            self.v.push(vec![0.0; p.len()]); // alloc-ok: first step only
        }
        assert!(pi < self.m.len(), "parameter {pi} visited out of order");
        assert_eq!(self.m[pi].len(), p.len(), "parameter {pi} changed size");
        let m = &mut self.m[pi];
        let v = &mut self.v[pi];
        for j in 0..p.len() {
            let g = p.grad[j];
            m[j] = self.beta1 * m[j] + (1.0 - self.beta1) * g;
            v[j] = self.beta2 * v[j] + (1.0 - self.beta2) * g * g;
            let m_hat = m[j] / self.b1t;
            let v_hat = v[j] / self.b2t;
            p.value[j] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
        p.zero_grad();
    }

    /// Apply one update to `params` from their accumulated gradients,
    /// then zero the gradients.
    ///
    /// # Panics
    ///
    /// Panics when the parameter list's shape changes between calls.
    pub fn step(&mut self, mut params: Vec<&mut Param>) {
        if !self.m.is_empty() {
            assert_eq!(self.m.len(), params.len(), "parameter list changed shape");
        }
        self.begin_step();
        for (pi, p) in params.iter_mut().enumerate() {
            self.step_param(pi, p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x - 3)² with Adam; must converge to 3.
    #[test]
    fn converges_on_quadratic() {
        let mut p = Param::zeros(1);
        let mut adam = Adam::new(0.1);
        for _ in 0..500 {
            p.grad[0] = 2.0 * (p.value[0] - 3.0);
            adam.step(vec![&mut p]);
        }
        assert!((p.value[0] - 3.0).abs() < 1e-2, "x = {}", p.value[0]);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut p = Param::zeros(2);
        p.grad = vec![1.0, -1.0];
        let mut adam = Adam::new(0.01);
        adam.step(vec![&mut p]);
        assert!(p.grad.iter().all(|&g| g == 0.0));
        assert_eq!(adam.steps(), 1);
    }

    #[test]
    fn first_step_moves_by_about_lr() {
        // With bias correction, the first Adam step is ≈ lr · sign(g).
        let mut p = Param::zeros(1);
        p.grad[0] = 0.5;
        let mut adam = Adam::new(0.001);
        adam.step(vec![&mut p]);
        assert!((p.value[0] + 0.001).abs() < 1e-5, "x = {}", p.value[0]);
    }

    #[test]
    fn zero_gradient_keeps_values() {
        let mut p = Param::zeros(3);
        let before = p.value.clone();
        let mut adam = Adam::new(0.01);
        adam.step(vec![&mut p]);
        assert_eq!(p.value, before);
    }

    #[test]
    fn visitor_form_matches_list_form() {
        let mut pa = Param::zeros(2);
        let mut pb = Param::zeros(3);
        let mut qa = Param::zeros(2);
        let mut qb = Param::zeros(3);
        let mut list_adam = Adam::new(0.01);
        let mut visit_adam = Adam::new(0.01);
        for step in 0..5 {
            for (i, (p, q)) in [(&mut pa, &mut qa), (&mut pb, &mut qb)].into_iter().enumerate() {
                for (j, g) in p.grad.iter_mut().enumerate() {
                    *g = ((step * 7 + i * 3 + j) as f32 * 0.21).sin();
                }
                q.grad.copy_from_slice(&p.grad);
            }
            list_adam.step(vec![&mut pa, &mut pb]);
            visit_adam.begin_step();
            visit_adam.step_param(0, &mut qa);
            visit_adam.step_param(1, &mut qb);
        }
        assert_eq!(pa.value, qa.value);
        assert_eq!(pb.value, qb.value);
    }

    #[test]
    #[should_panic(expected = "changed shape")]
    fn changing_param_list_panics() {
        let mut a = Param::zeros(1);
        let mut b = Param::zeros(1);
        let mut adam = Adam::new(0.01);
        adam.step(vec![&mut a]);
        adam.step(vec![&mut a, &mut b]);
    }
}
