//! The Adam optimizer (Kingma & Ba), as used by the paper with
//! learning rate 0.001.

use crate::param::Param;

/// Adam with bias-corrected first and second moments.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    /// Per-parameter moment buffers, keyed by position in the `step`
    /// parameter list (the caller must pass parameters in a stable
    /// order).
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with the paper's learning rate and standard betas.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Number of updates performed.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Apply one update to `params` from their accumulated gradients,
    /// then zero the gradients.
    ///
    /// # Panics
    ///
    /// Panics when the parameter list's shape changes between calls.
    pub fn step(&mut self, mut params: Vec<&mut Param>) {
        if self.m.is_empty() {
            self.m = params.iter().map(|p| vec![0.0; p.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.len()]).collect();
        }
        assert_eq!(self.m.len(), params.len(), "parameter list changed shape");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (pi, p) in params.iter_mut().enumerate() {
            assert_eq!(self.m[pi].len(), p.len(), "parameter {pi} changed size");
            let m = &mut self.m[pi];
            let v = &mut self.v[pi];
            for j in 0..p.len() {
                let g = p.grad[j];
                m[j] = self.beta1 * m[j] + (1.0 - self.beta1) * g;
                v[j] = self.beta2 * v[j] + (1.0 - self.beta2) * g * g;
                let m_hat = m[j] / b1t;
                let v_hat = v[j] / b2t;
                p.value[j] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x - 3)² with Adam; must converge to 3.
    #[test]
    fn converges_on_quadratic() {
        let mut p = Param::zeros(1);
        let mut adam = Adam::new(0.1);
        for _ in 0..500 {
            p.grad[0] = 2.0 * (p.value[0] - 3.0);
            adam.step(vec![&mut p]);
        }
        assert!((p.value[0] - 3.0).abs() < 1e-2, "x = {}", p.value[0]);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut p = Param::zeros(2);
        p.grad = vec![1.0, -1.0];
        let mut adam = Adam::new(0.01);
        adam.step(vec![&mut p]);
        assert!(p.grad.iter().all(|&g| g == 0.0));
        assert_eq!(adam.steps(), 1);
    }

    #[test]
    fn first_step_moves_by_about_lr() {
        // With bias correction, the first Adam step is ≈ lr · sign(g).
        let mut p = Param::zeros(1);
        p.grad[0] = 0.5;
        let mut adam = Adam::new(0.001);
        adam.step(vec![&mut p]);
        assert!((p.value[0] + 0.001).abs() < 1e-5, "x = {}", p.value[0]);
    }

    #[test]
    fn zero_gradient_keeps_values() {
        let mut p = Param::zeros(3);
        let before = p.value.clone();
        let mut adam = Adam::new(0.01);
        adam.step(vec![&mut p]);
        assert_eq!(p.value, before);
    }

    #[test]
    #[should_panic(expected = "changed shape")]
    fn changing_param_list_panics() {
        let mut a = Param::zeros(1);
        let mut b = Param::zeros(1);
        let mut adam = Adam::new(0.01);
        adam.step(vec![&mut a]);
        adam.step(vec![&mut a, &mut b]);
    }
}
