//! LSTM layer returning the final hidden state.
//!
//! The paper's model uses "LSTM (32 units, sigmoid activation)": the
//! candidate and cell-output activations are sigmoid (Keras
//! `LSTM(32, activation="sigmoid")`), while the gates use the standard
//! sigmoid as well.

use crate::param::Param;
use crate::tensor::Tensor;
use crate::Layer;
use bf_stats::SeedRng;

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Candidate/output activation of the LSTM cell. Gates always use
/// sigmoid. Keras's default is tanh; the paper's "(32 units, sigmoid
/// activation)" reads as the sigmoid variant, which this crate supports
/// exactly — but tanh trains far better on long sequences and is used by
/// the scaled experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum LstmActivation {
    /// Hyperbolic tangent (Keras default).
    #[default]
    Tanh,
    /// Logistic sigmoid (the paper's footnote wording).
    Sigmoid,
}

impl LstmActivation {
    #[inline]
    fn apply(self, x: f32) -> f32 {
        match self {
            LstmActivation::Tanh => x.tanh(),
            LstmActivation::Sigmoid => sigmoid(x),
        }
    }

    /// Derivative expressed in terms of the activation value `a`.
    #[inline]
    fn grad_from_value(self, a: f32) -> f32 {
        match self {
            LstmActivation::Tanh => 1.0 - a * a,
            LstmActivation::Sigmoid => a * (1.0 - a),
        }
    }
}

/// Per-timestep values cached for backpropagation through time.
#[derive(Debug, Clone)]
struct StepCache {
    /// Gate activations i, f, g, o — each `(N, H)` flattened.
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    /// Cell state after this step.
    c: Vec<f32>,
    /// Cell state before this step.
    c_prev: Vec<f32>,
    /// Hidden state before this step.
    h_prev: Vec<f32>,
}

/// An LSTM over the length axis of a `(N, C, L)` tensor (time = L,
/// features = C), producing the final hidden state `(N, H)`.
#[derive(Debug, Clone)]
pub struct Lstm {
    input_size: usize,
    hidden: usize,
    activation: LstmActivation,
    /// Input weights, `(4H, F)` row-major, gate order `[i, f, g, o]`.
    w_ih: Param,
    /// Recurrent weights, `(4H, H)`.
    w_hh: Param,
    /// Gate biases, `(4H)`.
    bias: Param,
    cache: Option<(Tensor, Vec<StepCache>)>,
}

impl Lstm {
    /// A Glorot-initialized LSTM with the default (tanh) activation. The
    /// forget-gate bias starts at 1.0 (standard practice for trainable
    /// long-range memory).
    pub fn new(input_size: usize, hidden: usize, rng: &mut SeedRng) -> Self {
        Self::with_activation(input_size, hidden, LstmActivation::default(), rng)
    }

    /// A Glorot-initialized LSTM with an explicit candidate/output
    /// activation.
    pub fn with_activation(
        input_size: usize,
        hidden: usize,
        activation: LstmActivation,
        rng: &mut SeedRng,
    ) -> Self {
        let mut bias = Param::zeros(4 * hidden);
        for b in &mut bias.value[hidden..2 * hidden] {
            *b = 1.0;
        }
        Lstm {
            input_size,
            hidden,
            activation,
            w_ih: Param::glorot(4 * hidden * input_size, input_size, hidden, rng),
            w_hh: Param::glorot(4 * hidden * hidden, hidden, hidden, rng),
            bias,
            cache: None,
        }
    }

    /// Hidden-state width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Compute the four pre-activations for one sample at one timestep.
    fn gates(&self, x_t: &[f32], h_prev: &[f32]) -> Vec<f32> {
        let h4 = 4 * self.hidden;
        let mut z = self.bias.value.clone();
        for (row, zv) in z.iter_mut().enumerate().take(h4) {
            let wrow = &self.w_ih.value[row * self.input_size..(row + 1) * self.input_size];
            for (xv, wv) in x_t.iter().zip(wrow) {
                *zv += xv * wv;
            }
            let urow = &self.w_hh.value[row * self.hidden..(row + 1) * self.hidden];
            for (hv, uv) in h_prev.iter().zip(urow) {
                *zv += hv * uv;
            }
        }
        z
    }
}

impl Layer for Lstm {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 3, "lstm expects (N, C, L)");
        assert_eq!(x.shape()[1], self.input_size, "lstm feature width mismatch");
        let (n, feat, steps) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let h = self.hidden;
        let mut h_state = vec![0.0f32; n * h];
        let mut c_state = vec![0.0f32; n * h];
        let mut caches = Vec::with_capacity(steps);
        let mut x_t = vec![0.0f32; feat];
        for t in 0..steps {
            let mut step = StepCache {
                i: vec![0.0; n * h],
                f: vec![0.0; n * h],
                g: vec![0.0; n * h],
                o: vec![0.0; n * h],
                c: vec![0.0; n * h],
                c_prev: c_state.clone(),
                h_prev: h_state.clone(),
            };
            for s in 0..n {
                for (ci, xv) in x_t.iter_mut().enumerate() {
                    *xv = x.data()[x.idx3(s, ci, t)];
                }
                let h_prev = &step.h_prev[s * h..(s + 1) * h];
                let z = self.gates(&x_t, h_prev);
                for u in 0..h {
                    let i_g = sigmoid(z[u]);
                    let f_g = sigmoid(z[h + u]);
                    let g_g = self.activation.apply(z[2 * h + u]);
                    let o_g = sigmoid(z[3 * h + u]);
                    let c_new = f_g * step.c_prev[s * h + u] + i_g * g_g;
                    let h_new = o_g * self.activation.apply(c_new);
                    let idx = s * h + u;
                    step.i[idx] = i_g;
                    step.f[idx] = f_g;
                    step.g[idx] = g_g;
                    step.o[idx] = o_g;
                    step.c[idx] = c_new;
                    c_state[idx] = c_new;
                    h_state[idx] = h_new;
                }
            }
            if train {
                caches.push(step);
            }
        }
        if train {
            self.cache = Some((x.clone(), caches));
        }
        Tensor::new(&[n, h], h_state)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let (x, caches) = self.cache.as_ref().expect("backward without forward");
        let (n, feat, steps) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let h = self.hidden;
        assert_eq!(grad.shape(), &[n, h]);
        let mut dx = Tensor::zeros(&[n, feat, steps]);
        let mut dh = grad.data().to_vec();
        let mut dc = vec![0.0f32; n * h];
        for t in (0..steps).rev() {
            let step = &caches[t];
            let mut dh_prev = vec![0.0f32; n * h];
            for s in 0..n {
                for u in 0..h {
                    let idx = s * h + u;
                    let i_g = step.i[idx];
                    let f_g = step.f[idx];
                    let g_g = step.g[idx];
                    let o_g = step.o[idx];
                    let c_v = step.c[idx];
                    let ac = self.activation.apply(c_v);
                    // h = o * act(c)
                    let dz_o = dh[idx] * ac * o_g * (1.0 - o_g);
                    let dc_total =
                        dc[idx] + dh[idx] * o_g * self.activation.grad_from_value(ac);
                    let dz_i = dc_total * g_g * i_g * (1.0 - i_g);
                    let dz_g = dc_total * i_g * self.activation.grad_from_value(g_g);
                    let dz_f = dc_total * step.c_prev[idx] * f_g * (1.0 - f_g);
                    dc[idx] = dc_total * f_g;

                    let gate_rows = [u, h + u, 2 * h + u, 3 * h + u];
                    let dzs = [dz_i, dz_f, dz_g, dz_o];
                    for (row, dz) in gate_rows.into_iter().zip(dzs) {
                        if dz == 0.0 {
                            continue;
                        }
                        self.bias.grad[row] += dz;
                        // Input weight grads + input grads.
                        let wbase = row * self.input_size;
                        for ci in 0..feat {
                            let xi = x.idx3(s, ci, t);
                            self.w_ih.grad[wbase + ci] += dz * x.data()[xi];
                            dx.data_mut()[xi] += dz * self.w_ih.value[wbase + ci];
                        }
                        // Recurrent weight grads + h_prev grads.
                        let ubase = row * h;
                        for hu in 0..h {
                            self.w_hh.grad[ubase + hu] += dz * step.h_prev[s * h + hu];
                            dh_prev[s * h + hu] += dz * self.w_hh.value[ubase + hu];
                        }
                    }
                }
            }
            dh = dh_prev;
        }
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w_ih, &mut self.w_hh, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;

    #[test]
    fn forward_shape() {
        let mut rng = SeedRng::new(1);
        let mut l = Lstm::new(3, 5, &mut rng);
        let x = Tensor::zeros(&[2, 3, 7]);
        let y = l.forward(&x, false);
        assert_eq!(y.shape(), &[2, 5]);
    }

    #[test]
    fn outputs_bounded_by_activation() {
        // h = o·tanh(c) with o ∈ (0,1), tanh(c) ∈ (−1,1).
        let mut rng = SeedRng::new(2);
        let mut l = Lstm::new(2, 4, &mut rng);
        let x = Tensor::new(&[1, 2, 9], (0..18).map(|i| (i as f32).sin() * 3.0).collect());
        let y = l.forward(&x, false);
        for &v in y.data() {
            assert!((-1.0..1.0).contains(&v), "v = {v}");
        }
    }

    #[test]
    fn state_accumulates_over_time() {
        let mut rng = SeedRng::new(3);
        let mut l = Lstm::new(1, 3, &mut rng);
        let short = l.forward(&Tensor::new(&[1, 1, 1], vec![1.0]), false);
        let long = l.forward(&Tensor::new(&[1, 1, 10], vec![1.0; 10]), false);
        assert_ne!(short.data(), long.data());
    }

    #[test]
    fn gradient_check() {
        let mut rng = SeedRng::new(4);
        let mut l = Lstm::new(2, 3, &mut rng);
        let x = Tensor::new(&[2, 2, 4], (0..16).map(|i| (i as f32 * 0.37).cos()).collect());
        let labels = [1usize, 0];

        let y = l.forward(&x, true);
        let (_, g) = softmax_cross_entropy(&y, &labels);
        let dx = l.backward(&g);

        let eps = 1e-2;
        let loss_at = |l: &mut Lstm, x: &Tensor| {
            let y = l.forward(x, false);
            softmax_cross_entropy(&y, &labels).0
        };
        // Spot-check each parameter tensor.
        for (pname, pick) in [("w_ih", 0usize), ("w_ih", 13), ("w_hh", 5), ("bias", 2), ("bias", 7)]
        {
            let (val, grad): (&mut Vec<f32>, f32) = match pname {
                "w_ih" => {
                    let g = l.w_ih.grad[pick];
                    (&mut l.w_ih.value, g)
                }
                "w_hh" => {
                    let g = l.w_hh.grad[pick];
                    (&mut l.w_hh.value, g)
                }
                _ => {
                    let g = l.bias.grad[pick];
                    (&mut l.bias.value, g)
                }
            };
            let orig = val[pick];
            val[pick] = orig + eps;
            let lp = loss_at(&mut l, &x);
            let val: &mut Vec<f32> = match pname {
                "w_ih" => &mut l.w_ih.value,
                "w_hh" => &mut l.w_hh.value,
                _ => &mut l.bias.value,
            };
            val[pick] = orig - eps;
            let lm = loss_at(&mut l, &x);
            let val: &mut Vec<f32> = match pname {
                "w_ih" => &mut l.w_ih.value,
                "w_hh" => &mut l.w_hh.value,
                _ => &mut l.bias.value,
            };
            val[pick] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad).abs() < 2e-2 * (1.0 + numeric.abs()),
                "{pname}[{pick}]: numeric {numeric} analytic {grad}"
            );
        }
        // Input gradients.
        for &xi in &[0usize, 7, 15] {
            let mut xp = x.clone();
            xp.data_mut()[xi] += eps;
            let lp = loss_at(&mut l, &xp);
            let mut xm = x.clone();
            xm.data_mut()[xi] -= eps;
            let lm = loss_at(&mut l, &xm);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = dx.data()[xi];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "x[{xi}]: numeric {numeric} analytic {analytic}"
            );
        }
    }

    #[test]
    fn gradient_check_sigmoid_variant() {
        let mut rng = SeedRng::new(11);
        let mut l = Lstm::with_activation(2, 3, LstmActivation::Sigmoid, &mut rng);
        let x = Tensor::new(&[1, 2, 5], (0..10).map(|i| (i as f32 * 0.29).sin()).collect());
        let labels = [2usize];
        let y = l.forward(&x, true);
        let (_, g) = softmax_cross_entropy(&y, &labels);
        let dx = l.backward(&g);
        let eps = 1e-2;
        for &xi in &[0usize, 4, 9] {
            let mut xp = x.clone();
            xp.data_mut()[xi] += eps;
            let lp = softmax_cross_entropy(&l.forward(&xp, false), &labels).0;
            let mut xm = x.clone();
            xm.data_mut()[xi] -= eps;
            let lm = softmax_cross_entropy(&l.forward(&xm, false), &labels).0;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = dx.data()[xi];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "x[{xi}]: numeric {numeric} analytic {analytic}"
            );
        }
    }

    #[test]
    fn sigmoid_outputs_bounded_unit_interval() {
        let mut rng = SeedRng::new(12);
        let mut l = Lstm::with_activation(2, 4, LstmActivation::Sigmoid, &mut rng);
        let x = Tensor::new(&[1, 2, 9], (0..18).map(|i| (i as f32).sin() * 3.0).collect());
        let y = l.forward(&x, false);
        for &v in y.data() {
            assert!((0.0..1.0).contains(&v), "v = {v}");
        }
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut rng = SeedRng::new(5);
        let l = Lstm::new(2, 4, &mut rng);
        assert!(l.bias.value[4..8].iter().all(|&b| b == 1.0));
        assert!(l.bias.value[0..4].iter().all(|&b| b == 0.0));
    }
}
