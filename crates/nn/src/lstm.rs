//! LSTM layer returning the final hidden state.
//!
//! The paper's model uses "LSTM (32 units, sigmoid activation)": the
//! candidate and cell-output activations are sigmoid (Keras
//! `LSTM(32, activation="sigmoid")`), while the gates use the standard
//! sigmoid as well.
//!
//! Samples are independent through time, so both passes process one
//! sample end-to-end and distribute the batch over `bf-par` workers.
//! Within a sample the input contribution to every timestep's gate
//! pre-activations is hoisted into a single blocked matmul against
//! `w_ih` ([`matmul_abt`]); only the recurrent term stays in the time
//! loop. Per-element accumulation order matches the sequential
//! reference, so forward outputs and input gradients are bit-identical
//! to it, and parameter-gradient partials are reduced in sample order,
//! so all results are bit-stable across thread counts.
//!
//! The BPTT caches are persistent fields reset in place each training
//! forward, and the inline (single-worker) arms of both passes draw all
//! remaining scratch from the thread's [`workspace`] arena — a
//! steady-state training step performs no heap allocation here.

use crate::param::Param;
use crate::tensor::{axpy_unrolled, matmul_abt, Tensor};
use crate::workspace::{self, ScratchBuf};
use crate::Layer;
use bf_stats::SeedRng;

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Candidate/output activation of the LSTM cell. Gates always use
/// sigmoid. Keras's default is tanh; the paper's "(32 units, sigmoid
/// activation)" reads as the sigmoid variant, which this crate supports
/// exactly — but tanh trains far better on long sequences and is used by
/// the scaled experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum LstmActivation {
    /// Hyperbolic tangent (Keras default).
    #[default]
    Tanh,
    /// Logistic sigmoid (the paper's footnote wording).
    Sigmoid,
}

impl LstmActivation {
    #[inline]
    fn apply(self, x: f32) -> f32 {
        match self {
            LstmActivation::Tanh => x.tanh(),
            LstmActivation::Sigmoid => sigmoid(x),
        }
    }

    /// Derivative expressed in terms of the activation value `a`.
    #[inline]
    fn grad_from_value(self, a: f32) -> f32 {
        match self {
            LstmActivation::Tanh => 1.0 - a * a,
            LstmActivation::Sigmoid => a * (1.0 - a),
        }
    }
}

/// Per-sample values cached for backpropagation through time. The
/// buffers are reset in place between steps, so a warm cache never
/// reallocates.
#[derive(Debug, Clone, Default)]
struct SampleCache {
    /// The sample's input gathered time-major, `(steps, F)`.
    xs: Vec<f32>,
    /// Gate activations i, f, g, o — each `(steps, H)`.
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    /// Cell state after each step, `(steps, H)`.
    c: Vec<f32>,
    /// Hidden state after each step, `(steps, H)`.
    h: Vec<f32>,
}

impl SampleCache {
    /// Resize every buffer for a `(feat, steps)` sample, keeping
    /// capacity. Contents are fully overwritten by the forward pass.
    fn reset(&mut self, feat: usize, steps: usize, h: usize) {
        fn fit(v: &mut Vec<f32>, len: usize) {
            v.clear();
            v.resize(len, 0.0);
        }
        fit(&mut self.xs, steps * feat);
        fit(&mut self.i, steps * h);
        fit(&mut self.f, steps * h);
        fit(&mut self.g, steps * h);
        fit(&mut self.o, steps * h);
        fit(&mut self.c, steps * h);
        fit(&mut self.h, steps * h);
    }
}

/// An LSTM over the length axis of a `(N, C, L)` tensor (time = L,
/// features = C), producing the final hidden state `(N, H)`.
#[derive(Debug, Clone)]
pub struct Lstm {
    input_size: usize,
    hidden: usize,
    activation: LstmActivation,
    /// Input weights, `(4H, F)` row-major, gate order `[i, f, g, o]`.
    w_ih: Param,
    /// Recurrent weights, `(4H, H)`.
    w_hh: Param,
    /// Gate biases, `(4H)`.
    bias: Param,
    /// Persistent per-sample caches, reset in place each training
    /// forward.
    caches: Vec<SampleCache>,
    /// Reused scratch cache for inference forwards (no BPTT state kept).
    eval_cache: SampleCache,
    /// `(feat, steps, n)` of the last training forward; `None` until
    /// one has run.
    cache_meta: Option<(usize, usize, usize)>,
}

impl Lstm {
    /// A Glorot-initialized LSTM with the default (tanh) activation. The
    /// forget-gate bias starts at 1.0 (standard practice for trainable
    /// long-range memory).
    pub fn new(input_size: usize, hidden: usize, rng: &mut SeedRng) -> Self {
        Self::with_activation(input_size, hidden, LstmActivation::default(), rng)
    }

    /// A Glorot-initialized LSTM with an explicit candidate/output
    /// activation.
    pub fn with_activation(
        input_size: usize,
        hidden: usize,
        activation: LstmActivation,
        rng: &mut SeedRng,
    ) -> Self {
        let mut bias = Param::zeros(4 * hidden);
        for b in &mut bias.value[hidden..2 * hidden] {
            *b = 1.0;
        }
        Lstm {
            input_size,
            hidden,
            activation,
            w_ih: Param::glorot(4 * hidden * input_size, input_size, hidden, rng),
            w_hh: Param::glorot(4 * hidden * hidden, hidden, hidden, rng),
            bias,
            caches: Vec::new(),
            eval_cache: SampleCache::default(),
            cache_meta: None,
        }
    }

    /// Hidden-state width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Per-sample multiply-add estimate (input + recurrent matmuls),
    /// the fork-join work gate for both passes.
    fn sample_flops(&self, steps: usize) -> usize {
        steps * 4 * self.hidden * (self.input_size + self.hidden)
    }

    /// Run one sample `(feat, steps)` through the recurrence, leaving
    /// the per-step values in `cache` and the final hidden state in
    /// `out`. `zx` must hold `steps * 4H` elements, `z` `4H`, and
    /// `c_prev`/`h_prev`/`out` `H` each; all scratch contents are
    /// overwritten. Pure in the sample and the layer parameters, so
    /// samples can run on any worker.
    #[allow(clippy::too_many_arguments)]
    fn forward_sample_into(
        &self,
        sample: &[f32],
        feat: usize,
        steps: usize,
        cache: &mut SampleCache,
        zx: &mut [f32],
        z: &mut [f32],
        c_prev: &mut [f32],
        h_prev: &mut [f32],
        out: &mut [f32],
    ) {
        let h = self.hidden;
        let h4 = 4 * h;
        cache.reset(feat, steps, h);
        // Gather time-major (steps, F) so the input term of every
        // timestep's pre-activation becomes one blocked matmul.
        for ci in 0..feat {
            for t in 0..steps {
                cache.xs[t * feat + ci] = sample[ci * steps + t];
            }
        }
        // zx[t, row] = bias[row] + dot(w_ih[row], x_t): the bias-then-
        // input prefix of the gate pre-activation, hoisted out of the
        // time loop with the reference accumulation order intact.
        matmul_abt(&cache.xs, &self.w_ih.value, steps, h4, feat, None, Some(&self.bias.value), zx);
        c_prev.fill(0.0);
        h_prev.fill(0.0);
        for t in 0..steps {
            // Recurrent term: one register-blocked matvec per step. Each
            // gate row's accumulator starts at its `zx` entry and adds
            // its `h` products in index order — the reference's
            // row-then-k order exactly.
            matmul_abt(h_prev, &self.w_hh.value, 1, h4, h, None, Some(&zx[t * h4..(t + 1) * h4]), z);
            for u in 0..h {
                let i_g = sigmoid(z[u]);
                let f_g = sigmoid(z[h + u]);
                let g_g = self.activation.apply(z[2 * h + u]);
                let o_g = sigmoid(z[3 * h + u]);
                let c_new = f_g * c_prev[u] + i_g * g_g;
                let h_new = o_g * self.activation.apply(c_new);
                let idx = t * h + u;
                cache.i[idx] = i_g;
                cache.f[idx] = f_g;
                cache.g[idx] = g_g;
                cache.o[idx] = o_g;
                cache.c[idx] = c_new;
                cache.h[idx] = h_new;
                c_prev[u] = c_new;
                h_prev[u] = h_new;
            }
        }
        out.copy_from_slice(h_prev);
    }

    /// One sample's BPTT chain. `dh` must arrive holding the sample's
    /// output gradient; `dwih`/`dwhh`/`dbias`/`dxs`/`dc`/`dh_prev` must
    /// arrive zeroed. Partials are accumulated exactly as the sequential
    /// reference loop did.
    #[allow(clippy::too_many_arguments)]
    fn backward_sample(
        &self,
        cache: &SampleCache,
        feat: usize,
        steps: usize,
        dwih: &mut [f32],
        dwhh: &mut [f32],
        dbias: &mut [f32],
        dxs: &mut [f32],
        dh: &mut [f32],
        dh_prev: &mut [f32],
        dc: &mut [f32],
    ) {
        // Reborrow under one local lifetime so the per-step swap of the
        // two buffers' roles type-checks.
        let mut dh = &mut dh[..];
        let mut dh_prev = &mut dh_prev[..];
        let h = self.hidden;
        for t in (0..steps).rev() {
            dh_prev.fill(0.0);
            for u in 0..h {
                let idx = t * h + u;
                let i_g = cache.i[idx];
                let f_g = cache.f[idx];
                let g_g = cache.g[idx];
                let o_g = cache.o[idx];
                let c_v = cache.c[idx];
                let c_prev_v = if t == 0 { 0.0 } else { cache.c[idx - h] };
                let ac = self.activation.apply(c_v);
                // h = o * act(c)
                let dz_o = dh[u] * ac * o_g * (1.0 - o_g);
                let dc_total = dc[u] + dh[u] * o_g * self.activation.grad_from_value(ac);
                let dz_i = dc_total * g_g * i_g * (1.0 - i_g);
                let dz_g = dc_total * i_g * self.activation.grad_from_value(g_g);
                let dz_f = dc_total * c_prev_v * f_g * (1.0 - f_g);
                dc[u] = dc_total * f_g;

                let gate_rows = [u, h + u, 2 * h + u, 3 * h + u];
                let dzs = [dz_i, dz_f, dz_g, dz_o];
                for (row, dz) in gate_rows.into_iter().zip(dzs) {
                    if dz == 0.0 {
                        continue;
                    }
                    dbias[row] += dz;
                    // The four accumulation targets are disjoint arrays,
                    // so splitting the reference's fused loops into one
                    // (vectorizable) pass per target reorders nothing
                    // within any element's chain.
                    let wbase = row * feat;
                    let xs_t = &cache.xs[t * feat..(t + 1) * feat];
                    axpy_unrolled(&mut dwih[wbase..wbase + feat], dz, xs_t);
                    for ci in 0..feat {
                        dxs[ci * steps + t] += dz * self.w_ih.value[wbase + ci];
                    }
                    let ubase = row * h;
                    if t > 0 {
                        axpy_unrolled(
                            &mut dwhh[ubase..ubase + h],
                            dz,
                            &cache.h[(t - 1) * h..t * h],
                        );
                    }
                    axpy_unrolled(dh_prev, dz, &self.w_hh.value[ubase..ubase + h]);
                }
            }
            std::mem::swap(&mut dh, &mut dh_prev);
        }
    }
}

impl Layer for Lstm {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 3, "lstm expects (N, C, L)");
        assert_eq!(x.shape()[1], self.input_size, "lstm feature width mismatch");
        let (n, feat, steps) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let h = self.hidden;
        let h4 = 4 * h;
        let sample_len = feat * steps;
        let mut out = workspace::tensor(&[n, h]);
        if sample_len == 0 || n == 0 {
            if train {
                self.caches.clear();
                self.cache_meta = Some((feat, steps, 0));
            }
            return out;
        }
        if bf_par::plan_units(n, 1, self.sample_flops(steps)) <= 1 {
            // Inline arm: persistent caches reset in place, all scratch
            // pooled — no allocation once warm.
            if train {
                self.caches.resize_with(n, SampleCache::default);
            }
            let mut caches = std::mem::take(&mut self.caches);
            let mut eval_cache = std::mem::take(&mut self.eval_cache);
            let mut zx = ScratchBuf::of_len(steps * h4);
            let mut z = ScratchBuf::of_len(h4);
            let mut c_prev = ScratchBuf::of_len(h);
            let mut h_prev = ScratchBuf::of_len(h);
            // Indexed loop: `caches` is only consulted in train mode
            // (eval reuses one cache), so iterating it directly would
            // force a second arm.
            #[allow(clippy::needless_range_loop)]
            for s in 0..n {
                let sample = &x.data()[s * sample_len..(s + 1) * sample_len];
                let cache = if train { &mut caches[s] } else { &mut eval_cache };
                self.forward_sample_into(
                    sample,
                    feat,
                    steps,
                    cache,
                    &mut zx,
                    &mut z,
                    &mut c_prev,
                    &mut h_prev,
                    &mut out.data_mut()[s * h..(s + 1) * h],
                );
            }
            self.caches = caches;
            self.eval_cache = eval_cache;
        } else {
            let samples: Vec<&[f32]> = x.data().chunks(sample_len).collect(); // alloc-ok: parallel arm
            let results = bf_par::par_map_indexed(&samples, |_, sample| {
                let mut cache = SampleCache::default(); // alloc-ok: parallel arm
                let mut zx = vec![0.0f32; steps * h4]; // alloc-ok: parallel arm
                let mut z = vec![0.0f32; h4]; // alloc-ok: parallel arm
                let mut c_prev = vec![0.0f32; h]; // alloc-ok: parallel arm
                let mut h_prev = vec![0.0f32; h]; // alloc-ok: parallel arm
                let mut hf = vec![0.0f32; h]; // alloc-ok: parallel arm
                self.forward_sample_into(
                    sample, feat, steps, &mut cache, &mut zx, &mut z, &mut c_prev, &mut h_prev,
                    &mut hf,
                );
                (hf, cache)
            });
            if train {
                self.caches.clear();
            }
            for (s, (hf, cache)) in results.into_iter().enumerate() {
                out.data_mut()[s * h..(s + 1) * h].copy_from_slice(&hf);
                if train {
                    self.caches.push(cache);
                }
            }
        }
        if train {
            self.cache_meta = Some((feat, steps, n));
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let (feat, steps, n) = self.cache_meta.expect("backward without forward");
        assert_eq!(grad.shape(), &[n, self.hidden]);
        let h = self.hidden;
        let h4 = 4 * h;
        let mut dx = workspace::tensor(&[n, feat, steps]);
        // Taken out of `self` (and restored below) so the gradient merge
        // can borrow `self` mutably while the caches stay readable.
        let caches = std::mem::take(&mut self.caches);
        if bf_par::plan_units(n, 1, self.sample_flops(steps)) <= 1 {
            // Inline arm: one pooled set of per-sample partial buffers,
            // refilled per sample and merged in sample order — the same
            // reduction order as the parallel arm.
            let mut dwih = ScratchBuf::of_len(h4 * feat);
            let mut dwhh = ScratchBuf::of_len(h4 * h);
            let mut dbias = ScratchBuf::of_len(h4);
            let mut dh = ScratchBuf::of_len(h);
            let mut dh_prev = ScratchBuf::of_len(h);
            let mut dc = ScratchBuf::of_len(h);
            // Indexed loop: `s` also slices `grad` and the `dx` slab.
            #[allow(clippy::needless_range_loop)]
            for s in 0..n {
                dwih.fill(0.0);
                dwhh.fill(0.0);
                dbias.fill(0.0);
                dc.fill(0.0);
                dh.copy_from_slice(&grad.data()[s * h..(s + 1) * h]);
                // dx slab arrives zeroed from the workspace.
                let dxs = &mut dx.data_mut()[s * feat * steps..(s + 1) * feat * steps];
                self.backward_sample(
                    &caches[s], feat, steps, &mut dwih, &mut dwhh, &mut dbias, dxs, &mut dh,
                    &mut dh_prev, &mut dc,
                );
                for (dst, src) in self.w_ih.grad.iter_mut().zip(dwih.iter()) {
                    *dst += src;
                }
                for (dst, src) in self.w_hh.grad.iter_mut().zip(dwhh.iter()) {
                    *dst += src;
                }
                for (dst, src) in self.bias.grad.iter_mut().zip(dbias.iter()) {
                    *dst += src;
                }
            }
        } else {
            let sample_ids: Vec<usize> = (0..n).collect(); // alloc-ok: parallel arm
            // Each sample's backward chain only touches its own cache and
            // dx slab; parameter gradients are accumulated into
            // per-sample partials and reduced in sample order below, so
            // the bits depend only on that fixed order, never on
            // scheduling.
            let partials = bf_par::par_map_indexed(&sample_ids, |_, &s| {
                let mut dwih = vec![0.0f32; h4 * feat]; // alloc-ok: parallel arm
                let mut dwhh = vec![0.0f32; h4 * h]; // alloc-ok: parallel arm
                let mut dbias = vec![0.0f32; h4]; // alloc-ok: parallel arm
                let mut dxs = vec![0.0f32; feat * steps]; // alloc-ok: parallel arm
                let mut dh = grad.data()[s * h..(s + 1) * h].to_vec(); // alloc-ok: parallel arm
                let mut dh_prev = vec![0.0f32; h]; // alloc-ok: parallel arm
                let mut dc = vec![0.0f32; h]; // alloc-ok: parallel arm
                self.backward_sample(
                    &caches[s], feat, steps, &mut dwih, &mut dwhh, &mut dbias, &mut dxs, &mut dh,
                    &mut dh_prev, &mut dc,
                );
                (dxs, dwih, dwhh, dbias)
            });
            for (s, (dxs, dwih, dwhh, dbias)) in partials.into_iter().enumerate() {
                dx.data_mut()[s * feat * steps..(s + 1) * feat * steps].copy_from_slice(&dxs);
                for (dst, src) in self.w_ih.grad.iter_mut().zip(&dwih) {
                    *dst += src;
                }
                for (dst, src) in self.w_hh.grad.iter_mut().zip(&dwhh) {
                    *dst += src;
                }
                for (dst, src) in self.bias.grad.iter_mut().zip(&dbias) {
                    *dst += src;
                }
            }
        }
        self.caches = caches;
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w_ih, &mut self.w_hh, &mut self.bias] // alloc-ok: cold path (save/restore)
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w_ih);
        f(&mut self.w_hh);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;

    #[test]
    fn forward_shape() {
        let mut rng = SeedRng::new(1);
        let mut l = Lstm::new(3, 5, &mut rng);
        let x = Tensor::zeros(&[2, 3, 7]);
        let y = l.forward(&x, false);
        assert_eq!(y.shape(), &[2, 5]);
    }

    #[test]
    fn outputs_bounded_by_activation() {
        // h = o·tanh(c) with o ∈ (0,1), tanh(c) ∈ (−1,1).
        let mut rng = SeedRng::new(2);
        let mut l = Lstm::new(2, 4, &mut rng);
        let x = Tensor::new(&[1, 2, 9], (0..18).map(|i| (i as f32).sin() * 3.0).collect());
        let y = l.forward(&x, false);
        for &v in y.data() {
            assert!((-1.0..1.0).contains(&v), "v = {v}");
        }
    }

    #[test]
    fn state_accumulates_over_time() {
        let mut rng = SeedRng::new(3);
        let mut l = Lstm::new(1, 3, &mut rng);
        let short = l.forward(&Tensor::new(&[1, 1, 1], vec![1.0]), false);
        let long = l.forward(&Tensor::new(&[1, 1, 10], vec![1.0; 10]), false);
        assert_ne!(short.data(), long.data());
    }

    #[test]
    fn warm_caches_match_cold_forward() {
        // Reusing the persistent caches and pooled scratch must not
        // change a single bit versus a fresh layer.
        let mut rng = SeedRng::new(21);
        let mut l = Lstm::new(2, 4, &mut rng);
        let mut fresh = l.clone();
        let x = Tensor::new(&[3, 2, 6], (0..36).map(|i| (i as f32 * 0.11).sin()).collect());
        // Warm up on a different shape first, then on the target shape.
        let _ = l.forward(&Tensor::zeros(&[2, 2, 9]), true);
        let _ = l.forward(&x, true);
        let warm = l.forward(&x, true);
        let cold = fresh.forward(&x, true);
        assert_eq!(warm.data(), cold.data());
        let g = Tensor::new(&[3, 4], (0..12).map(|i| 0.1 * i as f32 - 0.5).collect());
        let dwarm = l.backward(&g);
        let dcold = fresh.backward(&g);
        assert_eq!(dwarm.data(), dcold.data());
        assert_eq!(l.w_ih.grad, fresh.w_ih.grad);
        assert_eq!(l.w_hh.grad, fresh.w_hh.grad);
        assert_eq!(l.bias.grad, fresh.bias.grad);
    }

    #[test]
    fn gradient_check() {
        let mut rng = SeedRng::new(4);
        let mut l = Lstm::new(2, 3, &mut rng);
        let x = Tensor::new(&[2, 2, 4], (0..16).map(|i| (i as f32 * 0.37).cos()).collect());
        let labels = [1usize, 0];

        let y = l.forward(&x, true);
        let (_, g) = softmax_cross_entropy(&y, &labels);
        let dx = l.backward(&g);

        let eps = 1e-2;
        let loss_at = |l: &mut Lstm, x: &Tensor| {
            let y = l.forward(x, false);
            softmax_cross_entropy(&y, &labels).0
        };
        // Spot-check each parameter tensor.
        for (pname, pick) in [("w_ih", 0usize), ("w_ih", 13), ("w_hh", 5), ("bias", 2), ("bias", 7)]
        {
            let (val, grad): (&mut Vec<f32>, f32) = match pname {
                "w_ih" => {
                    let g = l.w_ih.grad[pick];
                    (&mut l.w_ih.value, g)
                }
                "w_hh" => {
                    let g = l.w_hh.grad[pick];
                    (&mut l.w_hh.value, g)
                }
                _ => {
                    let g = l.bias.grad[pick];
                    (&mut l.bias.value, g)
                }
            };
            let orig = val[pick];
            val[pick] = orig + eps;
            let lp = loss_at(&mut l, &x);
            let val: &mut Vec<f32> = match pname {
                "w_ih" => &mut l.w_ih.value,
                "w_hh" => &mut l.w_hh.value,
                _ => &mut l.bias.value,
            };
            val[pick] = orig - eps;
            let lm = loss_at(&mut l, &x);
            let val: &mut Vec<f32> = match pname {
                "w_ih" => &mut l.w_ih.value,
                "w_hh" => &mut l.w_hh.value,
                _ => &mut l.bias.value,
            };
            val[pick] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad).abs() < 2e-2 * (1.0 + numeric.abs()),
                "{pname}[{pick}]: numeric {numeric} analytic {grad}"
            );
        }
        // Input gradients.
        for &xi in &[0usize, 7, 15] {
            let mut xp = x.clone();
            xp.data_mut()[xi] += eps;
            let lp = loss_at(&mut l, &xp);
            let mut xm = x.clone();
            xm.data_mut()[xi] -= eps;
            let lm = loss_at(&mut l, &xm);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = dx.data()[xi];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "x[{xi}]: numeric {numeric} analytic {analytic}"
            );
        }
    }

    #[test]
    fn gradient_check_sigmoid_variant() {
        let mut rng = SeedRng::new(11);
        let mut l = Lstm::with_activation(2, 3, LstmActivation::Sigmoid, &mut rng);
        let x = Tensor::new(&[1, 2, 5], (0..10).map(|i| (i as f32 * 0.29).sin()).collect());
        let labels = [2usize];
        let y = l.forward(&x, true);
        let (_, g) = softmax_cross_entropy(&y, &labels);
        let dx = l.backward(&g);
        let eps = 1e-2;
        for &xi in &[0usize, 4, 9] {
            let mut xp = x.clone();
            xp.data_mut()[xi] += eps;
            let lp = softmax_cross_entropy(&l.forward(&xp, false), &labels).0;
            let mut xm = x.clone();
            xm.data_mut()[xi] -= eps;
            let lm = softmax_cross_entropy(&l.forward(&xm, false), &labels).0;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = dx.data()[xi];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "x[{xi}]: numeric {numeric} analytic {analytic}"
            );
        }
    }

    #[test]
    fn sigmoid_outputs_bounded_unit_interval() {
        let mut rng = SeedRng::new(12);
        let mut l = Lstm::with_activation(2, 4, LstmActivation::Sigmoid, &mut rng);
        let x = Tensor::new(&[1, 2, 9], (0..18).map(|i| (i as f32).sin() * 3.0).collect());
        let y = l.forward(&x, false);
        for &v in y.data() {
            assert!((0.0..1.0).contains(&v), "v = {v}");
        }
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut rng = SeedRng::new(5);
        let l = Lstm::new(2, 4, &mut rng);
        assert!(l.bias.value[4..8].iter().all(|&b| b == 1.0));
        assert!(l.bias.value[0..4].iter().all(|&b| b == 0.0));
    }
}
