//! LSTM layer returning the final hidden state.
//!
//! The paper's model uses "LSTM (32 units, sigmoid activation)": the
//! candidate and cell-output activations are sigmoid (Keras
//! `LSTM(32, activation="sigmoid")`), while the gates use the standard
//! sigmoid as well.
//!
//! Samples are independent through time, so both passes process one
//! sample end-to-end and distribute the batch over `bf-par` workers.
//! Within a sample the input contribution to every timestep's gate
//! pre-activations is hoisted into a single blocked matmul against
//! `w_ih` ([`matmul_abt`]); only the recurrent term stays in the time
//! loop. Per-element accumulation order matches the sequential
//! reference, so forward outputs and input gradients are bit-identical
//! to it, and parameter-gradient partials are reduced in sample order,
//! so all results are bit-stable across thread counts.

use crate::param::Param;
use crate::tensor::{matmul_abt, Tensor};
use crate::Layer;
use bf_stats::SeedRng;

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Candidate/output activation of the LSTM cell. Gates always use
/// sigmoid. Keras's default is tanh; the paper's "(32 units, sigmoid
/// activation)" reads as the sigmoid variant, which this crate supports
/// exactly — but tanh trains far better on long sequences and is used by
/// the scaled experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum LstmActivation {
    /// Hyperbolic tangent (Keras default).
    #[default]
    Tanh,
    /// Logistic sigmoid (the paper's footnote wording).
    Sigmoid,
}

impl LstmActivation {
    #[inline]
    fn apply(self, x: f32) -> f32 {
        match self {
            LstmActivation::Tanh => x.tanh(),
            LstmActivation::Sigmoid => sigmoid(x),
        }
    }

    /// Derivative expressed in terms of the activation value `a`.
    #[inline]
    fn grad_from_value(self, a: f32) -> f32 {
        match self {
            LstmActivation::Tanh => 1.0 - a * a,
            LstmActivation::Sigmoid => a * (1.0 - a),
        }
    }
}

/// Per-sample values cached for backpropagation through time.
#[derive(Debug, Clone)]
struct SampleCache {
    /// The sample's input gathered time-major, `(steps, F)`.
    xs: Vec<f32>,
    /// Gate activations i, f, g, o — each `(steps, H)`.
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    /// Cell state after each step, `(steps, H)`.
    c: Vec<f32>,
    /// Hidden state after each step, `(steps, H)`.
    h: Vec<f32>,
}

/// An LSTM over the length axis of a `(N, C, L)` tensor (time = L,
/// features = C), producing the final hidden state `(N, H)`.
#[derive(Debug, Clone)]
pub struct Lstm {
    input_size: usize,
    hidden: usize,
    activation: LstmActivation,
    /// Input weights, `(4H, F)` row-major, gate order `[i, f, g, o]`.
    w_ih: Param,
    /// Recurrent weights, `(4H, H)`.
    w_hh: Param,
    /// Gate biases, `(4H)`.
    bias: Param,
    /// `(feat, steps, per-sample caches)` from the last training forward.
    cache: Option<(usize, usize, Vec<SampleCache>)>,
}

impl Lstm {
    /// A Glorot-initialized LSTM with the default (tanh) activation. The
    /// forget-gate bias starts at 1.0 (standard practice for trainable
    /// long-range memory).
    pub fn new(input_size: usize, hidden: usize, rng: &mut SeedRng) -> Self {
        Self::with_activation(input_size, hidden, LstmActivation::default(), rng)
    }

    /// A Glorot-initialized LSTM with an explicit candidate/output
    /// activation.
    pub fn with_activation(
        input_size: usize,
        hidden: usize,
        activation: LstmActivation,
        rng: &mut SeedRng,
    ) -> Self {
        let mut bias = Param::zeros(4 * hidden);
        for b in &mut bias.value[hidden..2 * hidden] {
            *b = 1.0;
        }
        Lstm {
            input_size,
            hidden,
            activation,
            w_ih: Param::glorot(4 * hidden * input_size, input_size, hidden, rng),
            w_hh: Param::glorot(4 * hidden * hidden, hidden, hidden, rng),
            bias,
            cache: None,
        }
    }

    /// Hidden-state width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Run one sample `(feat, steps)` through the recurrence, returning
    /// the final hidden state and the full per-step cache. Pure in the
    /// sample and the layer parameters, so samples can run on any worker.
    fn forward_sample(&self, sample: &[f32], feat: usize, steps: usize) -> (Vec<f32>, SampleCache) {
        let h = self.hidden;
        let h4 = 4 * h;
        // Gather time-major (steps, F) so the input term of every
        // timestep's pre-activation becomes one blocked matmul.
        let mut xs = vec![0.0f32; steps * feat];
        for ci in 0..feat {
            for t in 0..steps {
                xs[t * feat + ci] = sample[ci * steps + t];
            }
        }
        // zx[t, row] = bias[row] + dot(w_ih[row], x_t): the bias-then-
        // input prefix of the gate pre-activation, hoisted out of the
        // time loop with the reference accumulation order intact.
        let mut zx = vec![0.0f32; steps * h4];
        matmul_abt(
            &xs,
            &self.w_ih.value,
            steps,
            h4,
            feat,
            None,
            Some(&self.bias.value),
            &mut zx,
        );
        let mut cache = SampleCache {
            xs,
            i: vec![0.0; steps * h],
            f: vec![0.0; steps * h],
            g: vec![0.0; steps * h],
            o: vec![0.0; steps * h],
            c: vec![0.0; steps * h],
            h: vec![0.0; steps * h],
        };
        let mut h_prev = vec![0.0f32; h];
        let mut c_prev = vec![0.0f32; h];
        let mut z = vec![0.0f32; h4];
        for t in 0..steps {
            // Recurrent term, row-then-k order as in the reference.
            for (row, zv) in z.iter_mut().enumerate() {
                let mut acc = zx[t * h4 + row];
                let urow = &self.w_hh.value[row * h..(row + 1) * h];
                for (hv, uv) in h_prev.iter().zip(urow) {
                    acc += hv * uv;
                }
                *zv = acc;
            }
            for u in 0..h {
                let i_g = sigmoid(z[u]);
                let f_g = sigmoid(z[h + u]);
                let g_g = self.activation.apply(z[2 * h + u]);
                let o_g = sigmoid(z[3 * h + u]);
                let c_new = f_g * c_prev[u] + i_g * g_g;
                let h_new = o_g * self.activation.apply(c_new);
                let idx = t * h + u;
                cache.i[idx] = i_g;
                cache.f[idx] = f_g;
                cache.g[idx] = g_g;
                cache.o[idx] = o_g;
                cache.c[idx] = c_new;
                cache.h[idx] = h_new;
                c_prev[u] = c_new;
                h_prev[u] = h_new;
            }
        }
        (h_prev, cache)
    }
}

impl Layer for Lstm {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 3, "lstm expects (N, C, L)");
        assert_eq!(x.shape()[1], self.input_size, "lstm feature width mismatch");
        let (n, feat, steps) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let h = self.hidden;
        let samples: Vec<&[f32]> = x.data().chunks((feat * steps).max(1)).collect();
        let results =
            bf_par::par_map_indexed(&samples, |_, sample| self.forward_sample(sample, feat, steps));
        let mut out = Tensor::zeros(&[n, h]);
        let mut caches = Vec::with_capacity(if train { n } else { 0 });
        for (s, (hf, cache)) in results.into_iter().enumerate() {
            out.data_mut()[s * h..(s + 1) * h].copy_from_slice(&hf);
            if train {
                caches.push(cache);
            }
        }
        if train {
            self.cache = Some((feat, steps, caches));
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let (feat, steps, caches) = self.cache.as_ref().expect("backward without forward");
        let (feat, steps) = (*feat, *steps);
        let n = caches.len();
        let h = self.hidden;
        assert_eq!(grad.shape(), &[n, h]);
        let h4 = 4 * h;
        let sample_ids: Vec<usize> = (0..n).collect();
        // Each sample's backward chain only touches its own cache and dx
        // slab; parameter gradients are accumulated into per-sample
        // partials and reduced in sample order below, so the bits depend
        // only on that fixed order, never on scheduling.
        let partials = bf_par::par_map_indexed(&sample_ids, |_, &s| {
            let cache = &caches[s];
            let mut dwih = vec![0.0f32; h4 * feat];
            let mut dwhh = vec![0.0f32; h4 * h];
            let mut dbias = vec![0.0f32; h4];
            let mut dxs = vec![0.0f32; feat * steps];
            let mut dh = grad.data()[s * h..(s + 1) * h].to_vec();
            let mut dc = vec![0.0f32; h];
            for t in (0..steps).rev() {
                let mut dh_prev = vec![0.0f32; h];
                for u in 0..h {
                    let idx = t * h + u;
                    let i_g = cache.i[idx];
                    let f_g = cache.f[idx];
                    let g_g = cache.g[idx];
                    let o_g = cache.o[idx];
                    let c_v = cache.c[idx];
                    let c_prev_v = if t == 0 { 0.0 } else { cache.c[idx - h] };
                    let ac = self.activation.apply(c_v);
                    // h = o * act(c)
                    let dz_o = dh[u] * ac * o_g * (1.0 - o_g);
                    let dc_total = dc[u] + dh[u] * o_g * self.activation.grad_from_value(ac);
                    let dz_i = dc_total * g_g * i_g * (1.0 - i_g);
                    let dz_g = dc_total * i_g * self.activation.grad_from_value(g_g);
                    let dz_f = dc_total * c_prev_v * f_g * (1.0 - f_g);
                    dc[u] = dc_total * f_g;

                    let gate_rows = [u, h + u, 2 * h + u, 3 * h + u];
                    let dzs = [dz_i, dz_f, dz_g, dz_o];
                    for (row, dz) in gate_rows.into_iter().zip(dzs) {
                        if dz == 0.0 {
                            continue;
                        }
                        dbias[row] += dz;
                        // Input weight grads + input grads.
                        let wbase = row * feat;
                        for ci in 0..feat {
                            dwih[wbase + ci] += dz * cache.xs[t * feat + ci];
                            dxs[ci * steps + t] += dz * self.w_ih.value[wbase + ci];
                        }
                        // Recurrent weight grads + h_prev grads.
                        let ubase = row * h;
                        for hu in 0..h {
                            let h_prev_v = if t == 0 { 0.0 } else { cache.h[(t - 1) * h + hu] };
                            dwhh[ubase + hu] += dz * h_prev_v;
                            dh_prev[hu] += dz * self.w_hh.value[ubase + hu];
                        }
                    }
                }
                dh = dh_prev;
            }
            (dxs, dwih, dwhh, dbias)
        });
        let mut dx = Tensor::zeros(&[n, feat, steps]);
        for (s, (dxs, dwih, dwhh, dbias)) in partials.into_iter().enumerate() {
            dx.data_mut()[s * feat * steps..(s + 1) * feat * steps].copy_from_slice(&dxs);
            for (dst, src) in self.w_ih.grad.iter_mut().zip(&dwih) {
                *dst += src;
            }
            for (dst, src) in self.w_hh.grad.iter_mut().zip(&dwhh) {
                *dst += src;
            }
            for (dst, src) in self.bias.grad.iter_mut().zip(&dbias) {
                *dst += src;
            }
        }
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w_ih, &mut self.w_hh, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;

    #[test]
    fn forward_shape() {
        let mut rng = SeedRng::new(1);
        let mut l = Lstm::new(3, 5, &mut rng);
        let x = Tensor::zeros(&[2, 3, 7]);
        let y = l.forward(&x, false);
        assert_eq!(y.shape(), &[2, 5]);
    }

    #[test]
    fn outputs_bounded_by_activation() {
        // h = o·tanh(c) with o ∈ (0,1), tanh(c) ∈ (−1,1).
        let mut rng = SeedRng::new(2);
        let mut l = Lstm::new(2, 4, &mut rng);
        let x = Tensor::new(&[1, 2, 9], (0..18).map(|i| (i as f32).sin() * 3.0).collect());
        let y = l.forward(&x, false);
        for &v in y.data() {
            assert!((-1.0..1.0).contains(&v), "v = {v}");
        }
    }

    #[test]
    fn state_accumulates_over_time() {
        let mut rng = SeedRng::new(3);
        let mut l = Lstm::new(1, 3, &mut rng);
        let short = l.forward(&Tensor::new(&[1, 1, 1], vec![1.0]), false);
        let long = l.forward(&Tensor::new(&[1, 1, 10], vec![1.0; 10]), false);
        assert_ne!(short.data(), long.data());
    }

    #[test]
    fn gradient_check() {
        let mut rng = SeedRng::new(4);
        let mut l = Lstm::new(2, 3, &mut rng);
        let x = Tensor::new(&[2, 2, 4], (0..16).map(|i| (i as f32 * 0.37).cos()).collect());
        let labels = [1usize, 0];

        let y = l.forward(&x, true);
        let (_, g) = softmax_cross_entropy(&y, &labels);
        let dx = l.backward(&g);

        let eps = 1e-2;
        let loss_at = |l: &mut Lstm, x: &Tensor| {
            let y = l.forward(x, false);
            softmax_cross_entropy(&y, &labels).0
        };
        // Spot-check each parameter tensor.
        for (pname, pick) in [("w_ih", 0usize), ("w_ih", 13), ("w_hh", 5), ("bias", 2), ("bias", 7)]
        {
            let (val, grad): (&mut Vec<f32>, f32) = match pname {
                "w_ih" => {
                    let g = l.w_ih.grad[pick];
                    (&mut l.w_ih.value, g)
                }
                "w_hh" => {
                    let g = l.w_hh.grad[pick];
                    (&mut l.w_hh.value, g)
                }
                _ => {
                    let g = l.bias.grad[pick];
                    (&mut l.bias.value, g)
                }
            };
            let orig = val[pick];
            val[pick] = orig + eps;
            let lp = loss_at(&mut l, &x);
            let val: &mut Vec<f32> = match pname {
                "w_ih" => &mut l.w_ih.value,
                "w_hh" => &mut l.w_hh.value,
                _ => &mut l.bias.value,
            };
            val[pick] = orig - eps;
            let lm = loss_at(&mut l, &x);
            let val: &mut Vec<f32> = match pname {
                "w_ih" => &mut l.w_ih.value,
                "w_hh" => &mut l.w_hh.value,
                _ => &mut l.bias.value,
            };
            val[pick] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad).abs() < 2e-2 * (1.0 + numeric.abs()),
                "{pname}[{pick}]: numeric {numeric} analytic {grad}"
            );
        }
        // Input gradients.
        for &xi in &[0usize, 7, 15] {
            let mut xp = x.clone();
            xp.data_mut()[xi] += eps;
            let lp = loss_at(&mut l, &xp);
            let mut xm = x.clone();
            xm.data_mut()[xi] -= eps;
            let lm = loss_at(&mut l, &xm);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = dx.data()[xi];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "x[{xi}]: numeric {numeric} analytic {analytic}"
            );
        }
    }

    #[test]
    fn gradient_check_sigmoid_variant() {
        let mut rng = SeedRng::new(11);
        let mut l = Lstm::with_activation(2, 3, LstmActivation::Sigmoid, &mut rng);
        let x = Tensor::new(&[1, 2, 5], (0..10).map(|i| (i as f32 * 0.29).sin()).collect());
        let labels = [2usize];
        let y = l.forward(&x, true);
        let (_, g) = softmax_cross_entropy(&y, &labels);
        let dx = l.backward(&g);
        let eps = 1e-2;
        for &xi in &[0usize, 4, 9] {
            let mut xp = x.clone();
            xp.data_mut()[xi] += eps;
            let lp = softmax_cross_entropy(&l.forward(&xp, false), &labels).0;
            let mut xm = x.clone();
            xm.data_mut()[xi] -= eps;
            let lm = softmax_cross_entropy(&l.forward(&xm, false), &labels).0;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = dx.data()[xi];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "x[{xi}]: numeric {numeric} analytic {analytic}"
            );
        }
    }

    #[test]
    fn sigmoid_outputs_bounded_unit_interval() {
        let mut rng = SeedRng::new(12);
        let mut l = Lstm::with_activation(2, 4, LstmActivation::Sigmoid, &mut rng);
        let x = Tensor::new(&[1, 2, 9], (0..18).map(|i| (i as f32).sin() * 3.0).collect());
        let y = l.forward(&x, false);
        for &v in y.data() {
            assert!((0.0..1.0).contains(&v), "v = {v}");
        }
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut rng = SeedRng::new(5);
        let l = Lstm::new(2, 4, &mut rng);
        assert!(l.bias.value[4..8].iter().all(|&b| b == 1.0));
        assert!(l.bias.value[0..4].iter().all(|&b| b == 0.0));
    }
}
