//! 1-D convolution.
//!
//! The forward and backward passes are built on the shared
//! [`im2col`]/[`matmul_abt`] primitives with per-sample (intra-batch)
//! parallelism from `bf-par`. Every output element accumulates its terms
//! in the same order as the original quadruple loop — bias first, then
//! `(ci, k)`-major — so results are bit-identical to the scalar path and
//! independent of `BF_THREADS`. Tiny shapes skip the im2col detour and
//! take a hoisted scalar path instead.

use crate::param::Param;
use crate::tensor::{axpy2_unrolled, axpy_unrolled, dot_unrolled_from, im2col_into, matmul_abt, Tensor};
use crate::workspace::{self, ScratchBuf};
use crate::Layer;
use bf_stats::SeedRng;

/// Below this many multiply-adds per sample the im2col buffer costs more
/// than it saves; take the scalar path. Both paths produce identical
/// bits, so the threshold only affects speed.
const IM2COL_MIN_FLOPS: usize = 8 * 1024;

/// Strided valid 1-D convolution mapping `(N, C_in, L)` to
/// `(N, C_out, L_out)` with `L_out = (L - kernel) / stride + 1`.
#[derive(Debug, Clone)]
pub struct Conv1d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    /// Weights laid out `(C_out, C_in, K)` row-major.
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Conv1d {
    /// A Glorot-initialized convolution.
    ///
    /// # Panics
    ///
    /// Panics when kernel or stride is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        rng: &mut SeedRng,
    ) -> Self {
        assert!(kernel > 0 && stride > 0, "kernel and stride must be positive");
        let fan_in = in_channels * kernel;
        Conv1d {
            in_channels,
            out_channels,
            kernel,
            stride,
            weight: Param::glorot(out_channels * fan_in, fan_in, out_channels, rng),
            bias: Param::zeros(out_channels),
            cached_input: None,
        }
    }

    /// Output length for an input of length `l`.
    ///
    /// # Panics
    ///
    /// Panics when `l < kernel` (no valid window).
    pub fn out_len(&self, l: usize) -> usize {
        assert!(l >= self.kernel, "input length {l} shorter than kernel {}", self.kernel);
        (l - self.kernel) / self.stride + 1
    }

    #[inline]
    fn w(&self, co: usize, ci: usize, k: usize) -> usize {
        (co * self.in_channels + ci) * self.kernel + k
    }

    /// Per-sample multiply-add count, the im2col-vs-scalar gate.
    fn sample_flops(&self, lo: usize) -> usize {
        self.out_channels * lo * self.in_channels * self.kernel
    }

    /// Scalar fallback for one sample: bias hoisted out of the position
    /// loop, weight/input rows sliced once per `(co, ci)`. Accumulation
    /// per output element is bias-first then `(ci, k)`-major — identical
    /// to the im2col path.
    fn forward_sample_scalar(&self, sample: &[f32], l: usize, lo: usize, out: &mut [f32]) {
        for co in 0..self.out_channels {
            let bias = self.bias.value[co];
            let orow = &mut out[co * lo..(co + 1) * lo];
            orow.fill(bias);
            for ci in 0..self.in_channels {
                let wbase = self.w(co, ci, 0);
                let ws = &self.weight.value[wbase..wbase + self.kernel];
                let xrow = &sample[ci * l..(ci + 1) * l];
                for (p, ov) in orow.iter_mut().enumerate() {
                    let start = p * self.stride;
                    *ov = dot_unrolled_from(*ov, &xrow[start..start + self.kernel], ws);
                }
            }
        }
    }

    /// One channel's parameter-gradient partial, accumulated over
    /// `(i, p)` in index order (the per-element order of the sequential
    /// quadruple loop). `cols` is the batch's im2col matrix when the
    /// im2col gate is open; `wg` must arrive zeroed.
    #[allow(clippy::too_many_arguments)]
    fn backward_channel(
        &self,
        co: usize,
        x: &Tensor,
        grad: &Tensor,
        cols: Option<&[f32]>,
        n: usize,
        l: usize,
        lo: usize,
        wg: &mut [f32],
        bg: &mut f32,
    ) {
        let (cin, k, stride) = (self.in_channels, self.kernel, self.stride);
        let ck = cin * k;
        let sample_len = cin * l;
        if let Some(cols) = cols {
            if ck <= 16 {
                // Narrow rows (e.g. a 1-channel first conv): keep the
                // whole partial in a stack accumulator so the `(i, p)`
                // sweep never re-reads `wg` from memory. Each element
                // still receives its nonzero-`g` products strictly in
                // `(i, p)` order.
                let mut acc = [0.0f32; 16];
                let acc = &mut acc[..ck];
                for t in 0..n * lo {
                    let (i, p) = (t / lo, t % lo);
                    let g = grad.data()[(i * self.out_channels + co) * lo + p];
                    if g == 0.0 {
                        continue;
                    }
                    *bg += g;
                    let colrow = &cols[t * ck..(t + 1) * ck];
                    for (av, cv) in acc.iter_mut().zip(colrow) {
                        *av += g * cv;
                    }
                }
                wg.copy_from_slice(acc);
            } else {
                // Wide rows: fuse pairs of nonzero-`g` updates so each
                // sweep over `wg` applies two products per element —
                // same per-element order, half the row traffic.
                let mut pending: Option<(f32, usize)> = None;
                for t in 0..n * lo {
                    let (i, p) = (t / lo, t % lo);
                    let g = grad.data()[(i * self.out_channels + co) * lo + p];
                    if g == 0.0 {
                        continue;
                    }
                    *bg += g;
                    match pending.take() {
                        Some((g0, t0)) => axpy2_unrolled(
                            wg,
                            g0,
                            &cols[t0 * ck..(t0 + 1) * ck],
                            g,
                            &cols[t * ck..(t + 1) * ck],
                        ),
                        None => pending = Some((g, t)),
                    }
                }
                if let Some((g0, t0)) = pending {
                    axpy_unrolled(wg, g0, &cols[t0 * ck..(t0 + 1) * ck]);
                }
            }
            return;
        }
        for i in 0..n {
            for p in 0..lo {
                let g = grad.data()[(i * self.out_channels + co) * lo + p];
                if g == 0.0 {
                    continue;
                }
                *bg += g;
                let start = p * stride;
                let sample = &x.data()[i * sample_len..(i + 1) * sample_len];
                for ci in 0..cin {
                    let xs = &sample[ci * l + start..ci * l + start + k];
                    axpy_unrolled(&mut wg[ci * k..(ci + 1) * k], g, xs);
                }
            }
        }
    }

    /// One sample's input-gradient slab, accumulated in `(co, p, ci, k)`
    /// order as the sequential loop did. `dxi` must arrive zeroed.
    fn backward_sample_dx(&self, i: usize, grad: &Tensor, l: usize, lo: usize, dxi: &mut [f32]) {
        let (cin, k, stride) = (self.in_channels, self.kernel, self.stride);
        let ck = cin * k;
        for co in 0..self.out_channels {
            let wrow_base = co * ck;
            let grow = &grad.data()[(i * self.out_channels + co) * lo..(i * self.out_channels + co + 1) * lo];
            for (p, &g) in grow.iter().enumerate() {
                if g == 0.0 {
                    continue;
                }
                let start = p * stride;
                if k == 8 {
                    // The paper's kernel width: a fixed-size window lets
                    // the eight independent multiply-adds compile to
                    // straight-line SIMD with no per-call loop setup.
                    for ci in 0..cin {
                        let wbase = wrow_base + ci * k;
                        let ws: &[f32; 8] =
                            self.weight.value[wbase..wbase + 8].try_into().expect("k == 8");
                        let base = ci * l + start;
                        let d: &mut [f32; 8] =
                            (&mut dxi[base..base + 8]).try_into().expect("k == 8");
                        d[0] += g * ws[0];
                        d[1] += g * ws[1];
                        d[2] += g * ws[2];
                        d[3] += g * ws[3];
                        d[4] += g * ws[4];
                        d[5] += g * ws[5];
                        d[6] += g * ws[6];
                        d[7] += g * ws[7];
                    }
                } else {
                    for ci in 0..cin {
                        let ws = &self.weight.value[wrow_base + ci * k..wrow_base + (ci + 1) * k];
                        axpy_unrolled(&mut dxi[ci * l + start..ci * l + start + k], g, ws);
                    }
                }
            }
        }
    }
}

impl Layer for Conv1d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 3, "conv1d expects (N, C, L)");
        assert_eq!(x.shape()[1], self.in_channels, "channel mismatch");
        let n = x.shape()[0];
        let l = x.shape()[2];
        let lo = self.out_len(l);
        let mut out = workspace::tensor(&[n, self.out_channels, lo]);
        let use_im2col = self.sample_flops(lo) >= IM2COL_MIN_FLOPS;
        let ck = self.in_channels * self.kernel;
        let sample_len = self.in_channels * l;
        let xdata = x.data();
        // Each sample owns a disjoint slab of `out`; the per-worker
        // scratch is the im2col column buffer (pooled on the inline
        // path, so a steady-state step never allocates here). The
        // per-sample MAC count doubles as the fork-join work estimate:
        // small shapes stay inline instead of paying spawn cost.
        bf_par::par_chunks_mut_scratch_units(
            out.data_mut(),
            self.out_channels * lo,
            1,
            self.sample_flops(lo),
            || ScratchBuf::of_len(if use_im2col { lo * ck } else { 0 }),
            |i, chunk, col| {
                let sample = &xdata[i * sample_len..(i + 1) * sample_len];
                if use_im2col {
                    im2col_into(sample, self.in_channels, l, self.kernel, self.stride, col);
                    matmul_abt(
                        &self.weight.value,
                        col,
                        self.out_channels,
                        lo,
                        ck,
                        Some(&self.bias.value),
                        None,
                        chunk,
                    );
                } else {
                    self.forward_sample_scalar(sample, l, lo, chunk);
                }
            },
        );
        if train {
            match &mut self.cached_input {
                Some(c) => c.copy_from(x),
                None => self.cached_input = Some(x.clone()),
            }
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        // Taken out of `self` (and restored below) so the gradient merge
        // can borrow `self` mutably while `x` stays readable.
        let x = self.cached_input.take().expect("backward without forward");
        let n = x.shape()[0];
        let l = x.shape()[2];
        let lo = self.out_len(l);
        assert_eq!(grad.shape(), &[n, self.out_channels, lo]);
        let (cin, k, stride) = (self.in_channels, self.kernel, self.stride);
        let ck = cin * k;
        let sample_len = cin * l;

        // The whole batch's im2col matrix, built once (sequentially — it
        // is pure memcpy) and shared read-only by every channel worker.
        let use_im2col = self.sample_flops(lo) >= IM2COL_MIN_FLOPS;
        let mut col_buf = ScratchBuf::of_len(if use_im2col { n * lo * ck } else { 0 });
        if use_im2col {
            for (i, sample) in x.data().chunks(sample_len).enumerate() {
                im2col_into(sample, cin, l, k, stride, &mut col_buf[i * lo * ck..(i + 1) * lo * ck]);
            }
        }
        let cols: Option<&[f32]> = use_im2col.then_some(&col_buf);

        // Pass A — parameter gradients, parallel over output channels:
        // each worker owns `weight.grad` rows and `bias.grad[co]` of its
        // channels, accumulating over `(i, p)` in index order (the same
        // per-element order as the sequential quadruple loop). On the
        // inline path one pooled partial buffer serves every channel.
        if bf_par::plan_units(self.out_channels, 8, n * lo * ck) <= 1 {
            let mut wg = ScratchBuf::of_len(ck);
            for co in 0..self.out_channels {
                wg.fill(0.0);
                let mut bg = 0.0f32;
                self.backward_channel(co, &x, grad, cols, n, l, lo, &mut wg, &mut bg);
                self.bias.grad[co] += bg;
                let wrow = &mut self.weight.grad[co * ck..(co + 1) * ck];
                for (dst, src) in wrow.iter_mut().zip(wg.iter()) {
                    *dst += src;
                }
            }
        } else {
            let channels: Vec<usize> = (0..self.out_channels).collect(); // alloc-ok: parallel arm
            let partials = bf_par::par_map_indexed_grained(&channels, 8, |_, &co| {
                let mut wg = vec![0.0f32; ck]; // alloc-ok: parallel arm
                let mut bg = 0.0f32;
                self.backward_channel(co, &x, grad, cols, n, l, lo, &mut wg, &mut bg);
                (wg, bg)
            });
            for (co, (wg, bg)) in partials.into_iter().enumerate() {
                self.bias.grad[co] += bg;
                let wrow = &mut self.weight.grad[co * ck..(co + 1) * ck];
                for (dst, src) in wrow.iter_mut().zip(&wg) {
                    *dst += src;
                }
            }
        }

        // Pass B — input gradients, parallel over samples: each sample's
        // dx slab is disjoint, accumulated in `(co, p, ci, k)` order as
        // the sequential loop did.
        let mut dx = workspace::tensor(&[n, cin, l]);
        let this = &*self;
        bf_par::par_chunks_mut_scratch_units(
            dx.data_mut(),
            sample_len,
            1,
            self.sample_flops(lo),
            || (),
            |i, dxi, ()| this.backward_sample_dx(i, grad, l, lo, dxi),
        );
        self.cached_input = Some(x);
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias] // alloc-ok: cold path (save/restore)
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;

    #[test]
    fn out_len_formula() {
        let mut rng = SeedRng::new(1);
        let c = Conv1d::new(1, 4, 8, 3, &mut rng);
        assert_eq!(c.out_len(300), 98);
        assert_eq!(c.out_len(8), 1);
    }

    #[test]
    fn identity_kernel_passes_signal() {
        let mut rng = SeedRng::new(2);
        let mut c = Conv1d::new(1, 1, 1, 1, &mut rng);
        c.weight.value = vec![2.0];
        c.bias.value = vec![1.0];
        let x = Tensor::new(&[1, 1, 3], vec![1.0, 2.0, 3.0]);
        let y = c.forward(&x, false);
        assert_eq!(y.data(), &[3.0, 5.0, 7.0]);
    }

    #[test]
    fn stride_downsamples() {
        let mut rng = SeedRng::new(3);
        let mut c = Conv1d::new(1, 1, 2, 2, &mut rng);
        c.weight.value = vec![1.0, 1.0];
        c.bias.value = vec![0.0];
        let x = Tensor::new(&[1, 1, 6], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = c.forward(&x, false);
        assert_eq!(y.data(), &[3.0, 7.0, 11.0]);
    }

    #[test]
    fn multi_channel_sums_contributions() {
        let mut rng = SeedRng::new(4);
        let mut c = Conv1d::new(2, 1, 1, 1, &mut rng);
        c.weight.value = vec![1.0, 10.0];
        c.bias.value = vec![0.0];
        let x = Tensor::new(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = c.forward(&x, false);
        assert_eq!(y.data(), &[31.0, 42.0]);
    }

    #[test]
    fn gradient_check() {
        let mut rng = SeedRng::new(5);
        let mut c = Conv1d::new(2, 3, 3, 2, &mut rng);
        let x = Tensor::new(&[1, 2, 9], (0..18).map(|i| (i as f32 * 0.13).sin()).collect());
        // Loss: flatten conv output through softmax CE with a fake label.
        let lo = c.out_len(9);
        let flat = |t: Tensor| t.reshaped(&[1, 3 * lo]);
        let y = c.forward(&x, true);
        let (_, g) = softmax_cross_entropy(&flat(y), &[2]);
        let g3 = g.reshaped(&[1, 3, lo]);
        let dx = c.backward(&g3);

        let eps = 1e-2;
        let loss_at = |c: &mut Conv1d, x: &Tensor| {
            let y = c.forward(x, false);
            let (l, _) = softmax_cross_entropy(&y.reshaped(&[1, 3 * lo]), &[2]);
            l
        };
        for &wi in &[0usize, 7, 17] {
            let orig = c.weight.value[wi];
            c.weight.value[wi] = orig + eps;
            let lp = loss_at(&mut c, &x);
            c.weight.value[wi] = orig - eps;
            let lm = loss_at(&mut c, &x);
            c.weight.value[wi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = c.weight.grad[wi];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "w[{wi}]: numeric {numeric} analytic {analytic}"
            );
        }
        for &xi in &[0usize, 8, 17] {
            let mut xp = x.clone();
            xp.data_mut()[xi] += eps;
            let lp = loss_at(&mut c, &xp);
            let mut xm = x.clone();
            xm.data_mut()[xi] -= eps;
            let lm = loss_at(&mut c, &xm);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = dx.data()[xi];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "x[{xi}]: numeric {numeric} analytic {analytic}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "shorter than kernel")]
    fn too_short_input_panics() {
        let mut rng = SeedRng::new(6);
        let mut c = Conv1d::new(1, 1, 8, 3, &mut rng);
        c.forward(&Tensor::zeros(&[1, 1, 4]), false);
    }
}
