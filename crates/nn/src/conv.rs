//! 1-D convolution.
//!
//! The forward and backward passes are built on the shared
//! [`im2col`]/[`matmul_abt`] primitives with per-sample (intra-batch)
//! parallelism from `bf-par`. Every output element accumulates its terms
//! in the same order as the original quadruple loop — bias first, then
//! `(ci, k)`-major — so results are bit-identical to the scalar path and
//! independent of `BF_THREADS`. Tiny shapes skip the im2col detour and
//! take a hoisted scalar path instead.

use crate::param::Param;
use crate::tensor::{im2col, matmul_abt, Tensor};
use crate::Layer;
use bf_stats::SeedRng;

/// Below this many multiply-adds per sample the im2col buffer costs more
/// than it saves; take the scalar path. Both paths produce identical
/// bits, so the threshold only affects speed.
const IM2COL_MIN_FLOPS: usize = 8 * 1024;

/// Strided valid 1-D convolution mapping `(N, C_in, L)` to
/// `(N, C_out, L_out)` with `L_out = (L - kernel) / stride + 1`.
#[derive(Debug, Clone)]
pub struct Conv1d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    /// Weights laid out `(C_out, C_in, K)` row-major.
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Conv1d {
    /// A Glorot-initialized convolution.
    ///
    /// # Panics
    ///
    /// Panics when kernel or stride is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        rng: &mut SeedRng,
    ) -> Self {
        assert!(kernel > 0 && stride > 0, "kernel and stride must be positive");
        let fan_in = in_channels * kernel;
        Conv1d {
            in_channels,
            out_channels,
            kernel,
            stride,
            weight: Param::glorot(out_channels * fan_in, fan_in, out_channels, rng),
            bias: Param::zeros(out_channels),
            cached_input: None,
        }
    }

    /// Output length for an input of length `l`.
    ///
    /// # Panics
    ///
    /// Panics when `l < kernel` (no valid window).
    pub fn out_len(&self, l: usize) -> usize {
        assert!(l >= self.kernel, "input length {l} shorter than kernel {}", self.kernel);
        (l - self.kernel) / self.stride + 1
    }

    #[inline]
    fn w(&self, co: usize, ci: usize, k: usize) -> usize {
        (co * self.in_channels + ci) * self.kernel + k
    }

    /// Per-sample multiply-add count, the im2col-vs-scalar gate.
    fn sample_flops(&self, lo: usize) -> usize {
        self.out_channels * lo * self.in_channels * self.kernel
    }

    /// Scalar fallback for one sample: bias hoisted out of the position
    /// loop, weight/input rows sliced once per `(co, ci)`. Accumulation
    /// per output element is bias-first then `(ci, k)`-major — identical
    /// to the im2col path.
    fn forward_sample_scalar(&self, sample: &[f32], l: usize, lo: usize, out: &mut [f32]) {
        for co in 0..self.out_channels {
            let bias = self.bias.value[co];
            let orow = &mut out[co * lo..(co + 1) * lo];
            orow.fill(bias);
            for ci in 0..self.in_channels {
                let wbase = self.w(co, ci, 0);
                let ws = &self.weight.value[wbase..wbase + self.kernel];
                let xrow = &sample[ci * l..(ci + 1) * l];
                for (p, ov) in orow.iter_mut().enumerate() {
                    let start = p * self.stride;
                    let mut acc = *ov;
                    for (xv, wv) in xrow[start..start + self.kernel].iter().zip(ws) {
                        acc += xv * wv;
                    }
                    *ov = acc;
                }
            }
        }
    }

    /// im2col + blocked-matmul path for one sample.
    fn forward_sample_im2col(&self, sample: &[f32], l: usize, lo: usize, out: &mut [f32]) {
        let ck = self.in_channels * self.kernel;
        let mut col = Vec::new();
        im2col(sample, self.in_channels, l, self.kernel, self.stride, &mut col);
        matmul_abt(
            &self.weight.value,
            &col,
            self.out_channels,
            lo,
            ck,
            Some(&self.bias.value),
            None,
            out,
        );
    }
}

impl Layer for Conv1d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 3, "conv1d expects (N, C, L)");
        assert_eq!(x.shape()[1], self.in_channels, "channel mismatch");
        let n = x.shape()[0];
        let l = x.shape()[2];
        let lo = self.out_len(l);
        let mut out = Tensor::zeros(&[n, self.out_channels, lo]);
        let use_im2col = self.sample_flops(lo) >= IM2COL_MIN_FLOPS;
        let samples: Vec<&[f32]> = x.data().chunks(self.in_channels * l).collect();
        let chunks = bf_par::par_map_indexed(&samples, |_, sample| {
            let mut chunk = vec![0.0f32; self.out_channels * lo];
            if use_im2col {
                self.forward_sample_im2col(sample, l, lo, &mut chunk);
            } else {
                self.forward_sample_scalar(sample, l, lo, &mut chunk);
            }
            chunk
        });
        for (i, chunk) in chunks.iter().enumerate() {
            let base = i * self.out_channels * lo;
            out.data_mut()[base..base + chunk.len()].copy_from_slice(chunk);
        }
        if train {
            self.cached_input = Some(x.clone());
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("backward without forward");
        let n = x.shape()[0];
        let l = x.shape()[2];
        let lo = self.out_len(l);
        assert_eq!(grad.shape(), &[n, self.out_channels, lo]);
        let (cin, k, stride) = (self.in_channels, self.kernel, self.stride);
        let ck = cin * k;
        let sample_len = cin * l;

        // Pass A — parameter gradients, parallel over output channels:
        // each worker owns `weight.grad` rows and `bias.grad[co]` of its
        // channels, accumulating over `(i, p)` in index order (the same
        // per-element order as the sequential quadruple loop). The im2col
        // matrices are shared read-only across channels.
        let cols: Option<Vec<Vec<f32>>> = if self.sample_flops(lo) >= IM2COL_MIN_FLOPS {
            Some(
                x.data()
                    .chunks(sample_len)
                    .map(|sample| {
                        let mut col = Vec::new();
                        im2col(sample, cin, l, k, stride, &mut col);
                        col
                    })
                    .collect(),
            )
        } else {
            None
        };
        let channels: Vec<usize> = (0..self.out_channels).collect();
        let partials = bf_par::par_map_indexed_grained(&channels, 8, |_, &co| {
            let mut wg = vec![0.0f32; ck];
            let mut bg = 0.0f32;
            for i in 0..n {
                for p in 0..lo {
                    let g = grad.data()[(i * self.out_channels + co) * lo + p];
                    if g == 0.0 {
                        continue;
                    }
                    bg += g;
                    match &cols {
                        Some(cols) => {
                            let colrow = &cols[i][p * ck..(p + 1) * ck];
                            for (wv, cv) in wg.iter_mut().zip(colrow) {
                                *wv += g * cv;
                            }
                        }
                        None => {
                            let start = p * stride;
                            let sample = &x.data()[i * sample_len..(i + 1) * sample_len];
                            for ci in 0..cin {
                                let xs = &sample[ci * l + start..ci * l + start + k];
                                let wrow = &mut wg[ci * k..(ci + 1) * k];
                                for (wv, xv) in wrow.iter_mut().zip(xs) {
                                    *wv += g * xv;
                                }
                            }
                        }
                    }
                }
            }
            (wg, bg)
        });
        for (co, (wg, bg)) in partials.into_iter().enumerate() {
            self.bias.grad[co] += bg;
            let wrow = &mut self.weight.grad[co * ck..(co + 1) * ck];
            for (dst, src) in wrow.iter_mut().zip(&wg) {
                *dst += src;
            }
        }

        // Pass B — input gradients, parallel over samples: each sample's
        // dx slab is disjoint, accumulated in `(co, p, ci, k)` order as
        // the sequential loop did.
        let mut dx = Tensor::zeros(&[n, cin, l]);
        let sample_ids: Vec<usize> = (0..n).collect();
        let dx_chunks = bf_par::par_map_indexed(&sample_ids, |_, &i| {
            let mut dxi = vec![0.0f32; sample_len];
            for co in 0..self.out_channels {
                let wrow_base = co * ck;
                for p in 0..lo {
                    let g = grad.data()[(i * self.out_channels + co) * lo + p];
                    if g == 0.0 {
                        continue;
                    }
                    let start = p * stride;
                    for ci in 0..cin {
                        let ws = &self.weight.value[wrow_base + ci * k..wrow_base + (ci + 1) * k];
                        let dxrow = &mut dxi[ci * l + start..ci * l + start + k];
                        for (dv, wv) in dxrow.iter_mut().zip(ws) {
                            *dv += g * wv;
                        }
                    }
                }
            }
            dxi
        });
        for (i, chunk) in dx_chunks.iter().enumerate() {
            dx.data_mut()[i * sample_len..(i + 1) * sample_len].copy_from_slice(chunk);
        }
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;

    #[test]
    fn out_len_formula() {
        let mut rng = SeedRng::new(1);
        let c = Conv1d::new(1, 4, 8, 3, &mut rng);
        assert_eq!(c.out_len(300), 98);
        assert_eq!(c.out_len(8), 1);
    }

    #[test]
    fn identity_kernel_passes_signal() {
        let mut rng = SeedRng::new(2);
        let mut c = Conv1d::new(1, 1, 1, 1, &mut rng);
        c.weight.value = vec![2.0];
        c.bias.value = vec![1.0];
        let x = Tensor::new(&[1, 1, 3], vec![1.0, 2.0, 3.0]);
        let y = c.forward(&x, false);
        assert_eq!(y.data(), &[3.0, 5.0, 7.0]);
    }

    #[test]
    fn stride_downsamples() {
        let mut rng = SeedRng::new(3);
        let mut c = Conv1d::new(1, 1, 2, 2, &mut rng);
        c.weight.value = vec![1.0, 1.0];
        c.bias.value = vec![0.0];
        let x = Tensor::new(&[1, 1, 6], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = c.forward(&x, false);
        assert_eq!(y.data(), &[3.0, 7.0, 11.0]);
    }

    #[test]
    fn multi_channel_sums_contributions() {
        let mut rng = SeedRng::new(4);
        let mut c = Conv1d::new(2, 1, 1, 1, &mut rng);
        c.weight.value = vec![1.0, 10.0];
        c.bias.value = vec![0.0];
        let x = Tensor::new(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = c.forward(&x, false);
        assert_eq!(y.data(), &[31.0, 42.0]);
    }

    #[test]
    fn gradient_check() {
        let mut rng = SeedRng::new(5);
        let mut c = Conv1d::new(2, 3, 3, 2, &mut rng);
        let x = Tensor::new(&[1, 2, 9], (0..18).map(|i| (i as f32 * 0.13).sin()).collect());
        // Loss: flatten conv output through softmax CE with a fake label.
        let lo = c.out_len(9);
        let flat = |t: Tensor| t.reshaped(&[1, 3 * lo]);
        let y = c.forward(&x, true);
        let (_, g) = softmax_cross_entropy(&flat(y), &[2]);
        let g3 = g.reshaped(&[1, 3, lo]);
        let dx = c.backward(&g3);

        let eps = 1e-2;
        let loss_at = |c: &mut Conv1d, x: &Tensor| {
            let y = c.forward(x, false);
            let (l, _) = softmax_cross_entropy(&y.reshaped(&[1, 3 * lo]), &[2]);
            l
        };
        for &wi in &[0usize, 7, 17] {
            let orig = c.weight.value[wi];
            c.weight.value[wi] = orig + eps;
            let lp = loss_at(&mut c, &x);
            c.weight.value[wi] = orig - eps;
            let lm = loss_at(&mut c, &x);
            c.weight.value[wi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = c.weight.grad[wi];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "w[{wi}]: numeric {numeric} analytic {analytic}"
            );
        }
        for &xi in &[0usize, 8, 17] {
            let mut xp = x.clone();
            xp.data_mut()[xi] += eps;
            let lp = loss_at(&mut c, &xp);
            let mut xm = x.clone();
            xm.data_mut()[xi] -= eps;
            let lm = loss_at(&mut c, &xm);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = dx.data()[xi];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "x[{xi}]: numeric {numeric} analytic {analytic}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "shorter than kernel")]
    fn too_short_input_panics() {
        let mut rng = SeedRng::new(6);
        let mut c = Conv1d::new(1, 1, 8, 3, &mut rng);
        c.forward(&Tensor::zeros(&[1, 1, 4]), false);
    }
}
