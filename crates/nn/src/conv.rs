//! 1-D convolution.

use crate::param::Param;
use crate::tensor::Tensor;
use crate::Layer;
use bf_stats::SeedRng;

/// Strided valid 1-D convolution mapping `(N, C_in, L)` to
/// `(N, C_out, L_out)` with `L_out = (L - kernel) / stride + 1`.
#[derive(Debug, Clone)]
pub struct Conv1d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    /// Weights laid out `(C_out, C_in, K)` row-major.
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Conv1d {
    /// A Glorot-initialized convolution.
    ///
    /// # Panics
    ///
    /// Panics when kernel or stride is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        rng: &mut SeedRng,
    ) -> Self {
        assert!(kernel > 0 && stride > 0, "kernel and stride must be positive");
        let fan_in = in_channels * kernel;
        Conv1d {
            in_channels,
            out_channels,
            kernel,
            stride,
            weight: Param::glorot(out_channels * fan_in, fan_in, out_channels, rng),
            bias: Param::zeros(out_channels),
            cached_input: None,
        }
    }

    /// Output length for an input of length `l`.
    ///
    /// # Panics
    ///
    /// Panics when `l < kernel` (no valid window).
    pub fn out_len(&self, l: usize) -> usize {
        assert!(l >= self.kernel, "input length {l} shorter than kernel {}", self.kernel);
        (l - self.kernel) / self.stride + 1
    }

    #[inline]
    fn w(&self, co: usize, ci: usize, k: usize) -> usize {
        (co * self.in_channels + ci) * self.kernel + k
    }
}

impl Layer for Conv1d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 3, "conv1d expects (N, C, L)");
        assert_eq!(x.shape()[1], self.in_channels, "channel mismatch");
        let n = x.shape()[0];
        let l = x.shape()[2];
        let lo = self.out_len(l);
        let mut out = Tensor::zeros(&[n, self.out_channels, lo]);
        for i in 0..n {
            for co in 0..self.out_channels {
                for p in 0..lo {
                    let start = p * self.stride;
                    let mut acc = self.bias.value[co];
                    for ci in 0..self.in_channels {
                        let xbase = x.idx3(i, ci, start);
                        let wbase = self.w(co, ci, 0);
                        let xs = &x.data()[xbase..xbase + self.kernel];
                        let ws = &self.weight.value[wbase..wbase + self.kernel];
                        for (xv, wv) in xs.iter().zip(ws) {
                            acc += xv * wv;
                        }
                    }
                    let oi = out.idx3(i, co, p);
                    out.data_mut()[oi] = acc;
                }
            }
        }
        if train {
            self.cached_input = Some(x.clone());
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("backward without forward");
        let n = x.shape()[0];
        let l = x.shape()[2];
        let lo = self.out_len(l);
        assert_eq!(grad.shape(), &[n, self.out_channels, lo]);
        let mut dx = Tensor::zeros(&[n, self.in_channels, l]);
        for i in 0..n {
            for co in 0..self.out_channels {
                for p in 0..lo {
                    let g = grad.data()[grad.idx3(i, co, p)];
                    if g == 0.0 {
                        continue;
                    }
                    self.bias.grad[co] += g;
                    let start = p * self.stride;
                    for ci in 0..self.in_channels {
                        let xbase = x.idx3(i, ci, start);
                        let wbase = self.w(co, ci, 0);
                        let dxbase = dx.idx3(i, ci, start);
                        for k in 0..self.kernel {
                            self.weight.grad[wbase + k] += g * x.data()[xbase + k];
                            dx.data_mut()[dxbase + k] += g * self.weight.value[wbase + k];
                        }
                    }
                }
            }
        }
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;

    #[test]
    fn out_len_formula() {
        let mut rng = SeedRng::new(1);
        let c = Conv1d::new(1, 4, 8, 3, &mut rng);
        assert_eq!(c.out_len(300), 98);
        assert_eq!(c.out_len(8), 1);
    }

    #[test]
    fn identity_kernel_passes_signal() {
        let mut rng = SeedRng::new(2);
        let mut c = Conv1d::new(1, 1, 1, 1, &mut rng);
        c.weight.value = vec![2.0];
        c.bias.value = vec![1.0];
        let x = Tensor::new(&[1, 1, 3], vec![1.0, 2.0, 3.0]);
        let y = c.forward(&x, false);
        assert_eq!(y.data(), &[3.0, 5.0, 7.0]);
    }

    #[test]
    fn stride_downsamples() {
        let mut rng = SeedRng::new(3);
        let mut c = Conv1d::new(1, 1, 2, 2, &mut rng);
        c.weight.value = vec![1.0, 1.0];
        c.bias.value = vec![0.0];
        let x = Tensor::new(&[1, 1, 6], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = c.forward(&x, false);
        assert_eq!(y.data(), &[3.0, 7.0, 11.0]);
    }

    #[test]
    fn multi_channel_sums_contributions() {
        let mut rng = SeedRng::new(4);
        let mut c = Conv1d::new(2, 1, 1, 1, &mut rng);
        c.weight.value = vec![1.0, 10.0];
        c.bias.value = vec![0.0];
        let x = Tensor::new(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = c.forward(&x, false);
        assert_eq!(y.data(), &[31.0, 42.0]);
    }

    #[test]
    fn gradient_check() {
        let mut rng = SeedRng::new(5);
        let mut c = Conv1d::new(2, 3, 3, 2, &mut rng);
        let x = Tensor::new(&[1, 2, 9], (0..18).map(|i| (i as f32 * 0.13).sin()).collect());
        // Loss: flatten conv output through softmax CE with a fake label.
        let lo = c.out_len(9);
        let flat = |t: Tensor| t.reshaped(&[1, 3 * lo]);
        let y = c.forward(&x, true);
        let (_, g) = softmax_cross_entropy(&flat(y), &[2]);
        let g3 = g.reshaped(&[1, 3, lo]);
        let dx = c.backward(&g3);

        let eps = 1e-2;
        let loss_at = |c: &mut Conv1d, x: &Tensor| {
            let y = c.forward(x, false);
            let (l, _) = softmax_cross_entropy(&y.reshaped(&[1, 3 * lo]), &[2]);
            l
        };
        for &wi in &[0usize, 7, 17] {
            let orig = c.weight.value[wi];
            c.weight.value[wi] = orig + eps;
            let lp = loss_at(&mut c, &x);
            c.weight.value[wi] = orig - eps;
            let lm = loss_at(&mut c, &x);
            c.weight.value[wi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = c.weight.grad[wi];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "w[{wi}]: numeric {numeric} analytic {analytic}"
            );
        }
        for &xi in &[0usize, 8, 17] {
            let mut xp = x.clone();
            xp.data_mut()[xi] += eps;
            let lp = loss_at(&mut c, &xp);
            let mut xm = x.clone();
            xm.data_mut()[xi] -= eps;
            let lm = loss_at(&mut c, &xm);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = dx.data()[xi];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "x[{xi}]: numeric {numeric} analytic {analytic}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "shorter than kernel")]
    fn too_short_input_panics() {
        let mut rng = SeedRng::new(6);
        let mut c = Conv1d::new(1, 1, 8, 3, &mut rng);
        c.forward(&Tensor::zeros(&[1, 1, 4]), false);
    }
}
