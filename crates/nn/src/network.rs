//! The assembled CNN+LSTM classifier of §4.1 (footnote 2).

use crate::conv::Conv1d;
use crate::dense::Dense;
use crate::dropout::Dropout;
use crate::loss::{softmax, softmax_cross_entropy, softmax_cross_entropy_soft};
use crate::lstm::{Lstm, LstmActivation};
use crate::optim::Adam;
use crate::pool::{AvgPool1d, MaxPool1d};
use crate::relu::Relu;
use crate::tensor::Tensor;
use crate::workspace;
use crate::Layer;
use bf_stats::SeedRng;
use serde::{Deserialize, Serialize};

/// Pooling operator selection for the conv stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling (the paper's model).
    #[default]
    Max,
    /// Average pooling (ablation).
    Avg,
}

impl PoolKind {
    fn build(self, size: usize) -> Box<dyn crate::Layer> {
        match self {
            PoolKind::Max => Box::new(MaxPool1d::new(size)),
            PoolKind::Avg => Box::new(AvgPool1d::new(size)),
        }
    }
}

/// Architecture hyperparameters.
///
/// [`CnnLstmConfig::paper`] reproduces the published model exactly;
/// [`CnnLstmConfig::scaled`] shrinks the filter count for CI-scale runs
/// while keeping the architecture shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CnnLstmConfig {
    /// Trace length fed to the network.
    pub input_len: usize,
    /// Number of output classes.
    pub n_classes: usize,
    /// Convolution filters per conv layer (paper: 256).
    pub conv_filters: usize,
    /// Convolution kernel width.
    pub conv_kernel: usize,
    /// Convolution stride (paper: 3).
    pub conv_stride: usize,
    /// Max-pool window (paper: 4).
    pub pool_size: usize,
    /// Pooling operator: the paper's model uses max pooling; average
    /// pooling is provided for the ablation bench.
    pub pool_kind: PoolKind,
    /// LSTM hidden units (paper: 32).
    pub lstm_units: usize,
    /// LSTM candidate/output activation. The paper's footnote says
    /// "sigmoid activation"; Keras's default (and the variant that trains
    /// reliably on long sequences) is tanh. [`CnnLstmConfig::paper`] uses
    /// sigmoid verbatim, [`CnnLstmConfig::scaled`] uses tanh.
    pub lstm_activation: LstmActivation,
    /// Dropout rate (paper: 0.7).
    pub dropout: f64,
    /// Adam learning rate (paper: 0.001).
    pub learning_rate: f32,
}

impl CnnLstmConfig {
    /// The paper's exact hyperparameters for a given trace length and
    /// class count.
    pub fn paper(input_len: usize, n_classes: usize) -> Self {
        CnnLstmConfig {
            input_len,
            n_classes,
            conv_filters: 256,
            conv_kernel: 8,
            conv_stride: 3,
            pool_size: 4,
            pool_kind: PoolKind::Max,
            lstm_units: 32,
            lstm_activation: LstmActivation::Sigmoid,
            dropout: 0.7,
            learning_rate: 0.001,
        }
    }

    /// A filter-scaled variant for fast experiments; identical
    /// architecture with `conv_filters` filters instead of 256 and the
    /// tanh LSTM variant.
    pub fn scaled(input_len: usize, n_classes: usize, conv_filters: usize) -> Self {
        CnnLstmConfig {
            conv_filters,
            lstm_activation: LstmActivation::Tanh,
            ..Self::paper(input_len, n_classes)
        }
    }

    /// Sequence length after both conv/pool stages (the LSTM's step
    /// count), or `None` when `input_len` is too short for the stack.
    pub fn try_lstm_steps(&self) -> Option<usize> {
        if self.input_len < self.conv_kernel {
            return None;
        }
        let c1 = (self.input_len - self.conv_kernel) / self.conv_stride + 1;
        let p1 = c1 / self.pool_size;
        if p1 < self.conv_kernel {
            return None;
        }
        let c2 = (p1 - self.conv_kernel) / self.conv_stride + 1;
        let p2 = c2 / self.pool_size;
        if p2 < 1 {
            return None;
        }
        Some(p2)
    }

    /// Sequence length after both conv/pool stages (the LSTM's step
    /// count).
    ///
    /// # Panics
    ///
    /// Panics when `input_len` is too short for the stack (see
    /// [`CnnLstmConfig::try_lstm_steps`]).
    pub fn lstm_steps(&self) -> usize {
        self.try_lstm_steps().expect("input too short for the conv/pool stack")
    }
}

/// The paper's classifier: 2 × [Conv1d + ReLU + MaxPool] → LSTM →
/// Dropout → Dense, trained with softmax cross-entropy and Adam.
#[derive(Debug)]
pub struct CnnLstm {
    config: CnnLstmConfig,
    layers: Vec<Box<dyn Layer>>,
    optimizer: Adam,
}

impl CnnLstm {
    /// Build the network with Glorot initialization from `seed`.
    ///
    /// # Panics
    ///
    /// Panics when `input_len` is too short for the conv/pool stack
    /// (see [`CnnLstmConfig::lstm_steps`]).
    pub fn new(config: CnnLstmConfig, seed: u64) -> Self {
        let _ = config.lstm_steps(); // validate geometry eagerly
        let mut rng = SeedRng::new(seed);
        let f = config.conv_filters;
        let layers: Vec<Box<dyn Layer>> = vec![ // alloc-ok: construction
            Box::new(Conv1d::new(1, f, config.conv_kernel, config.conv_stride, &mut rng)),
            Box::new(Relu::new()),
            config.pool_kind.build(config.pool_size),
            Box::new(Conv1d::new(f, f, config.conv_kernel, config.conv_stride, &mut rng)),
            Box::new(Relu::new()),
            config.pool_kind.build(config.pool_size),
            Box::new(Lstm::with_activation(f, config.lstm_units, config.lstm_activation, &mut rng)),
            Box::new(Dropout::new(config.dropout, rng.next_raw())),
            Box::new(Dense::new(config.lstm_units, config.n_classes, &mut rng)),
        ];
        CnnLstm { config, layers, optimizer: Adam::new(config.learning_rate) }
    }

    /// The configuration.
    pub fn config(&self) -> &CnnLstmConfig {
        &self.config
    }

    /// Forward pass: traces `(N, 1, input_len)` → logits `(N, classes)`.
    ///
    /// Intermediate activations come from — and are recycled back into —
    /// the thread's [`workspace`](crate::workspace) arena, so a warm
    /// pass does not allocate. The returned logits are pooled storage
    /// too; callers on the hot path recycle them when done (dropping
    /// them instead is safe, just a pool re-warm).
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 3, "input must be (N, 1, L)");
        assert_eq!(x.shape()[1], 1, "input must have one channel");
        assert_eq!(x.shape()[2], self.config.input_len, "trace length mismatch");
        let mut cur: Option<Tensor> = None;
        for layer in &mut self.layers {
            let next = match &cur {
                Some(t) => layer.forward(t, train),
                None => layer.forward(x, train),
            };
            if let Some(t) = cur.take() {
                workspace::recycle(t);
            }
            cur = Some(next);
        }
        cur.expect("network has no layers")
    }

    /// One training step on a batch; returns the batch loss.
    ///
    /// Steady-state steps are allocation-free: activations, gradients,
    /// and every layer's scratch are pooled, and the optimizer visits
    /// parameters through [`Layer::for_each_param`] without building a
    /// list (asserted end-to-end by `tests/alloc_regression.rs`).
    pub fn train_batch(&mut self, x: &Tensor, labels: &[usize]) -> f32 {
        let logits = self.forward(x, true);
        let (loss, grad) = softmax_cross_entropy(&logits, labels);
        workspace::recycle(logits);
        let mut g = grad;
        for layer in self.layers.iter_mut().rev() {
            let next = layer.backward(&g);
            workspace::recycle(g);
            g = next;
        }
        workspace::recycle(g);
        self.optimizer.begin_step();
        let CnnLstm { layers, optimizer, .. } = self;
        let mut pi = 0usize;
        for layer in layers.iter_mut() {
            layer.for_each_param(&mut |p| {
                optimizer.step_param(pi, p);
                pi += 1;
            });
        }
        loss
    }

    /// One training step against *soft* target distributions `(N, K)` —
    /// the knowledge-distillation path. Same backward/optimizer plumbing
    /// as [`CnnLstm::train_batch`] (steady-state steps are
    /// allocation-free), only the loss differs: soft cross-entropy via
    /// [`softmax_cross_entropy_soft`].
    pub fn train_batch_soft(&mut self, x: &Tensor, targets: &Tensor) -> f32 {
        let logits = self.forward(x, true);
        let (loss, grad) = softmax_cross_entropy_soft(&logits, targets);
        workspace::recycle(logits);
        let mut g = grad;
        for layer in self.layers.iter_mut().rev() {
            let next = layer.backward(&g);
            workspace::recycle(g);
            g = next;
        }
        workspace::recycle(g);
        self.optimizer.begin_step();
        let CnnLstm { layers, optimizer, .. } = self;
        let mut pi = 0usize;
        for layer in layers.iter_mut() {
            layer.for_each_param(&mut |p| {
                optimizer.step_param(pi, p);
                pi += 1;
            });
        }
        loss
    }

    /// Gather trace *prefixes* into a `(N, 1, input_len)` batch: each
    /// row's leading `rows[i].len()` samples are copied and the tail
    /// stays zero (workspace tensors hand out zeroed storage), so a
    /// shorter-than-`input_len` trace runs through the fixed-geometry
    /// conv/LSTM stack unchanged. Pooled storage — the caller recycles
    /// the tensor after the forward pass, keeping the anytime inference
    /// path allocation-free on a warm thread.
    ///
    /// # Panics
    ///
    /// Panics when a row is longer than `input_len`.
    pub fn prefix_batch(&self, rows: &[Vec<f32>]) -> Tensor {
        let len = self.config.input_len;
        let mut x = workspace::tensor(&[rows.len(), 1, len]);
        for (bi, row) in rows.iter().enumerate() {
            assert!(
                row.len() <= len,
                "prefix length {} exceeds input_len {len}",
                row.len()
            );
            x.data_mut()[bi * len..bi * len + row.len()].copy_from_slice(row);
        }
        x
    }

    /// Class probabilities for a batch of traces.
    pub fn predict_proba(&mut self, x: &Tensor) -> Tensor {
        let logits = self.forward(x, false);
        let p = softmax(&logits);
        workspace::recycle(logits);
        p
    }

    /// Class probabilities for a batch of trace *prefixes*, stacked into
    /// one forward pass: the rows are zero-padded into a single pooled
    /// `(B, 1, input_len)` tensor ([`CnnLstm::prefix_batch`]) and every
    /// layer runs exactly once over the whole batch — one im2col/matmul
    /// invocation per conv stage instead of one per row. Because each
    /// sample owns a disjoint output slab in every kernel and per-sample
    /// accumulation order is fixed, row `i` of the result is
    /// bit-identical to running [`CnnLstm::predict_proba`] on row `i`
    /// alone at any batch size (pinned by `tests/batch_equality.rs`).
    ///
    /// All intermediate storage is pooled, so a warm call performs no
    /// heap allocation; the returned `(B, classes)` tensor is pooled
    /// too — hot-path callers recycle it when done.
    ///
    /// # Panics
    ///
    /// Panics when a row is longer than `input_len`.
    pub fn predict_proba_batch(&mut self, rows: &[Vec<f32>]) -> Tensor {
        let x = self.prefix_batch(rows);
        let p = self.predict_proba(&x);
        workspace::recycle(x);
        p
    }

    /// Argmax predictions for a batch.
    pub fn predict(&mut self, x: &Tensor) -> Vec<usize> {
        let p = self.predict_proba(x);
        let k = self.config.n_classes;
        (0..p.batch())
            .map(|i| {
                let row = &p.data()[i * k..(i + 1) * k];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(j, _)| j)
                    .unwrap_or(0)
            })
            .collect() // alloc-ok: cold path (inference API)
    }

    /// Snapshot all parameter values (early-stopping checkpoints).
    pub fn save_params(&mut self) -> Vec<Vec<f32>> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .map(|p| p.value.clone())
            .collect() // alloc-ok: cold path (checkpoints)
    }

    /// Restore parameters from a snapshot.
    ///
    /// # Panics
    ///
    /// Panics when the snapshot does not match this network's shape;
    /// callers restoring untrusted snapshots (e.g. checkpoint files)
    /// should use [`CnnLstm::try_restore_params`] instead.
    pub fn restore_params(&mut self, snapshot: &[Vec<f32>]) {
        self.try_restore_params(snapshot)
            .unwrap_or_else(|e| panic!("snapshot mismatch: {e}"));
    }

    /// Restore parameters from a snapshot, rejecting shape mismatches
    /// without touching the network.
    ///
    /// # Errors
    ///
    /// Describes the first tensor-count or tensor-size disagreement.
    pub fn try_restore_params(&mut self, snapshot: &[Vec<f32>]) -> Result<(), String> {
        let mut params: Vec<&mut crate::Param> =
            self.layers.iter_mut().flat_map(|l| l.params_mut()).collect(); // alloc-ok: cold path (checkpoints)
        if params.len() != snapshot.len() {
            return Err(format!(
                "snapshot has {} tensors, network has {}",
                snapshot.len(),
                params.len()
            ));
        }
        if let Some((i, (p, s))) = params
            .iter()
            .zip(snapshot)
            .enumerate()
            .find(|(_, (p, s))| p.len() != s.len())
        {
            return Err(format!(
                "snapshot tensor {i} has {} values, network expects {}",
                s.len(),
                p.len()
            ));
        }
        for (p, s) in params.iter_mut().zip(snapshot) {
            p.value.copy_from_slice(s);
        }
        Ok(())
    }

    /// Total scalar parameter count.
    pub fn param_count(&mut self) -> usize {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).map(|p| p.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CnnLstm {
        // Unit-test variant: fewer filters, lighter dropout, faster lr
        // (the paper hyperparameters are exercised at experiment scale).
        let mut cfg = CnnLstmConfig::scaled(300, 4, 6);
        cfg.dropout = 0.2;
        cfg.learning_rate = 0.01;
        CnnLstm::new(cfg, 7)
    }

    fn toy_batch(n_per_class: usize) -> (Tensor, Vec<usize>) {
        // Four synthetic classes with a dip at a class-specific position.
        let len = 300;
        let mut data = Vec::new();
        let mut labels = Vec::new();
        let mut rng = SeedRng::new(9);
        for class in 0..4usize {
            for _ in 0..n_per_class {
                // Standardized traces (the ml pipeline z-scores inputs).
                let dip = 30 + class * 65;
                for i in 0..len {
                    let mut v = 0.1 * rng.standard_normal() as f32;
                    if (dip..dip + 30).contains(&i) {
                        v -= 3.0;
                    }
                    data.push(v);
                }
                labels.push(class);
            }
        }
        let n = labels.len();
        (Tensor::new(&[n, 1, len], data), labels)
    }

    #[test]
    fn geometry_matches_hand_computation() {
        // A 300-sample trace: 300 -> 98 -> 24 -> 6 -> 1 LSTM step; the
        // paper's 3000-sample traces give 20 steps.
        let cfg = CnnLstmConfig::paper(3_000, 100);
        // 3000 -> (3000-8)/3+1 = 998 -> /4 = 249 -> (249-8)/3+1 = 81 -> /4 = 20
        assert_eq!(cfg.lstm_steps(), 20);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn too_short_input_rejected() {
        CnnLstm::new(CnnLstmConfig::scaled(40, 4, 6), 1);
    }

    #[test]
    fn forward_shape() {
        let mut net = tiny();
        let x = Tensor::zeros(&[3, 1, 300]);
        let y = net.forward(&x, false);
        assert_eq!(y.shape(), &[3, 4]);
    }

    #[test]
    fn training_reduces_loss_and_fits_toy_data() {
        let mut net = tiny();
        let (x, labels) = toy_batch(6);
        let first = net.train_batch(&x, &labels);
        let mut last = first;
        for _ in 0..60 {
            last = net.train_batch(&x, &labels);
        }
        assert!(last < first * 0.5, "first {first} last {last}");
        let preds = net.predict(&x);
        let correct = preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
        assert!(
            correct as f64 >= labels.len() as f64 * 0.9,
            "correct {correct}/{}",
            labels.len()
        );
    }

    #[test]
    fn predict_proba_rows_sum_to_one() {
        let mut net = tiny();
        let (x, _) = toy_batch(1);
        let p = net.predict_proba(&x);
        for i in 0..p.batch() {
            let s: f32 = p.data()[i * 4..(i + 1) * 4].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn save_restore_roundtrip() {
        let mut net = tiny();
        let (x, labels) = toy_batch(2);
        let snapshot = net.save_params();
        let before = net.predict_proba(&x);
        for _ in 0..5 {
            net.train_batch(&x, &labels);
        }
        let after = net.predict_proba(&x);
        assert_ne!(before.data(), after.data());
        net.restore_params(&snapshot);
        let restored = net.predict_proba(&x);
        assert_eq!(before.data(), restored.data());
    }

    #[test]
    fn param_count_reasonable() {
        let mut net = tiny();
        // conv1: 6*1*8+6, conv2: 6*6*8+6, lstm: 4*32*6? no — units 32:
        // w_ih 4*32*6, w_hh 4*32*32, b 128; dense 32*4+4.
        let count = net.param_count();
        assert!(count > 4_000 && count < 30_000, "count = {count}");
    }

    #[test]
    fn deterministic_initialization() {
        let mut a = CnnLstm::new(CnnLstmConfig::scaled(300, 4, 6), 42);
        let mut b = CnnLstm::new(CnnLstmConfig::scaled(300, 4, 6), 42);
        assert_eq!(a.save_params(), b.save_params());
        let mut c = CnnLstm::new(CnnLstmConfig::scaled(300, 4, 6), 43);
        assert_ne!(a.save_params(), c.save_params());
    }
}
