//! Trainable parameter storage.

use bf_stats::SeedRng;

/// One parameter tensor (flattened) and its gradient accumulator.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current values.
    pub value: Vec<f32>,
    /// Accumulated gradient (same length as `value`).
    pub grad: Vec<f32>,
}

impl Param {
    /// A parameter initialized to zeros (biases).
    pub fn zeros(len: usize) -> Self {
        Param { value: vec![0.0; len], grad: vec![0.0; len] }
    }

    /// Glorot/Xavier-uniform initialization for a weight connecting
    /// `fan_in` inputs to `fan_out` outputs.
    pub fn glorot(len: usize, fan_in: usize, fan_out: usize, rng: &mut SeedRng) -> Self {
        let limit = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt();
        let value =
            (0..len).map(|_| rng.uniform_range(-limit, limit) as f32).collect();
        Param { value, grad: vec![0.0; len] }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True for empty parameters (never produced by the constructors with
    /// nonzero length).
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Reset the gradient accumulator to zero.
    pub fn zero_grad(&mut self) {
        for g in &mut self.grad {
            *g = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_param() {
        let p = Param::zeros(4);
        assert_eq!(p.len(), 4);
        assert!(p.value.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn glorot_within_limit() {
        let mut rng = SeedRng::new(1);
        let p = Param::glorot(1_000, 64, 32, &mut rng);
        let limit = (6.0f64 / 96.0).sqrt() as f32;
        assert!(p.value.iter().all(|&v| v.abs() <= limit));
        // Spread out, not degenerate.
        let distinct = p.value.iter().filter(|&&v| v != p.value[0]).count();
        assert!(distinct > 900);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::zeros(3);
        p.grad = vec![1.0, 2.0, 3.0];
        p.zero_grad();
        assert!(p.grad.iter().all(|&g| g == 0.0));
    }
}
