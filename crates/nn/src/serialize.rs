//! Model checkpointing: save and load network parameters.
//!
//! The attack's offline phase trains a classifier once; the online phase
//! reuses it on fresh traces (§4.1). This module persists parameters in a
//! small self-describing binary format (magic, version, per-tensor
//! lengths, little-endian f32 data) with no dependencies beyond `std`.
//!
//! All fallible paths return a typed [`CheckpointError`] — truncated,
//! corrupt, or shape-mismatched checkpoint files are reported, never
//! panicked on, so a damaged file degrades a run instead of aborting it.

use crate::network::CnnLstm;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"BFNNCKPT";
const VERSION: u32 = 1;

/// Why a parameter checkpoint could not be written or read.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying reader/writer error (including truncation, surfaced as
    /// `UnexpectedEof`).
    Io(io::Error),
    /// The payload is not a bf-nn checkpoint or is internally
    /// inconsistent.
    Format(String),
    /// The checkpoint is well-formed but does not fit the target
    /// network's architecture.
    ShapeMismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Format(msg) => write!(f, "malformed checkpoint: {msg}"),
            CheckpointError::ShapeMismatch(msg) => {
                write!(f, "checkpoint does not fit network: {msg}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Write a parameter snapshot (as produced by [`CnnLstm::save_params`])
/// to a writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_params<W: Write>(mut w: W, params: &[Vec<f32>]) -> Result<(), CheckpointError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for p in params {
        w.write_all(&(p.len() as u64).to_le_bytes())?;
    }
    for p in params {
        for v in p {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Read a parameter snapshot previously written by [`write_params`].
///
/// # Errors
///
/// [`CheckpointError::Format`] for wrong magic/version or implausible
/// headers, [`CheckpointError::Io`] for truncated payloads and reader
/// errors.
pub fn read_params<R: Read>(mut r: R) -> Result<Vec<Vec<f32>>, CheckpointError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Format("not a bf-nn checkpoint".to_owned()));
    }
    let mut buf4 = [0u8; 4];
    r.read_exact(&mut buf4)?;
    let version = u32::from_le_bytes(buf4);
    if version != VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported checkpoint version {version}"
        )));
    }
    r.read_exact(&mut buf4)?;
    let n_tensors = u32::from_le_bytes(buf4) as usize;
    if n_tensors > 1_000_000 {
        return Err(CheckpointError::Format("implausible tensor count".to_owned()));
    }
    let mut lens = Vec::with_capacity(n_tensors);
    let mut buf8 = [0u8; 8];
    for _ in 0..n_tensors {
        r.read_exact(&mut buf8)?;
        let len = u64::from_le_bytes(buf8);
        if len > u64::from(u32::MAX) {
            return Err(CheckpointError::Format("implausible tensor size".to_owned()));
        }
        lens.push(len as usize);
    }
    let mut params = Vec::with_capacity(n_tensors);
    for len in lens {
        let mut data = vec![0f32; len];
        for v in &mut data {
            r.read_exact(&mut buf4)?;
            *v = f32::from_le_bytes(buf4);
        }
        params.push(data);
    }
    Ok(params)
}

/// Save a trained network's parameters to a file.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn save_network(net: &mut CnnLstm, path: &std::path::Path) -> Result<(), CheckpointError> {
    let file = std::fs::File::create(path)?;
    write_params(io::BufWriter::new(file), &net.save_params())
}

/// Load parameters from a file into a compatible network. The network is
/// untouched unless the whole load succeeds.
///
/// # Errors
///
/// I/O and format errors from [`read_params`], and
/// [`CheckpointError::ShapeMismatch`] when the checkpoint does not fit
/// the network's architecture.
pub fn load_network(net: &mut CnnLstm, path: &std::path::Path) -> Result<(), CheckpointError> {
    let file = std::fs::File::open(path)?;
    let params = read_params(io::BufReader::new(file))?;
    net.try_restore_params(&params)
        .map_err(CheckpointError::ShapeMismatch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::CnnLstmConfig;
    use crate::tensor::Tensor;

    #[test]
    fn roundtrip_in_memory() {
        let params = vec![vec![1.0f32, -2.5, 3.25], vec![], vec![0.0; 7]];
        let mut buf = Vec::new();
        write_params(&mut buf, &params).unwrap();
        let back = read_params(&buf[..]).unwrap();
        assert_eq!(back, params);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_params(&b"NOTACKPT........."[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::Format(_)), "{err}");
    }

    #[test]
    fn rejects_truncated_payload() {
        let params = vec![vec![1.0f32; 10]];
        let mut buf = Vec::new();
        write_params(&mut buf, &params).unwrap();
        buf.truncate(buf.len() - 5);
        let err = read_params(&buf[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        write_params(&mut buf, &[vec![1.0]]).unwrap();
        buf[8] = 99; // clobber version
        assert!(matches!(
            read_params(&buf[..]),
            Err(CheckpointError::Format(_))
        ));
    }

    #[test]
    fn network_checkpoint_roundtrip() {
        let cfg = CnnLstmConfig::scaled(300, 4, 6);
        let mut a = CnnLstm::new(cfg, 1);
        let mut b = CnnLstm::new(cfg, 2); // different init
        let dir = std::env::temp_dir().join("bf_nn_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.ckpt");
        save_network(&mut a, &path).unwrap();
        load_network(&mut b, &path).unwrap();
        let x = Tensor::zeros(&[1, 1, 300]);
        assert_eq!(a.forward(&x, false).data(), b.forward(&x, false).data());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_architecture_is_typed_error_and_preserves_network() {
        let mut small = CnnLstm::new(CnnLstmConfig::scaled(300, 4, 6), 1);
        let mut big = CnnLstm::new(CnnLstmConfig::scaled(300, 4, 12), 1);
        let dir = std::env::temp_dir().join("bf_nn_ckpt_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.ckpt");
        save_network(&mut small, &path).unwrap();
        let before = big.save_params();
        let err = load_network(&mut big, &path).unwrap_err();
        assert!(matches!(err, CheckpointError::ShapeMismatch(_)), "{err}");
        // Failed loads must not partially overwrite the target network.
        assert_eq!(big.save_params(), before);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn errors_render_for_operators() {
        let e = CheckpointError::Format("nope".to_owned());
        assert!(e.to_string().contains("nope"));
        let e = CheckpointError::from(io::Error::new(io::ErrorKind::UnexpectedEof, "cut"));
        assert!(e.to_string().contains("cut"));
    }
}
