//! Model checkpointing: save and load network parameters.
//!
//! The attack's offline phase trains a classifier once; the online phase
//! reuses it on fresh traces (§4.1). This module persists parameters in a
//! small self-describing binary format (magic, version, per-tensor
//! lengths, little-endian f32 data) with no dependencies beyond `std`.

use crate::network::CnnLstm;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"BFNNCKPT";
const VERSION: u32 = 1;

/// Write a parameter snapshot (as produced by [`CnnLstm::save_params`])
/// to a writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_params<W: Write>(mut w: W, params: &[Vec<f32>]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for p in params {
        w.write_all(&(p.len() as u64).to_le_bytes())?;
    }
    for p in params {
        for v in p {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Read a parameter snapshot previously written by [`write_params`].
///
/// # Errors
///
/// Returns `InvalidData` for wrong magic/version or truncated payloads,
/// and propagates reader I/O errors.
pub fn read_params<R: Read>(mut r: R) -> io::Result<Vec<Vec<f32>>> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a bf-nn checkpoint"));
    }
    let mut buf4 = [0u8; 4];
    r.read_exact(&mut buf4)?;
    let version = u32::from_le_bytes(buf4);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported checkpoint version {version}"),
        ));
    }
    r.read_exact(&mut buf4)?;
    let n_tensors = u32::from_le_bytes(buf4) as usize;
    if n_tensors > 1_000_000 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible tensor count"));
    }
    let mut lens = Vec::with_capacity(n_tensors);
    let mut buf8 = [0u8; 8];
    for _ in 0..n_tensors {
        r.read_exact(&mut buf8)?;
        let len = u64::from_le_bytes(buf8);
        if len > u64::from(u32::MAX) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible tensor size"));
        }
        lens.push(len as usize);
    }
    let mut params = Vec::with_capacity(n_tensors);
    for len in lens {
        let mut data = vec![0f32; len];
        for v in &mut data {
            r.read_exact(&mut buf4)?;
            *v = f32::from_le_bytes(buf4);
        }
        params.push(data);
    }
    Ok(params)
}

/// Save a trained network's parameters to a file.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn save_network(net: &mut CnnLstm, path: &std::path::Path) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_params(io::BufWriter::new(file), &net.save_params())
}

/// Load parameters from a file into a compatible network.
///
/// # Errors
///
/// Propagates I/O and format errors.
///
/// # Panics
///
/// Panics when the checkpoint's shape does not match the network (see
/// [`CnnLstm::restore_params`]).
pub fn load_network(net: &mut CnnLstm, path: &std::path::Path) -> io::Result<()> {
    let file = std::fs::File::open(path)?;
    let params = read_params(io::BufReader::new(file))?;
    net.restore_params(&params);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::CnnLstmConfig;
    use crate::tensor::Tensor;

    #[test]
    fn roundtrip_in_memory() {
        let params = vec![vec![1.0f32, -2.5, 3.25], vec![], vec![0.0; 7]];
        let mut buf = Vec::new();
        write_params(&mut buf, &params).unwrap();
        let back = read_params(&buf[..]).unwrap();
        assert_eq!(back, params);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_params(&b"NOTACKPT........."[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncated_payload() {
        let params = vec![vec![1.0f32; 10]];
        let mut buf = Vec::new();
        write_params(&mut buf, &params).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(read_params(&buf[..]).is_err());
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        write_params(&mut buf, &[vec![1.0]]).unwrap();
        buf[8] = 99; // clobber version
        assert!(read_params(&buf[..]).is_err());
    }

    #[test]
    fn network_checkpoint_roundtrip() {
        let cfg = CnnLstmConfig::scaled(300, 4, 6);
        let mut a = CnnLstm::new(cfg, 1);
        let mut b = CnnLstm::new(cfg, 2); // different init
        let dir = std::env::temp_dir().join("bf_nn_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.ckpt");
        save_network(&mut a, &path).unwrap();
        load_network(&mut b, &path).unwrap();
        let x = Tensor::zeros(&[1, 1, 300]);
        assert_eq!(a.forward(&x, false).data(), b.forward(&x, false).data());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "snapshot")]
    fn mismatched_architecture_panics() {
        let mut small = CnnLstm::new(CnnLstmConfig::scaled(300, 4, 6), 1);
        let mut big = CnnLstm::new(CnnLstmConfig::scaled(300, 4, 12), 1);
        let dir = std::env::temp_dir().join("bf_nn_ckpt_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.ckpt");
        save_network(&mut small, &path).unwrap();
        let _ = load_network(&mut big, &path);
    }
}
