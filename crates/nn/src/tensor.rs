//! A minimal contiguous f32 tensor, plus the shared cache-friendly
//! kernel primitives (im2col unfolding and a blocked matmul) that the
//! Conv1d/Dense/LSTM layers build their forward and backward passes on.

/// A dense, row-major f32 tensor with a dynamic shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Create a tensor from a shape and matching data.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` does not equal the product of `shape`.
    pub fn new(shape: &[usize], data: Vec<f32>) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(data.len(), expected, "shape {shape:?} wants {expected} elements");
        Tensor { shape: shape.to_vec(), data }
    }

    /// All-zeros tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor { shape: shape.to_vec(), data: vec![0.0; shape.iter().product()] }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable element storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable element storage.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the raw storage.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reinterpret with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics when the element counts differ.
    pub fn reshaped(mut self, shape: &[usize]) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(self.data.len(), expected, "reshape to {shape:?} mismatches");
        self.shape = shape.to_vec();
        self
    }

    /// Flat index for a 3-D coordinate `(a, b, c)` in shape `[A, B, C]`.
    ///
    /// # Panics
    ///
    /// Debug-panics on rank or bounds violations.
    #[inline]
    pub fn idx3(&self, a: usize, b: usize, c: usize) -> usize {
        debug_assert_eq!(self.shape.len(), 3);
        debug_assert!(a < self.shape[0] && b < self.shape[1] && c < self.shape[2]);
        (a * self.shape[1] + b) * self.shape[2] + c
    }

    /// Flat index for a 2-D coordinate.
    #[inline]
    pub fn idx2(&self, a: usize, b: usize) -> usize {
        debug_assert_eq!(self.shape.len(), 2);
        debug_assert!(a < self.shape[0] && b < self.shape[1]);
        a * self.shape[1] + b
    }

    /// Batch size (first dimension).
    ///
    /// # Panics
    ///
    /// Panics on rank-0 tensors.
    pub fn batch(&self) -> usize {
        self.shape[0]
    }
}

/// Unfold one sample's channels `(C, L)` (row-major, channel-major as in
/// a `(N, C, L)` tensor) into an im2col matrix of shape
/// `(L_out, C * K)` with `L_out = (L - kernel) / stride + 1`: row `p`
/// holds the window starting at `p * stride`, laid out channel-major
/// `(ci, k)` — exactly the layout of a `Conv1d` weight row, so a
/// convolution output becomes one contiguous dot product per `(co, p)`.
///
/// Appends into `out` (cleared first) so callers can reuse one buffer
/// across samples.
///
/// # Panics
///
/// Panics when `sample.len() != channels * len`, `kernel == 0`,
/// `stride == 0`, or `len < kernel`.
pub fn im2col(
    sample: &[f32],
    channels: usize,
    len: usize,
    kernel: usize,
    stride: usize,
    out: &mut Vec<f32>,
) -> usize {
    assert_eq!(sample.len(), channels * len, "sample shape mismatch");
    assert!(kernel > 0 && stride > 0, "kernel and stride must be positive");
    assert!(len >= kernel, "input length {len} shorter than kernel {kernel}");
    let lo = (len - kernel) / stride + 1;
    out.clear();
    out.reserve(lo * channels * kernel);
    for p in 0..lo {
        let start = p * stride;
        for ci in 0..channels {
            let base = ci * len + start;
            out.extend_from_slice(&sample[base..base + kernel]);
        }
    }
    lo
}

/// `out[i * n + j] = init(i, j) + dot(a[i], b[j])` for `a: (m, k)` and
/// `b: (n, k)`, both row-major — a matmul against a transposed right-hand
/// side, which is the natural layout for both im2col convolutions
/// (`a` = weights, `b` = columns) and dense layers (`a` = inputs,
/// `b` = weights).
///
/// `row_init` seeds every element of output row `i` with `row_init[i]`;
/// `col_init` seeds element `(i, j)` with `col_init[j]` (at most one may
/// be given — both panic). Each output element accumulates over the full
/// `k` dimension in index order starting from its init value, so results
/// are bit-identical to the textbook triple loop no matter how the
/// traversal is blocked.
///
/// Blocking: the `j` loop is tiled so a tile of `b` rows stays in L1/L2
/// while every `a` row streams over it once.
///
/// # Panics
///
/// Panics on shape mismatches or when both inits are provided.
#[allow(clippy::too_many_arguments)]
pub fn matmul_abt(
    a: &[f32],
    b: &[f32],
    m: usize,
    n: usize,
    k: usize,
    row_init: Option<&[f32]>,
    col_init: Option<&[f32]>,
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "lhs shape mismatch");
    assert_eq!(b.len(), n * k, "rhs shape mismatch");
    assert_eq!(out.len(), m * n, "output shape mismatch");
    assert!(
        row_init.is_none() || col_init.is_none(),
        "at most one init vector"
    );
    if let Some(init) = row_init {
        assert_eq!(init.len(), m, "row init length mismatch");
    }
    if let Some(init) = col_init {
        assert_eq!(init.len(), n, "col init length mismatch");
    }
    // Tile size: keep a tile of `b` rows within ~32 KiB so they are
    // re-read from cache for every `a` row. Bits are unaffected by the
    // choice — accumulation per element is always full-`k`, in order.
    let tile = (8192 / k.max(1)).clamp(1, n.max(1));
    for jb in (0..n).step_by(tile) {
        let je = (jb + tile).min(n);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for j in jb..je {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = match (row_init, col_init) {
                    (Some(init), _) => init[i],
                    (_, Some(init)) => init[j],
                    _ => 0.0,
                };
                for (av, bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                orow[j] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_length() {
        let t = Tensor::new(&[2, 3], vec![0.0; 6]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
    }

    #[test]
    #[should_panic(expected = "elements")]
    fn new_rejects_bad_length() {
        Tensor::new(&[2, 3], vec![0.0; 5]);
    }

    #[test]
    fn zeros_is_zero() {
        let t = Tensor::zeros(&[4]);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn idx3_row_major() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.idx3(0, 0, 0), 0);
        assert_eq!(t.idx3(0, 0, 3), 3);
        assert_eq!(t.idx3(0, 1, 0), 4);
        assert_eq!(t.idx3(1, 0, 0), 12);
        assert_eq!(t.idx3(1, 2, 3), 23);
    }

    #[test]
    fn idx2_row_major() {
        let t = Tensor::zeros(&[3, 5]);
        assert_eq!(t.idx2(2, 4), 14);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::new(&[2, 3], (0..6).map(|x| x as f32).collect());
        let r = t.clone().reshaped(&[3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "mismatches")]
    fn reshape_rejects_bad_count() {
        Tensor::zeros(&[2, 3]).reshaped(&[7]);
    }

    #[test]
    fn im2col_unfolds_windows_channel_major() {
        // 2 channels, length 5, kernel 2, stride 2 -> lo = 2.
        let sample = [1.0, 2.0, 3.0, 4.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0];
        let mut col = Vec::new();
        let lo = im2col(&sample, 2, 5, 2, 2, &mut col);
        assert_eq!(lo, 2);
        #[rustfmt::skip]
        assert_eq!(
            col,
            vec![
                1.0, 2.0, 10.0, 20.0, // p = 0: (ci0 k0 k1)(ci1 k0 k1)
                3.0, 4.0, 30.0, 40.0, // p = 1
            ]
        );
    }

    #[test]
    fn im2col_reuses_buffer() {
        let sample = [1.0, 2.0, 3.0];
        let mut col = vec![99.0; 64];
        let lo = im2col(&sample, 1, 3, 3, 1, &mut col);
        assert_eq!(lo, 1);
        assert_eq!(col, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "shorter than kernel")]
    fn im2col_rejects_short_input() {
        im2col(&[0.0; 2], 1, 2, 3, 1, &mut Vec::new());
    }

    #[test]
    fn matmul_abt_matches_naive_triple_loop() {
        let (m, n, k) = (5, 7, 11);
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.31).sin()).collect();
        let b: Vec<f32> = (0..n * k).map(|i| (i as f32 * 0.17).cos()).collect();
        let bias: Vec<f32> = (0..m).map(|i| i as f32 * 0.5).collect();
        let mut out = vec![0.0; m * n];
        matmul_abt(&a, &b, m, n, k, Some(&bias), None, &mut out);
        for i in 0..m {
            for j in 0..n {
                let mut acc = bias[i];
                for kk in 0..k {
                    acc += a[i * k + kk] * b[j * k + kk];
                }
                // Bit-exact: same accumulation order as the kernel.
                assert_eq!(acc.to_bits(), out[i * n + j].to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn matmul_abt_col_init_seeds_columns() {
        let a = [1.0, 0.0, 0.0, 1.0]; // 2x2 identity
        let b = [2.0, 3.0, 4.0, 5.0]; // rows [2,3], [4,5]
        let cb = [100.0, 200.0];
        let mut out = vec![0.0; 4];
        matmul_abt(&a, &b, 2, 2, 2, None, Some(&cb), &mut out);
        assert_eq!(out, vec![102.0, 204.0, 103.0, 205.0]);
    }

    #[test]
    fn matmul_abt_blocking_is_bit_stable_across_shapes() {
        // Shapes straddling the tile boundary must agree element-wise
        // with the unblocked reference (tile = 1 case: k >= 8192).
        let (m, n, k) = (3, 40, 300);
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.013).sin()).collect();
        let b: Vec<f32> = (0..n * k).map(|i| (i as f32 * 0.007).cos()).collect();
        let mut out = vec![0.0; m * n];
        matmul_abt(&a, &b, m, n, k, None, None, &mut out);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[j * k + kk];
                }
                assert_eq!(acc.to_bits(), out[i * n + j].to_bits());
            }
        }
    }
}
