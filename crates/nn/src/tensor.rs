//! A minimal contiguous f32 tensor.

/// A dense, row-major f32 tensor with a dynamic shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Create a tensor from a shape and matching data.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` does not equal the product of `shape`.
    pub fn new(shape: &[usize], data: Vec<f32>) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(data.len(), expected, "shape {shape:?} wants {expected} elements");
        Tensor { shape: shape.to_vec(), data }
    }

    /// All-zeros tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor { shape: shape.to_vec(), data: vec![0.0; shape.iter().product()] }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable element storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable element storage.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the raw storage.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reinterpret with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics when the element counts differ.
    pub fn reshaped(mut self, shape: &[usize]) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(self.data.len(), expected, "reshape to {shape:?} mismatches");
        self.shape = shape.to_vec();
        self
    }

    /// Flat index for a 3-D coordinate `(a, b, c)` in shape `[A, B, C]`.
    ///
    /// # Panics
    ///
    /// Debug-panics on rank or bounds violations.
    #[inline]
    pub fn idx3(&self, a: usize, b: usize, c: usize) -> usize {
        debug_assert_eq!(self.shape.len(), 3);
        debug_assert!(a < self.shape[0] && b < self.shape[1] && c < self.shape[2]);
        (a * self.shape[1] + b) * self.shape[2] + c
    }

    /// Flat index for a 2-D coordinate.
    #[inline]
    pub fn idx2(&self, a: usize, b: usize) -> usize {
        debug_assert_eq!(self.shape.len(), 2);
        debug_assert!(a < self.shape[0] && b < self.shape[1]);
        a * self.shape[1] + b
    }

    /// Batch size (first dimension).
    ///
    /// # Panics
    ///
    /// Panics on rank-0 tensors.
    pub fn batch(&self) -> usize {
        self.shape[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_length() {
        let t = Tensor::new(&[2, 3], vec![0.0; 6]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
    }

    #[test]
    #[should_panic(expected = "elements")]
    fn new_rejects_bad_length() {
        Tensor::new(&[2, 3], vec![0.0; 5]);
    }

    #[test]
    fn zeros_is_zero() {
        let t = Tensor::zeros(&[4]);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn idx3_row_major() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.idx3(0, 0, 0), 0);
        assert_eq!(t.idx3(0, 0, 3), 3);
        assert_eq!(t.idx3(0, 1, 0), 4);
        assert_eq!(t.idx3(1, 0, 0), 12);
        assert_eq!(t.idx3(1, 2, 3), 23);
    }

    #[test]
    fn idx2_row_major() {
        let t = Tensor::zeros(&[3, 5]);
        assert_eq!(t.idx2(2, 4), 14);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::new(&[2, 3], (0..6).map(|x| x as f32).collect());
        let r = t.clone().reshaped(&[3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "mismatches")]
    fn reshape_rejects_bad_count() {
        Tensor::zeros(&[2, 3]).reshaped(&[7]);
    }
}
