//! A minimal contiguous f32 tensor, plus the shared cache-friendly
//! kernel primitives (im2col unfolding and a blocked matmul) that the
//! Conv1d/Dense/LSTM layers build their forward and backward passes on.

/// A dense, row-major f32 tensor with a dynamic shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Create a tensor from a shape and matching data.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` does not equal the product of `shape`.
    pub fn new(shape: &[usize], data: Vec<f32>) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(data.len(), expected, "shape {shape:?} wants {expected} elements");
        Tensor { shape: shape.to_vec(), data } // alloc-ok: owned constructor
    }

    /// All-zeros tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor { shape: shape.to_vec(), data: vec![0.0; shape.iter().product()] } // alloc-ok: owned constructor
    }

    /// All-zeros tensor drawing its storage from a workspace arena
    /// instead of the allocator — the hot-path counterpart of
    /// [`Tensor::zeros`].
    pub fn zeroed_in(ws: &mut crate::workspace::Workspace, shape: &[usize]) -> Self {
        ws.tensor(shape)
    }

    /// Assemble a tensor from already-owned parts (workspace recycling).
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` does not equal the product of `shape`.
    pub(crate) fn from_raw(shape: Vec<usize>, data: Vec<f32>) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(data.len(), expected, "shape {shape:?} wants {expected} elements");
        Tensor { shape, data }
    }

    /// Dismantle into `(shape, data)` so a workspace can pool both.
    pub(crate) fn into_raw(self) -> (Vec<usize>, Vec<f32>) {
        (self.shape, self.data)
    }

    /// Make this tensor an exact copy of `src`, reusing existing
    /// capacity instead of allocating when it suffices.
    pub fn copy_from(&mut self, src: &Tensor) {
        if self.shape.len() == src.shape.len() {
            self.shape.copy_from_slice(&src.shape);
        } else {
            self.shape.clear();
            self.shape.extend_from_slice(&src.shape);
        }
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable element storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable element storage.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the raw storage.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reinterpret with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics when the element counts differ.
    pub fn reshaped(mut self, shape: &[usize]) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(self.data.len(), expected, "reshape to {shape:?} mismatches");
        // Rewrite the existing shape vector in place: reshapes on the
        // training hot path keep the rank (and thus the capacity), so no
        // reallocation happens there.
        if self.shape.len() == shape.len() {
            self.shape.copy_from_slice(shape);
        } else {
            self.shape.clear();
            self.shape.extend_from_slice(shape);
        }
        self
    }

    /// Flat index for a 3-D coordinate `(a, b, c)` in shape `[A, B, C]`.
    ///
    /// # Panics
    ///
    /// Debug-panics on rank or bounds violations.
    #[inline]
    pub fn idx3(&self, a: usize, b: usize, c: usize) -> usize {
        debug_assert_eq!(self.shape.len(), 3);
        debug_assert!(a < self.shape[0] && b < self.shape[1] && c < self.shape[2]);
        (a * self.shape[1] + b) * self.shape[2] + c
    }

    /// Flat index for a 2-D coordinate.
    #[inline]
    pub fn idx2(&self, a: usize, b: usize) -> usize {
        debug_assert_eq!(self.shape.len(), 2);
        debug_assert!(a < self.shape[0] && b < self.shape[1]);
        a * self.shape[1] + b
    }

    /// Batch size (first dimension).
    ///
    /// # Panics
    ///
    /// Panics on rank-0 tensors.
    pub fn batch(&self) -> usize {
        self.shape[0]
    }
}

/// Unfold one sample's channels `(C, L)` (row-major, channel-major as in
/// a `(N, C, L)` tensor) into an im2col matrix of shape
/// `(L_out, C * K)` with `L_out = (L - kernel) / stride + 1`: row `p`
/// holds the window starting at `p * stride`, laid out channel-major
/// `(ci, k)` — exactly the layout of a `Conv1d` weight row, so a
/// convolution output becomes one contiguous dot product per `(co, p)`.
///
/// Appends into `out` (cleared first) so callers can reuse one buffer
/// across samples.
///
/// # Panics
///
/// Panics when `sample.len() != channels * len`, `kernel == 0`,
/// `stride == 0`, or `len < kernel`.
pub fn im2col(
    sample: &[f32],
    channels: usize,
    len: usize,
    kernel: usize,
    stride: usize,
    out: &mut Vec<f32>,
) -> usize {
    assert!(kernel > 0 && stride > 0, "kernel and stride must be positive");
    assert!(len >= kernel, "input length {len} shorter than kernel {kernel}");
    let lo = (len - kernel) / stride + 1;
    out.clear();
    out.resize(lo * channels * kernel, 0.0);
    im2col_into(sample, channels, len, kernel, stride, out)
}

/// [`im2col`] writing into an exactly-sized pre-allocated slice — the
/// workspace-arena form used by the zero-allocation training path.
///
/// # Panics
///
/// Panics on the same shape violations as [`im2col`], or when
/// `out.len()` is not exactly `L_out * channels * kernel`.
pub fn im2col_into(
    sample: &[f32],
    channels: usize,
    len: usize,
    kernel: usize,
    stride: usize,
    out: &mut [f32],
) -> usize {
    assert_eq!(sample.len(), channels * len, "sample shape mismatch");
    assert!(kernel > 0 && stride > 0, "kernel and stride must be positive");
    assert!(len >= kernel, "input length {len} shorter than kernel {kernel}");
    let lo = (len - kernel) / stride + 1;
    assert_eq!(out.len(), lo * channels * kernel, "im2col output size mismatch");
    let mut dst = 0;
    for p in 0..lo {
        let start = p * stride;
        for ci in 0..channels {
            let base = ci * len + start;
            out[dst..dst + kernel].copy_from_slice(&sample[base..base + kernel]);
            dst += kernel;
        }
    }
    lo
}

/// `init + Σ a[i]·b[i]` with a fixed-width (8-lane) unrolled inner loop.
///
/// Determinism contract: the eight products of a block are independent
/// (instruction-level parallelism for the FPU), but they are **added to
/// the accumulator strictly in index order**, so the result is
/// bit-identical to the naive `for i { acc += a[i] * b[i] }` loop — the
/// unrolling buys ILP on the multiplies without touching the
/// floating-point reduction order that `par_determinism` pins.
///
/// # Panics
///
/// Debug-panics when lengths differ.
#[inline]
pub fn dot_unrolled_from(init: f32, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot operand length mismatch");
    let n8 = a.len() / 8 * 8;
    let (a8, a_tail) = a.split_at(n8);
    let (b8, b_tail) = b.split_at(n8);
    let mut acc = init;
    for (ca, cb) in a8.chunks_exact(8).zip(b8.chunks_exact(8)) {
        let p0 = ca[0] * cb[0];
        let p1 = ca[1] * cb[1];
        let p2 = ca[2] * cb[2];
        let p3 = ca[3] * cb[3];
        let p4 = ca[4] * cb[4];
        let p5 = ca[5] * cb[5];
        let p6 = ca[6] * cb[6];
        let p7 = ca[7] * cb[7];
        acc += p0;
        acc += p1;
        acc += p2;
        acc += p3;
        acc += p4;
        acc += p5;
        acc += p6;
        acc += p7;
    }
    for (av, bv) in a_tail.iter().zip(b_tail) {
        acc += av * bv;
    }
    acc
}

/// `Σ a[i]·b[i]` — [`dot_unrolled_from`] with a zero seed.
#[inline]
pub fn dot_unrolled(a: &[f32], b: &[f32]) -> f32 {
    dot_unrolled_from(0.0, a, b)
}

/// `y[i] += a·x[i]`. Purely elementwise, so evaluation order cannot
/// affect any bit; the plain zip body is what LLVM's auto-vectorizer
/// turns into packed SIMD (a hand-unrolled version of this loop
/// measured ~4× *slower* — the manual unroll defeated vectorization).
///
/// # Panics
///
/// Debug-panics when lengths differ.
#[inline]
pub fn axpy_unrolled(y: &mut [f32], a: f32, x: &[f32]) {
    debug_assert_eq!(y.len(), x.len(), "axpy operand length mismatch");
    for (yv, xv) in y.iter_mut().zip(x) {
        *yv += a * xv;
    }
}

/// `y[i] = (y[i] + a0·x0[i]) + a1·x1[i]` — two fused [`axpy_unrolled`]
/// steps. The parenthesization matches two sequential axpy calls
/// exactly (Rust's `+` is left-associative), so the fusion changes no
/// bit; it exists to halve the read-modify-write traffic on `y` when a
/// caller has two updates queued for the same row.
///
/// # Panics
///
/// Debug-panics when lengths differ.
#[inline]
pub fn axpy2_unrolled(y: &mut [f32], a0: f32, x0: &[f32], a1: f32, x1: &[f32]) {
    debug_assert_eq!(y.len(), x0.len(), "axpy operand length mismatch");
    debug_assert_eq!(y.len(), x1.len(), "axpy operand length mismatch");
    for ((yv, xv0), xv1) in y.iter_mut().zip(x0).zip(x1) {
        *yv = *yv + a0 * xv0 + a1 * xv1;
    }
}

/// `out[i * n + j] = init(i, j) + dot(a[i], b[j])` for `a: (m, k)` and
/// `b: (n, k)`, both row-major — a matmul against a transposed right-hand
/// side, which is the natural layout for both im2col convolutions
/// (`a` = weights, `b` = columns) and dense layers (`a` = inputs,
/// `b` = weights).
///
/// `row_init` seeds every element of output row `i` with `row_init[i]`;
/// `col_init` seeds element `(i, j)` with `col_init[j]` (at most one may
/// be given — both panic). Each output element accumulates over the full
/// `k` dimension in index order starting from its init value, so results
/// are bit-identical to the textbook triple loop no matter how the
/// traversal is blocked.
///
/// Blocking: the `j` loop is tiled so a tile of `b` rows stays in L1/L2
/// while every `a` row streams over it once.
///
/// # Panics
///
/// Panics on shape mismatches or when both inits are provided.
#[allow(clippy::too_many_arguments)]
pub fn matmul_abt(
    a: &[f32],
    b: &[f32],
    m: usize,
    n: usize,
    k: usize,
    row_init: Option<&[f32]>,
    col_init: Option<&[f32]>,
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "lhs shape mismatch");
    assert_eq!(b.len(), n * k, "rhs shape mismatch");
    assert_eq!(out.len(), m * n, "output shape mismatch");
    assert!(
        row_init.is_none() || col_init.is_none(),
        "at most one init vector"
    );
    if let Some(init) = row_init {
        assert_eq!(init.len(), m, "row init length mismatch");
    }
    if let Some(init) = col_init {
        assert_eq!(init.len(), n, "col init length mismatch");
    }
    let init_at = |i: usize, j: usize| match (row_init, col_init) {
        (Some(init), _) => init[i],
        (_, Some(init)) => init[j],
        _ => 0.0,
    };
    // Tile size: keep a tile of `b` rows within ~32 KiB so they are
    // re-read from cache for every `a` row. Bits are unaffected by the
    // choice — accumulation per element is always full-`k`, in order.
    let tile = (8192 / k.max(1)).clamp(1, n.max(1));
    for jb in (0..n).step_by(tile) {
        let je = (jb + tile).min(n);
        // Register blocking: a 2×4 micro-tile gives every output its own
        // accumulator — eight independent dependency chains instead of
        // one, which is what keeps the FPU pipeline full. Each chain
        // still adds its products strictly in `k` order seeded from its
        // init, so every element is bit-identical to a lone dot product.
        let mut i = 0;
        while i + 2 <= m {
            let a0 = &a[i * k..(i + 1) * k];
            let a1 = &a[(i + 1) * k..(i + 2) * k];
            let mut j = jb;
            while j + 4 <= je {
                let b0 = &b[j * k..(j + 1) * k];
                let b1 = &b[(j + 1) * k..(j + 2) * k];
                let b2 = &b[(j + 2) * k..(j + 3) * k];
                let b3 = &b[(j + 3) * k..(j + 4) * k];
                let mut acc = [
                    init_at(i, j),
                    init_at(i, j + 1),
                    init_at(i, j + 2),
                    init_at(i, j + 3),
                    init_at(i + 1, j),
                    init_at(i + 1, j + 1),
                    init_at(i + 1, j + 2),
                    init_at(i + 1, j + 3),
                ];
                for t in 0..k {
                    let av0 = a0[t];
                    let av1 = a1[t];
                    let bv0 = b0[t];
                    let bv1 = b1[t];
                    let bv2 = b2[t];
                    let bv3 = b3[t];
                    acc[0] += av0 * bv0;
                    acc[1] += av0 * bv1;
                    acc[2] += av0 * bv2;
                    acc[3] += av0 * bv3;
                    acc[4] += av1 * bv0;
                    acc[5] += av1 * bv1;
                    acc[6] += av1 * bv2;
                    acc[7] += av1 * bv3;
                }
                out[i * n + j..i * n + j + 4].copy_from_slice(&acc[..4]);
                out[(i + 1) * n + j..(i + 1) * n + j + 4].copy_from_slice(&acc[4..]);
                j += 4;
            }
            while j < je {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc0 = init_at(i, j);
                let mut acc1 = init_at(i + 1, j);
                for t in 0..k {
                    let bv = brow[t];
                    acc0 += a0[t] * bv;
                    acc1 += a1[t] * bv;
                }
                out[i * n + j] = acc0;
                out[(i + 1) * n + j] = acc1;
                j += 1;
            }
            i += 2;
        }
        if i < m {
            let arow = &a[i * k..(i + 1) * k];
            let mut j = jb;
            while j + 4 <= je {
                let b0 = &b[j * k..(j + 1) * k];
                let b1 = &b[(j + 1) * k..(j + 2) * k];
                let b2 = &b[(j + 2) * k..(j + 3) * k];
                let b3 = &b[(j + 3) * k..(j + 4) * k];
                let mut acc = [
                    init_at(i, j),
                    init_at(i, j + 1),
                    init_at(i, j + 2),
                    init_at(i, j + 3),
                ];
                for t in 0..k {
                    let av = arow[t];
                    acc[0] += av * b0[t];
                    acc[1] += av * b1[t];
                    acc[2] += av * b2[t];
                    acc[3] += av * b3[t];
                }
                out[i * n + j..i * n + j + 4].copy_from_slice(&acc);
                j += 4;
            }
            while j < je {
                let brow = &b[j * k..(j + 1) * k];
                out[i * n + j] = dot_unrolled_from(init_at(i, j), arow, brow);
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_length() {
        let t = Tensor::new(&[2, 3], vec![0.0; 6]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
    }

    #[test]
    #[should_panic(expected = "elements")]
    fn new_rejects_bad_length() {
        Tensor::new(&[2, 3], vec![0.0; 5]);
    }

    #[test]
    fn zeros_is_zero() {
        let t = Tensor::zeros(&[4]);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn idx3_row_major() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.idx3(0, 0, 0), 0);
        assert_eq!(t.idx3(0, 0, 3), 3);
        assert_eq!(t.idx3(0, 1, 0), 4);
        assert_eq!(t.idx3(1, 0, 0), 12);
        assert_eq!(t.idx3(1, 2, 3), 23);
    }

    #[test]
    fn idx2_row_major() {
        let t = Tensor::zeros(&[3, 5]);
        assert_eq!(t.idx2(2, 4), 14);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::new(&[2, 3], (0..6).map(|x| x as f32).collect());
        let r = t.clone().reshaped(&[3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "mismatches")]
    fn reshape_rejects_bad_count() {
        Tensor::zeros(&[2, 3]).reshaped(&[7]);
    }

    #[test]
    fn im2col_unfolds_windows_channel_major() {
        // 2 channels, length 5, kernel 2, stride 2 -> lo = 2.
        let sample = [1.0, 2.0, 3.0, 4.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0];
        let mut col = Vec::new();
        let lo = im2col(&sample, 2, 5, 2, 2, &mut col);
        assert_eq!(lo, 2);
        #[rustfmt::skip]
        assert_eq!(
            col,
            vec![
                1.0, 2.0, 10.0, 20.0, // p = 0: (ci0 k0 k1)(ci1 k0 k1)
                3.0, 4.0, 30.0, 40.0, // p = 1
            ]
        );
    }

    #[test]
    fn im2col_reuses_buffer() {
        let sample = [1.0, 2.0, 3.0];
        let mut col = vec![99.0; 64];
        let lo = im2col(&sample, 1, 3, 3, 1, &mut col);
        assert_eq!(lo, 1);
        assert_eq!(col, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "shorter than kernel")]
    fn im2col_rejects_short_input() {
        im2col(&[0.0; 2], 1, 2, 3, 1, &mut Vec::new());
    }

    #[test]
    fn matmul_abt_matches_naive_triple_loop() {
        let (m, n, k) = (5, 7, 11);
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.31).sin()).collect();
        let b: Vec<f32> = (0..n * k).map(|i| (i as f32 * 0.17).cos()).collect();
        let bias: Vec<f32> = (0..m).map(|i| i as f32 * 0.5).collect();
        let mut out = vec![0.0; m * n];
        matmul_abt(&a, &b, m, n, k, Some(&bias), None, &mut out);
        for i in 0..m {
            for j in 0..n {
                let mut acc = bias[i];
                for kk in 0..k {
                    acc += a[i * k + kk] * b[j * k + kk];
                }
                // Bit-exact: same accumulation order as the kernel.
                assert_eq!(acc.to_bits(), out[i * n + j].to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn matmul_abt_col_init_seeds_columns() {
        let a = [1.0, 0.0, 0.0, 1.0]; // 2x2 identity
        let b = [2.0, 3.0, 4.0, 5.0]; // rows [2,3], [4,5]
        let cb = [100.0, 200.0];
        let mut out = vec![0.0; 4];
        matmul_abt(&a, &b, 2, 2, 2, None, Some(&cb), &mut out);
        assert_eq!(out, vec![102.0, 204.0, 103.0, 205.0]);
    }

    #[test]
    fn dot_unrolled_matches_naive_bitwise() {
        for n in [0usize, 1, 7, 8, 9, 16, 23, 300] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.31).sin()).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.17).cos()).collect();
            let mut naive = 0.25f32;
            for (av, bv) in a.iter().zip(&b) {
                naive += av * bv;
            }
            let fast = dot_unrolled_from(0.25, &a, &b);
            assert_eq!(naive.to_bits(), fast.to_bits(), "n = {n}");
            assert_eq!(dot_unrolled(&a, &b).to_bits(), dot_unrolled_from(0.0, &a, &b).to_bits());
        }
    }

    #[test]
    fn axpy_unrolled_matches_naive_bitwise() {
        for n in [0usize, 1, 7, 8, 9, 16, 23, 300] {
            let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.13).sin()).collect();
            let mut y1: Vec<f32> = (0..n).map(|i| (i as f32 * 0.07).cos()).collect();
            let mut y2 = y1.clone();
            for (yv, xv) in y1.iter_mut().zip(&x) {
                *yv += -0.37 * xv;
            }
            axpy_unrolled(&mut y2, -0.37, &x);
            let b1: Vec<u32> = y1.iter().map(|v| v.to_bits()).collect();
            let b2: Vec<u32> = y2.iter().map(|v| v.to_bits()).collect();
            assert_eq!(b1, b2, "n = {n}");
        }
    }

    #[test]
    fn im2col_into_matches_vec_variant() {
        let sample: Vec<f32> = (0..30).map(|i| i as f32).collect();
        let mut v = Vec::new();
        let lo = im2col(&sample, 2, 15, 4, 2, &mut v);
        let mut s = vec![9.0f32; v.len()];
        let lo2 = im2col_into(&sample, 2, 15, 4, 2, &mut s);
        assert_eq!(lo, lo2);
        assert_eq!(v, s);
    }

    #[test]
    #[should_panic(expected = "output size mismatch")]
    fn im2col_into_rejects_wrong_output_len() {
        im2col_into(&[0.0; 8], 1, 8, 2, 2, &mut [0.0; 3]);
    }

    #[test]
    fn copy_from_reuses_capacity_and_matches() {
        let src = Tensor::new(&[2, 3], (0..6).map(|x| x as f32).collect());
        let mut dst = Tensor::zeros(&[3, 2]);
        let cap = dst.data.capacity();
        dst.copy_from(&src);
        assert_eq!(dst.shape(), src.shape());
        assert_eq!(dst.data(), src.data());
        assert_eq!(dst.data.capacity(), cap, "same-size copy must not reallocate");
    }

    #[test]
    fn zeroed_in_draws_from_workspace() {
        let mut ws = crate::workspace::Workspace::new();
        let t = Tensor::zeroed_in(&mut ws, &[2, 4]);
        assert_eq!(t.shape(), &[2, 4]);
        assert!(t.data().iter().all(|&v| v == 0.0));
        ws.recycle(t);
        let t = Tensor::zeroed_in(&mut ws, &[4, 2]);
        assert_eq!(ws.stats().hits, 1);
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn matmul_abt_blocking_is_bit_stable_across_shapes() {
        // Shapes straddling the tile boundary must agree element-wise
        // with the unblocked reference (tile = 1 case: k >= 8192).
        let (m, n, k) = (3, 40, 300);
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.013).sin()).collect();
        let b: Vec<f32> = (0..n * k).map(|i| (i as f32 * 0.007).cos()).collect();
        let mut out = vec![0.0; m * n];
        matmul_abt(&a, &b, m, n, k, None, None, &mut out);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[j * k + kk];
                }
                assert_eq!(acc.to_bits(), out[i * n + j].to_bits());
            }
        }
    }
}
