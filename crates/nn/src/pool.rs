//! 1-D pooling: max (the paper's choice) and average (ablation).
//!
//! Outputs come from the thread's [`workspace`] arena and the argmax /
//! shape caches are persistent buffers reset in place, so steady-state
//! training steps never allocate here.

use crate::tensor::Tensor;
use crate::workspace;
use crate::Layer;

/// Non-overlapping max pooling over the length axis: `(N, C, L)` →
/// `(N, C, L / size)` (trailing remainder dropped, as in Keras).
#[derive(Debug, Clone)]
pub struct MaxPool1d {
    size: usize,
    /// Argmax indices from the last training forward, for routing
    /// gradients (paired with the input shape).
    cached_argmax: Option<(Vec<usize>, Vec<usize>)>,
}

impl MaxPool1d {
    /// A pooling layer with the given window size.
    ///
    /// # Panics
    ///
    /// Panics when `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "pool size must be positive");
        MaxPool1d { size, cached_argmax: None }
    }

    /// Output length for input length `l`.
    pub fn out_len(&self, l: usize) -> usize {
        l / self.size
    }

    /// The pooling triple loop; records the winning flat index per
    /// window into `argmax` when given.
    fn pool_into(
        &self,
        x: &Tensor,
        n: usize,
        c: usize,
        lo: usize,
        out: &mut [f32],
        mut argmax: Option<&mut [usize]>,
    ) {
        for i in 0..n {
            for ch in 0..c {
                for p in 0..lo {
                    let start = x.idx3(i, ch, p * self.size);
                    let window = &x.data()[start..start + self.size];
                    let (best_k, best_v) = window
                        .iter()
                        .enumerate()
                        .fold((0usize, f32::NEG_INFINITY), |(bk, bv), (k, &v)| {
                            if v > bv {
                                (k, v)
                            } else {
                                (bk, bv)
                            }
                        });
                    let oi = (i * c + ch) * lo + p;
                    out[oi] = best_v;
                    if let Some(am) = argmax.as_deref_mut() {
                        am[oi] = start + best_k;
                    }
                }
            }
        }
    }
}

impl Layer for MaxPool1d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 3, "maxpool expects (N, C, L)");
        let (n, c, l) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let lo = self.out_len(l);
        assert!(lo > 0, "input length {l} shorter than pool window {}", self.size);
        let mut out = workspace::tensor(&[n, c, lo]);
        if train {
            // Reuse the cached buffers in place; a warm cache never
            // reallocates.
            let (mut argmax, mut shape) = self.cached_argmax.take().unwrap_or_default();
            argmax.clear();
            argmax.resize(n * c * lo, 0);
            shape.clear();
            shape.extend_from_slice(x.shape());
            self.pool_into(x, n, c, lo, out.data_mut(), Some(&mut argmax));
            self.cached_argmax = Some((argmax, shape));
        } else {
            self.pool_into(x, n, c, lo, out.data_mut(), None);
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let (argmax, in_shape) =
            self.cached_argmax.as_ref().expect("backward without forward");
        let mut dx = workspace::tensor(in_shape);
        for (gi, &src) in argmax.iter().enumerate() {
            dx.data_mut()[src] += grad.data()[gi];
        }
        dx
    }
}

/// Non-overlapping average pooling over the length axis — the ablation
/// counterpart to [`MaxPool1d`] (the paper's model uses max pooling).
#[derive(Debug, Clone)]
pub struct AvgPool1d {
    size: usize,
    cached_in_shape: Option<Vec<usize>>,
}

impl AvgPool1d {
    /// An average-pooling layer with the given window size.
    ///
    /// # Panics
    ///
    /// Panics when `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "pool size must be positive");
        AvgPool1d { size, cached_in_shape: None }
    }

    /// Output length for input length `l`.
    pub fn out_len(&self, l: usize) -> usize {
        l / self.size
    }
}

impl Layer for AvgPool1d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 3, "avgpool expects (N, C, L)");
        let (n, c, l) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let lo = self.out_len(l);
        assert!(lo > 0, "input length {l} shorter than pool window {}", self.size);
        let mut out = workspace::tensor(&[n, c, lo]);
        let inv = 1.0 / self.size as f32;
        for i in 0..n {
            for ch in 0..c {
                for p in 0..lo {
                    let start = x.idx3(i, ch, p * self.size);
                    let sum: f32 = x.data()[start..start + self.size].iter().sum();
                    out.data_mut()[(i * c + ch) * lo + p] = sum * inv;
                }
            }
        }
        if train {
            match &mut self.cached_in_shape {
                Some(s) => {
                    s.clear();
                    s.extend_from_slice(x.shape());
                }
                None => self.cached_in_shape = Some(x.shape().to_vec()), // alloc-ok: first forward only
            }
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let in_shape = self.cached_in_shape.as_ref().expect("backward without forward");
        let mut dx = workspace::tensor(in_shape);
        let (n, c) = (in_shape[0], in_shape[1]);
        let lo = grad.shape()[2];
        let inv = 1.0 / self.size as f32;
        for i in 0..n {
            for ch in 0..c {
                for p in 0..lo {
                    let g = grad.data()[grad.idx3(i, ch, p)] * inv;
                    let start = dx.idx3(i, ch, p * self.size);
                    for k in 0..self.size {
                        dx.data_mut()[start + k] += g;
                    }
                }
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_takes_window_max() {
        let mut p = MaxPool1d::new(2);
        let x = Tensor::new(&[1, 1, 6], vec![1.0, 5.0, 2.0, 2.0, 9.0, 0.0]);
        let y = p.forward(&x, false);
        assert_eq!(y.data(), &[5.0, 2.0, 9.0]);
    }

    #[test]
    fn remainder_dropped() {
        let mut p = MaxPool1d::new(4);
        let x = Tensor::new(&[1, 1, 7], vec![1.0; 7]);
        let y = p.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 1]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let mut p = MaxPool1d::new(3);
        let x = Tensor::new(&[1, 1, 6], vec![1.0, 7.0, 2.0, 4.0, 4.5, 3.0]);
        let _ = p.forward(&x, true);
        let g = Tensor::new(&[1, 1, 2], vec![10.0, 20.0]);
        let dx = p.backward(&g);
        assert_eq!(dx.data(), &[0.0, 10.0, 0.0, 0.0, 20.0, 0.0]);
    }

    #[test]
    fn ties_go_to_first() {
        let mut p = MaxPool1d::new(2);
        let x = Tensor::new(&[1, 1, 2], vec![3.0, 3.0]);
        let _ = p.forward(&x, true);
        let dx = p.backward(&Tensor::new(&[1, 1, 1], vec![1.0]));
        assert_eq!(dx.data(), &[1.0, 0.0]);
    }

    #[test]
    fn multichannel_independent() {
        let mut p = MaxPool1d::new(2);
        let x = Tensor::new(&[1, 2, 2], vec![1.0, 2.0, 30.0, 4.0]);
        let y = p.forward(&x, false);
        assert_eq!(y.data(), &[2.0, 30.0]);
    }

    #[test]
    fn cache_reuse_across_shapes() {
        let mut p = MaxPool1d::new(2);
        let _ = p.forward(&Tensor::new(&[1, 1, 6], vec![1.0, 5.0, 2.0, 2.0, 9.0, 0.0]), true);
        // Smaller batch after a larger one must not read stale indices.
        let x = Tensor::new(&[1, 1, 4], vec![4.0, 1.0, 0.0, 8.0]);
        let _ = p.forward(&x, true);
        let dx = p.backward(&Tensor::new(&[1, 1, 2], vec![1.0, 2.0]));
        assert_eq!(dx.data(), &[1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "shorter than pool window")]
    fn too_short_panics() {
        MaxPool1d::new(4).forward(&Tensor::zeros(&[1, 1, 3]), false);
    }

    #[test]
    fn avg_forward_takes_window_mean() {
        let mut p = AvgPool1d::new(2);
        let x = Tensor::new(&[1, 1, 6], vec![1.0, 5.0, 2.0, 2.0, 9.0, 1.0]);
        let y = p.forward(&x, false);
        assert_eq!(y.data(), &[3.0, 2.0, 5.0]);
    }

    #[test]
    fn avg_backward_spreads_gradient_uniformly() {
        let mut p = AvgPool1d::new(3);
        let x = Tensor::new(&[1, 1, 6], vec![1.0; 6]);
        let _ = p.forward(&x, true);
        let dx = p.backward(&Tensor::new(&[1, 1, 2], vec![3.0, 6.0]));
        assert_eq!(dx.data(), &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn avg_gradient_mass_conserved() {
        let mut p = AvgPool1d::new(4);
        let x = Tensor::new(&[2, 3, 8], vec![0.5; 48]);
        let _ = p.forward(&x, true);
        let g = Tensor::new(&[2, 3, 2], (0..12).map(|i| i as f32).collect());
        let dx = p.backward(&g);
        let g_sum: f32 = g.data().iter().sum();
        let dx_sum: f32 = dx.data().iter().sum();
        assert!((g_sum - dx_sum).abs() < 1e-4);
    }
}
