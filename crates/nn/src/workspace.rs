//! Per-thread scratch arenas for the training hot path.
//!
//! Every forward/backward pass needs short-lived f32 buffers — im2col
//! matrices, layer outputs, gradient partials. Allocating them fresh
//! each step put the allocator, not the FPU, on the critical path. A
//! [`Workspace`] is a small free-list pool of `Vec<f32>` storage (plus
//! `Vec<usize>` shape vectors): [`Workspace::take`] hands out a zeroed
//! buffer, reusing pooled capacity when any fits, and
//! [`Workspace::give`] returns storage for the next taker. After one
//! warm-up step the pool satisfies every request and a steady-state
//! training step performs **zero heap allocations** (asserted by the
//! counting-allocator test in `tests/alloc_regression.rs`).
//!
//! ## Ownership rules
//!
//! - Buffers are plain `Vec<f32>` / [`Tensor`] values: taking one moves
//!   it out of the pool, so there is no aliasing and no lifetime tie to
//!   the workspace. Returning storage (`give` / [`recycle`]) is an
//!   *optimization, never a correctness requirement* — a tensor that
//!   escapes (e.g. logits handed to a caller) is simply dropped and the
//!   pool re-warms on the next step.
//! - The pool is **thread-local** (one arena per thread, reached through
//!   the free functions below), so `bf-par` workers each get a private
//!   arena and parallel batches never share buffers. Worker arenas die
//!   with their threads; only the long-lived training thread's arena
//!   stays warm, which is exactly the thread the zero-allocation
//!   contract covers (the parallel arm spawns threads, which allocate
//!   by nature).
//! - `take` always returns a buffer of *exactly* the requested length,
//!   zero-filled — callers never see stale data.
//!
//! ## Determinism
//!
//! Pooling cannot change results: buffers are zeroed on `take`, so a
//! recycled buffer is indistinguishable from a fresh `vec![0.0; len]`.
//! The determinism contract lives in the kernels (`tensor.rs`), not
//! here.

use crate::tensor::Tensor;
use std::cell::RefCell;

/// Cap on pooled buffers per arena. Bounds worst-case retention when a
/// caller churns through many distinct sizes; a training step needs far
/// fewer live buffers than this.
const MAX_POOLED: usize = 64;

/// Cumulative take statistics, for diagnostics and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Takes satisfied from the pool.
    pub hits: u64,
    /// Takes that had to allocate.
    pub misses: u64,
}

/// A size-classed free-list pool of scratch storage.
#[derive(Debug, Default)]
pub struct Workspace {
    bufs: Vec<Vec<f32>>,
    shapes: Vec<Vec<usize>>,
    stats: WorkspaceStats,
}

impl Workspace {
    /// An empty workspace.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// A zeroed buffer of exactly `len` elements, reusing the pooled
    /// buffer with the smallest sufficient capacity (best fit) when one
    /// exists.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        if len == 0 {
            return Vec::new();
        }
        let mut best: Option<usize> = None;
        for (i, b) in self.bufs.iter().enumerate() {
            let cap = b.capacity();
            if cap >= len && best.is_none_or(|j: usize| cap < self.bufs[j].capacity()) {
                best = Some(i);
            }
        }
        match best {
            Some(i) => {
                self.stats.hits += 1;
                let mut b = self.bufs.swap_remove(i);
                b.clear();
                b.resize(len, 0.0);
                b
            }
            None => {
                self.stats.misses += 1;
                vec![0.0; len] // alloc-ok: pool miss (cold)
            }
        }
    }

    /// Return a buffer's storage to the pool (contents are discarded).
    pub fn give(&mut self, mut buf: Vec<f32>) {
        if buf.capacity() == 0 || self.bufs.len() >= MAX_POOLED {
            return;
        }
        buf.clear();
        self.bufs.push(buf);
    }

    /// A zeroed tensor of the given shape with pooled storage (both the
    /// data and the shape vector come from the pool).
    pub fn tensor(&mut self, shape: &[usize]) -> Tensor {
        let len = shape.iter().product();
        let mut sv = self.take_shape();
        sv.extend_from_slice(shape);
        Tensor::from_raw(sv, self.take(len))
    }

    /// Dismantle a tensor and pool its storage.
    pub fn recycle(&mut self, t: Tensor) {
        let (shape, data) = t.into_raw();
        self.give_shape(shape);
        self.give(data);
    }

    fn take_shape(&mut self) -> Vec<usize> {
        match self.shapes.pop() {
            Some(mut s) => {
                s.clear();
                s
            }
            None => Vec::with_capacity(4), // alloc-ok: pool miss (cold)
        }
    }

    fn give_shape(&mut self, mut shape: Vec<usize>) {
        if shape.capacity() == 0 || self.shapes.len() >= MAX_POOLED {
            return;
        }
        shape.clear();
        self.shapes.push(shape);
    }

    /// Cumulative hit/miss counters.
    pub fn stats(&self) -> WorkspaceStats {
        self.stats
    }

    /// Drop all pooled storage (counters are kept).
    pub fn clear(&mut self) {
        self.bufs.clear();
        self.shapes.clear();
    }
}

thread_local! {
    static WS: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// [`Workspace::take`] on this thread's arena.
pub fn take(len: usize) -> Vec<f32> {
    WS.with(|w| w.borrow_mut().take(len))
}

/// [`Workspace::give`] on this thread's arena.
pub fn give(buf: Vec<f32>) {
    WS.with(|w| w.borrow_mut().give(buf));
}

/// [`Workspace::tensor`] on this thread's arena.
pub fn tensor(shape: &[usize]) -> Tensor {
    WS.with(|w| w.borrow_mut().tensor(shape))
}

/// A tensor with `src`'s shape and contents, backed by pooled storage.
pub fn tensor_copy_of(src: &Tensor) -> Tensor {
    let mut t = tensor(src.shape());
    t.data_mut().copy_from_slice(src.data());
    t
}

/// [`Workspace::recycle`] on this thread's arena.
pub fn recycle(t: Tensor) {
    WS.with(|w| w.borrow_mut().recycle(t));
}

/// This thread's arena counters.
pub fn stats() -> WorkspaceStats {
    WS.with(|w| w.borrow().stats())
}

/// Drop this thread's pooled storage (bench harness: emulates the
/// pre-workspace allocate-every-step behaviour).
pub fn clear_thread() {
    WS.with(|w| w.borrow_mut().clear());
}

/// A pooled scratch buffer that returns its storage to the owning
/// thread's arena on drop — the RAII form of [`take`]/[`give`], used
/// where the buffer's lifetime is managed by a combinator (e.g.
/// `bf_par::par_chunks_mut_scratch` drops per-worker scratch
/// internally).
#[derive(Debug)]
pub struct ScratchBuf {
    buf: Vec<f32>,
}

impl ScratchBuf {
    /// A zeroed pooled buffer of exactly `len` elements.
    pub fn of_len(len: usize) -> Self {
        ScratchBuf { buf: take(len) }
    }
}

impl Drop for ScratchBuf {
    fn drop(&mut self) {
        give(std::mem::take(&mut self.buf));
    }
}

impl std::ops::Deref for ScratchBuf {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl std::ops::DerefMut for ScratchBuf {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_exact_length() {
        let mut ws = Workspace::new();
        let mut b = ws.take(10);
        b.iter_mut().for_each(|v| *v = 7.0);
        ws.give(b);
        let b = ws.take(6);
        assert_eq!(b.len(), 6);
        assert!(b.iter().all(|&v| v == 0.0));
        assert_eq!(ws.stats(), WorkspaceStats { hits: 1, misses: 1 });
    }

    #[test]
    fn take_prefers_best_fit() {
        let mut ws = Workspace::new();
        let big = ws.take(1000);
        let small = ws.take(8);
        ws.give(big);
        ws.give(small);
        // A request for 5 must reuse the 8-capacity buffer, keeping the
        // large one free for large requests.
        let b = ws.take(5);
        assert!(b.capacity() < 1000, "best fit picked cap {}", b.capacity());
        let b2 = ws.take(900);
        assert!(b2.capacity() >= 1000);
        assert_eq!(ws.stats().misses, 2); // only the two cold takes
    }

    #[test]
    fn zero_len_takes_never_touch_the_pool() {
        let mut ws = Workspace::new();
        ws.give(ws_buf(64));
        let b = ws.take(0);
        assert_eq!(b.capacity(), 0);
        assert_eq!(ws.stats(), WorkspaceStats::default());
    }

    fn ws_buf(len: usize) -> Vec<f32> {
        vec![0.0; len]
    }

    #[test]
    fn pool_is_bounded() {
        let mut ws = Workspace::new();
        for _ in 0..(MAX_POOLED + 10) {
            ws.give(ws_buf(4));
        }
        assert!(ws.bufs.len() <= MAX_POOLED);
    }

    #[test]
    fn tensor_roundtrip_reuses_storage() {
        let mut ws = Workspace::new();
        let t = ws.tensor(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert!(t.data().iter().all(|&v| v == 0.0));
        ws.recycle(t);
        let t2 = ws.tensor(&[3, 2]);
        assert_eq!(t2.shape(), &[3, 2]);
        assert_eq!(ws.stats().hits, 1);
        assert_eq!(ws.stats().misses, 1);
    }

    #[test]
    fn thread_local_helpers_warm_up() {
        // Not shared with other tests' threads: each test thread has its
        // own arena.
        clear_thread();
        let t = tensor(&[4, 4]);
        recycle(t);
        let before = stats();
        let t = tensor(&[4, 4]);
        recycle(t);
        let after = stats();
        assert_eq!(after.misses, before.misses, "warm take must not miss");
        assert!(after.hits > before.hits);
    }

    #[test]
    fn scratch_buf_returns_storage_on_drop() {
        clear_thread();
        {
            let _s = ScratchBuf::of_len(32);
        }
        let before = stats();
        {
            let s = ScratchBuf::of_len(32);
            assert_eq!(s.len(), 32);
        }
        assert_eq!(stats().misses, before.misses);
        assert_eq!(stats().hits, before.hits + 1);
    }

    #[test]
    fn tensor_copy_of_matches_source() {
        clear_thread();
        let src = Tensor::new(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let cp = tensor_copy_of(&src);
        assert_eq!(cp.shape(), src.shape());
        assert_eq!(cp.data(), src.data());
    }
}
