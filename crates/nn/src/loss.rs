//! Softmax cross-entropy loss.
//!
//! Both functions are two-pass per row: the first pass accumulates the
//! exponential sum, the second recomputes each `exp(v - max)` on the
//! fly. `exp` is deterministic, so the bits match the old buffered
//! implementation exactly — and with the output tensors drawn from the
//! thread's [`workspace`] arena, neither function allocates on a warm
//! thread.

use crate::tensor::Tensor;
use crate::workspace;

/// Mean softmax cross-entropy over a batch of logits `(N, K)` with integer
/// labels. Returns `(loss, ∂loss/∂logits)`.
///
/// # Panics
///
/// Panics when shapes disagree or a label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape().len(), 2, "logits must be (N, K)");
    let n = logits.shape()[0];
    let k = logits.shape()[1];
    assert_eq!(labels.len(), n, "one label per row");
    let mut grad = workspace::tensor(&[n, k]);
    let mut loss = 0.0f64;
    for (i, &label) in labels.iter().enumerate() {
        let row = &logits.data()[i * k..(i + 1) * k];
        assert!(label < k, "label {label} out of range for {k} classes");
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for &v in row {
            sum += (v - max).exp();
        }
        let g = &mut grad.data_mut()[i * k..(i + 1) * k];
        for j in 0..k {
            let p = (row[j] - max).exp() / sum;
            g[j] = (p - if j == label { 1.0 } else { 0.0 }) / n as f32;
        }
        loss += -(((row[label] - max).exp() / sum).max(1e-30).ln() as f64);
    }
    ((loss / n as f64) as f32, grad)
}

/// Mean softmax cross-entropy over a batch of logits `(N, K)` against
/// *soft* target distributions `(N, K)` — the knowledge-distillation
/// loss. Returns `(loss, ∂loss/∂logits)`; the gradient is the usual
/// `softmax(logits) - target` scaled by `1/N`, so with a one-hot target
/// it is bit-for-bit the hard-label gradient of
/// [`softmax_cross_entropy`].
///
/// # Panics
///
/// Panics when the shapes disagree.
pub fn softmax_cross_entropy_soft(logits: &Tensor, targets: &Tensor) -> (f32, Tensor) {
    assert_eq!(logits.shape().len(), 2, "logits must be (N, K)");
    assert_eq!(logits.shape(), targets.shape(), "targets must match logits shape");
    let n = logits.shape()[0];
    let k = logits.shape()[1];
    let mut grad = workspace::tensor(&[n, k]);
    let mut loss = 0.0f64;
    for i in 0..n {
        let row = &logits.data()[i * k..(i + 1) * k];
        let t = &targets.data()[i * k..(i + 1) * k];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for &v in row {
            sum += (v - max).exp();
        }
        let log_sum = sum.max(1e-30).ln();
        let g = &mut grad.data_mut()[i * k..(i + 1) * k];
        for j in 0..k {
            let p = (row[j] - max).exp() / sum;
            g[j] = (p - t[j]) / n as f32;
            // Cross-entropy against the soft target: -t_j * log p_j.
            loss -= (t[j] as f64) * ((row[j] - max - log_sum) as f64);
        }
    }
    ((loss / n as f64) as f32, grad)
}

/// Softmax probabilities of a logits batch `(N, K)`.
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().len(), 2, "logits must be (N, K)");
    let n = logits.shape()[0];
    let k = logits.shape()[1];
    let mut out = workspace::tensor(&[n, k]);
    for i in 0..n {
        let row = &logits.data()[i * k..(i + 1) * k];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for &v in row {
            sum += (v - max).exp();
        }
        let o = &mut out.data_mut()[i * k..(i + 1) * k];
        for j in 0..k {
            o[j] = (row[j] - max).exp() / sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = Tensor::zeros(&[2, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let logits = Tensor::new(&[1, 3], vec![10.0, 0.0, 0.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3, "loss = {loss}");
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        let logits = Tensor::new(&[2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let (_, grad) = softmax_cross_entropy(&logits, &[1, 2]);
        for i in 0..2 {
            let s: f32 = grad.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        let logits = Tensor::new(&[2, 3], vec![0.3, -0.2, 0.5, 1.0, 0.1, -0.4]);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for i in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let (loss_p, _) = softmax_cross_entropy(&lp, &labels);
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (loss_m, _) = softmax_cross_entropy(&lm, &labels);
            let numeric = (loss_p - loss_m) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[i]).abs() < 1e-3,
                "i={i}: numeric {numeric} analytic {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::new(&[2, 3], vec![5.0, 1.0, -2.0, 0.0, 0.0, 0.0]);
        let p = softmax(&logits);
        for i in 0..2 {
            let s: f32 = p.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert!(p.data()[0] > 0.9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        softmax_cross_entropy(&Tensor::zeros(&[1, 2]), &[5]);
    }

    #[test]
    fn soft_loss_with_one_hot_targets_matches_hard_loss_bitwise() {
        let logits = Tensor::new(&[2, 3], vec![0.3, -0.2, 0.5, 1.0, 0.1, -0.4]);
        let labels = [2usize, 0];
        let mut one_hot = Tensor::zeros(&[2, 3]);
        for (i, &l) in labels.iter().enumerate() {
            one_hot.data_mut()[i * 3 + l] = 1.0;
        }
        let (hard, hard_grad) = softmax_cross_entropy(&logits, &labels);
        let (soft, soft_grad) = softmax_cross_entropy_soft(&logits, &one_hot);
        assert!((hard - soft).abs() < 1e-6, "hard {hard} vs soft {soft}");
        for (a, b) in hard_grad.data().iter().zip(soft_grad.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "one-hot soft gradient must match hard");
        }
    }

    #[test]
    fn soft_gradient_check_against_finite_differences() {
        let logits = Tensor::new(&[2, 3], vec![0.3, -0.2, 0.5, 1.0, 0.1, -0.4]);
        let targets = Tensor::new(&[2, 3], vec![0.6, 0.3, 0.1, 0.2, 0.2, 0.6]);
        let (_, grad) = softmax_cross_entropy_soft(&logits, &targets);
        let eps = 1e-3;
        for i in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let (loss_p, _) = softmax_cross_entropy_soft(&lp, &targets);
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (loss_m, _) = softmax_cross_entropy_soft(&lm, &targets);
            let numeric = (loss_p - loss_m) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[i]).abs() < 1e-3,
                "i={i}: numeric {numeric} analytic {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "must match logits shape")]
    fn soft_shape_mismatch_panics() {
        softmax_cross_entropy_soft(&Tensor::zeros(&[1, 2]), &Tensor::zeros(&[1, 3]));
    }
}
