//! Inverted dropout.

use crate::tensor::Tensor;
use crate::workspace;
use crate::Layer;
use bf_stats::SeedRng;

/// Inverted dropout: at train time each element is zeroed with
/// probability `rate` and survivors are scaled by `1/(1-rate)`; at eval
/// time the layer is the identity. The paper uses rate = 0.7.
///
/// Outputs are pooled [`workspace`] tensors and the mask is a
/// persistent buffer refilled in place, so steady-state steps never
/// allocate here. The RNG is consulted once per element in data order
/// regardless of buffering, keeping the draw sequence (and therefore
/// every masked bit) identical to the original implementation.
#[derive(Debug, Clone)]
pub struct Dropout {
    rate: f64,
    rng: SeedRng,
    mask: Vec<f32>,
    /// Whether `mask` reflects the most recent forward (false after an
    /// eval-mode or rate-0 forward, which are identity in backward too).
    mask_active: bool,
}

impl Dropout {
    /// A dropout layer with drop probability `rate`.
    ///
    /// # Panics
    ///
    /// Panics when `rate` is outside `[0, 1)`.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0, 1)");
        Dropout { rate, rng: SeedRng::new(seed), mask: Vec::new(), mask_active: false }
    }

    /// The drop probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train || self.rate == 0.0 {
            self.mask_active = false;
            return workspace::tensor_copy_of(x);
        }
        let keep = 1.0 - self.rate;
        let scale = (1.0 / keep) as f32;
        let mut out = workspace::tensor_copy_of(x);
        self.mask.clear();
        for v in out.data_mut() {
            let m = if self.rng.chance(keep) { scale } else { 0.0 };
            *v *= m;
            self.mask.push(m);
        }
        self.mask_active = true;
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        if !self.mask_active {
            return workspace::tensor_copy_of(grad); // eval-mode or rate-0 forward
        }
        assert_eq!(self.mask.len(), grad.len(), "gradient shape mismatch");
        let mut dx = workspace::tensor_copy_of(grad);
        for (v, &m) in dx.data_mut().iter_mut().zip(&self.mask) {
            *v *= m;
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.7, 1);
        let x = Tensor::new(&[1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.forward(&x, false).data(), x.data());
    }

    #[test]
    fn train_mode_zeroes_roughly_rate_fraction() {
        let mut d = Dropout::new(0.7, 2);
        let x = Tensor::new(&[1, 10_000], vec![1.0; 10_000]);
        let y = d.forward(&x, true);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        assert!((6_500..7_500).contains(&zeros), "zeros = {zeros}");
    }

    #[test]
    fn survivors_scaled_to_preserve_expectation() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::new(&[1, 10_000], vec![1.0; 10_000]);
        let y = d.forward(&x, true);
        let mean: f32 = y.data().iter().sum::<f32>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean = {mean}");
        let nonzero = y.data().iter().find(|&&v| v != 0.0).copied().unwrap();
        assert_eq!(nonzero, 2.0);
    }

    #[test]
    fn backward_applies_same_mask() {
        let mut d = Dropout::new(0.5, 4);
        let x = Tensor::new(&[1, 8], vec![1.0; 8]);
        let y = d.forward(&x, true);
        let dx = d.backward(&Tensor::new(&[1, 8], vec![1.0; 8]));
        assert_eq!(y.data(), dx.data());
    }

    #[test]
    fn eval_forward_deactivates_stale_mask() {
        let mut d = Dropout::new(0.5, 7);
        let x = Tensor::new(&[1, 8], vec![1.0; 8]);
        let _ = d.forward(&x, true);
        let _ = d.forward(&x, false);
        let g = Tensor::new(&[1, 8], vec![2.0; 8]);
        assert_eq!(d.backward(&g).data(), g.data());
    }

    #[test]
    fn rate_zero_never_drops() {
        let mut d = Dropout::new(0.0, 5);
        let x = Tensor::new(&[1, 100], vec![1.0; 100]);
        assert_eq!(d.forward(&x, true).data(), x.data());
    }

    #[test]
    #[should_panic(expected = "in [0, 1)")]
    fn rate_one_rejected() {
        Dropout::new(1.0, 6);
    }
}
