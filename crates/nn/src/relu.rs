//! ReLU activation.

use crate::tensor::Tensor;
use crate::workspace;
use crate::Layer;

/// Elementwise `max(0, x)` of any shape. The output comes from the
/// thread's [`workspace`] arena and the pass mask is a persistent
/// buffer refilled in place, so steady-state steps never allocate here.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Vec<bool>,
    /// False until the first training forward fills `mask`.
    mask_set: bool,
}

impl Relu {
    /// A ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut out = workspace::tensor_copy_of(x);
        if train {
            // Presized mask + branchless select keep the pass a single
            // vectorizable sweep (a per-element `push` pays a capacity
            // check on every element).
            self.mask.clear();
            self.mask.resize(out.len(), false);
            for (v, m) in out.data_mut().iter_mut().zip(self.mask.iter_mut()) {
                let pass = *v > 0.0;
                *m = pass;
                *v = if pass { *v } else { 0.0 };
            }
            self.mask_set = true;
        } else {
            for v in out.data_mut() {
                *v = if *v > 0.0 { *v } else { 0.0 };
            }
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        assert!(self.mask_set, "backward without forward");
        assert_eq!(self.mask.len(), grad.len(), "gradient shape mismatch");
        let mut dx = workspace::tensor_copy_of(grad);
        for (v, &pass) in dx.data_mut().iter_mut().zip(&self.mask) {
            *v = if pass { *v } else { 0.0 };
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut r = Relu::new();
        let x = Tensor::new(&[1, 4], vec![-1.0, 0.0, 2.0, -3.0]);
        let y = r.forward(&x, false);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut r = Relu::new();
        let x = Tensor::new(&[1, 4], vec![-1.0, 0.5, 2.0, -3.0]);
        let _ = r.forward(&x, true);
        let dx = r.backward(&Tensor::new(&[1, 4], vec![1.0, 1.0, 1.0, 1.0]));
        assert_eq!(dx.data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn zero_input_blocks_gradient() {
        let mut r = Relu::new();
        let x = Tensor::new(&[1, 1], vec![0.0]);
        let _ = r.forward(&x, true);
        let dx = r.backward(&Tensor::new(&[1, 1], vec![5.0]));
        assert_eq!(dx.data(), &[0.0]);
    }

    #[test]
    #[should_panic(expected = "backward without forward")]
    fn backward_requires_training_forward() {
        let mut r = Relu::new();
        let _ = r.forward(&Tensor::new(&[1, 1], vec![1.0]), false);
        let _ = r.backward(&Tensor::new(&[1, 1], vec![1.0]));
    }
}
