//! ReLU activation.

use crate::tensor::Tensor;
use crate::Layer;

/// Elementwise `max(0, x)` of any shape.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    cached_mask: Option<Vec<bool>>,
}

impl Relu {
    /// A ReLU layer.
    pub fn new() -> Self {
        Relu { cached_mask: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut out = x.clone();
        let mut mask = Vec::new();
        if train {
            mask.reserve(x.len());
        }
        for v in out.data_mut() {
            let pass = *v > 0.0;
            if !pass {
                *v = 0.0;
            }
            if train {
                mask.push(pass);
            }
        }
        if train {
            self.cached_mask = Some(mask);
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mask = self.cached_mask.as_ref().expect("backward without forward");
        assert_eq!(mask.len(), grad.len(), "gradient shape mismatch");
        let mut dx = grad.clone();
        for (v, &pass) in dx.data_mut().iter_mut().zip(mask) {
            if !pass {
                *v = 0.0;
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut r = Relu::new();
        let x = Tensor::new(&[1, 4], vec![-1.0, 0.0, 2.0, -3.0]);
        let y = r.forward(&x, false);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut r = Relu::new();
        let x = Tensor::new(&[1, 4], vec![-1.0, 0.5, 2.0, -3.0]);
        let _ = r.forward(&x, true);
        let dx = r.backward(&Tensor::new(&[1, 4], vec![1.0, 1.0, 1.0, 1.0]));
        assert_eq!(dx.data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn zero_input_blocks_gradient() {
        let mut r = Relu::new();
        let x = Tensor::new(&[1, 1], vec![0.0]);
        let _ = r.forward(&x, true);
        let dx = r.backward(&Tensor::new(&[1, 1], vec![5.0]));
        assert_eq!(dx.data(), &[0.0]);
    }
}
