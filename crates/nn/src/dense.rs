//! Fully connected layer.
//!
//! Forward runs on the shared [`matmul_abt`] blocked kernel; backward
//! splits into a parameter pass (parallel over output units) and an
//! input-gradient pass (parallel over samples), both preserving the
//! sequential per-element accumulation order so results are bit-exact
//! across thread counts. Dense shapes in this pipeline are small (≤ 100
//! units), so the `bf-par` grain keeps typical batches inline — and the
//! inline arms draw every scratch buffer from the thread's
//! [`workspace`] arena, so a steady-state step never allocates here.

use crate::param::Param;
use crate::tensor::{axpy_unrolled, matmul_abt, Tensor};
use crate::workspace::{self, ScratchBuf};
use crate::Layer;
use bf_stats::SeedRng;

/// `y = x·Wᵀ + b`, mapping `(N, in)` to `(N, out)`.
#[derive(Debug, Clone)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    /// Weights, laid out `(out, in)` row-major.
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// A Glorot-initialized dense layer.
    pub fn new(in_features: usize, out_features: usize, rng: &mut SeedRng) -> Self {
        Dense {
            in_features,
            out_features,
            weight: Param::glorot(in_features * out_features, in_features, out_features, rng),
            bias: Param::zeros(out_features),
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 2, "dense expects (N, features)");
        assert_eq!(x.shape()[1], self.in_features, "dense input width mismatch");
        let n = x.batch();
        let mut out = workspace::tensor(&[n, self.out_features]);
        let xdata = x.data();
        // Sample rows are independent, so splitting the batch across
        // workers cannot change any output bit; the grain keeps small
        // batches on one thread and the per-row MAC estimate keeps tiny
        // layers inline. Each row runs the same `m = 1` matmul the
        // sequential path used, so accumulation order is unchanged.
        bf_par::par_chunks_mut_scratch_units(
            out.data_mut(),
            self.out_features,
            64,
            self.in_features * self.out_features,
            || (),
            |i, row, ()| {
                let xi = &xdata[i * self.in_features..(i + 1) * self.in_features];
                matmul_abt(
                    xi,
                    &self.weight.value,
                    1,
                    self.out_features,
                    self.in_features,
                    None,
                    Some(&self.bias.value),
                    row,
                );
            },
        );
        if train {
            match &mut self.cached_input {
                Some(c) => c.copy_from(x),
                None => self.cached_input = Some(x.clone()),
            }
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        // Taken out of `self` (and restored below) so the gradient merge
        // can borrow `self` mutably while `x` stays readable.
        let x = self.cached_input.take().expect("backward without forward");
        let n = x.batch();
        assert_eq!(grad.shape(), &[n, self.out_features]);
        let (in_f, out_f) = (self.in_features, self.out_features);

        // Parameter pass, parallel over output units: each unit owns its
        // weight row and bias slot, accumulating over samples in index
        // order (the sequential loop's per-element order). The partial
        // buffer stays — even inline — so pre-existing gradient bits are
        // added exactly once, after the sample loop.
        if bf_par::plan_units(out_f, 32, n * in_f) <= 1 {
            let mut wg = ScratchBuf::of_len(in_f);
            for o in 0..out_f {
                wg.fill(0.0);
                let mut bg = 0.0f32;
                for i in 0..n {
                    let g = grad.data()[i * out_f + o];
                    bg += g;
                    axpy_unrolled(&mut wg, g, &x.data()[i * in_f..(i + 1) * in_f]);
                }
                self.bias.grad[o] += bg;
                let grow = &mut self.weight.grad[o * in_f..(o + 1) * in_f];
                for (dst, src) in grow.iter_mut().zip(wg.iter()) {
                    *dst += src;
                }
            }
        } else {
            let units: Vec<usize> = (0..out_f).collect(); // alloc-ok: parallel arm
            let partials = bf_par::par_map_indexed_grained(&units, 32, |_, &o| {
                let mut wg = vec![0.0f32; in_f]; // alloc-ok: parallel arm
                let mut bg = 0.0f32;
                for i in 0..n {
                    let g = grad.data()[i * out_f + o];
                    bg += g;
                    axpy_unrolled(&mut wg, g, &x.data()[i * in_f..(i + 1) * in_f]);
                }
                (wg, bg)
            });
            for (o, (wg, bg)) in partials.into_iter().enumerate() {
                self.bias.grad[o] += bg;
                let grow = &mut self.weight.grad[o * in_f..(o + 1) * in_f];
                for (dst, src) in grow.iter_mut().zip(&wg) {
                    *dst += src;
                }
            }
        }

        // Input-gradient pass, parallel over samples: disjoint dx rows,
        // each accumulated over output units in index order, written
        // straight into the zeroed workspace tensor.
        let mut dx = workspace::tensor(&[n, in_f]);
        let weight = &self.weight.value;
        bf_par::par_chunks_mut_scratch_units(
            dx.data_mut(),
            in_f,
            64,
            in_f * out_f,
            || (),
            |i, dxi, ()| {
                for o in 0..out_f {
                    let g = grad.data()[i * out_f + o];
                    axpy_unrolled(dxi, g, &weight[o * in_f..(o + 1) * in_f]);
                }
            },
        );
        self.cached_input = Some(x);
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias] // alloc-ok: cold path (save/restore)
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = SeedRng::new(1);
        let mut d = Dense::new(3, 2, &mut rng);
        d.bias.value = vec![1.0, -1.0];
        let x = Tensor::zeros(&[4, 3]);
        let y = d.forward(&x, false);
        assert_eq!(y.shape(), &[4, 2]);
        assert_eq!(y.data()[0], 1.0);
        assert_eq!(y.data()[1], -1.0);
    }

    #[test]
    fn forward_matches_hand_computation() {
        let mut rng = SeedRng::new(2);
        let mut d = Dense::new(2, 2, &mut rng);
        d.weight.value = vec![1.0, 2.0, 3.0, 4.0]; // rows: out0=[1,2], out1=[3,4]
        d.bias.value = vec![0.5, -0.5];
        let x = Tensor::new(&[1, 2], vec![10.0, 20.0]);
        let y = d.forward(&x, false);
        assert_eq!(y.data(), &[10.0 + 40.0 + 0.5, 30.0 + 80.0 - 0.5]);
    }

    /// Finite-difference gradient check through a real loss.
    #[test]
    fn gradient_check() {
        let mut rng = SeedRng::new(3);
        let mut d = Dense::new(4, 3, &mut rng);
        let x = Tensor::new(&[2, 4], (0..8).map(|i| 0.1 * i as f32).collect());
        let labels = [0usize, 2];

        let y = d.forward(&x, true);
        let (_, grad) = softmax_cross_entropy(&y, &labels);
        let dx = d.backward(&grad);

        let eps = 1e-3;
        // Check weight gradients at a few indices.
        for &wi in &[0usize, 5, 11] {
            let orig = d.weight.value[wi];
            d.weight.value[wi] = orig + eps;
            let (lp, _) = softmax_cross_entropy(&d.forward(&x, false), &labels);
            d.weight.value[wi] = orig - eps;
            let (lm, _) = softmax_cross_entropy(&d.forward(&x, false), &labels);
            d.weight.value[wi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = d.weight.grad[wi];
            assert!(
                (numeric - analytic).abs() < 1e-2 * (1.0 + numeric.abs()),
                "w[{wi}]: numeric {numeric} analytic {analytic}"
            );
        }
        // Check input gradients.
        for &xi in &[0usize, 3, 7] {
            let mut xp = x.clone();
            xp.data_mut()[xi] += eps;
            let (lp, _) = softmax_cross_entropy(&d.forward(&xp, false), &labels);
            let mut xm = x.clone();
            xm.data_mut()[xi] -= eps;
            let (lm, _) = softmax_cross_entropy(&d.forward(&xm, false), &labels);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = dx.data()[xi];
            assert!(
                (numeric - analytic).abs() < 1e-2 * (1.0 + numeric.abs()),
                "x[{xi}]: numeric {numeric} analytic {analytic}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "backward without forward")]
    fn backward_requires_forward() {
        let mut rng = SeedRng::new(4);
        let mut d = Dense::new(2, 2, &mut rng);
        d.backward(&Tensor::zeros(&[1, 2]));
    }
}
