//! `bf-nn` — a from-scratch neural-network library implementing the
//! paper's classifier.
//!
//! §4.1, footnote 2: *"LSTM (32 units, sigmoid activation) with 2 pairs of
//! convolutional layers (256 filters, stride = 3, ReLU activation) and max
//! pooling layers (pool size = 4), a dropout layer (rate = 0.7), and a
//! fully connected classification layer (output size = 100, softmax
//! activation). We use the Adam optimizer with learning rate = 0.001."*
//!
//! The sanctioned offline crate set has no deep-learning framework, so
//! this crate implements the pieces directly: a contiguous f32 [`Tensor`],
//! the [`Layer`] abstraction with hand-derived backward passes
//! ([`Conv1d`], [`MaxPool1d`], [`Dropout`], [`Lstm`], [`Dense`], ReLU),
//! softmax cross-entropy, the [`Adam`] optimizer, and the assembled
//! [`CnnLstm`] architecture. Every layer's gradient is validated against
//! finite differences in the test suite.
//!
//! # Example
//!
//! ```
//! use bf_nn::{CnnLstm, CnnLstmConfig, Tensor};
//!
//! let cfg = CnnLstmConfig::scaled(300, 5, 8); // trace len 300, 5 classes, 8 filters
//! let mut net = CnnLstm::new(cfg, 42);
//! let x = Tensor::zeros(&[2, 1, 300]); // batch of 2 traces
//! let logits = net.forward(&x, false);
//! assert_eq!(logits.shape(), &[2, 5]);
//! ```

pub mod conv;
pub mod dense;
pub mod dropout;
pub mod loss;
pub mod lstm;
pub mod network;
pub mod optim;
pub mod param;
pub mod pool;
pub mod relu;
pub mod serialize;
pub mod tensor;
pub mod workspace;

pub use conv::Conv1d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use loss::{softmax_cross_entropy, softmax_cross_entropy_soft};
pub use lstm::{Lstm, LstmActivation};
pub use network::{CnnLstm, CnnLstmConfig, PoolKind};
pub use optim::Adam;
pub use param::Param;
pub use pool::{AvgPool1d, MaxPool1d};
pub use relu::Relu;
pub use serialize::{load_network, read_params, save_network, write_params, CheckpointError};
pub use tensor::Tensor;
pub use workspace::{Workspace, WorkspaceStats};

/// A differentiable network layer.
///
/// Layers cache whatever they need during [`Layer::forward`] and consume
/// it in [`Layer::backward`]; training drives them strictly in
/// forward-then-backward pairs on a single thread (fold-level parallelism
/// happens above this crate).
pub trait Layer: std::fmt::Debug + Send {
    /// Compute the layer output. `train` enables stochastic behavior
    /// (dropout).
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Given ∂loss/∂output, accumulate parameter gradients and return
    /// ∂loss/∂input.
    ///
    /// # Panics
    ///
    /// Implementations panic if called without a preceding
    /// [`Layer::forward`] in training mode.
    fn backward(&mut self, grad: &Tensor) -> Tensor;

    /// Mutable access to the layer's parameters (empty for stateless
    /// layers).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Visit each parameter in the same stable order as
    /// [`Layer::params_mut`], without materializing a list — the
    /// allocation-free form the optimizer hot path uses. The default
    /// delegates to `params_mut` (whose empty default never allocates);
    /// parameterized layers override it to hand out field references
    /// directly.
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for p in self.params_mut() {
            f(p);
        }
    }
}
