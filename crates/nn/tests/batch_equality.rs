//! Batch-vs-single bit-equality for the batched inference fast path.
//!
//! `CnnLstm::predict_proba_batch` stacks B rows into one forward pass;
//! every kernel gives each sample a disjoint output slab and a fixed
//! per-sample accumulation order, so row `i` of a batched result must be
//! bit-identical to classifying row `i` alone — at any batch size, for
//! any mix of full-length and zero-padded prefix rows, and at any thread
//! count. These properties are what let the serving layer group
//! requests into micro-batches without perturbing outcomes.

use bf_nn::{CnnLstm, CnnLstmConfig};
use bf_stats::SeedRng;
use proptest::prelude::*;
use std::sync::Mutex;

/// `bf_par::set_threads` is process-global; serialize tests that flip it.
static SERIAL: Mutex<()> = Mutex::new(());

/// The issue's batch sizes: singleton, small, odd, full wave.
const BATCH_SIZES: [usize; 4] = [1, 2, 7, 16];

/// A network with a random (but geometry-valid) shape. Lengths ≥ 210
/// keep the two conv/pool stages non-degenerate for kernel 8 / stride 3
/// / pool 4.
fn net_for(input_len: usize, n_classes: usize, filters: usize, seed: u64) -> CnnLstm {
    let mut cfg = CnnLstmConfig::scaled(input_len, n_classes, filters);
    cfg.dropout = 0.0;
    CnnLstm::new(cfg, seed)
}

/// Random rows: a mix of full-length traces and shorter prefixes that
/// `prefix_batch` zero-pads to `input_len`.
fn random_rows(n: usize, input_len: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = SeedRng::new(seed);
    (0..n)
        .map(|i| {
            // Every fourth row is a strict prefix (padded path); the
            // rest are full length.
            let len = if i % 4 == 3 {
                1 + (rng.next_raw() as usize) % input_len.max(2)
            } else {
                input_len
            };
            (0..len).map(|_| rng.standard_normal() as f32).collect()
        })
        .collect()
}

fn row_bits(p: &bf_nn::Tensor, i: usize, k: usize) -> Vec<u32> {
    p.data()[i * k..(i + 1) * k].iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Each row of a batched prediction is bit-identical to predicting
    /// that row alone, for every issue batch size and random shapes.
    #[test]
    fn batched_rows_match_single_rows(
        input_len in 210usize..380,
        n_classes in 2usize..5,
        filters in 2usize..7,
        seed in 0u64..1_000,
    ) {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        bf_par::set_threads(Some(1));
        let mut net = net_for(input_len, n_classes, filters, seed);
        let rows = random_rows(16, input_len, seed ^ 0xBA7C4);
        let singles: Vec<Vec<u32>> = rows
            .iter()
            .map(|r| {
                let p = net.predict_proba_batch(std::slice::from_ref(r));
                let bits = row_bits(&p, 0, n_classes);
                bf_nn::workspace::recycle(p);
                bits
            })
            .collect();
        for &b in &BATCH_SIZES {
            let p = net.predict_proba_batch(&rows[..b]);
            prop_assert_eq!(p.shape(), &[b, n_classes]);
            for i in 0..b {
                prop_assert_eq!(
                    &row_bits(&p, i, n_classes),
                    &singles[i],
                    "row {} diverges at batch size {}", i, b
                );
            }
            bf_nn::workspace::recycle(p);
        }
    }

    /// Batched predictions are bit-identical across thread counts: the
    /// fork-join gates only move work between workers, never reorder a
    /// sample's accumulation.
    #[test]
    fn batched_rows_are_thread_count_invariant(
        input_len in 210usize..380,
        seed in 0u64..1_000,
    ) {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let mut net = net_for(input_len, 3, 4, seed);
        let rows = random_rows(16, input_len, seed ^ 0x7EAD5);
        bf_par::set_threads(Some(1));
        let p1 = net.predict_proba_batch(&rows);
        bf_par::set_threads(Some(4));
        let p4 = net.predict_proba_batch(&rows);
        bf_par::set_threads(Some(1));
        let (b1, b4): (Vec<u32>, Vec<u32>) = (
            p1.data().iter().map(|v| v.to_bits()).collect(),
            p4.data().iter().map(|v| v.to_bits()).collect(),
        );
        prop_assert_eq!(b1, b4);
        bf_nn::workspace::recycle(p1);
        bf_nn::workspace::recycle(p4);
    }
}

/// A padded prefix row classifies identically whether it arrives alone
/// or sandwiched between full-length rows — batch composition never
/// leaks across sample slabs.
#[test]
fn padded_prefix_rows_are_independent_of_neighbors() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    bf_par::set_threads(Some(1));
    let mut net = net_for(300, 4, 6, 11);
    let mut rng = SeedRng::new(23);
    let full: Vec<f32> = (0..300).map(|_| rng.standard_normal() as f32).collect();
    let prefix: Vec<f32> = full[..75].to_vec();
    let alone = net.predict_proba_batch(std::slice::from_ref(&prefix));
    let alone_bits = row_bits(&alone, 0, 4);
    bf_nn::workspace::recycle(alone);
    let mixed = net.predict_proba_batch(&[full.clone(), prefix.clone(), full]);
    assert_eq!(row_bits(&mixed, 1, 4), alone_bits);
    bf_nn::workspace::recycle(mixed);
}
