//! The zero-allocation contract: once the workspace arena is warm, a
//! steady-state training step performs no heap allocations at all.
//!
//! A counting wrapper around the system allocator is installed as the
//! test binary's `#[global_allocator]`; after five warm-up steps (which
//! populate the arena, the optimizer's moment buffers, and every layer
//! cache) counting is switched on for one more step, which must report
//! zero allocations and zero deallocations.
//!
//! The contract covers the inline execution path (`BF_THREADS=1`); the
//! parallel arms intentionally allocate their per-worker partials and
//! are exempt (marked `// alloc-ok: parallel arm` in the sources, and
//! policed by the `hot_alloc_lint` test).

use bf_nn::{CnnLstm, CnnLstmConfig, Tensor};
use bf_stats::SeedRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// The counters and `TRACKING` flag are process-global; the tests below
/// must not observe each other's windows.
static SERIAL: Mutex<()> = Mutex::new(());

/// Pass-through allocator that counts calls while `TRACKING` is set.
struct CountingAlloc;

static TRACKING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static DEALLOCS: AtomicUsize = AtomicUsize::new(0);
static REALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if TRACKING.load(Ordering::Relaxed) {
            DEALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            REALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Run `f` with counting enabled and return `(allocs, deallocs, reallocs)`.
fn counted<R>(f: impl FnOnce() -> R) -> (R, (usize, usize, usize)) {
    ALLOCS.store(0, Ordering::SeqCst);
    DEALLOCS.store(0, Ordering::SeqCst);
    REALLOCS.store(0, Ordering::SeqCst);
    TRACKING.store(true, Ordering::SeqCst);
    let out = f();
    TRACKING.store(false, Ordering::SeqCst);
    (
        out,
        (
            ALLOCS.load(Ordering::SeqCst),
            DEALLOCS.load(Ordering::SeqCst),
            REALLOCS.load(Ordering::SeqCst),
        ),
    )
}

#[test]
fn steady_state_training_step_does_not_allocate() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // Inline path only: the budget planner must see a single worker.
    bf_par::set_threads(Some(1));

    // Paper-shaped smoke network: both convs, pooling, LSTM, dense head,
    // dropout, and the im2col gate all exercised.
    let mut cfg = CnnLstmConfig::scaled(300, 4, 16);
    cfg.dropout = 0.3;
    cfg.learning_rate = 0.01;
    let mut net = CnnLstm::new(cfg, 42);

    let mut rng = SeedRng::new(7);
    let data: Vec<f32> = (0..8 * 300).map(|_| rng.standard_normal() as f32).collect();
    let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
    let x = Tensor::new(&[8, 1, 300], data);

    // Warm-up: arena buffers, layer caches, and Adam moments all settle
    // within the first step; a few extra guard against lazy growth.
    for _ in 0..5 {
        net.train_batch(&x, &labels);
    }

    let (loss, (allocs, deallocs, reallocs)) = counted(|| net.train_batch(&x, &labels));
    bf_par::set_threads(None);

    assert!(loss.is_finite(), "training step produced non-finite loss");
    assert_eq!(
        (allocs, deallocs, reallocs),
        (0, 0, 0),
        "steady-state train_batch touched the heap: \
         {allocs} allocs, {deallocs} deallocs, {reallocs} reallocs"
    );
}

#[test]
fn steady_state_batched_predict_does_not_allocate() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    bf_par::set_threads(Some(1));

    // Same smoke shape as the training case; a full serving micro-batch
    // of 8 rows, including zero-padded prefixes (the anytime rungs).
    let mut cfg = CnnLstmConfig::scaled(300, 4, 16);
    cfg.dropout = 0.3;
    cfg.learning_rate = 0.01;
    let mut net = CnnLstm::new(cfg, 42);

    let mut rng = SeedRng::new(11);
    let rows: Vec<Vec<f32>> = (0..8)
        .map(|i| {
            let len = if i % 2 == 0 { 300 } else { 75 + i * 20 };
            (0..len).map(|_| rng.standard_normal() as f32).collect()
        })
        .collect();

    // Warm-up settles the arena's batch, activation, and probability
    // tensors at this batch geometry.
    for _ in 0..5 {
        let p = net.predict_proba_batch(&rows);
        bf_nn::workspace::recycle(p);
    }

    let (p, (allocs, deallocs, reallocs)) = counted(|| net.predict_proba_batch(&rows));
    bf_par::set_threads(None);

    assert_eq!(p.shape(), &[8, 4]);
    assert!(p.data().iter().all(|v| v.is_finite()));
    bf_nn::workspace::recycle(p);
    assert_eq!(
        (allocs, deallocs, reallocs),
        (0, 0, 0),
        "steady-state predict_proba_batch touched the heap: \
         {allocs} allocs, {deallocs} deallocs, {reallocs} reallocs"
    );
}
