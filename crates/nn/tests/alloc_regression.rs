//! The zero-allocation contract: once the workspace arena is warm, a
//! steady-state training step performs no heap allocations at all.
//!
//! A counting wrapper around the system allocator is installed as the
//! test binary's `#[global_allocator]`; after five warm-up steps (which
//! populate the arena, the optimizer's moment buffers, and every layer
//! cache) counting is switched on for one more step, which must report
//! zero allocations and zero deallocations.
//!
//! The contract covers the inline execution path (`BF_THREADS=1`); the
//! parallel arms intentionally allocate their per-worker partials and
//! are exempt (marked `// alloc-ok: parallel arm` in the sources, and
//! policed by the `hot_alloc_lint` test).

use bf_nn::{CnnLstm, CnnLstmConfig, Tensor};
use bf_stats::SeedRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Pass-through allocator that counts calls while `TRACKING` is set.
struct CountingAlloc;

static TRACKING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static DEALLOCS: AtomicUsize = AtomicUsize::new(0);
static REALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if TRACKING.load(Ordering::Relaxed) {
            DEALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            REALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_training_step_does_not_allocate() {
    // Inline path only: the budget planner must see a single worker.
    bf_par::set_threads(Some(1));

    // Paper-shaped smoke network: both convs, pooling, LSTM, dense head,
    // dropout, and the im2col gate all exercised.
    let mut cfg = CnnLstmConfig::scaled(300, 4, 16);
    cfg.dropout = 0.3;
    cfg.learning_rate = 0.01;
    let mut net = CnnLstm::new(cfg, 42);

    let mut rng = SeedRng::new(7);
    let data: Vec<f32> = (0..8 * 300).map(|_| rng.standard_normal() as f32).collect();
    let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
    let x = Tensor::new(&[8, 1, 300], data);

    // Warm-up: arena buffers, layer caches, and Adam moments all settle
    // within the first step; a few extra guard against lazy growth.
    for _ in 0..5 {
        net.train_batch(&x, &labels);
    }

    TRACKING.store(true, Ordering::SeqCst);
    let loss = net.train_batch(&x, &labels);
    TRACKING.store(false, Ordering::SeqCst);
    bf_par::set_threads(None);

    let allocs = ALLOCS.load(Ordering::SeqCst);
    let deallocs = DEALLOCS.load(Ordering::SeqCst);
    let reallocs = REALLOCS.load(Ordering::SeqCst);
    assert!(loss.is_finite(), "training step produced non-finite loss");
    assert_eq!(
        (allocs, deallocs, reallocs),
        (0, 0, 0),
        "steady-state train_batch touched the heap: \
         {allocs} allocs, {deallocs} deallocs, {reallocs} reallocs"
    );
}
