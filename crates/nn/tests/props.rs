//! Property-based invariants for the neural-network layers.

use bf_nn::{Conv1d, Dense, Layer, MaxPool1d, Relu, Tensor};
use bf_stats::SeedRng;
use proptest::prelude::*;

fn tensor3(n: usize, c: usize, l: usize, seed: u64) -> Tensor {
    let mut rng = SeedRng::new(seed);
    Tensor::new(
        &[n, c, l],
        (0..n * c * l).map(|_| rng.standard_normal() as f32).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conv output geometry always matches the closed-form out_len.
    #[test]
    fn conv_output_geometry(
        n in 1usize..3,
        cin in 1usize..3,
        cout in 1usize..4,
        k in 1usize..6,
        stride in 1usize..4,
        extra in 0usize..20,
        seed in 0u64..1_000,
    ) {
        let l = k + extra;
        let mut rng = SeedRng::new(seed);
        let mut conv = Conv1d::new(cin, cout, k, stride, &mut rng);
        let x = tensor3(n, cin, l, seed);
        let y = conv.forward(&x, false);
        prop_assert_eq!(y.shape(), &[n, cout, conv.out_len(l)]);
    }

    /// Max pooling: every output equals the max of its window, and the
    /// backward pass routes exactly the incoming gradient mass.
    #[test]
    fn maxpool_routes_gradient_mass(
        n in 1usize..3,
        c in 1usize..3,
        windows in 1usize..6,
        size in 1usize..5,
        seed in 0u64..1_000,
    ) {
        let l = windows * size;
        let mut pool = MaxPool1d::new(size);
        let x = tensor3(n, c, l, seed);
        let y = pool.forward(&x, true);
        // Output values present in input.
        for &v in y.data() {
            prop_assert!(x.data().contains(&v));
        }
        let g = tensor3(n, c, windows, seed ^ 1);
        let dx = pool.backward(&g);
        let g_sum: f32 = g.data().iter().sum();
        let dx_sum: f32 = dx.data().iter().sum();
        prop_assert!((g_sum - dx_sum).abs() < 1e-4 * (1.0 + g_sum.abs()));
    }

    /// ReLU backward zeroes exactly the positions forward zeroed.
    #[test]
    fn relu_mask_consistency(n in 1usize..4, f in 1usize..20, seed in 0u64..1_000) {
        let mut relu = Relu::new();
        let x = {
            let mut rng = SeedRng::new(seed);
            Tensor::new(&[n, f], (0..n * f).map(|_| rng.standard_normal() as f32).collect())
        };
        let y = relu.forward(&x, true);
        let ones = Tensor::new(&[n, f], vec![1.0; n * f]);
        let dx = relu.backward(&ones);
        for i in 0..n * f {
            prop_assert_eq!(dx.data()[i] != 0.0, y.data()[i] > 0.0);
        }
    }

    /// Dense layers are affine: f(a+b) - f(b) = f(a) - f(0).
    #[test]
    fn dense_is_affine(fin in 1usize..8, fout in 1usize..6, seed in 0u64..1_000) {
        let mut rng = SeedRng::new(seed);
        let mut d = Dense::new(fin, fout, &mut rng);
        let mut gen = SeedRng::new(seed ^ 77);
        let a: Vec<f32> = (0..fin).map(|_| gen.standard_normal() as f32).collect();
        let b: Vec<f32> = (0..fin).map(|_| gen.standard_normal() as f32).collect();
        let ab: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let run = |d: &mut Dense, v: &[f32]| {
            d.forward(&Tensor::new(&[1, v.len()], v.to_vec()), false).into_data()
        };
        let f_ab = run(&mut d, &ab);
        let f_a = run(&mut d, &a);
        let f_b = run(&mut d, &b);
        let f_0 = run(&mut d, &vec![0.0; fin]);
        for i in 0..fout {
            let lhs = f_ab[i] - f_b[i];
            let rhs = f_a[i] - f_0[i];
            prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
        }
    }
}
