//! Source-level allocation lint for the training hot path.
//!
//! The `alloc_regression` test proves the steady state allocates
//! nothing at runtime; this lint keeps the *sources* honest between
//! runs. Every allocation-shaped expression (`vec!`,
//! `Vec::with_capacity`, `.to_vec(`, `.collect(`) inside a hot module
//! must carry an `// alloc-ok: <reason>` annotation stating why it is
//! off the steady-state path (parallel arm, constructor, pool miss,
//! checkpointing, first step). An unannotated hit fails the test with
//! the file, line, and offending code.
//!
//! `scripts/check_hot_alloc.sh` runs the same scan without a compile.

/// Modules whose bodies constitute the training hot path, plus the
/// bf-obs primitives that run inside it (span guards, counters, trace
/// context) — instrumentation is not exempt from its own budget.
const HOT_MODULES: &[(&str, &str)] = &[
    ("conv.rs", include_str!("../src/conv.rs")),
    ("dense.rs", include_str!("../src/dense.rs")),
    ("lstm.rs", include_str!("../src/lstm.rs")),
    ("pool.rs", include_str!("../src/pool.rs")),
    ("dropout.rs", include_str!("../src/dropout.rs")),
    ("relu.rs", include_str!("../src/relu.rs")),
    ("network.rs", include_str!("../src/network.rs")),
    ("loss.rs", include_str!("../src/loss.rs")),
    ("optim.rs", include_str!("../src/optim.rs")),
    ("tensor.rs", include_str!("../src/tensor.rs")),
    ("workspace.rs", include_str!("../src/workspace.rs")),
    ("obs/span.rs", include_str!("../../obs/src/span.rs")),
    ("obs/metrics.rs", include_str!("../../obs/src/metrics.rs")),
    ("obs/trace.rs", include_str!("../../obs/src/trace.rs")),
    ("obs/level.rs", include_str!("../../obs/src/level.rs")),
    ("obs/event.rs", include_str!("../../obs/src/event.rs")),
    // The anytime ladder's serving-side models: calibration and the
    // distilled student run per request inside the deadline budget.
    ("ml/anytime.rs", include_str!("../../ml/src/anytime.rs")),
    ("ml/calibrate.rs", include_str!("../../ml/src/calibrate.rs")),
    ("ml/distill.rs", include_str!("../../ml/src/distill.rs")),
    // The batched inference fast path: the primary classifier's predict
    // plumbing and the serving scheduler that assembles micro-batches.
    ("ml/cnn.rs", include_str!("../../ml/src/cnn.rs")),
    ("serve/service.rs", include_str!("../../serve/src/service.rs")),
    // The streamed simulation engine: every collected trace runs its
    // merge loop, and steady-state runs must stay pool-backed.
    ("sim/engine.rs", include_str!("../../sim/src/engine.rs")),
    ("sim/workspace.rs", include_str!("../../sim/src/workspace.rs")),
];

const ALLOC_PATTERNS: &[&str] = &["vec!", "Vec::with_capacity", ".to_vec(", ".collect("];

#[test]
fn hot_modules_annotate_every_allocation() {
    let mut violations = Vec::new();
    for (name, source) in HOT_MODULES {
        for (lineno, line) in source.lines().enumerate() {
            // Test modules sit at the bottom of each file; everything
            // after the first `#[cfg(test)]` is out of scope.
            if line.trim_start().starts_with("#[cfg(test)]") {
                break;
            }
            let trimmed = line.trim_start();
            if trimmed.starts_with("//") {
                continue; // prose, not code
            }
            if !ALLOC_PATTERNS.iter().any(|p| line.contains(p)) {
                continue;
            }
            if line.contains("// alloc-ok:") {
                continue;
            }
            violations.push(format!("{name}:{}: {}", lineno + 1, trimmed));
        }
    }
    assert!(
        violations.is_empty(),
        "unannotated allocations in hot modules (add the code to the \
         arena/scratch path, or justify with `// alloc-ok: <reason>`):\n{}",
        violations.join("\n")
    );
}
