//! `bf-timer` — virtual time and browser timer models.
//!
//! The attacks in the paper observe the system exclusively through a timer:
//! the JavaScript attacker calls `performance.now()`, the native attacker
//! reads `CLOCK_MONOTONIC`. Browsers deliberately degrade this timer —
//! quantizing it (Tor: 100 ms, Firefox/Safari: 1 ms) or quantizing *and*
//! jittering it (Chrome: 0.1 ms with hash-based jitter) — and §6.1 of the
//! paper proposes a *randomized* timer that defeats the attack outright.
//!
//! This crate provides:
//!
//! * [`Nanos`] — the exact virtual-time currency of the whole workspace
//!   (u64 nanoseconds);
//! * the [`Timer`] trait — a monotonic mapping from real virtual time to
//!   the time an attacker is allowed to observe;
//! * the four timer models of the paper (Fig. 7): [`PreciseTimer`],
//!   [`QuantizedTimer`], [`JitteredTimer`], [`RandomizedTimer`];
//! * [`BrowserKind`] presets wiring each browser of Table 1 to its timer.
//!
//! # Example
//!
//! ```
//! use bf_timer::{Nanos, Timer, QuantizedTimer};
//!
//! let mut tor = QuantizedTimer::new(Nanos::from_millis(100));
//! assert_eq!(tor.observe(Nanos::from_millis(250)), Nanos::from_millis(200));
//! ```

pub mod browser;
pub mod models;
pub mod nanos;

pub use browser::BrowserKind;
pub use models::{
    JitteredTimer, PreciseTimer, QuantizedTimer, RandomizedTimer, RandomizedTimerConfig,
};
pub use nanos::Nanos;

/// A monotonic timer as seen by an attacker.
///
/// Implementations map the machine's *real* virtual time to the value an
/// attacker's `time()` call returns. All implementations must be monotonic:
/// for `a <= b`, `observe(a) <= observe(b)` (given the calls are made in
/// non-decreasing real-time order, as the replay engine guarantees).
pub trait Timer {
    /// The value returned by the attacker-visible clock when read at real
    /// time `real`.
    fn observe(&mut self, real: Nanos) -> Nanos;

    /// The earliest real time `t >= from` at which `observe(t) >= target`.
    ///
    /// This is the exact inverse query the attack-replay engine uses to
    /// find when a `while (time() - t_begin < P)` loop exits, without
    /// stepping through millions of individual iterations. Implementations
    /// must agree with [`Timer::observe`]: `observe(result) >= target`,
    /// and `observe(t) < target` for all `from <= t < result`.
    fn earliest_at_or_above(&mut self, from: Nanos, target: Nanos) -> Nanos;

    /// Nominal resolution Δ of this timer; [`Nanos::ZERO`] for a precise
    /// timer.
    fn resolution(&self) -> Nanos;

    /// Human-readable model name for reports.
    fn name(&self) -> &'static str;
}

impl<T: Timer + ?Sized> Timer for Box<T> {
    fn observe(&mut self, real: Nanos) -> Nanos {
        (**self).observe(real)
    }

    fn earliest_at_or_above(&mut self, from: Nanos, target: Nanos) -> Nanos {
        (**self).earliest_at_or_above(from, target)
    }

    fn resolution(&self) -> Nanos {
        (**self).resolution()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}
