//! [`Nanos`] — the workspace's exact virtual-time type.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A point in (or span of) virtual time, in integer nanoseconds.
///
/// All simulation arithmetic is integral, so timer quantization behaves
/// bit-for-bit deterministically: `Nanos::from_millis(5) / 3` has an exact,
/// reproducible answer on every platform.
///
/// Subtraction panics on underflow in debug builds (like the underlying
/// `u64`); use [`Nanos::saturating_sub`] where an attacker computes a
/// difference that a fuzzed timer could make negative.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Zero time.
    pub const ZERO: Nanos = Nanos(0);
    /// One microsecond.
    pub const MICRO: Nanos = Nanos(1_000);
    /// One millisecond.
    pub const MILLI: Nanos = Nanos(1_000_000);
    /// One second.
    pub const SECOND: Nanos = Nanos(1_000_000_000);
    /// The maximum representable instant (~584 years).
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// From whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// From whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// From whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// From fractional seconds (rounds to nearest nanosecond).
    ///
    /// # Panics
    ///
    /// Panics when `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "seconds must be finite and non-negative");
        Nanos((s * 1e9).round() as u64)
    }

    /// From fractional milliseconds (rounds to nearest nanosecond).
    ///
    /// # Panics
    ///
    /// Panics when `ms` is negative or not finite.
    pub fn from_millis_f64(ms: f64) -> Self {
        assert!(ms.is_finite() && ms >= 0.0, "milliseconds must be finite and non-negative");
        Nanos((ms * 1e6).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// As fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// As fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Subtraction clamped at zero.
    #[inline]
    pub const fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    pub const fn checked_sub(self, rhs: Nanos) -> Option<Nanos> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Nanos(v)),
            None => None,
        }
    }

    /// Addition clamped at [`Nanos::MAX`].
    #[inline]
    pub const fn saturating_add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }

    /// Round down to a multiple of `step`.
    ///
    /// # Panics
    ///
    /// Panics when `step` is zero.
    pub const fn floor_to(self, step: Nanos) -> Nanos {
        assert!(step.0 > 0, "floor_to step must be positive");
        Nanos(self.0 / step.0 * step.0)
    }

    /// Round up to a multiple of `step`.
    ///
    /// # Panics
    ///
    /// Panics when `step` is zero.
    pub const fn ceil_to(self, step: Nanos) -> Nanos {
        assert!(step.0 > 0, "ceil_to step must be positive");
        Nanos(self.0.div_ceil(step.0) * step.0)
    }

    /// Scale by a non-negative float, rounding to nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics when `f` is negative or not finite.
    #[inline]
    pub fn mul_f64(self, f: f64) -> Nanos {
        assert!(f.is_finite() && f >= 0.0, "scale factor must be finite and non-negative");
        Nanos((self.0 as f64 * f).round() as u64)
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: Nanos) -> Nanos {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: Nanos) -> Nanos {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    #[inline]
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    #[inline]
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    #[inline]
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    #[inline]
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

/// Number of whole `rhs` spans that fit in `self`.
impl Div<Nanos> for Nanos {
    type Output = u64;
    #[inline]
    fn div(self, rhs: Nanos) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<Nanos> for Nanos {
    type Output = Nanos;
    #[inline]
    fn rem(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 % rhs.0)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

impl From<u64> for Nanos {
    fn from(ns: u64) -> Self {
        Nanos(ns)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanos::from_micros(1), Nanos::MICRO);
        assert_eq!(Nanos::from_millis(1), Nanos::MILLI);
        assert_eq!(Nanos::from_secs(1), Nanos::SECOND);
        assert_eq!(Nanos::from_secs_f64(1.5), Nanos(1_500_000_000));
        assert_eq!(Nanos::from_millis_f64(0.1), Nanos(100_000));
    }

    #[test]
    fn conversions_roundtrip() {
        let t = Nanos::from_millis(1234);
        assert_eq!(t.as_millis_f64(), 1234.0);
        assert_eq!(t.as_secs_f64(), 1.234);
        assert_eq!(Nanos::from_secs_f64(t.as_secs_f64()), t);
    }

    #[test]
    fn arithmetic() {
        let a = Nanos(100);
        let b = Nanos(30);
        assert_eq!(a + b, Nanos(130));
        assert_eq!(a - b, Nanos(70));
        assert_eq!(a * 3, Nanos(300));
        assert_eq!(a / 3, Nanos(33));
        assert_eq!(a / b, 3);
        assert_eq!(a % b, Nanos(10));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Nanos(5).saturating_sub(Nanos(10)), Nanos::ZERO);
        assert_eq!(Nanos::MAX.saturating_add(Nanos(1)), Nanos::MAX);
        assert_eq!(Nanos(5).checked_sub(Nanos(10)), None);
        assert_eq!(Nanos(10).checked_sub(Nanos(5)), Some(Nanos(5)));
    }

    #[test]
    #[should_panic]
    fn sub_underflow_panics() {
        let _ = Nanos(1) - Nanos(2);
    }

    #[test]
    fn floor_to_quantizes() {
        let q = Nanos::from_millis(100);
        assert_eq!(Nanos::from_millis(250).floor_to(q), Nanos::from_millis(200));
        assert_eq!(Nanos::from_millis(200).floor_to(q), Nanos::from_millis(200));
        assert_eq!(Nanos::from_millis(99).floor_to(q), Nanos::ZERO);
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(Nanos(10).mul_f64(1.26), Nanos(13));
        assert_eq!(Nanos(10).mul_f64(0.0), Nanos::ZERO);
    }

    #[test]
    fn min_max() {
        assert_eq!(Nanos(3).min(Nanos(5)), Nanos(3));
        assert_eq!(Nanos(3).max(Nanos(5)), Nanos(5));
    }

    #[test]
    fn sum_iterator() {
        let total: Nanos = [Nanos(1), Nanos(2), Nanos(3)].into_iter().sum();
        assert_eq!(total, Nanos(6));
    }

    #[test]
    fn display_chooses_unit() {
        assert_eq!(Nanos(5).to_string(), "5ns");
        assert_eq!(Nanos::from_micros(2).to_string(), "2.000us");
        assert_eq!(Nanos::from_millis(3).to_string(), "3.000ms");
        assert_eq!(Nanos::from_secs(4).to_string(), "4.000s");
    }

    #[test]
    fn ordering() {
        assert!(Nanos(1) < Nanos(2));
        assert_eq!(Nanos(2).max(Nanos(1)), Nanos(2));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_secs_f64_rejects_negative() {
        Nanos::from_secs_f64(-1.0);
    }
}
