//! Browser presets for Table 1.
//!
//! Each browser in the paper's evaluation exposes a different timer to
//! JavaScript; the loop executed by the attacker also runs at a
//! browser-characteristic speed (the paper's Chrome attacker completes
//! ~27 000 iterations per 5 ms period, i.e. ~185 ns per iteration of
//! `counter++; performance.now()`).

use crate::models::{JitteredTimer, PreciseTimer, QuantizedTimer};
use crate::{Nanos, Timer};
use serde::{Deserialize, Serialize};

/// The browsers evaluated in Table 1, plus a native (non-browser) attacker
/// environment used for Table 3's Python attacker and §5.2's Rust gap
/// watcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BrowserKind {
    /// Chrome 92: 0.1 ms timer with hash jitter.
    Chrome,
    /// Firefox 91: 1 ms timer with jitter.
    Firefox,
    /// Safari 14: 1 ms quantized timer.
    Safari,
    /// Tor Browser 10: 100 ms quantized timer.
    TorBrowser,
    /// Native code reading `CLOCK_MONOTONIC` / `time.time()`.
    Native,
}

impl BrowserKind {
    /// All browser environments of Table 1 (excluding [`BrowserKind::Native`]).
    pub const TABLE1: [BrowserKind; 4] = [
        BrowserKind::Chrome,
        BrowserKind::Firefox,
        BrowserKind::Safari,
        BrowserKind::TorBrowser,
    ];

    /// The timer resolution this browser exposes to `performance.now()`.
    pub fn timer_resolution(self) -> Nanos {
        match self {
            BrowserKind::Chrome => Nanos::from_millis_f64(0.1),
            BrowserKind::Firefox | BrowserKind::Safari => Nanos::from_millis(1),
            BrowserKind::TorBrowser => Nanos::from_millis(100),
            BrowserKind::Native => Nanos::ZERO,
        }
    }

    /// Whether the browser adds jitter on top of quantization.
    pub fn has_jitter(self) -> bool {
        matches!(self, BrowserKind::Chrome | BrowserKind::Firefox)
    }

    /// Construct this browser's timer model. `seed` feeds the jitter hash
    /// where applicable.
    pub fn timer(self, seed: u64) -> Box<dyn Timer> {
        match self {
            BrowserKind::Chrome | BrowserKind::Firefox => {
                Box::new(JitteredTimer::new(self.timer_resolution(), seed))
            }
            BrowserKind::Safari | BrowserKind::TorBrowser => {
                Box::new(QuantizedTimer::new(self.timer_resolution()))
            }
            BrowserKind::Native => Box::new(PreciseTimer::new()),
        }
    }

    /// Cost of one attacker loop iteration (`counter++` plus a timer read)
    /// in this environment. Calibrated so the loop-counting attacker
    /// matches the paper's observed iteration counts: ~27 000 per 5 ms in
    /// Chrome (§3.3), and so the native Python attacker of Table 3 runs a
    /// similar-throughput loop.
    pub fn loop_iteration_cost(self) -> Nanos {
        match self {
            // 5 ms / 27 000 ≈ 185 ns per JS iteration.
            BrowserKind::Chrome => Nanos::from_nanos(185),
            BrowserKind::Firefox => Nanos::from_nanos(195),
            BrowserKind::Safari => Nanos::from_nanos(180),
            // Tor is Firefox-derived with extra instrumentation overhead.
            BrowserKind::TorBrowser => Nanos::from_nanos(240),
            // Python `while` loop with time.time(): ~150 ns/iter on the
            // paper's Core i5; Rust gap watcher is faster but shares the
            // preset (the replay engine overrides cost where needed).
            BrowserKind::Native => Nanos::from_nanos(150),
        }
    }

    /// Trace duration used by the paper for this browser: 50 s for Tor
    /// Browser, 15 s everywhere else (§4.1).
    pub fn trace_duration(self) -> Nanos {
        match self {
            BrowserKind::TorBrowser => Nanos::from_secs(50),
            _ => Nanos::from_secs(15),
        }
    }

    /// Display label matching the paper's Table 1 rows.
    pub fn label(self) -> &'static str {
        match self {
            BrowserKind::Chrome => "Chrome 92",
            BrowserKind::Firefox => "Firefox 91",
            BrowserKind::Safari => "Safari 14",
            BrowserKind::TorBrowser => "Tor Browser 10",
            BrowserKind::Native => "Native",
        }
    }
}

impl std::fmt::Display for BrowserKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolutions_match_paper_table1() {
        assert_eq!(BrowserKind::Chrome.timer_resolution(), Nanos::from_micros(100));
        assert_eq!(BrowserKind::Firefox.timer_resolution(), Nanos::from_millis(1));
        assert_eq!(BrowserKind::Safari.timer_resolution(), Nanos::from_millis(1));
        assert_eq!(BrowserKind::TorBrowser.timer_resolution(), Nanos::from_millis(100));
        assert_eq!(BrowserKind::Native.timer_resolution(), Nanos::ZERO);
    }

    #[test]
    fn jitter_flags() {
        assert!(BrowserKind::Chrome.has_jitter());
        assert!(BrowserKind::Firefox.has_jitter());
        assert!(!BrowserKind::Safari.has_jitter());
        assert!(!BrowserKind::TorBrowser.has_jitter());
    }

    #[test]
    fn timer_construction_respects_resolution() {
        for b in BrowserKind::TABLE1 {
            let t = b.timer(1);
            assert_eq!(t.resolution(), b.timer_resolution(), "{b}");
        }
        assert_eq!(BrowserKind::Native.timer(0).resolution(), Nanos::ZERO);
    }

    #[test]
    fn chrome_loop_count_matches_paper() {
        // ~27 000 iterations per 5 ms period (§3.3).
        let per_period = Nanos::from_millis(5) / BrowserKind::Chrome.loop_iteration_cost();
        assert!((26_000..28_500).contains(&per_period), "got {per_period}");
    }

    #[test]
    fn tor_uses_long_traces() {
        assert_eq!(BrowserKind::TorBrowser.trace_duration(), Nanos::from_secs(50));
        assert_eq!(BrowserKind::Chrome.trace_duration(), Nanos::from_secs(15));
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = BrowserKind::TABLE1.iter().map(|b| b.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 4);
    }
}
