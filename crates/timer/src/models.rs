//! The four timer models compared in §6.1 / Fig. 7 / Fig. 8 / Table 4.

use crate::{Nanos, Timer};
use bf_stats::rng::{combine_seeds, splitmix64, SeedRng};
use serde::{Deserialize, Serialize};

/// A perfect-resolution timer (the native attacker's `CLOCK_MONOTONIC`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PreciseTimer;

impl PreciseTimer {
    /// Create a precise timer.
    pub fn new() -> Self {
        PreciseTimer
    }
}

impl Timer for PreciseTimer {
    fn observe(&mut self, real: Nanos) -> Nanos {
        real
    }

    fn earliest_at_or_above(&mut self, from: Nanos, target: Nanos) -> Nanos {
        from.max(target)
    }

    fn resolution(&self) -> Nanos {
        Nanos::ZERO
    }

    fn name(&self) -> &'static str {
        "precise"
    }
}

/// A quantized timer: `T_secure = floor(T_real / Δ) · Δ`.
///
/// Tor Browser uses Δ = 100 ms; Firefox and Safari use Δ = 1 ms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantizedTimer {
    resolution: Nanos,
}

impl QuantizedTimer {
    /// Create a quantized timer with resolution `Δ`.
    ///
    /// # Panics
    ///
    /// Panics when `resolution` is zero.
    pub fn new(resolution: Nanos) -> Self {
        assert!(resolution > Nanos::ZERO, "quantized timer needs a positive resolution");
        QuantizedTimer { resolution }
    }
}

impl Timer for QuantizedTimer {
    fn observe(&mut self, real: Nanos) -> Nanos {
        real.floor_to(self.resolution)
    }

    fn earliest_at_or_above(&mut self, from: Nanos, target: Nanos) -> Nanos {
        // floor(t/Δ)·Δ >= target  ⇔  t >= ceil(target/Δ)·Δ
        from.max(target.ceil_to(self.resolution))
    }

    fn resolution(&self) -> Nanos {
        self.resolution
    }

    fn name(&self) -> &'static str {
        "quantized"
    }
}

/// Chrome's jittered timer: quantization plus a deterministic per-slot
/// perturbation ε ∈ {0, Δ}.
///
/// Chrome computes ε with a hash function (not a raw random draw) so the
/// clock stays monotonic. We reproduce that structure: each Δ-slot gets a
/// pseudo-random threshold `θ ∈ [0, Δ)` derived by hashing the slot index
/// with the seed; readings in the slot before θ return `q`, readings at or
/// after θ return `q + Δ`. Within a slot the output is non-decreasing, and
/// across slot boundaries it can only grow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JitteredTimer {
    resolution: Nanos,
    seed: u64,
}

impl JitteredTimer {
    /// Create a jittered timer with resolution `Δ` and a jitter seed.
    ///
    /// # Panics
    ///
    /// Panics when `resolution` is zero.
    pub fn new(resolution: Nanos, seed: u64) -> Self {
        assert!(resolution > Nanos::ZERO, "jittered timer needs a positive resolution");
        JitteredTimer { resolution, seed }
    }

    /// The jitter threshold for a quantization slot.
    fn slot_threshold(&self, slot: u64) -> Nanos {
        let mut h = combine_seeds(self.seed, slot);
        let r = splitmix64(&mut h);
        Nanos::from_nanos(r % self.resolution.as_nanos())
    }
}

impl Timer for JitteredTimer {
    fn observe(&mut self, real: Nanos) -> Nanos {
        let q = real.floor_to(self.resolution);
        let slot = real / self.resolution;
        let in_slot = real - q;
        if in_slot >= self.slot_threshold(slot) {
            q + self.resolution
        } else {
            q
        }
    }

    fn earliest_at_or_above(&mut self, from: Nanos, target: Nanos) -> Nanos {
        let delta = self.resolution;
        let mut slot = from / delta;
        // The answer is at most `target` slots ahead; this loop runs
        // O((target - from)/Δ + 2) times.
        loop {
            let q = delta * slot;
            let slot_end = q + delta;
            let lo = from.max(q);
            if q >= target {
                // Any reading in this slot observes >= q >= target.
                return lo;
            }
            if q + delta >= target {
                // Readings at/after the jitter threshold observe q + Δ.
                let cand = lo.max(q + self.slot_threshold(slot));
                if cand < slot_end {
                    return cand;
                }
            }
            slot += 1;
        }
    }

    fn resolution(&self) -> Nanos {
        self.resolution
    }

    fn name(&self) -> &'static str {
        "jittered"
    }
}

/// Parameters of the paper's randomized timer (§6.1).
///
/// Every Δ the defense draws integers α and β uniformly from
/// `[alpha_lo, alpha_hi]`. While the returned value trails real time by at
/// most α·Δ it is left unchanged; once the lag exceeds α·Δ the value jumps
/// by β·Δ; and if the lag somehow exceeds `threshold` the value snaps to
/// real time plus β·Δ. The paper's evaluation uses α, β ~ U\[5, 25\],
/// Δ = 1 ms, threshold = 100 ms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomizedTimerConfig {
    /// Update period Δ.
    pub delta: Nanos,
    /// Lower bound (inclusive) of the uniform integer draws for α and β.
    pub alpha_lo: u64,
    /// Upper bound (inclusive) of the uniform integer draws for α and β.
    pub alpha_hi: u64,
    /// Maximum allowed lag before the timer resynchronizes to real time.
    pub threshold: Nanos,
}

impl Default for RandomizedTimerConfig {
    fn default() -> Self {
        RandomizedTimerConfig {
            delta: Nanos::from_millis(1),
            alpha_lo: 5,
            alpha_hi: 25,
            threshold: Nanos::from_millis(100),
        }
    }
}

/// The paper's proposed randomized timer (§6.1): monotonic, with random
/// increments at random intervals. Drops the loop-counting attack from
/// 96.6 % to 1.0 % top-1 accuracy (Table 4).
#[derive(Debug, Clone)]
pub struct RandomizedTimer {
    config: RandomizedTimerConfig,
    rng: SeedRng,
    /// Index of the next Δ-epoch to process.
    next_epoch: u64,
    /// Current secure (returned) value.
    secure: Nanos,
}

impl RandomizedTimer {
    /// Create a randomized timer from a config and seed.
    ///
    /// # Panics
    ///
    /// Panics when Δ is zero or `alpha_lo > alpha_hi`.
    pub fn new(config: RandomizedTimerConfig, seed: u64) -> Self {
        assert!(config.delta > Nanos::ZERO, "randomized timer needs a positive delta");
        assert!(config.alpha_lo <= config.alpha_hi, "alpha_lo must be <= alpha_hi");
        assert!(config.alpha_hi >= 1, "alpha_hi must be >= 1 so the clock can advance");
        RandomizedTimer {
            config,
            rng: SeedRng::new(seed),
            next_epoch: 0,
            secure: Nanos::ZERO,
        }
    }

    /// Create with the paper's default parameters (Δ=1 ms, U\[5,25\],
    /// threshold=100 ms).
    pub fn with_defaults(seed: u64) -> Self {
        RandomizedTimer::new(RandomizedTimerConfig::default(), seed)
    }

    fn draw(&mut self) -> u64 {
        self.rng.int_range(self.config.alpha_lo, self.config.alpha_hi + 1)
    }

    /// Process the single next Δ-epoch update; returns its epoch time.
    fn step_epoch(&mut self) -> Nanos {
        let epoch_time = self.config.delta * self.next_epoch;
        let alpha = self.draw();
        let beta = self.draw();
        let lag = epoch_time.saturating_sub(self.secure);
        let alpha_window = self.config.delta * alpha;
        if lag < alpha_window {
            // within tolerance: unchanged
        } else if lag <= self.config.threshold {
            self.secure += self.config.delta * beta;
        } else {
            // resynchronize: snap toward real time (monotonically)
            self.secure = self.secure.max(epoch_time) + self.config.delta * beta;
        }
        self.next_epoch += 1;
        epoch_time
    }

    /// Run all Δ-epoch updates up to and including real time `real`.
    fn advance_epochs(&mut self, real: Nanos) {
        let target_epoch = real / self.config.delta;
        while self.next_epoch <= target_epoch {
            self.step_epoch();
        }
    }
}

impl Timer for RandomizedTimer {
    fn observe(&mut self, real: Nanos) -> Nanos {
        self.advance_epochs(real);
        self.secure
    }

    fn earliest_at_or_above(&mut self, from: Nanos, target: Nanos) -> Nanos {
        self.advance_epochs(from);
        if self.secure >= target {
            return from;
        }
        // The secure value only changes at Δ-epoch boundaries; step until
        // it crosses the target. Termination: once the lag exceeds the
        // threshold the timer resynchronizes past the epoch time, which
        // grows without bound.
        loop {
            let epoch_time = self.step_epoch();
            if self.secure >= target {
                return from.max(epoch_time);
            }
        }
    }

    fn resolution(&self) -> Nanos {
        self.config.delta
    }

    fn name(&self) -> &'static str {
        "randomized"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> Nanos {
        Nanos::from_millis(x)
    }

    #[test]
    fn precise_is_identity() {
        let mut t = PreciseTimer::new();
        assert_eq!(t.observe(Nanos(12_345)), Nanos(12_345));
        assert_eq!(t.resolution(), Nanos::ZERO);
    }

    #[test]
    fn quantized_floors() {
        let mut t = QuantizedTimer::new(ms(100));
        assert_eq!(t.observe(ms(0)), ms(0));
        assert_eq!(t.observe(ms(99)), ms(0));
        assert_eq!(t.observe(ms(100)), ms(100));
        assert_eq!(t.observe(ms(250)), ms(200));
    }

    #[test]
    #[should_panic(expected = "positive resolution")]
    fn quantized_rejects_zero_resolution() {
        QuantizedTimer::new(Nanos::ZERO);
    }

    #[test]
    fn jittered_within_two_delta_of_real() {
        // Paper: |T_secure - T_real| < 2Δ for Chrome's jitter.
        let delta = Nanos::from_millis_f64(0.1);
        let mut t = JitteredTimer::new(delta, 7);
        for i in 0..10_000u64 {
            let real = Nanos(i * 37_000); // 37 µs steps
            let obs = t.observe(real);
            let diff = if obs >= real { obs - real } else { real - obs };
            assert!(diff < delta * 2, "diff {diff} at {real}");
        }
    }

    #[test]
    fn jittered_is_monotonic() {
        let mut t = JitteredTimer::new(Nanos::from_micros(100), 99);
        let mut last = Nanos::ZERO;
        for i in 0..50_000u64 {
            let obs = t.observe(Nanos(i * 11_113));
            assert!(obs >= last, "non-monotonic at step {i}");
            last = obs;
        }
    }

    #[test]
    fn jittered_output_is_multiple_of_delta() {
        let delta = Nanos::from_micros(100);
        let mut t = JitteredTimer::new(delta, 3);
        for i in 0..1_000u64 {
            let obs = t.observe(Nanos(i * 53_101));
            assert_eq!(obs % delta, Nanos::ZERO);
        }
    }

    #[test]
    fn jittered_actually_jitters() {
        // Some readings must round up, some down, else it's just quantized.
        let delta = Nanos::from_micros(100);
        let mut t = JitteredTimer::new(delta, 5);
        let mut up = 0;
        let mut down = 0;
        for i in 0..1_000u64 {
            let real = Nanos(i * 97_003);
            let obs = t.observe(real);
            if obs > real {
                up += 1;
            } else {
                down += 1;
            }
        }
        assert!(up > 100, "up = {up}");
        assert!(down > 100, "down = {down}");
    }

    #[test]
    fn jittered_deterministic_per_seed() {
        let mut a = JitteredTimer::new(Nanos::from_micros(100), 11);
        let mut b = JitteredTimer::new(Nanos::from_micros(100), 11);
        for i in 0..1_000u64 {
            let real = Nanos(i * 71_111);
            assert_eq!(a.observe(real), b.observe(real));
        }
    }

    #[test]
    fn randomized_is_monotonic() {
        let mut t = RandomizedTimer::with_defaults(42);
        let mut last = Nanos::ZERO;
        for i in 0..200_000u64 {
            let obs = t.observe(Nanos(i * 10_007));
            assert!(obs >= last);
            last = obs;
        }
    }

    #[test]
    fn randomized_tracks_real_time_loosely() {
        // Over 10 s the secure clock must advance (it jumps by β·Δ when the
        // lag exceeds α·Δ) and stay within the threshold-governed envelope.
        let cfg = RandomizedTimerConfig::default();
        let mut t = RandomizedTimer::new(cfg, 1);
        let real = Nanos::from_secs(10);
        let obs = t.observe(real);
        assert!(obs > Nanos::from_secs(9), "obs = {obs}");
        // Can overshoot by at most threshold + beta_max*delta-ish.
        assert!(obs < real + ms(200), "obs = {obs}");
    }

    #[test]
    fn randomized_holds_value_between_jumps() {
        // Immediately consecutive readings inside one α-window are equal.
        let mut t = RandomizedTimer::with_defaults(3);
        let a = t.observe(Nanos::from_micros(100));
        let b = t.observe(Nanos::from_micros(200));
        assert_eq!(a, b);
    }

    #[test]
    fn randomized_jumps_are_delta_multiples() {
        let cfg = RandomizedTimerConfig::default();
        let delta = cfg.delta;
        let mut t = RandomizedTimer::new(cfg, 9);
        let mut last = t.observe(Nanos::ZERO);
        for i in 1..20_000u64 {
            let obs = t.observe(Nanos(i * 100_000));
            if obs != last {
                assert_eq!((obs - last) % delta, Nanos::ZERO);
            }
            last = obs;
        }
    }

    #[test]
    fn randomized_error_can_reach_tens_of_ms() {
        // Fig. 8c: a 5 ms attacker period can correspond to 0..100 ms of
        // real time — the lag must reach far beyond the 5 ms Chrome jitter.
        let mut t = RandomizedTimer::with_defaults(17);
        let mut max_lag = Nanos::ZERO;
        for i in 0..500_000u64 {
            let real = Nanos(i * 20_000); // 20 µs steps over 10 s
            let obs = t.observe(real);
            let lag = real.saturating_sub(obs);
            max_lag = max_lag.max(lag);
        }
        assert!(max_lag >= ms(5), "max lag only {max_lag}");
    }

    #[test]
    fn randomized_deterministic_per_seed() {
        let mut a = RandomizedTimer::with_defaults(5);
        let mut b = RandomizedTimer::with_defaults(5);
        for i in 0..10_000u64 {
            let real = Nanos(i * 123_457);
            assert_eq!(a.observe(real), b.observe(real));
        }
    }

    /// Check the inverse-query contract by brute force on a fine grid:
    /// observe(result) >= target and observe(t) < target for sampled
    /// t in [from, result).
    fn check_earliest<T: Timer + Clone>(timer: &T, from: Nanos, target: Nanos, grid: u64) {
        let result = timer.clone().earliest_at_or_above(from, target);
        assert!(result >= from, "result {result} < from {from}");
        let obs = timer.clone().observe(result);
        assert!(obs >= target, "observe(result)={obs} < target {target}");
        if result > from {
            let span = result - from;
            for i in 0..grid {
                let t = from + span * i / grid;
                if t < result {
                    let o = timer.clone().observe(t);
                    assert!(o < target, "observe({t})={o} >= target {target} before result {result}");
                }
            }
        }
    }

    #[test]
    fn earliest_precise() {
        let t = PreciseTimer::new();
        check_earliest(&t, Nanos(100), Nanos(500), 16);
        check_earliest(&t, Nanos(700), Nanos(500), 16);
    }

    #[test]
    fn earliest_quantized() {
        let t = QuantizedTimer::new(ms(100));
        check_earliest(&t, Nanos::ZERO, ms(5), 64);
        check_earliest(&t, ms(150), ms(250), 64);
        check_earliest(&t, ms(300), ms(300), 4);
        // already satisfied
        assert_eq!(t.clone().earliest_at_or_above(ms(500), ms(200)), ms(500));
    }

    #[test]
    fn earliest_jittered_contract_fuzz() {
        let delta = Nanos::from_micros(100);
        let t = JitteredTimer::new(delta, 77);
        let mut rng_state = 12345u64;
        for _ in 0..200 {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let from = Nanos(rng_state % 10_000_000);
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let target = from + Nanos(rng_state % 5_000_000);
            check_earliest(&t, from, target, 32);
        }
    }

    #[test]
    fn earliest_randomized_contract() {
        // RandomizedTimer is stateful: check the contract against a fresh
        // clone that replays the same epoch stream.
        let base = RandomizedTimer::with_defaults(21);
        for (from_ms, ahead_ms) in [(0u64, 5u64), (10, 5), (50, 100), (200, 1)] {
            let from = ms(from_ms);
            let mut probe = base.clone();
            let target = probe.observe(from) + ms(ahead_ms);
            let mut solver = base.clone();
            let result = solver.earliest_at_or_above(from, target);
            assert!(result >= from);
            let mut verify = base.clone();
            assert!(verify.observe(result) >= target);
            if result > from {
                let mut verify = base.clone();
                let just_before = result - Nanos(1);
                assert!(verify.observe(just_before) < target);
            }
        }
    }

    #[test]
    fn boxed_timer_dispatch() {
        let mut t: Box<dyn Timer> = Box::new(QuantizedTimer::new(ms(1)));
        assert_eq!(t.observe(ms(5) + Nanos(3)), ms(5));
        assert_eq!(t.name(), "quantized");
    }
}
