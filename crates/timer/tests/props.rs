//! Property-based invariants for the timer models.

use bf_timer::{JitteredTimer, Nanos, QuantizedTimer, RandomizedTimer, Timer};
use proptest::prelude::*;

proptest! {
    /// Quantized observation is always the floor multiple at or below
    /// real time, within one resolution.
    #[test]
    fn quantized_floor_properties(real in 0u64..10_000_000_000, res_us in 1u64..200_000) {
        let res = Nanos::from_micros(res_us);
        let mut t = QuantizedTimer::new(res);
        let obs = t.observe(Nanos(real));
        prop_assert!(obs <= Nanos(real));
        prop_assert!(Nanos(real) - obs < res);
        prop_assert_eq!(obs % res, Nanos::ZERO);
    }

    /// Jittered observation stays within 2Δ of real time (the paper's
    /// bound for Chrome's jitter) and is always a multiple of Δ.
    #[test]
    fn jittered_error_bound(real in 0u64..10_000_000_000, seed in 0u64.., res_us in 1u64..10_000) {
        let res = Nanos::from_micros(res_us);
        let mut t = JitteredTimer::new(res, seed);
        let obs = t.observe(Nanos(real));
        let err = if obs >= Nanos(real) { obs - Nanos(real) } else { Nanos(real) - obs };
        prop_assert!(err < res * 2, "err {err} >= 2x{res}");
        prop_assert_eq!(obs % res, Nanos::ZERO);
    }

    /// The inverse query matches a brute-force scan for the quantized
    /// model (exact check at coarse granularity).
    #[test]
    fn quantized_earliest_matches_bruteforce(
        from in 0u64..1_000_000,
        ahead in 0u64..500_000,
        res_us in 1u64..300,
    ) {
        let res = Nanos::from_micros(res_us);
        let target = Nanos(from + ahead);
        let mut t = QuantizedTimer::new(res);
        let fast = t.earliest_at_or_above(Nanos(from), target);
        // Brute force in 100ns steps up to fast; observe must stay below
        // target before `fast`.
        let step = 100u64;
        let mut probe = from;
        while probe < fast.as_nanos() {
            prop_assert!(QuantizedTimer::new(res).observe(Nanos(probe)) < target);
            probe += step;
        }
        prop_assert!(QuantizedTimer::new(res).observe(fast) >= target);
    }

    /// Randomized timer: monotone, and every returned value is a multiple
    /// of Δ (it only moves in β·Δ jumps).
    #[test]
    fn randomized_moves_in_delta_multiples(seed in 0u64.., steps in 1usize..200) {
        let mut t = RandomizedTimer::with_defaults(seed);
        let delta = t.resolution();
        let mut last = Nanos::ZERO;
        for i in 0..steps {
            let obs = t.observe(Nanos((i as u64 + 1) * 777_777));
            prop_assert!(obs >= last);
            prop_assert_eq!(obs % delta, Nanos::ZERO);
            last = obs;
        }
    }

    /// Nanos arithmetic helpers round-trip.
    #[test]
    fn nanos_floor_ceil_consistency(x in 0u64..1_000_000_000, step in 1u64..1_000_000) {
        let n = Nanos(x);
        let s = Nanos(step);
        let f = n.floor_to(s);
        let c = n.ceil_to(s);
        prop_assert!(f <= n && n <= c);
        prop_assert!(c - f == Nanos::ZERO || c - f == s);
        prop_assert_eq!(f % s, Nanos::ZERO);
        prop_assert_eq!(c % s, Nanos::ZERO);
    }
}
